"""The Otter run-time library: distributed MATRIX values and the ML_* ops
layered on the simulated MPI substrate."""

from .builtins import SUPPORTED, call_builtin
from .context import COLON, RuntimeContext
from .distribution import BlockMap, CyclicMap
from .matrix import DMatrix, is_distributed

__all__ = [
    "SUPPORTED", "call_builtin",
    "COLON", "RuntimeContext",
    "BlockMap", "CyclicMap",
    "DMatrix", "is_distributed",
]
