"""Per-rank local-memory tracking.

The paper's closing argument (Section 7): "Translating MATLAB scripts
into parallel code has an additional, very important advantage: larger
problems can be solved.  It is infeasible for the MATLAB interpreter to
solve problems where the aggregate amount of data being manipulated
exceeds the primary memory capacity of a workstation.  In contrast, a
parallel computer may have far more primary memory."

To reproduce that claim quantitatively, every :class:`DMatrix` records
its local block's bytes against the *current thread's* tracker (each
simulated rank is a thread), decrementing when the block is garbage
collected.  ``peak_local_bytes`` is then exactly the high-water mark of
one rank's share of distributed data — the quantity that must fit in one
node's memory.  (The deterministic full-array generation trick in
``RuntimeContext._create`` means real Python RSS does *not* reflect the
distribution; the tracker measures what a real per-node implementation
would hold.)
"""

from __future__ import annotations

import threading
import weakref


class MemoryTracker:
    """Current/peak local bytes for one rank."""

    __slots__ = ("current", "peak")

    def __init__(self) -> None:
        self.current = 0
        self.peak = 0

    def allocate(self, nbytes: int) -> None:
        self.current += nbytes
        if self.current > self.peak:
            self.peak = self.current

    def release(self, nbytes: int) -> None:
        self.current -= nbytes

    def reset(self) -> None:
        self.current = 0
        self.peak = 0


class _ThreadLocalTrackers(threading.local):
    def __init__(self) -> None:
        self.tracker: MemoryTracker | None = None


_STATE = _ThreadLocalTrackers()


def current_tracker() -> MemoryTracker | None:
    """The tracker installed for the calling rank's thread, if any."""
    return _STATE.tracker


def install_tracker(tracker: MemoryTracker | None) -> None:
    _STATE.tracker = tracker


def record_allocation(owner: object, nbytes: int) -> None:
    """Charge ``nbytes`` of local storage to the calling rank and arrange
    for the charge to be released when ``owner`` is collected."""
    tracker = _STATE.tracker
    if tracker is None or nbytes <= 0:
        return
    tracker.allocate(nbytes)
    weakref.finalize(owner, tracker.release, nbytes)
