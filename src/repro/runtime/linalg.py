"""Distributed linear algebra (ML_matrix_multiply and friends).

All routines take the :class:`~repro.runtime.context.RuntimeContext` as
first argument and are exposed on it via thin delegating methods.

Algorithms (for the row-contiguous block distribution):

* ``matmul`` (matrix x matrix): allgather B, then each rank multiplies its
  row block of A — the classic replicated-B SUMMA degenerate that the
  original run-time library used.
* ``matvec``: allgather the (block-distributed) vector, local GEMV.
* ``vecmat`` (row-vector x matrix): each rank forms a partial product from
  its row block, combined with an allreduce.
* ``dot`` (row-vector x column-vector): local partial dot + allreduce —
  ML_dot, the paper's peephole target for ``r' * r``.
* ``outer`` (column x row): allgather the row vector, local outer product.
* vector transpose is free (both orientations share the element-block
  layout); matrix transpose is gather-based.
* ``solve`` (``\\`` and ``/``): gathered and solved redundantly on every
  rank — the run-time library has no parallel factorization, and the
  cost model charges the full sequential flops, honestly showing no
  speedup for scripts that lean on it.
"""

from __future__ import annotations

import numpy as np

from ..errors import MatlabRuntimeError
from ..interp import values as V
from .matrix import DMatrix, FusedDMatrix, RValue


def _as_full(rt, value: RValue) -> np.ndarray:
    return rt.gather_full(value) if isinstance(value, DMatrix) \
        else V.as_matrix(value)


# The fused paths below re-run each rank's *exact* local kernel on that
# rank's block (contiguous views of the full array under the block
# distribution, the same buffers BLAS saw under lockstep) and fold the
# partials in rank order — the order ``Comm``'s combine uses — so both
# the numerical results and the charged costs are bit-identical to the
# lockstep backend.  What fusion removes is the P-fold re-execution of
# the surrounding interpreter, not the arithmetic.


def _fold(parts):
    acc = parts[0]
    for p in parts[1:]:
        acc = acc + p
    return acc


def matmul(rt, a: RValue, b: RValue) -> RValue:
    """MATLAB ``a * b`` (including every scalar/vector special case)."""
    rt._check_numeric(a, "*")
    rt._check_numeric(b, "*")
    a_shape, b_shape = rt.shape_of(a), rt.shape_of(b)
    if a_shape == (1, 1) or b_shape == (1, 1):
        return rt.ew(lambda x, y: x * y, 1, a, b,
                     spec=('.*', '@0', '@1'))
    if a_shape[1] != b_shape[0]:
        raise MatlabRuntimeError(
            f"inner matrix dimensions must agree ({a_shape} * {b_shape})")

    # dot product: (1 x k) * (k x 1)
    if a_shape[0] == 1 and b_shape[1] == 1:
        return dot(rt, a, b)
    # outer product: (m x 1) * (1 x n)
    if a_shape[1] == 1 and b_shape[0] == 1:
        return outer(rt, a, b)
    # matrix x column vector
    if b_shape[1] == 1:
        return matvec(rt, a, b)
    # row vector x matrix
    if a_shape[0] == 1:
        return vecmat(rt, a, b)
    return _matmat(rt, a, b)


def dot(rt, a: RValue, b: RValue) -> RValue:
    """(1 x k) * (k x 1): local partial + allreduce (ML_dot)."""
    if (isinstance(a, DMatrix) and isinstance(b, DMatrix)
            and a.scheme != b.scheme):
        b = rt.realign(b, a.scheme)
    if isinstance(a, FusedDMatrix) and isinstance(b, FusedDMatrix):
        cplx = np.iscomplexobj(a.full) or np.iscomplexobj(b.full)
        parts = [complex(np.dot(av, bv)) if cplx else float(np.dot(av, bv))
                 for av, bv in zip(a.blocks(), b.blocks())]
        rt.comm.overhead()
        rt.comm.compute_ranks(flops=[2 * c for c in a.rank_counts()])
        rt.comm.charge_reduce(16 if cplx else 8)
        return _fold(parts)
    if isinstance(a, DMatrix) and isinstance(b, DMatrix):
        av, bv = a.local, b.local
        if av.shape != bv.shape:  # schemes already realigned above
            raise MatlabRuntimeError("dot: inconsistent distributions")
        partial = np.dot(av, bv)
        rt.comm.overhead()
        rt.comm.compute(flops=2 * av.size)
        total = rt.comm.allreduce(
            complex(partial) if np.iscomplexobj(av) or np.iscomplexobj(bv)
            else float(partial))
        return total
    full_a = _as_full(rt, a).reshape(-1)
    full_b = _as_full(rt, b).reshape(-1)
    rt.comm.compute(flops=2 * full_a.size)
    return V.simplify(np.dot(full_a, full_b))


def outer(rt, a: RValue, b: RValue) -> RValue:
    """(m x 1) * (1 x n): allgather the row vector, local outer rows."""
    m = rt.shape_of(a)[0]
    n = rt.shape_of(b)[1]
    b_full = _as_full(rt, b).reshape(-1)
    if isinstance(a, FusedDMatrix):
        # elementwise products: one full outer == stacked per-rank outers
        # (a's element blocks coincide with the result's row blocks)
        out = np.outer(a.full.reshape(-1), b_full)
        counts = [c * n for c in a.map.counts()]
        rt.comm.overhead()
        rt.comm.compute_ranks(flops=counts, mem=counts)
        return FusedDMatrix(m, n, out.dtype, out, rt.size, a.scheme)
    if isinstance(a, DMatrix):
        local = np.outer(a.local, b_full)
        rt.comm.overhead()
        rt.comm.compute(flops=local.size, mem=local.size)
        return DMatrix(m, n, local.dtype, local, rt.size, rt.rank, a.scheme)
    full = np.outer(_as_full(rt, a).reshape(-1), b_full)
    rt.comm.compute(flops=full.size, mem=full.size)
    return rt.distribute_full(full)


def matvec(rt, a: RValue, x: RValue) -> RValue:
    """(m x k) * (k x 1): ML_matrix_vector_multiply."""
    if isinstance(a, FusedDMatrix) and not a.is_vector:
        x_full = _as_full(rt, x).reshape(-1)
        parts = [blk @ x_full for blk in a.blocks()]
        m = a.rows
        if a.scheme == "block":
            y = np.concatenate(parts)
        else:
            y = np.empty(m, dtype=np.result_type(*[p.dtype for p in parts]))
            for r, part in enumerate(parts):
                y[a.rank_global_indices(r)] = part
        rt.comm.overhead()
        rt.comm.compute_ranks(flops=[2 * c for c in a.rank_counts()])
        return FusedDMatrix(m, 1, y.dtype, y.reshape(-1, 1),
                            rt.size, a.scheme)
    if isinstance(a, DMatrix) and not a.is_vector:
        x_full = _as_full(rt, x).reshape(-1)
        y_local = a.local @ x_full
        rt.comm.overhead()
        rt.comm.compute(flops=2 * a.local.size)
        m = a.rows
        if m == 1:
            return V.simplify(np.asarray(y_local).reshape(1, 1)) \
                if y_local.size == 1 else rt.distribute_full(
                    np.asarray(y_local).reshape(1, -1))
        # row blocks/cycles of A coincide with the element partition of y
        # under A's own scheme, so y inherits it
        return DMatrix(m, 1, y_local.dtype, np.asarray(y_local),
                       rt.size, rt.rank, a.scheme)
    full = _as_full(rt, a) @ _as_full(rt, x)
    rt.comm.compute(flops=2 * _as_full(rt, a).size)
    return rt.distribute_full(full) if full.size > 1 else V.simplify(full)


def vecmat(rt, x: RValue, a: RValue) -> RValue:
    """(1 x k) * (k x n): partial products over row blocks + allreduce."""
    if isinstance(a, FusedDMatrix) and not a.is_vector:
        x_full = _as_full(rt, x).reshape(-1)
        parts = []
        for r in range(rt.size):
            blk = a.block(r)
            parts.append(x_full[a.rank_global_indices(r)] @ blk
                         if blk.size else
                         np.zeros(a.cols, dtype=a.full.dtype))
        rt.comm.overhead()
        rt.comm.compute_ranks(flops=[2 * c for c in a.rank_counts()])
        rt.comm.charge_reduce(max(np.asarray(p).nbytes for p in parts))
        result = np.asarray(_fold(parts)).reshape(1, -1)
        return rt.distribute_full(result) if result.size > 1 \
            else V.simplify(result)
    if isinstance(a, DMatrix) and not a.is_vector:
        x_full = _as_full(rt, x).reshape(-1)
        rows = a.global_row_indices()
        partial = x_full[rows] @ a.local if a.local.size else \
            np.zeros(a.cols, dtype=a.local.dtype)
        rt.comm.overhead()
        rt.comm.compute(flops=2 * a.local.size)
        total = rt.comm.allreduce(np.asarray(partial))
        result = np.asarray(total).reshape(1, -1)
        return rt.distribute_full(result) if result.size > 1 \
            else V.simplify(result)
    full = _as_full(rt, x) @ _as_full(rt, a)
    rt.comm.compute(flops=2 * _as_full(rt, a).size)
    return rt.distribute_full(full) if full.size > 1 else V.simplify(full)


def _matmat(rt, a: RValue, b: RValue) -> RValue:
    """(m x k) * (k x n): allgather B, multiply local row block of A."""
    b_full = _as_full(rt, b)
    if isinstance(a, FusedDMatrix) and not a.is_vector:
        parts = [blk @ b_full for blk in a.blocks()]
        n = b_full.shape[1]
        if a.scheme == "block":
            full = np.vstack(parts)
        else:
            full = np.empty((a.rows, n),
                            dtype=np.result_type(*[p.dtype for p in parts]))
            for r, part in enumerate(parts):
                full[a.rank_global_indices(r), :] = part
        rt.comm.overhead()
        rt.comm.compute_ranks(
            flops=[2 * c * n for c in a.rank_counts()])
        return FusedDMatrix(a.rows, n, full.dtype, full, rt.size, a.scheme)
    if isinstance(a, DMatrix) and not a.is_vector:
        local = a.local @ b_full
        rt.comm.overhead()
        rt.comm.compute(flops=2 * a.local.shape[0] * a.local.shape[1]
                        * b_full.shape[1])
        return DMatrix(a.rows, b_full.shape[1], local.dtype, local,
                       rt.size, rt.rank, a.scheme)
    a_full = _as_full(rt, a)
    rt.comm.compute(flops=2 * a_full.shape[0] * a_full.shape[1]
                    * b_full.shape[1] // max(rt.size, 1))
    return rt.distribute_full(a_full @ b_full)


def transpose(rt, a: RValue, conjugate: bool = True) -> RValue:
    if not isinstance(a, DMatrix):
        if isinstance(a, str):
            raise MatlabRuntimeError("cannot transpose a string")
        arr = V.as_matrix(a)
        out = arr.conj().T if conjugate else arr.T
        return V.simplify(np.ascontiguousarray(out))
    if a.is_vector:
        if isinstance(a, FusedDMatrix):
            full = a.full.conj() if (conjugate and np.iscomplexobj(a.full)) \
                else a.full
            rt.comm.overhead()
            return FusedDMatrix(a.cols, a.rows, full.dtype,
                                np.ascontiguousarray(full.T).copy(),
                                rt.size, a.scheme)
        # both orientations share the element-block layout: free relabel
        local = a.local.conj() if (conjugate and np.iscomplexobj(a.local)) \
            else a.local
        rt.comm.overhead()
        return DMatrix(a.cols, a.rows, local.dtype, local.copy(),
                       rt.size, rt.rank, a.scheme)
    full = rt.gather_full(a, copy=False)  # read-only: copied just below
    out = full.conj().T if conjugate else full.T
    rt.comm.compute(mem=out.size)
    return rt.distribute_full(np.ascontiguousarray(out))


def solve(rt, a: RValue, b: RValue, left: bool = True) -> RValue:
    """``a \\ b`` (left) or ``a / b`` (right) via gathered LAPACK solve,
    replicated on every rank."""
    a_full = _as_full(rt, a)
    b_full = _as_full(rt, b)
    if left:
        n = a_full.shape[0]
        nrhs = b_full.shape[1]
        result = _lstsq_or_solve(a_full, b_full)
    else:
        # X = A/B <=> B' X' = A'
        n = b_full.shape[0]
        nrhs = a_full.shape[0]
        xt = _lstsq_or_solve(b_full.conj().T if np.iscomplexobj(b_full)
                             else b_full.T,
                             a_full.conj().T if np.iscomplexobj(a_full)
                             else a_full.T)
        result = xt.conj().T if np.iscomplexobj(xt) else xt.T
    rt.comm.overhead()
    rt.comm.compute(flops=2 * n ** 3 // 3 + 2 * n ** 2 * nrhs)
    return rt.distribute_full(result) if result.size > 1 \
        else V.simplify(result)


def _lstsq_or_solve(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    if A.shape[0] == A.shape[1]:
        try:
            return np.linalg.solve(A, B)
        except np.linalg.LinAlgError:
            pass
    result, *_ = np.linalg.lstsq(A, B, rcond=None)
    return result


def matrix_power(rt, a: RValue, k: RValue) -> RValue:
    power = rt.scalar(k, "^")
    p = float(np.real(power))
    if p != int(p) or p < 0:
        raise MatlabRuntimeError("matrix powers must be nonnegative integers")
    shape = rt.shape_of(a)
    if shape[0] != shape[1]:
        raise MatlabRuntimeError("matrix power: matrix must be square")
    p = int(p)
    if p == 0:
        return rt.eye(float(shape[0]), float(shape[0]))
    result = a
    for _ in range(p - 1):
        result = matmul(rt, result, a)
    return result


def matmul_t(rt, a: RValue, b: RValue, conjugate: bool = True) -> RValue:
    """Fused ``a' * b`` (pass 6's transpose+multiply rewrite).

    With both operands distributed over the *same* row blocks,
    ``A' * B = sum_p A_p' B_p`` — one local product and one allreduce,
    with no transpose materialization and no allgather.  For column
    vectors this degenerates to ML_dot.
    """
    if (isinstance(a, DMatrix) and isinstance(b, DMatrix)
            and a.scheme != b.scheme):
        b = rt.realign(b, a.scheme)
    a_shape = rt.shape_of(a)
    b_shape = rt.shape_of(b)
    if a_shape == (1, 1) or b_shape == (1, 1):
        at = transpose(rt, a, conjugate)
        return rt.ew(lambda x, y: x * y, 1, at, b,
                     spec=('.*', '@0', '@1'))
    if a_shape[0] != b_shape[0]:
        raise MatlabRuntimeError(
            f"inner matrix dimensions must agree "
            f"({a_shape[::-1]} * {b_shape})")
    # column-vector case: a (k x 1), b (k x 1) -> scalar dot
    if a_shape[1] == 1 and b_shape[1] == 1 and isinstance(a, DMatrix) \
            and isinstance(b, DMatrix):
        if isinstance(a, FusedDMatrix):
            cplx = np.iscomplexobj(a.full) or np.iscomplexobj(b.full)
            conj = conjugate and np.iscomplexobj(a.full)
            parts = []
            for av, bv in zip(a.blocks(), b.blocks()):
                partial = np.dot(av.conj() if conj else av, bv)
                parts.append(complex(partial) if cplx else float(partial))
            rt.comm.overhead()
            rt.comm.compute_ranks(flops=[2 * c for c in a.rank_counts()])
            rt.comm.charge_reduce(16 if cplx else 8)
            return _fold(parts)
        av = a.local.conj() if (conjugate and np.iscomplexobj(a.local)) \
            else a.local
        partial = np.dot(av, b.local)
        rt.comm.overhead()
        rt.comm.compute(flops=2 * av.size)
        total = rt.comm.allreduce(
            complex(partial) if np.iscomplexobj(a.local)
            or np.iscomplexobj(b.local) else float(partial))
        return total
    if (isinstance(a, DMatrix) and isinstance(b, DMatrix)
            and not a.is_vector and not b.is_vector):
        # The inner-product algorithm allreduces the full m x n result;
        # when that volume exceeds the gather traffic of the unfused
        # transpose+multiply, fall back (the run-time library picks the
        # cheaper plan, as a real ML_matrix_multiply_at would).
        result_bytes = a.cols * b.cols * 8
        gather_bytes = (a.rows * a.cols + b.rows * b.cols) * 8 // rt.size
        if result_bytes > 2 * gather_bytes and rt.size > 1:
            return matmul(rt, transpose(rt, a, conjugate), b)
        if isinstance(a, FusedDMatrix):
            conj = conjugate and np.iscomplexobj(a.full)
            parts = []
            for ab, bb in zip(a.blocks(), b.blocks()):
                al = ab.conj().T if conj else ab.T
                parts.append(np.ascontiguousarray(al @ bb))
            rt.comm.overhead()
            rt.comm.compute_ranks(
                flops=[2 * rows_r * a.cols * b.cols
                       for rows_r in a.map.counts()])
            rt.comm.charge_reduce(max(p.nbytes for p in parts))
            return rt.distribute_full(np.asarray(_fold(parts)))
        al = a.local.conj().T if conjugate and np.iscomplexobj(a.local) \
            else a.local.T
        partial = al @ b.local
        rt.comm.overhead()
        # 2 * k_local * m * n flops per rank
        rt.comm.compute(flops=2 * a.local.shape[0] * a.cols * b.cols)
        total = rt.comm.allreduce(np.ascontiguousarray(partial))
        return rt.distribute_full(np.asarray(total))
    # matrix' * vector: partial products over row blocks + one small
    # allreduce — no transpose materialization, no matrix gather
    if (isinstance(a, DMatrix) and not a.is_vector
            and isinstance(b, DMatrix) and b.cols == 1):
        if isinstance(a, FusedDMatrix):
            conj = conjugate and np.iscomplexobj(a.full)
            parts = []
            for ab, bb in zip(a.blocks(), b.blocks()):
                al = ab.conj() if conj else ab
                parts.append(np.asarray(al.T @ bb if al.size
                                        else np.zeros(a.cols)))
            rt.comm.overhead()
            rt.comm.compute_ranks(flops=[2 * c for c in a.rank_counts()])
            rt.comm.charge_reduce(max(p.nbytes for p in parts))
            total = np.asarray(_fold(parts))
            if total.size == 1:
                return V.simplify(total.reshape(1, 1))
            return rt.distribute_full(total.reshape(-1, 1))
        bl = b.local
        al = a.local.conj() if conjugate and np.iscomplexobj(a.local) \
            else a.local
        partial = al.T @ bl if al.size else np.zeros(a.cols)
        rt.comm.overhead()
        rt.comm.compute(flops=2 * a.local.size)
        total = np.asarray(rt.comm.allreduce(np.asarray(partial)))
        if total.size == 1:
            return V.simplify(total.reshape(1, 1))
        return rt.distribute_full(total.reshape(-1, 1))
    # mixed/vector fallbacks: materialize the transpose
    return matmul(rt, transpose(rt, a, conjugate), b)
