"""Distributed implementations of the MATLAB builtins.

``call_builtin(rt, name, args, nargout)`` dispatches every name in
:mod:`repro.analysis.builtin_sigs` to its parallel implementation; a test
keeps the three tables (signatures / interpreter / run-time) in sync.
Elementwise builtins reuse the interpreter's numpy kernels, applied to
local blocks through :meth:`RuntimeContext.ew` so they are charged as one
fused owner-computes loop.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import MatlabRuntimeError
from ..interp import values as V
from ..interp.builtins import _EW_FUNCS
from .matrix import DMatrix, RValue
from . import linalg, reductions, structural

_CONSTANTS = {
    "pi": math.pi,
    "eps": float(np.finfo(float).eps),
    "inf": math.inf, "Inf": math.inf,
    "nan": math.nan, "NaN": math.nan,
    "realmax": float(np.finfo(float).max),
    "realmin": float(np.finfo(float).tiny),
    "i": complex(0, 1), "j": complex(0, 1),
}

_EW_BINARY = {
    "mod": lambda a, b: np.mod(a, b),
    "rem": lambda a, b: np.fmod(a, b),
    "atan2": np.arctan2,
    "hypot": np.hypot,
    "power": lambda a, b: a ** b,
}


def call_builtin(rt, name: str, args: list[RValue], nargout: int = 1):
    """Invoke builtin ``name`` on the distributed runtime."""
    if name in _CONSTANTS:
        return _CONSTANTS[name]
    if name in _EW_FUNCS:
        return rt.ew(_EW_FUNCS[name], 1, args[0], spec=(f"fn:{name}", "@0"))
    if name in _EW_BINARY:
        return rt.ew(_EW_BINARY[name], 1, args[0], args[1],
                     spec=(f"fn:{name}", "@0", "@1"))

    if name == "zeros":
        return rt.zeros(*args)
    if name == "ones":
        return rt.ones(*args)
    if name == "eye":
        return rt.eye(*args)
    if name in ("rand", "randn"):
        if args and isinstance(args[0], str):
            if args[0] != "seed" or len(args) != 2:
                raise MatlabRuntimeError(f"{name}: unsupported string argument")
            rt.reseed(rt.int_scalar(args[1], "seed"))
            return None
        return rt.rand(*args) if name == "rand" else rt.randn(*args)
    if name == "linspace":
        return rt.linspace(*args)

    if name in ("sum", "prod"):
        dim = rt.int_scalar(args[1], "dim") if len(args) == 2 else None
        return reductions.reduce_op(rt, name, args[0], dim=dim)
    if name == "mean":
        dim = rt.int_scalar(args[1], "dim") if len(args) == 2 else None
        return reductions.mean(rt, args[0], dim=dim)
    if name in ("std", "var"):
        return reductions.std_var(rt, name, args[0])
    if name == "median":
        return reductions.median(rt, args[0])
    if name == "find":
        return reductions.find(rt, args[0])
    if name in ("all", "any"):
        return reductions.all_any(rt, name, args[0])
    if name in ("max", "min"):
        if len(args) == 2:
            fn = np.maximum if name == "max" else np.minimum
            return rt.ew(fn, 1, args[0], args[1],
                         spec=(f"fn:{name}imum", "@0", "@1"))
        if nargout >= 2:
            return reductions.minmax_with_index(rt, name, args[0])
        return reductions.reduce_op(rt, name, args[0])
    if name == "norm":
        return reductions.norm(rt, args[0], args[1] if len(args) > 1 else None)
    if name == "trapz":
        if len(args) == 1:
            return reductions.trapz(rt, None, args[0])
        return reductions.trapz(rt, args[0], args[1])
    if name == "trapz2":
        return reductions.trapz2(rt, *args)
    if name in ("cumsum", "cumprod"):
        return reductions.cumulative(rt, name, args[0])
    if name == "dot":
        a, b = args
        ra, ca = rt.shape_of(a)
        rb, cb = rt.shape_of(b)
        if ra * ca != rb * cb:
            raise MatlabRuntimeError("dot: vectors must be the same length")
        row = a if ra == 1 else linalg.transpose(rt, a, conjugate=True)
        col = b if cb == 1 else linalg.transpose(rt, b, conjugate=False)
        return linalg.dot(rt, row, col)

    if name == "size":
        r, c = rt.shape_of(args[0])
        if len(args) == 2:
            dim = rt.int_scalar(args[1], "size")
            return float(r) if dim == 1 else (float(c) if dim == 2 else 1.0)
        if nargout >= 2:
            return (float(r), float(c))
        return rt.from_literal([[float(r), float(c)]])
    if name == "length":
        r, c = rt.shape_of(args[0])
        return float(max(r, c)) if r * c else 0.0
    if name == "numel":
        r, c = rt.shape_of(args[0])
        return float(r * c)
    if name == "isempty":
        r, c = rt.shape_of(args[0])
        return 1.0 if r * c == 0 else 0.0
    if name == "isreal":
        if isinstance(args[0], str):
            return 1.0
        if isinstance(args[0], DMatrix):
            return 0.0 if np.iscomplexobj(args[0].local) else 1.0
        return 0.0 if isinstance(args[0], complex) or \
            np.iscomplexobj(V.as_matrix(args[0])) else 1.0
    if name == "isscalar":
        r, c = rt.shape_of(args[0])
        return 1.0 if r * c == 1 else 0.0

    if name == "reshape":
        return structural.reshape(rt, args[0], args[1], args[2])
    if name == "repmat":
        return structural.repmat(rt, args[0], args[1], args[2])
    if name == "circshift":
        return structural.circshift(rt, args[0], args[1])
    if name == "fliplr":
        return structural.flip(rt, args[0], axis=1)
    if name == "flipud":
        return structural.flip(rt, args[0], axis=0)
    if name == "tril":
        return structural.triangle(rt, args[0],
                                   args[1] if len(args) > 1 else None,
                                   lower=True)
    if name == "triu":
        return structural.triangle(rt, args[0],
                                   args[1] if len(args) > 1 else None,
                                   lower=False)
    if name == "diag":
        return structural.diag(rt, args[0])
    if name == "transpose":
        return linalg.transpose(rt, args[0], conjugate=False)
    if name == "ctranspose":
        return linalg.transpose(rt, args[0], conjugate=True)
    if name == "sort":
        return structural.sort(rt, args[0])

    if name == "inv":
        shape = rt.shape_of(args[0])
        if shape[0] != shape[1]:
            raise MatlabRuntimeError("inv: matrix must be square")
        return linalg.solve(rt, args[0],
                            rt.eye(float(shape[0]), float(shape[0])),
                            left=True)
    if name == "det":
        full = rt.gather_full(args[0]) if isinstance(args[0], DMatrix) \
            else V.as_matrix(args[0])
        if full.shape[0] != full.shape[1]:
            raise MatlabRuntimeError("det: matrix must be square")
        rt.comm.compute(flops=2 * full.shape[0] ** 3 // 3)
        return V.simplify(np.asarray(np.linalg.det(full)).reshape(1, 1))
    if name == "trace":
        d = structural.diag(rt, args[0])
        return reductions.reduce_op(rt, "sum", d)
    if name == "sprintf":
        from ..interp.builtins import sprintf_cycle

        fmt = args[0]
        if not isinstance(fmt, str):
            raise MatlabRuntimeError(
                "sprintf: first argument must be a format")
        values: list = []
        for a in args[1:]:
            rep = rt.to_interp_value(a)
            if isinstance(rep, str):
                values.append(rep)
            else:
                values.extend(V.as_matrix(rep).reshape(-1, order="F")
                              .tolist())
        return sprintf_cycle(fmt, values)
    if name in ("num2str", "int2str"):
        from ..interp.builtins import TABLE as _ITABLE
        from ..interp.costmodel import NULL_METER

        class _Shim:
            meter = NULL_METER

        rep = [rt.to_interp_value(a) for a in args]
        return _ITABLE[name](_Shim(), rep, nargout)
    if name == "disp":
        rt.disp(args[0])
        return None
    if name == "fprintf":
        rt.fprintf(args[0], *args[1:])
        return None
    if name == "error":
        rt.error(args[0], *args[1:])
        return None
    if name == "load":
        return rt.load(args[0])
    if name == "save":
        rt.save(args[0], *args[1:])
        return None
    if name == "tic":
        rt.tic()
        return None
    if name == "toc":
        return rt.toc()
    if name == "double":
        return args[0]

    raise MatlabRuntimeError(
        f"builtin {name!r} has no distributed implementation")


#: names handled by this dispatcher (kept in sync with the signature
#: registry by a test)
SUPPORTED = (set(_CONSTANTS) | set(_EW_FUNCS) | set(_EW_BINARY) | {
    "zeros", "ones", "eye", "rand", "randn", "linspace",
    "sum", "prod", "mean", "std", "var", "median", "find",
    "all", "any", "max", "min", "norm",
    "trapz", "trapz2", "cumsum", "cumprod", "dot",
    "size", "length", "numel", "isempty", "isreal", "isscalar",
    "reshape", "repmat", "circshift", "fliplr", "flipud",
    "tril", "triu", "diag", "transpose", "ctranspose", "sort",
    "disp", "fprintf", "error", "load", "save", "tic", "toc", "double",
    "inv", "det", "trace", "sprintf", "num2str", "int2str",
})
