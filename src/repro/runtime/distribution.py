"""Data distributions.

The paper's initial implementation distributes *matrices row-contiguously*
and *vectors by blocks*, with the guarantee that matrices of identical
size are distributed identically (so same-shape elementwise operations
need no communication).  Distribution decisions live here, inside the
run-time library, "making it easier to experiment with alternative data
distribution strategies" — the cyclic variant below backs the ablation
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from ..errors import DistributionError


@dataclass(frozen=True)
class BlockMap:
    """A 1-D block partition of ``n`` items over ``nprocs`` ranks.

    The first ``n % nprocs`` ranks receive one extra item, so sizes differ
    by at most one and the partition is contiguous.

    The ``base``/``extra`` split is computed once at construction and all
    per-rank queries are O(1) in ``nprocs`` — per-operation distribution
    math must not grow with the rank count, or simulated ranks stop being
    cheap (each of P ranks would pay O(P) per op, O(P^2) total).
    """

    n: int
    nprocs: int
    base: int = field(init=False, repr=False, compare=False)
    extra: int = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        base, extra = divmod(self.n, self.nprocs)
        object.__setattr__(self, "base", base)
        object.__setattr__(self, "extra", extra)

    def count(self, rank: int) -> int:
        return self.base + (1 if rank < self.extra else 0)

    def min_count(self) -> int:
        """Smallest block size across ranks, O(1)."""
        return self.base

    def start(self, rank: int) -> int:
        return rank * self.base + min(rank, self.extra)

    def stop(self, rank: int) -> int:
        return self.start(rank) + self.count(rank)

    def owner(self, index: int) -> int:
        """Rank owning global item ``index`` (0-based)."""
        if not 0 <= index < self.n:
            raise DistributionError(
                f"index {index} out of range for extent {self.n}")
        base, extra = self.base, self.extra
        boundary = extra * (base + 1)
        if index < boundary:
            return index // (base + 1) if base + 1 else 0
        if base == 0:
            raise DistributionError(
                f"index {index} out of range for extent {self.n}")
        return extra + (index - boundary) // base

    def local_index(self, index: int) -> int:
        return index - self.start(self.owner(index))

    def owners(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`owner`: owning rank per global index.

        Pure integer arithmetic (no Python loop) — this is the hot path of
        the alltoall message packing in :mod:`repro.runtime.structural`.
        """
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.n):
            bad = idx[(idx < 0) | (idx >= self.n)][0]
            raise DistributionError(
                f"index {bad} out of range for extent {self.n}")
        base, extra = self.base, self.extra
        boundary = extra * (base + 1)
        # below the boundary blocks have base+1 items; above, base items
        # (base == 0 cannot occur above the boundary for in-range indices:
        # then boundary == n and the np.where 'above' branch is never taken)
        low = idx // max(base + 1, 1)
        high = extra + (idx - boundary) // max(base, 1)
        return np.where(idx < boundary, low, high)

    def local_indices(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`local_index`: position on the owning rank."""
        idx = np.asarray(indices, dtype=np.int64)
        owners = self.owners(idx)
        starts = owners * self.base + np.minimum(owners, self.extra)
        return idx - starts

    def counts(self) -> list[int]:
        return list(_block_counts(self.n, self.nprocs))

    def starts(self) -> list[int]:
        return list(_block_starts(self.n, self.nprocs))


@dataclass(frozen=True)
class CyclicMap:
    """Round-robin 1-D partition (the ablation alternative).

    Not contiguous: global item ``i`` lives on rank ``i % nprocs`` at local
    position ``i // nprocs``.
    """

    n: int
    nprocs: int

    def count(self, rank: int) -> int:
        return (self.n - rank + self.nprocs - 1) // self.nprocs \
            if rank < self.nprocs else 0

    def min_count(self) -> int:
        """Smallest block size across ranks, O(1)."""
        return self.count(self.nprocs - 1)

    def owner(self, index: int) -> int:
        if not 0 <= index < self.n:
            raise DistributionError(
                f"index {index} out of range for extent {self.n}")
        return index % self.nprocs

    def local_index(self, index: int) -> int:
        return index // self.nprocs

    def owners(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`owner` (round-robin: ``index % nprocs``)."""
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.n):
            bad = idx[(idx < 0) | (idx >= self.n)][0]
            raise DistributionError(
                f"index {bad} out of range for extent {self.n}")
        return idx % self.nprocs

    def local_indices(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`local_index` (``index // nprocs``)."""
        return np.asarray(indices, dtype=np.int64) // self.nprocs

    def global_indices(self, rank: int) -> np.ndarray:
        return np.arange(rank, self.n, self.nprocs)

    def counts(self) -> list[int]:
        return list(_cyclic_counts(self.n, self.nprocs))


# -- memoized geometry -------------------------------------------------- #
# Maps are value objects keyed by (n, nprocs); SPMD programs construct
# the same few geometries thousands of times (every DMatrix builds one),
# so both the instances and their O(nprocs) count/start tables are
# shared process-wide.
#
# The cache size is configurable (REPRO_MAP_CACHE_SIZE or
# ``configure_map_cache``): a multi-thousand-candidate autotuning search
# sweeps many (n, nprocs) geometries and must not thrash a small LRU.

DEFAULT_MAP_CACHE_SIZE = 65536


def _env_cache_size() -> int:
    import os

    raw = os.environ.get("REPRO_MAP_CACHE_SIZE", "")
    try:
        size = int(raw)
        return size if size > 0 else DEFAULT_MAP_CACHE_SIZE
    except ValueError:
        return DEFAULT_MAP_CACHE_SIZE


def _get_map_raw(scheme: str, n: int, nprocs: int):
    return (BlockMap(n, nprocs) if scheme == "block"
            else CyclicMap(n, nprocs))


def _block_counts_raw(n: int, nprocs: int) -> tuple[int, ...]:
    m = get_map("block", n, nprocs)
    return tuple(m.count(r) for r in range(nprocs))


def _block_starts_raw(n: int, nprocs: int) -> tuple[int, ...]:
    m = get_map("block", n, nprocs)
    return tuple(m.start(r) for r in range(nprocs))


def _cyclic_counts_raw(n: int, nprocs: int) -> tuple[int, ...]:
    m = get_map("cyclic", n, nprocs)
    return tuple(m.count(r) for r in range(nprocs))


_CACHES: dict[str, object] = {}


def configure_map_cache(maxsize: int | None = None) -> int:
    """(Re)build the geometry caches with ``maxsize`` entries each
    (default: REPRO_MAP_CACHE_SIZE or 65536).  Returns the size in
    effect.  Existing cached entries are discarded."""
    global _get_map_c, _block_counts_c, _block_starts_c, _cyclic_counts_c
    size = maxsize if maxsize and maxsize > 0 else _env_cache_size()
    _get_map_c = lru_cache(maxsize=size)(_get_map_raw)
    _block_counts_c = lru_cache(maxsize=size)(_block_counts_raw)
    _block_starts_c = lru_cache(maxsize=size)(_block_starts_raw)
    _cyclic_counts_c = lru_cache(maxsize=size)(_cyclic_counts_raw)
    _CACHES.clear()
    _CACHES.update(get_map=_get_map_c, block_counts=_block_counts_c,
                   block_starts=_block_starts_c,
                   cyclic_counts=_cyclic_counts_c)
    return size


def map_cache_stats() -> dict:
    """Aggregate + per-cache hit/miss counters (what the autotuner
    asserts on to prove the search isn't thrashing the geometry LRU)."""
    per = {name: cache.cache_info()._asdict()
           for name, cache in _CACHES.items()}
    return {
        "hits": sum(info["hits"] for info in per.values()),
        "misses": sum(info["misses"] for info in per.values()),
        "currsize": sum(info["currsize"] for info in per.values()),
        "maxsize": next(iter(per.values()))["maxsize"],
        "per_cache": per,
    }


configure_map_cache()


def get_map(scheme: str, n: int, nprocs: int):
    """Shared BlockMap/CyclicMap instance for this geometry."""
    return _get_map_c(scheme, n, nprocs)


def _block_counts(n: int, nprocs: int) -> tuple[int, ...]:
    return _block_counts_c(n, nprocs)


def _block_starts(n: int, nprocs: int) -> tuple[int, ...]:
    return _block_starts_c(n, nprocs)


def _cyclic_counts(n: int, nprocs: int) -> tuple[int, ...]:
    return _cyclic_counts_c(n, nprocs)
