"""Distributed structural operations: reshape, shifts, flips, triangles,
diag, repmat, and a parallel sample sort.

Triangle masking (`tril`/`triu`) is fully local — each rank knows the
global row indices of its block.  ``circshift`` on a vector is a single
ring boundary exchange for stencil-sized shifts (an alltoall of
per-destination pieces for larger ones).  ``sort`` uses a parallel
*sample sort* (an extension the
paper lists as future work for the run-time library): local sort, sample,
broadcast splitters, alltoall exchange, local merge.
"""

from __future__ import annotations

import numpy as np

from ..errors import MatlabRuntimeError
from ..interp import values as V
from .matrix import DMatrix, FusedDMatrix, RValue

# Fused-backend paths: same per-block kernels and the same charges as
# lockstep (see linalg.py); communication becomes in-process permutation.


def reshape(rt, value: RValue, rows: RValue, cols: RValue) -> RValue:
    r = rt.int_scalar(rows, "reshape")
    c = rt.int_scalar(cols, "reshape")
    shape = rt.shape_of(value)
    if r * c != shape[0] * shape[1]:
        raise MatlabRuntimeError("reshape: element counts must match")
    full = rt.gather_full(value) if isinstance(value, DMatrix) \
        else V.as_matrix(value)
    rt.comm.compute(mem=full.size)
    out = full.reshape((r, c), order="F")
    return rt.distribute_full(out) if out.size > 1 else V.simplify(out)


def repmat(rt, value: RValue, m: RValue, n: RValue) -> RValue:
    mv = rt.int_scalar(m, "repmat")
    nv = rt.int_scalar(n, "repmat")
    full = rt.gather_full(value) if isinstance(value, DMatrix) \
        else V.as_matrix(value)
    out = np.tile(full, (mv, nv))
    rt.comm.compute(mem=out.size // max(rt.size, 1))
    return rt.distribute_full(out) if out.size > 1 else V.simplify(out)


def _shift_amounts(rt, shift: RValue) -> tuple[int, int | None]:
    """MATLAB's shift argument: a scalar (shift along the first
    non-singleton dimension) or a two-element vector ``[rows cols]``."""
    if isinstance(shift, DMatrix):
        shift = rt.gather_full(shift)
    arr = V.as_matrix(shift)
    if arr.size == 1:
        return rt.int_scalar(shift, "circshift"), None
    if arr.size == 2:
        vals = [v.real if isinstance(v, complex) else v for v in arr.flat]
        if any(float(v) != int(v) for v in vals):
            raise MatlabRuntimeError("circshift: expected an integer")
        return int(vals[0]), int(vals[1])
    raise MatlabRuntimeError(
        "circshift: shift must be a scalar or a two-element vector")


def circshift(rt, value: RValue, shift: RValue) -> RValue:
    kr, kc = _shift_amounts(rt, shift)
    if not isinstance(value, DMatrix):
        arr = V.as_matrix(value)
        rt.comm.compute(mem=arr.size)
        if kc is not None:
            return V.simplify(np.roll(arr, (kr, kc), axis=(0, 1)))
        axis = 1 if arr.shape[0] == 1 else 0
        return V.simplify(np.roll(arr, kr, axis=axis))
    if kc is not None:
        return _circshift2(rt, value, kr, kc)
    if value.is_vector and value.scheme == "block":
        return _circshift_vector(rt, value, kr)
    full = rt.gather_full(value, copy=False)  # np.roll allocates fresh
    axis = 1 if value.rows == 1 else 0
    rt.comm.compute(mem=full.size)
    return rt.distribute_full(np.roll(full, kr, axis=axis))


def _circshift2(rt, value: DMatrix, kr: int, kc: int) -> RValue:
    """``circshift(A, [kr kc])``: row component then column component.

    A vector has one non-singleton dimension, so the matching component
    routes through the scalar path (ring exchange and all).  For a
    matrix the *column* component never crosses rank boundaries under
    the row-contiguous distribution — every rank rolls its own rows
    locally, no communication — which is what makes two-element
    ``circshift`` the stencil-friendly way to reach horizontal
    neighbours (the scalar form would need a transpose sandwich)."""
    if value.is_vector:
        k = kc if value.rows == 1 else kr
        return circshift(rt, value, float(k))
    if value.cols == 0 or kc % value.cols == 0:
        kc = 0
    if kc:
        rt.comm.overhead()
        if isinstance(value, FusedDMatrix):
            rt.comm.compute_ranks(mem=value.rank_counts())
            value = value.like_full(np.roll(value.full, kc, axis=1))
        else:
            rt.comm.compute(mem=value.local.size)
            value = value.like(np.roll(value.local, kc, axis=1))
    if value.rows == 0 or kr % value.rows == 0:
        if kc:
            return value
        rt.comm.overhead()  # pure no-op shift still returns a fresh copy
        if isinstance(value, FusedDMatrix):
            return value.like_full(value.full.copy())
        return value.like(value.local.copy())
    return circshift(rt, value, float(kr))


def _circshift_vector(rt, vec: DMatrix, k: int) -> DMatrix:
    """Block-distributed vector shift.

    Small shifts (|k| below the smallest block) are a single ring
    boundary exchange — the stencil-friendly fast path.  Larger shifts
    fall back to an alltoall of per-destination pieces."""
    n = vec.numel
    if n == 0:
        return vec
    k = k % n
    if k == 0:
        rt.comm.overhead()
        if isinstance(vec, FusedDMatrix):
            return vec.like_full(vec.full.copy())
        return vec.like(vec.local.copy())
    min_count = vec.map.min_count()
    if 0 < k <= min_count and rt.size > 1:
        return _circshift_ring(rt, vec, k)
    if 0 < (n - k) <= min_count and rt.size > 1:
        # a large positive shift is a small negative one
        return _circshift_ring(rt, vec, k - n)
    if isinstance(vec, FusedDMatrix):
        return _circshift_alltoall_fused(rt, vec, k)
    # Pack one (indices, values) array pair per destination rank — no
    # per-element Python: owners() is pure arithmetic, a stable argsort
    # groups elements by destination, and each piece is a contiguous
    # slice.  sizeof() is O(1) on these payloads.
    gidx = vec.global_row_indices()
    dest_global = (gidx + k) % n
    owners = vec.map.owners(dest_global)
    order = np.argsort(owners, kind="stable")
    sorted_dest = dest_global[order]
    sorted_vals = vec.local[order]
    counts = np.bincount(owners, minlength=rt.size)
    offsets = np.concatenate(([0], np.cumsum(counts)))
    outgoing = [(sorted_dest[offsets[r]:offsets[r + 1]],
                 sorted_vals[offsets[r]:offsets[r + 1]])
                for r in range(rt.size)]
    rt.comm.overhead()
    rt.comm.compute(mem=vec.local_count())
    incoming = rt.comm.alltoall(outgoing)
    new_local = np.empty_like(vec.local)
    for piece_dest, piece_vals in incoming:
        new_local[vec.map.local_indices(piece_dest)] = piece_vals
    return vec.like(new_local)


def _circshift_alltoall_fused(rt, vec: FusedDMatrix, k: int) -> DMatrix:
    """Fused large-shift path: the data movement is one ``np.roll``; the
    alltoall is charged with the lockstep payload size (each source's
    piece-to-rank-0, the row comm.alltoall prices)."""
    n = vec.numel
    per = 0
    for r in range(rt.size):
        gidx = vec.rank_global_indices(r)
        owners = vec.map.owners((gidx + k) % n)
        c0 = int(np.count_nonzero(owners == 0))
        # (dest-indices int64, values) tuple, as the lockstep path packs
        per = max(per, c0 * 8 + c0 * vec.full.itemsize + 8)
    rt.comm.overhead()
    rt.comm.compute_ranks(mem=vec.rank_counts())
    rt.comm.charge_alltoall(per)
    flat = np.roll(vec.full.reshape(-1, order="F"), k)
    return vec.like_full(flat.reshape((vec.rows, vec.cols), order="F"))


def _circshift_ring(rt, vec: DMatrix, k: int) -> DMatrix:
    """Shift by |k| <= min block: one sendrecv with the ring neighbour.

    Shifting right by k moves each rank's last k elements to the next
    rank's front (and symmetrically for k < 0) — two messages per step
    of a stencil instead of an alltoall.
    """
    if isinstance(vec, FusedDMatrix):
        # P simultaneous boundary sendrecvs, |k| elements each; movement
        # itself is one np.roll of the full vector
        nbytes = abs(k) * vec.full.itemsize
        rt.comm.ring_exchange(nbytes, forward=k > 0)
        rt.comm.overhead()
        rt.comm.compute_ranks(mem=vec.rank_counts())
        flat = np.roll(vec.full.reshape(-1, order="F"), k)
        return vec.like_full(
            np.asarray(flat.reshape((vec.rows, vec.cols), order="F"),
                       dtype=vec.dtype))
    local = vec.local
    p = rt.size
    if k > 0:
        dest = (rt.rank + 1) % p
        source = (rt.rank - 1) % p
        boundary = np.ascontiguousarray(local[-k:])
        received = rt.comm.sendrecv(boundary, dest=dest, source=source)
        new_local = np.concatenate([received, local[:-k]]) \
            if local.size else local.copy()
    else:
        kk = -k
        dest = (rt.rank - 1) % p
        source = (rt.rank + 1) % p
        boundary = np.ascontiguousarray(local[:kk])
        received = rt.comm.sendrecv(boundary, dest=dest, source=source)
        new_local = np.concatenate([local[kk:], received]) \
            if local.size else local.copy()
    rt.comm.overhead()
    rt.comm.compute(mem=vec.local_count())
    return vec.like(np.asarray(new_local, dtype=vec.local.dtype))


def flip(rt, value: RValue, axis: int) -> RValue:
    """fliplr (axis=1) / flipud (axis=0)."""
    if not isinstance(value, DMatrix):
        arr = V.as_matrix(value)
        rt.comm.compute(mem=arr.size)
        return V.simplify(np.flip(arr, axis=axis))
    if value.is_vector:
        # a flip is a permutation; reuse the gather-free shift machinery
        # only when trivial, otherwise gather (vectors are cheap to gather)
        full = rt.gather_full(value)
        out = np.flip(full, axis=1 if value.rows == 1 else 0)
        rt.comm.compute(mem=out.size)
        return rt.distribute_full(np.ascontiguousarray(out))
    if axis == 1:
        # column flip is local for row-distributed matrices
        if isinstance(value, FusedDMatrix):
            rt.comm.overhead()
            rt.comm.compute_ranks(mem=value.rank_counts())
            return value.like_full(
                np.ascontiguousarray(np.flip(value.full, axis=1)))
        rt.comm.overhead()
        rt.comm.compute(mem=value.local_count())
        return value.like(np.ascontiguousarray(np.flip(value.local, axis=1)))
    full = rt.gather_full(value)
    rt.comm.compute(mem=full.size)
    return rt.distribute_full(np.ascontiguousarray(np.flip(full, axis=0)))


def triangle(rt, value: RValue, k: RValue, lower: bool) -> RValue:
    kv = 0 if k is None else rt.int_scalar(k, "tril/triu")
    if not isinstance(value, DMatrix):
        arr = V.as_matrix(value)
        rt.comm.compute(elems=arr.size)
        return V.simplify(np.tril(arr, kv) if lower else np.triu(arr, kv))
    if value.is_vector:
        full = rt.gather_full(value)
        out = np.tril(full, kv) if lower else np.triu(full, kv)
        return rt.distribute_full(out)
    # local masking using global row indices — no communication
    if isinstance(value, FusedDMatrix):
        gidx = np.arange(value.rows)
        cols = np.arange(value.cols)
        if lower:
            mask = cols[None, :] <= gidx[:, None] + kv
        else:
            mask = cols[None, :] >= gidx[:, None] + kv
        rt.comm.overhead()
        rt.comm.compute_ranks(elems=value.rank_counts())
        return value.like_full(np.where(mask, value.full, 0.0)
                               .astype(value.full.dtype))
    gidx = value.global_row_indices()
    cols = np.arange(value.cols)
    if lower:
        mask = cols[None, :] <= gidx[:, None] + kv
    else:
        mask = cols[None, :] >= gidx[:, None] + kv
    rt.comm.overhead()
    rt.comm.compute(elems=value.local_count())
    return value.like(np.where(mask, value.local, 0.0)
                      .astype(value.local.dtype))


def diag(rt, value: RValue) -> RValue:
    shape = rt.shape_of(value)
    if shape[0] == 1 or shape[1] == 1:
        # vector -> diagonal matrix: local rows pick their own element
        full_v = (rt.gather_full(value) if isinstance(value, DMatrix)
                  else V.as_matrix(value)).reshape(-1)
        n = full_v.size
        out = np.diag(full_v)
        rt.comm.compute(mem=n)
        return rt.distribute_full(out) if out.size > 1 else V.simplify(out)
    # matrix -> main diagonal column vector: local extraction + assembly
    full = rt.gather_full(value) if isinstance(value, DMatrix) \
        else V.as_matrix(value)
    out = np.diag(full).reshape(-1, 1)
    rt.comm.compute(mem=out.size)
    return rt.distribute_full(out) if out.size > 1 else V.simplify(out)


def sort(rt, value: RValue) -> RValue:
    """Ascending sort; vectors use a parallel sample sort."""
    if not isinstance(value, DMatrix):
        arr = V.as_matrix(value)
        n = arr.size
        rt.comm.compute(elems=n * max(int(np.log2(n)) if n > 1 else 1, 1))
        axis = 1 if arr.shape[0] == 1 else 0
        return V.simplify(np.sort(arr, axis=axis))
    if value.is_vector and value.scheme == "block" and rt.size > 1:
        return _sample_sort(rt, value)
    full = rt.gather_full(value)
    n = full.size
    rt.comm.compute(elems=n * max(int(np.log2(n)) if n > 1 else 1, 1))
    axis = 1 if value.rows == 1 else 0
    return rt.distribute_full(np.sort(full, axis=axis))


def _sample_sort(rt, vec: DMatrix) -> DMatrix:
    """Classic sample sort returning the paper's block distribution."""
    if isinstance(vec, FusedDMatrix):
        return _sample_sort_fused(rt, vec)
    p = rt.size
    local = np.sort(np.real(vec.local).astype(float))
    n_local = local.size
    rt.comm.overhead()
    rt.comm.compute(elems=n_local * max(int(np.log2(n_local))
                                        if n_local > 1 else 1, 1))
    # sample p-1 local splitters (or fewer when the block is small)
    if n_local:
        picks = np.linspace(0, n_local - 1, p + 1)[1:-1]
        samples = local[picks.astype(int)]
    else:
        samples = np.zeros(0)
    all_samples = np.concatenate(rt.comm.allgather(samples))
    all_samples.sort()
    if all_samples.size >= p - 1 and p > 1:
        step = all_samples.size / p
        splitters = all_samples[(np.arange(1, p) * step).astype(int)
                                .clip(0, all_samples.size - 1)]
    else:
        splitters = all_samples[:p - 1]
    # partition local data by splitter buckets and exchange
    bucket_ids = np.searchsorted(splitters, local, side="right") \
        if splitters.size else np.zeros(n_local, dtype=int)
    outgoing = [local[bucket_ids == b] for b in range(p)]
    incoming = rt.comm.alltoall(outgoing)
    merged = np.sort(np.concatenate(incoming)) if incoming else np.zeros(0)
    rt.comm.compute(elems=merged.size * max(int(np.log2(merged.size))
                                            if merged.size > 1 else 1, 1))
    # rebalance to the canonical block distribution
    counts = rt.comm.allgather(int(merged.size))
    offsets = np.cumsum([0] + counts)
    full = np.empty(vec.numel)
    gathered = rt.comm.allgather(merged)
    for r, part in enumerate(gathered):
        full[offsets[r]:offsets[r + 1]] = part
    out = full.reshape((vec.rows, vec.cols), order="F")
    result = rt.distribute_full(out)
    assert isinstance(result, DMatrix)
    return result


def _sample_sort_fused(rt, vec: FusedDMatrix) -> DMatrix:
    """All ranks' sample sort in one pass, charge-for-charge identical to
    the lockstep pipeline above."""
    p = rt.size

    def sort_cost(n):
        return n * max(int(np.log2(n)) if n > 1 else 1, 1)

    locals_ = [np.sort(np.real(blk).astype(float)) for blk in vec.blocks()]
    rt.comm.overhead()
    rt.comm.compute_ranks(elems=[sort_cost(lv.size) for lv in locals_])
    # splitter sampling (replicated arithmetic on every rank)
    sample_lists = []
    for lv in locals_:
        if lv.size:
            picks = np.linspace(0, lv.size - 1, p + 1)[1:-1]
            sample_lists.append(lv[picks.astype(int)])
        else:
            sample_lists.append(np.zeros(0))
    rt.comm.charge_allgather(max(s.nbytes for s in sample_lists))
    all_samples = np.concatenate(sample_lists)
    all_samples.sort()
    if all_samples.size >= p - 1 and p > 1:
        step = all_samples.size / p
        splitters = all_samples[(np.arange(1, p) * step).astype(int)
                                .clip(0, all_samples.size - 1)]
    else:
        splitters = all_samples[:p - 1]
    # bucket exchange: each source's piece-to-rank-0 prices the alltoall
    outgoing = []
    for lv in locals_:
        bucket_ids = np.searchsorted(splitters, lv, side="right") \
            if splitters.size else np.zeros(lv.size, dtype=int)
        outgoing.append([lv[bucket_ids == b] for b in range(p)])
    rt.comm.charge_alltoall(max(row[0].nbytes for row in outgoing))
    merged = [np.sort(np.concatenate([outgoing[src][dst]
                                      for src in range(p)]))
              for dst in range(p)]
    rt.comm.compute_ranks(elems=[sort_cost(m.size) for m in merged])
    # rebalance to the canonical block distribution
    rt.comm.charge_allgather(8)  # the int block counts
    offsets = np.cumsum([0] + [int(m.size) for m in merged])
    full = np.empty(vec.numel)
    rt.comm.charge_allgather(max(m.nbytes for m in merged))
    for r, part in enumerate(merged):
        full[offsets[r]:offsets[r + 1]] = part
    out = full.reshape((vec.rows, vec.cols), order="F")
    result = rt.distribute_full(out)
    assert isinstance(result, DMatrix)
    return result
