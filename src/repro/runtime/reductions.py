"""Distributed reductions: sum/mean/prod/min/max, norms, trapz, scans.

MATLAB reduction semantics: vectors reduce to a scalar; matrices reduce
column-wise to a row vector.  With the row-contiguous distribution a
column-wise reduction is a local partial per rank plus one allreduce of a
``cols``-length vector; vector reductions are a local partial plus a
scalar allreduce.
"""

from __future__ import annotations

import numpy as np

from ..errors import MatlabRuntimeError
from ..interp import values as V
from ..interp.values import np_trapz
from ..mpi import comm as mpi_ops
from .matrix import DMatrix, FusedDMatrix, RValue

# Fused paths mirror the lockstep backend kernel for kernel: the same
# per-block partials (on the same contiguous buffers), folded with the
# same combine op in rank order, and the same per-rank charges — so both
# results and performance-model numbers are bit-identical.


def _fold(parts, op):
    acc = parts[0]
    for p in parts[1:]:
        acc = op(acc, p)
    return acc


def _vector_reduce(rt, mat: DMatrix, local_fn, combine_op, identity):
    if isinstance(mat, FusedDMatrix):
        cplx = np.iscomplexobj(mat.full)
        parts = []
        for blk in mat.blocks():
            part = local_fn(blk) if blk.size else identity
            parts.append(complex(part) if cplx else float(part))
        rt.comm.overhead()
        rt.comm.compute_ranks(elems=mat.rank_counts())
        rt.comm.charge_reduce(16 if cplx else 8)
        return _fold(parts, combine_op)
    part = local_fn(mat.local) if mat.local.size else identity
    rt.comm.overhead()
    rt.comm.compute(elems=mat.local_count())
    if np.iscomplexobj(mat.local):
        part = complex(part)
    else:
        part = float(part)
    return rt.comm.allreduce(part, op=combine_op)


def _column_reduce(rt, mat: DMatrix, local_fn, combine_op, identity):
    """Column-wise partials + allreduce; returns a distributed row vector."""
    if isinstance(mat, FusedDMatrix):
        cplx = np.iscomplexobj(mat.full)
        parts = [np.asarray(local_fn(blk, axis=0)) if blk.size else
                 np.full(mat.cols, identity,
                         dtype=complex if cplx else float)
                 for blk in mat.blocks()]
        rt.comm.overhead()
        rt.comm.compute_ranks(elems=mat.rank_counts())
        rt.comm.charge_reduce(max(p.nbytes for p in parts))
        result = np.asarray(_fold(parts, combine_op)).reshape(1, -1)
        return rt.distribute_full(result) if result.size > 1 \
            else V.simplify(result)
    if mat.local.size:
        part = local_fn(mat.local, axis=0)
    else:
        part = np.full(mat.cols, identity,
                       dtype=complex if np.iscomplexobj(mat.local)
                       else float)
    rt.comm.overhead()
    rt.comm.compute(elems=mat.local_count())
    total = rt.comm.allreduce(np.asarray(part), op=combine_op)
    result = np.asarray(total).reshape(1, -1)
    return rt.distribute_full(result) if result.size > 1 else V.simplify(result)


_REDUCERS = {
    "sum": (np.sum, mpi_ops.SUM, 0.0),
    "prod": (np.prod, mpi_ops.PROD, 1.0),
    "max": (np.max, mpi_ops.MAX, -np.inf),
    "min": (np.min, mpi_ops.MIN, np.inf),
}


def reduce_op(rt, name: str, value: RValue,
              dim: int | None = None) -> RValue:
    """sum/prod/max/min with MATLAB column-wise semantics; sum/prod/mean
    also accept an explicit ``dim`` (1 = columns, 2 = rows)."""
    if dim is not None and dim not in (1, 2):
        raise MatlabRuntimeError("dim must be 1 or 2")
    if not isinstance(value, DMatrix):
        arr = V.as_matrix(value)
        if arr.size == 0:
            return 0.0 if name == "sum" else \
                (1.0 if name == "prod" else 0.0)
        fn = _REDUCERS[name][0]
        rt.comm.compute(elems=arr.size)
        if dim is not None:
            out = np.asarray(fn(arr, axis=dim - 1))
            out = out.reshape(1, -1) if dim == 1 else out.reshape(-1, 1)
            return rt.distribute_full(out) if out.size > 1 \
                else V.simplify(out)
        if arr.shape[0] == 1 or arr.shape[1] == 1:
            return V.simplify(fn(arr.reshape(-1)))
        return rt.distribute_full(np.asarray(
            fn(arr, axis=0)).reshape(1, -1))
    local_fn, combine, identity = _REDUCERS[name]
    if dim == 2 and not value.is_vector:
        return _row_reduce(rt, value, local_fn)
    if dim == 1 and not value.is_vector:
        return _column_reduce(rt, value, local_fn, combine, identity)
    if value.is_vector and dim is not None:
        # explicit dim on a vector: reduce only along that dim
        rows, cols = value.shape
        if (dim == 1 and rows == 1) or (dim == 2 and cols == 1):
            rt.comm.overhead()
            return value  # reducing a singleton dimension is the identity
        return V.simplify(np.asarray(
            _vector_reduce(rt, value, local_fn, combine, identity)))
    if value.is_vector:
        return V.simplify(np.asarray(
            _vector_reduce(rt, value, local_fn, combine, identity)))
    return _column_reduce(rt, value, local_fn, combine, identity)


def _row_reduce(rt, mat: DMatrix, local_fn):
    """Row-wise reduction of a row-distributed matrix: fully local — each
    rank reduces its own rows; the result is a column vector whose block
    layout coincides with the row blocks."""
    if isinstance(mat, FusedDMatrix):
        parts = [np.asarray(local_fn(blk, axis=1)) if blk.size else
                 np.zeros(0, dtype=mat.full.dtype) for blk in mat.blocks()]
        rt.comm.overhead()
        rt.comm.compute_ranks(elems=mat.rank_counts())
        if mat.scheme == "block":
            y = np.concatenate(parts)
        else:
            y = np.empty(mat.rows,
                         dtype=np.result_type(*[p.dtype for p in parts]))
            for r, part in enumerate(parts):
                y[mat.rank_global_indices(r)] = part
        if mat.rows == 1:
            return V.simplify(y.reshape(1, 1))
        return FusedDMatrix(mat.rows, 1, y.dtype, y.reshape(-1, 1),
                            rt.size, mat.scheme)
    if mat.local.size:
        part = np.asarray(local_fn(mat.local, axis=1))
    else:
        part = np.zeros(0, dtype=mat.local.dtype)
    rt.comm.overhead()
    rt.comm.compute(elems=mat.local_count())
    if mat.rows == 1:
        return V.simplify(part.reshape(1, 1))
    return DMatrix(mat.rows, 1, part.dtype, part, rt.size, rt.rank,
                   mat.scheme)


def mean(rt, value: RValue, dim: int | None = None) -> RValue:
    shape = rt.shape_of(value)
    total = reduce_op(rt, "sum", value, dim=dim)
    if dim is None and (shape[0] == 1 or shape[1] == 1):
        n = shape[0] * shape[1]
        return rt.ew(lambda s: s / n, 1, total) if isinstance(total, DMatrix) \
            else V.simplify(np.asarray(total) / n)
    denom = shape[0] if dim in (None, 1) else shape[1]
    if isinstance(total, DMatrix):
        return rt.ew(lambda s: s / denom, 1, total)
    return V.simplify(np.asarray(V.as_matrix(total)) / denom)


def std_var(rt, name: str, value: RValue) -> RValue:
    """Sample standard deviation / variance (normalized by n-1), with
    MATLAB's vector/column-wise semantics, via distributed moments."""
    shape = rt.shape_of(value)
    is_vec = shape[0] == 1 or shape[1] == 1
    n = shape[0] * shape[1] if is_vec else shape[0]
    if n < 2:
        return 0.0 if is_vec else rt.ew(lambda x: x * 0.0, 1,
                                        reduce_op(rt, "sum", value))
    mu = mean(rt, value)
    if is_vec:
        dev = rt.ew(lambda x, m: (x - m) * np.conj(x - m), 2, value, mu) \
            if isinstance(value, DMatrix) else \
            V.simplify(np.abs(V.as_matrix(value) - mu) ** 2)
        ss = reduce_op(rt, "sum", dev)
        variance = float(np.real(ss)) / (n - 1)
    else:
        # column-wise: subtract the (replicated row-vector) column means
        mu_full = rt.gather_full(mu) if isinstance(mu, DMatrix) \
            else V.as_matrix(mu)
        if isinstance(value, DMatrix):
            dev = rt.ew(lambda x: (x - mu_full) * np.conj(x - mu_full), 2,
                        value)
        else:
            dev = V.simplify(np.abs(V.as_matrix(value) - mu_full) ** 2)
        ss = reduce_op(rt, "sum", dev)
        scaled = rt.ew(lambda x: np.real(x) / (n - 1), 1, ss) \
            if isinstance(ss, DMatrix) else \
            V.simplify(np.real(V.as_matrix(ss)) / (n - 1))
        if name == "var":
            return scaled
        return rt.ew(np.sqrt, 1, scaled) if isinstance(scaled, DMatrix) \
            else V.simplify(np.sqrt(V.as_matrix(scaled)))
    return variance if name == "var" else float(np.sqrt(variance))


def median(rt, value: RValue) -> RValue:
    """Median (vector -> scalar, matrix -> column medians); uses the
    distributed sample sort for vectors."""
    shape = rt.shape_of(value)
    is_vec = shape[0] == 1 or shape[1] == 1
    if isinstance(value, DMatrix) and is_vec:
        from . import structural

        ordered = structural.sort(rt, value)
        n = shape[0] * shape[1]
        if n % 2:
            return rt.element(ordered, (n - 1) // 2)
        lo = rt.element(ordered, n // 2 - 1)
        hi = rt.element(ordered, n // 2)
        return (lo + hi) / 2.0
    full = rt.gather_full(value) if isinstance(value, DMatrix) \
        else V.as_matrix(value)
    rt.comm.compute(elems=full.size * max(int(np.log2(full.size))
                                          if full.size > 1 else 1, 1))
    if is_vec:
        return float(np.median(np.real(full)))
    out = np.median(np.real(full), axis=0).reshape(1, -1)
    return rt.distribute_full(out) if out.size > 1 else V.simplify(out)


def find(rt, value: RValue) -> RValue:
    """1-based linear indices of nonzeros, column-major order.

    Dynamic-size output: each rank finds its local nonzeros; an
    allgather assembles the global index vector (shape known only now —
    exactly the run-time shape propagation the paper describes).
    """
    shape = rt.shape_of(value)
    if not isinstance(value, DMatrix):
        arr = V.as_matrix(value)
        rt.comm.compute(elems=arr.size)
        flat = arr.reshape(-1, order="F")
        idx = np.flatnonzero(flat != 0).astype(float) + 1.0
        if idx.size == 0:
            return np.zeros((0, 0))
        out = idx.reshape(1, -1) if (arr.shape[0] == 1 and arr.shape[1] > 1) \
            else idx.reshape(-1, 1)
        return rt.distribute_full(out) if out.size > 1 else V.simplify(out)
    if isinstance(value, FusedDMatrix):
        pieces = []
        for r in range(rt.size):
            blk = value.block(r)
            gidx = value.rank_global_indices(r)
            if value.is_vector:
                hits = gidx[np.flatnonzero(blk != 0)] + 1.0
            else:
                li, lj = np.nonzero(blk)
                hits = (lj * value.rows + gidx[li]) + 1.0
            pieces.append(np.asarray(hits, dtype=float))
        rt.comm.overhead()
        rt.comm.compute_ranks(elems=value.rank_counts())
        rt.comm.charge_allgather(max(p.nbytes for p in pieces))
        all_hits = np.sort(np.concatenate(pieces)) if pieces else np.zeros(0)
    else:
        if value.is_vector:
            gidx = value.global_row_indices()
            local_hits = gidx[np.flatnonzero(value.local != 0)] + 1.0
        else:
            # row-distributed: local (row, col) hits -> global linear indices
            rows_g = value.global_row_indices()
            li, lj = np.nonzero(value.local)
            local_hits = (lj * value.rows + rows_g[li]) + 1.0
        rt.comm.overhead()
        rt.comm.compute(elems=value.local_count())
        pieces = rt.comm.allgather(np.asarray(local_hits, dtype=float))
        all_hits = np.sort(np.concatenate(pieces)) if pieces else np.zeros(0)
    if all_hits.size == 0:
        return np.zeros((0, 0))
    out = all_hits.reshape(1, -1) \
        if (value.rows == 1 and value.cols > 1) else all_hits.reshape(-1, 1)
    return rt.distribute_full(out) if out.size > 1 else V.simplify(out)


def all_any(rt, name: str, value: RValue) -> RValue:
    mapped = rt.ew(lambda x: (x != 0).astype(float), 1, value) \
        if isinstance(value, DMatrix) else \
        V.simplify((V.as_matrix(value) != 0).astype(float))
    if name == "all":
        reduced = reduce_op(rt, "min", mapped)
    else:
        reduced = reduce_op(rt, "max", mapped)
    return reduced


def minmax_with_index(rt, name: str, value: RValue) -> tuple:
    """[m, k] = max(v): value and 1-based index of the extremum."""
    pick_max = name == "max"
    if not isinstance(value, DMatrix):
        arr = V.as_matrix(value)
        flat = arr.reshape(-1, order="F")
        idx = int(np.argmax(flat) if pick_max else np.argmin(flat))
        return V.simplify(flat[idx]), float(idx + 1)
    if not value.is_vector:
        raise MatlabRuntimeError(
            f"[m, k] = {name}(..) is supported for vectors only")
    def pick(a, b):
        # MATLAB returns the *first* occurrence: ties prefer the smaller
        # global index (the allreduce combines in rank order, but be
        # explicit so any combining order gives the same answer).
        if a[0] == b[0]:
            return a if a[1] <= b[1] else b
        if pick_max:
            return a if a[0] > b[0] else b
        return a if a[0] < b[0] else b

    if isinstance(value, FusedDMatrix):
        candidates = []
        for r in range(rt.size):
            blk = value.block(r)
            gidx = value.rank_global_indices(r)
            if blk.size:
                li = int(np.argmax(blk) if pick_max else np.argmin(blk))
                candidates.append((float(np.real(blk[li])), int(gidx[li])))
            else:
                candidates.append((-np.inf if pick_max else np.inf, -1))
        rt.comm.overhead()
        rt.comm.compute_ranks(elems=value.rank_counts())
        rt.comm.charge_reduce(24)  # sizeof((float, int)) on every rank
        best = _fold(candidates, pick)
        return best[0], float(best[1] + 1)
    local = value.local
    globals_ = value.global_row_indices()
    if local.size:
        li = int(np.argmax(local) if pick_max else np.argmin(local))
        candidate = (float(np.real(local[li])), int(globals_[li]))
    else:
        candidate = (-np.inf if pick_max else np.inf, -1)
    rt.comm.overhead()
    rt.comm.compute(elems=value.local_count())

    best = rt.comm.allreduce(candidate, op=pick)
    return best[0], float(best[1] + 1)


def norm(rt, value: RValue, mode: RValue | None = None) -> float:
    shape = rt.shape_of(value)
    is_vec = shape[0] == 1 or shape[1] == 1
    if isinstance(mode, str):
        if mode != "fro":
            raise MatlabRuntimeError(f"norm: unsupported mode {mode!r}")
        sq = rt.ew(lambda x: (x * np.conj(x)).real, 2, value) \
            if isinstance(value, DMatrix) else \
            V.simplify((V.as_matrix(value) * np.conj(V.as_matrix(value))).real)
        total = reduce_op(rt, "sum", sq)
        if isinstance(total, DMatrix):
            total = reduce_op(rt, "sum", total)
        return float(np.sqrt(float(np.real(total))))
    p = 2.0 if mode is None else float(np.real(rt.scalar(mode, "norm")))
    if is_vec:
        if p == 2.0:
            absq = rt.ew(lambda x: (x * np.conj(x)).real, 2, value) \
                if isinstance(value, DMatrix) else \
                V.simplify((V.as_matrix(value)
                            * np.conj(V.as_matrix(value))).real)
            total = reduce_op(rt, "sum", absq)
            return float(np.sqrt(float(np.real(total))))
        powv = rt.ew(lambda x: np.abs(x) ** p, 3, value) \
            if isinstance(value, DMatrix) else \
            V.simplify(np.abs(V.as_matrix(value)) ** p)
        total = reduce_op(rt, "sum", powv)
        return float(float(np.real(total)) ** (1.0 / p))
    # matrix 2-norm: gathered SVD, replicated
    full = rt.gather_full(value) if isinstance(value, DMatrix) \
        else V.as_matrix(value)
    n = min(full.shape)
    rt.comm.compute(flops=8 * n ** 3)
    return float(np.linalg.norm(full, 2))


def trapz(rt, x: RValue | None, y: RValue) -> RValue:
    """trapz(y) with unit spacing, or trapz(x, y).

    Uniform weights make this a weighted local sum + allreduce; the
    non-uniform form gathers the (small) abscissa vector first.
    """
    shape = rt.shape_of(y)
    is_vec = shape[0] == 1 or shape[1] == 1
    if not is_vec:
        # column-wise trapz over the rows of a matrix
        full_y = rt.gather_full(y) if isinstance(y, DMatrix) else V.as_matrix(y)
        xa = None if x is None else (
            rt.gather_full(x) if isinstance(x, DMatrix)
            else V.as_matrix(x)).reshape(-1)
        rt.comm.compute(elems=full_y.size * 2)
        out = np_trapz(full_y, xa, axis=0).reshape(1, -1)
        return rt.distribute_full(out) if out.size > 1 else V.simplify(out)
    n = shape[0] * shape[1]
    if n < 2:
        return 0.0
    if isinstance(y, FusedDMatrix):
        cplx = np.iscomplexobj(y.full)
        x_full = None if x is None else (
            rt.gather_full(x) if isinstance(x, DMatrix)
            else V.as_matrix(x)).reshape(-1)
        parts = []
        for r in range(rt.size):
            blk = y.block(r)
            gidx = y.rank_global_indices(r)
            if x_full is None:
                w = np.where((gidx == 0) | (gidx == n - 1), 0.5, 1.0)
            else:
                left = np.where(gidx > 0, x_full[np.maximum(gidx - 1, 0)],
                                x_full[0])
                right = np.where(gidx < n - 1,
                                 x_full[np.minimum(gidx + 1, n - 1)],
                                 x_full[n - 1])
                w = (right - left) / 2.0
            if cplx:
                part = complex(np.sum(w * blk)) if blk.size else 0.0
            else:
                part = float(np.real(np.sum(w * blk))) if blk.size else 0.0
            parts.append(part)
        rt.comm.overhead()
        rt.comm.compute_ranks(elems=[c * 2 for c in y.rank_counts()])
        rt.comm.charge_reduce(
            max(16 if isinstance(p, complex) else 8 for p in parts))
        return _fold(parts, mpi_ops.SUM)
    if isinstance(y, DMatrix):
        gidx = y.global_row_indices()
        if x is None:
            w = np.where((gidx == 0) | (gidx == n - 1), 0.5, 1.0)
        else:
            x_full = (rt.gather_full(x) if isinstance(x, DMatrix)
                      else V.as_matrix(x)).reshape(-1)
            left = np.where(gidx > 0, x_full[np.maximum(gidx - 1, 0)],
                            x_full[0])
            right = np.where(gidx < n - 1,
                             x_full[np.minimum(gidx + 1, n - 1)],
                             x_full[n - 1])
            w = (right - left) / 2.0
        part = float(np.real(np.sum(w * y.local))) if y.local.size else 0.0
        if np.iscomplexobj(y.local):
            part = complex(np.sum(w * y.local)) if y.local.size else 0.0
        rt.comm.overhead()
        rt.comm.compute(elems=y.local_count() * 2)
        return rt.comm.allreduce(part)
    ya = V.as_matrix(y).reshape(-1)
    xa = None if x is None else V.as_matrix(x).reshape(-1)
    rt.comm.compute(elems=ya.size * 2)
    return float(np_trapz(ya, xa))


def trapz2(rt, z: RValue, dx: RValue = 1.0, dy: RValue = 1.0) -> float:
    """2-D trapezoidal integration with uniform spacings — the
    ocean-engineering script's kernel.  Separable weights keep it a
    weighted local sum + one allreduce."""
    dxv = float(np.real(rt.scalar(dx, "trapz2")))
    dyv = float(np.real(rt.scalar(dy, "trapz2")))
    shape = rt.shape_of(z)
    rows, cols = shape
    if rows < 2 or cols < 2:
        return 0.0
    wc = np.ones(cols)
    wc[0] = wc[-1] = 0.5
    if isinstance(z, FusedDMatrix) and not z.is_vector:
        parts = []
        for r in range(rt.size):
            blk = z.block(r)
            gidx = z.rank_global_indices(r)
            wr = np.where((gidx == 0) | (gidx == rows - 1), 0.5, 1.0)
            parts.append(float(wr @ (blk.real @ wc)) if blk.size else 0.0)
        rt.comm.overhead()
        rt.comm.compute_ranks(elems=[c * 3 for c in z.rank_counts()])
        rt.comm.charge_reduce(8)
        total = _fold(parts, mpi_ops.SUM)
        return float(total * dxv * dyv)
    if isinstance(z, DMatrix) and not z.is_vector:
        gidx = z.global_row_indices()
        wr = np.where((gidx == 0) | (gidx == rows - 1), 0.5, 1.0)
        part = float(wr @ (z.local.real @ wc)) if z.local.size else 0.0
        rt.comm.overhead()
        rt.comm.compute(elems=z.local_count() * 3)
        total = rt.comm.allreduce(part)
        return float(total * dxv * dyv)
    full = rt.gather_full(z) if isinstance(z, DMatrix) else V.as_matrix(z)
    wr = np.ones(rows)
    wr[0] = wr[-1] = 0.5
    rt.comm.compute(elems=full.size * 3)
    return float(wr @ (full.real @ wc) * dxv * dyv)


def cumulative(rt, name: str, value: RValue) -> RValue:
    """cumsum/cumprod via local scan + exclusive scan of block totals."""
    np_fn = np.cumsum if name == "cumsum" else np.cumprod
    op = mpi_ops.SUM if name == "cumsum" else mpi_ops.PROD
    identity = 0.0 if name == "cumsum" else 1.0
    if not isinstance(value, DMatrix):
        arr = V.as_matrix(value)
        rt.comm.compute(elems=arr.size)
        axis = 1 if arr.shape[0] == 1 else 0
        return V.simplify(np_fn(arr, axis=axis))
    if value.is_vector:
        if isinstance(value, FusedDMatrix):
            blocks = list(value.blocks())
            scanned = [np_fn(blk) if blk.size else blk for blk in blocks]
            totals = [float(np.real(s[-1])) if s.size else identity
                      for s in scanned]
            rt.comm.overhead()
            rt.comm.compute_ranks(elems=value.rank_counts())
            rt.comm.charge_scan(8)
            # inclusive prefix per rank, folded in rank order like scan's
            # combine closure
            outs = []
            inclusive = None
            for r in range(rt.size):
                inclusive = totals[r] if r == 0 else op(inclusive, totals[r])
                if name == "cumsum":
                    offset = inclusive - totals[r]
                    out = scanned[r] + offset if scanned[r].size \
                        else scanned[r]
                else:
                    offset = inclusive / totals[r] if totals[r] != 0 \
                        else identity
                    out = scanned[r] * offset if scanned[r].size \
                        else scanned[r]
                outs.append(np.asarray(out, dtype=value.dtype))
            if value.scheme == "block":
                flat = np.concatenate(outs) if outs else \
                    np.zeros(0, dtype=value.dtype)
            else:
                flat = np.empty(value.numel, dtype=value.dtype)
                for r, out in enumerate(outs):
                    flat[value.rank_global_indices(r)] = out
            full = flat.reshape((value.rows, value.cols), order="F")
            return value.like_full(full, dtype=value.dtype)
        local = value.local
        scanned = np_fn(local) if local.size else local
        block_total = float(np.real(scanned[-1])) if local.size else identity
        rt.comm.overhead()
        rt.comm.compute(elems=value.local_count())
        inclusive = rt.comm.scan(block_total, op=op)
        if name == "cumsum":
            offset = inclusive - block_total
            out = scanned + offset if local.size else scanned
        else:
            offset = inclusive / block_total if block_total != 0 else identity
            out = scanned * offset if local.size else scanned
        return value.like(np.asarray(out, dtype=value.local.dtype))
    # matrix: per-column scans stay within row blocks only if P == 1;
    # gather-based general path
    full = rt.gather_full(value)
    rt.comm.compute(elems=full.size)
    return rt.distribute_full(np_fn(full, axis=0))
