"""The run-time library context (the ``ML_*`` functions of the paper).

Compiled programs receive one :class:`RuntimeContext` per rank and drive
everything through it: matrix allocation/distribution, elementwise
owner-computes kernels, communication-requiring operations (delegated to
:mod:`repro.runtime.linalg` / ``reductions`` / ``structural``), and
coordinated I/O ("one processor coordinates all I/O operations").

Values at run time:

* replicated scalars — plain Python ``float``/``complex``
* distributed matrices/vectors — :class:`~repro.runtime.matrix.DMatrix`
* strings — Python ``str`` (replicated)

Every operation charges virtual time through the communicator: local work
via ``comm.compute``, library-call bookkeeping via ``comm.overhead``, and
communication implicitly via the collectives used.
"""

from __future__ import annotations

import sys
from typing import Callable, Optional, Sequence, Union

import numpy as np

from ..errors import FusionDivergence, MatlabRuntimeError
from ..interp import values as V
from ..mpi.comm import Comm
from ..mpi.fused import PerRankScalar
from .matrix import DMatrix, FusedDMatrix, RValue
from .memory import MemoryTracker, current_tracker, install_tracker

COLON = V.COLON


class RuntimeContext:
    """Per-rank handle to the distributed run-time library."""

    def __init__(self, comm: Comm, out: Optional[Callable[[str], None]] = None,
                 seed: int = 0, scheme: str = "block", provider=None,
                 cache_gathers: bool = False, dist_plan=None, native=None,
                 stores=None):
        self.comm = comm
        #: native kernel engine (repro.native.NativeEngine) or None —
        #: when set, ``ew`` calls that carry an op-tree spec execute as
        #: one compiled C loop instead of the numpy lambda.  Host-time
        #: only: every virtual-clock/message charge is identical.
        self.native = native
        #: under the ``fused`` backend one pass carries all ranks; rank 0
        #: stands in wherever a single identity is needed (I/O coordination)
        self.fused = bool(getattr(comm, "is_fused", False))
        self.rank = 0 if self.fused else comm.rank
        self.size = comm.size
        self.scheme = scheme
        #: per-array distribution overrides ({name: scheme}, an autotuner
        #: plan knob); consulted at creation sites via ``dest_hint``,
        #: which the emitted code sets to the destination variable's name
        #: just before each creation call
        self.dist_plan: dict[str, str] = dict(dist_plan) if dist_plan else {}
        self.dest_hint: Optional[str] = None
        self.provider = provider
        #: replicate-on-first-use: memoize gathered full arrays on the
        #: (immutable) DMatrix so repeated gathers of the same value cost
        #: one allgather.  Off by default — the paper's run-time library
        #: re-gathers, and the figure calibration assumes that; the
        #: ablation benchmark measures the difference.
        self.cache_gathers = cache_gathers
        #: URL-schema datastore registry for load/save targets like
        #: ``mem://...`` (None: the process-wide default manager,
        #: resolved lazily — see repro.service.stores)
        self.stores = stores
        self._out = out or (lambda text: None)
        self.rng = np.random.default_rng(seed)
        self._seed = seed
        self.saved: dict[str, object] = {}
        self.globals: dict[str, object] = {}
        self.tic_time = 0.0
        #: diagnostic: defensive local-block copies taken by set_element
        #: (the aliased slow path; the emitted ``reuse=True`` stores write
        #: in place when the descriptor is uniquely owned)
        self.set_element_copies = 0
        # per-rank local-memory high-water mark (paper Section 7 claim)
        self.memory = MemoryTracker()
        install_tracker(self.memory)
        try:
            recovery = getattr(getattr(comm, "world", None), "recovery",
                               None)
            if recovery is not None:
                recovery.store.register_payload(self.rank,
                                                self._checkpoint_payload)
        except BaseException:
            # construction failed *after* the tracker went live; the
            # caller never received a context to close(), so release the
            # thread-local tracker here or it would keep charging every
            # later allocation on this thread (the PR 4 leak, one layer
            # earlier)
            self.close()
            raise

    def _checkpoint_payload(self) -> dict:
        """Per-rank state the world's accounting cannot see, captured
        into each :class:`~repro.mpi.recovery.Checkpoint`.  Restart is
        replay-based (frame locals are unreachable), so this exists for
        the record — on-disk checkpoints stay inspectable."""
        return {"seed": self._seed,
                "rng": self.rng.bit_generator.state,
                "peak_local_bytes": self.memory.peak}

    def close(self) -> None:
        """Uninstall this context's thread-local memory tracker.

        Rank carrier threads die with their tracker, but the nprocs==1
        fast path (and the fused backend) runs on the *caller's* thread —
        without this teardown the tracker would keep charging allocations
        long after the program finished.
        """
        if current_tracker() is self.memory:
            install_tracker(None)

    # ------------------------------------------------------------------ #
    # small helpers
    # ------------------------------------------------------------------ #

    def write(self, text: str) -> None:
        """Coordinated output: only rank 0 actually writes."""
        if self.rank == 0:
            self._out(text)
            self.comm.trace_io(len(text))

    @property
    def peak_local_bytes(self) -> int:
        """High-water mark of this rank's distributed-data storage."""
        return self.memory.peak

    def reseed(self, seed: int) -> None:
        self.rng = np.random.default_rng(seed)

    def _check_numeric(self, value: RValue, what: str) -> None:
        if isinstance(value, str):
            raise MatlabRuntimeError(f"{what}: expected a numeric value")

    @staticmethod
    def is_dist(value: RValue) -> bool:
        return isinstance(value, DMatrix)

    def scalar(self, value: RValue, what: str = "value") -> Union[float, complex]:
        """Coerce to a replicated scalar (1x1 DMatrix is gathered)."""
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, complex):
            return value
        if isinstance(value, PerRankScalar):
            collapsed = value.collapse()
            if isinstance(collapsed, PerRankScalar):
                raise FusionDivergence(
                    f"{what}: rank-varying scalar used as a replicated value")
            return collapsed
        if isinstance(value, DMatrix):
            if value.numel != 1:
                raise MatlabRuntimeError(f"{what}: expected a scalar")
            return self.element(value, 0, 0)
        raise MatlabRuntimeError(f"{what}: expected a scalar")

    def int_scalar(self, value: RValue, what: str = "value") -> int:
        v = self.scalar(value, what)
        real = v.real if isinstance(v, complex) else v
        if float(real) != int(real):
            raise MatlabRuntimeError(f"{what}: expected an integer")
        return int(real)

    def shape_of(self, value: RValue) -> tuple[int, int]:
        if isinstance(value, DMatrix):
            return value.shape
        return V.shape_of(value)

    # ------------------------------------------------------------------ #
    # distribution / gathering
    # ------------------------------------------------------------------ #

    def distribute_full(self, full: np.ndarray, scheme: str | None = None
                        ) -> RValue:
        """Distribute a replicated full array (no communication charged:
        every rank already holds it)."""
        full = V.as_matrix(full)
        if full.size == 1:
            return V.simplify(full)
        scheme = scheme or self.scheme
        if self.fused:
            return FusedDMatrix(full.shape[0], full.shape[1], full.dtype,
                                full, self.size, scheme)
        return DMatrix.from_full(full, self.size, self.rank, scheme)

    def realign(self, value: RValue, scheme: str) -> RValue:
        """Redistribute ``value`` to ``scheme`` (identity if it already
        matches).  Costs one honest allgather — the safety net that makes
        a mixed-scheme plan merely expensive instead of wrong."""
        if not isinstance(value, DMatrix) or value.scheme == scheme:
            return value
        return self.distribute_full(self.gather_full(value), scheme=scheme)

    def gather_full(self, value: RValue, charge: bool = True,
                    copy: bool = True) -> np.ndarray:
        """Assemble the full array on every rank (ML-level allgather).

        With ``cache_gathers`` the result is memoized on the descriptor
        (safe: descriptors are immutable) and later gathers are free.
        ``copy=False`` is an opt-in for callers that only *read* the
        result (transpose, circshift, ... — anything that derives a
        fresh array from it); it skips the defensive copy of an
        already-replicated fused array.  Charges are identical either
        way.
        """
        if not isinstance(value, DMatrix):
            return V.as_matrix(value)
        if self.cache_gathers and value.replica is not None:
            self.comm.overhead()
            return value.replica
        if isinstance(value, FusedDMatrix):
            # the full array is already in hand; charge exactly what the
            # lockstep allgather would (max per-rank block, symmetric)
            self.comm.overhead()
            per = value.cols if value.layout == "rows" else 1
            nbytes = max(value.map.counts()) * per * value.full.itemsize
            self.comm.charge_allgather(nbytes)
            # callers may scribble on the result unless they promised
            # not to
            full = np.array(value.full) if copy else value.full
            self.comm.compute(mem=value.numel)
            if self.cache_gathers:
                value.replica = full
            return full
        self.comm.overhead()
        parts = self.comm.allgather(value.local)
        if not charge:
            # caller accounts for traffic itself
            pass
        full = value.assemble(parts)
        self.comm.compute(mem=value.numel)
        if self.cache_gathers:
            value.replica = full
        return full

    def to_interp_value(self, value: RValue):
        """Replicated plain value (for oracles/tests): gathers if needed."""
        if isinstance(value, DMatrix):
            return V.simplify(self.gather_full(value))
        if isinstance(value, PerRankScalar):
            return value.values[0]  # what rank 0 holds under lockstep
        return value

    # ------------------------------------------------------------------ #
    # creation (ML_init + fill)
    # ------------------------------------------------------------------ #

    def _create(self, rows: int, cols: int,
                fill: Callable[[tuple[int, int]], np.ndarray]) -> RValue:
        """Create a distributed matrix; ``fill`` produces the *full* array
        (deterministically identical on every rank), each rank keeps its
        block, and only the local share is charged."""
        if rows < 0 or cols < 0:
            raise MatlabRuntimeError("matrix dimensions must be nonnegative")
        full = fill((rows, cols))
        if rows * cols <= 1:
            return V.simplify(np.asarray(full).reshape(rows, cols)
                              if rows * cols else np.zeros((rows, cols)))
        scheme = self._creation_scheme()
        if self.fused:
            full = np.asarray(full)
            mat = FusedDMatrix(rows, cols, full.dtype, full, self.size,
                               scheme)
            self.comm.overhead()
            self.comm.compute_ranks(mem=mat.rank_counts())
            return mat
        mat = DMatrix.from_full(np.asarray(full), self.size, self.rank,
                                scheme)
        self.comm.overhead()
        self.comm.compute(mem=mat.local_count())
        return mat

    def _creation_scheme(self) -> str:
        """Distribution scheme for the array being created: the per-array
        plan override for the current destination hint, else the default."""
        if self.dist_plan and self.dest_hint is not None:
            return self.dist_plan.get(self.dest_hint, self.scheme)
        return self.scheme

    def zeros(self, rows: RValue = 1.0, cols: RValue | None = None) -> RValue:
        r = self.int_scalar(rows, "zeros")
        c = r if cols is None else self.int_scalar(cols, "zeros")
        return self._create(r, c, lambda s: np.zeros(s))

    def ones(self, rows: RValue = 1.0, cols: RValue | None = None) -> RValue:
        r = self.int_scalar(rows, "ones")
        c = r if cols is None else self.int_scalar(cols, "ones")
        return self._create(r, c, lambda s: np.ones(s))

    def eye(self, rows: RValue = 1.0, cols: RValue | None = None) -> RValue:
        r = self.int_scalar(rows, "eye")
        c = r if cols is None else self.int_scalar(cols, "eye")
        return self._create(r, c, lambda s: np.eye(*s))

    def rand(self, rows: RValue = 1.0, cols: RValue | None = None) -> RValue:
        r = self.int_scalar(rows, "rand")
        c = r if cols is None else self.int_scalar(cols, "rand")
        # Generated identically on every rank from the shared stream so
        # results match the sequential oracle bit-for-bit.
        return self._create(r, c, lambda s: self.rng.random(s))

    def randn(self, rows: RValue = 1.0, cols: RValue | None = None) -> RValue:
        r = self.int_scalar(rows, "randn")
        c = r if cols is None else self.int_scalar(cols, "randn")
        return self._create(r, c, lambda s: self.rng.standard_normal(s))

    def linspace(self, a: RValue, b: RValue, n: RValue = 100.0) -> RValue:
        av = float(np.real(self.scalar(a, "linspace")))
        bv = float(np.real(self.scalar(b, "linspace")))
        nv = self.int_scalar(n, "linspace")
        return self._create(1, nv,
                            lambda s: np.linspace(av, bv, nv).reshape(1, -1))

    def range_vector(self, start: RValue, step: RValue,
                     stop: RValue) -> RValue:
        sv = float(np.real(self.scalar(start, "range")))
        pv = float(np.real(self.scalar(step, "range")))
        ev = float(np.real(self.scalar(stop, "range")))
        full = V.colon_range(sv, pv, ev)
        if full.size <= 1:
            return V.simplify(full)
        return self._create(1, full.shape[1], lambda s: full)

    def from_literal(self, rows: Sequence[Sequence[RValue]]) -> RValue:
        """Build a matrix literal ``[a, b; c, d]``; distributed elements
        are gathered first (that *is* communication, and is charged)."""
        if not rows:
            return np.zeros((0, 0))
        blocks = []
        for row in rows:
            cells = []
            for cell in row:
                self._check_numeric(cell, "matrix literal")
                cells.append(self.gather_full(cell)
                             if isinstance(cell, DMatrix)
                             else V.as_matrix(cell))
            cells = [c for c in cells if c.size] or [np.zeros((0, 0))]
            heights = {c.shape[0] for c in cells if c.size}
            if len(heights) > 1:
                raise MatlabRuntimeError(
                    "matrix literal: inconsistent row heights")
            blocks.append(np.hstack(cells))
        widths = {b.shape[1] for b in blocks if b.size}
        if len(widths) > 1:
            raise MatlabRuntimeError("matrix literal: inconsistent widths")
        blocks = [b for b in blocks if b.size]
        if not blocks:
            return np.zeros((0, 0))
        full = np.vstack(blocks)
        if full.size <= 1:
            return V.simplify(full)
        scheme = self._creation_scheme()
        if self.fused:
            mat = FusedDMatrix(full.shape[0], full.shape[1], full.dtype,
                               full, self.size, scheme)
            self.comm.compute_ranks(mem=mat.rank_counts())
            return mat
        mat = DMatrix.from_full(full, self.size, self.rank, scheme)
        self.comm.compute(mem=mat.local_count())
        return mat

    # ------------------------------------------------------------------ #
    # element access (ML_broadcast / ML_owner / guarded stores)
    # ------------------------------------------------------------------ #

    def element(self, mat: RValue, i, j=None) -> Union[float, complex]:
        """ML_broadcast: the owner of element (i[, j]) broadcasts it.

        Subscripts are 0-based — the compiler has already decremented
        them, exactly as the paper's emitted C does.
        """
        if not isinstance(mat, DMatrix):
            value = V.index_read(mat, [float(i + 1)] if j is None
                                 else [float(i + 1), float(j + 1)])
            return value  # replicated: no communication
        i = int(i)
        jj = None if j is None else int(j)
        self._bounds_check(mat, i, jj)
        owner = mat.owner_of(i, jj)
        if isinstance(mat, FusedDMatrix):
            # read straight from the full array; the bcast charge is the
            # owner's payload size, same as lockstep
            r_, c_ = (i % mat.rows, i // mat.rows) if jj is None else (i, jj)
            raw = mat.full[r_, c_]
            payload = complex(raw) if np.iscomplexobj(mat.full) \
                else float(raw)
            self.comm.overhead()
            return self.comm.bcast(payload, root=owner)
        if mat.owns(i, jj):
            idx = mat.local_element_index(i, jj)
            raw = mat.local[idx]
            payload = complex(raw) if np.iscomplexobj(mat.local) \
                else float(raw)
        else:
            payload = None
        self.comm.overhead()
        value = self.comm.bcast(payload, root=owner)
        return value

    def _bounds_check(self, mat: DMatrix, i: int, j: int | None) -> None:
        if j is None:
            if not 0 <= i < mat.numel:
                raise MatlabRuntimeError("index exceeds matrix dimensions")
        else:
            if not (0 <= i < mat.rows and 0 <= j < mat.cols):
                raise MatlabRuntimeError("index exceeds matrix dimensions")

    def owner(self, mat: RValue, i, j=None) -> bool:
        """ML_owner: does this rank store element (i[, j])?  0-based."""
        if not isinstance(mat, DMatrix):
            return True  # replicated
        return mat.owns(int(i), None if j is None else int(j))

    def set_element(self, mat: RValue, subs: Sequence, rhs: RValue,
                    reuse: bool = False) -> RValue:
        """Guarded scalar store ``a(i, j) = rhs`` (pass 5's conditional):
        only the owner writes; the updated matrix is returned.

        ``reuse=True`` (emitted only for ``v = rt.set_element(v, ...)``
        rebinds, where the old descriptor dies on return) allows an
        in-place write when the descriptor and its storage are uniquely
        owned — turning element-init loops from O(n²) copying into O(n).
        Aliased descriptors still get the defensive copy (counted in
        ``set_element_copies``).

        Falls back to the general indexed store for non-scalar subscripts
        or stores that grow the matrix.
        """
        if isinstance(mat, FusedDMatrix):
            return self._set_element_fused(mat, subs, rhs, reuse)
        scalar_subs = all(
            sub is not COLON and not isinstance(sub, DMatrix)
            and not isinstance(sub, PerRankScalar)
            and V.numel(sub) == 1 for sub in subs)
        rhs_scalar = (not isinstance(rhs, DMatrix) and not isinstance(rhs, str)
                      and not isinstance(rhs, PerRankScalar)
                      and V.numel(rhs) == 1)
        if (isinstance(mat, DMatrix) and scalar_subs and rhs_scalar
                and self._in_bounds(mat, subs)):
            value = self.scalar(rhs)
            local = mat.local
            if isinstance(value, complex) and not np.iscomplexobj(local):
                return self.index_assign(mat, subs, rhs)
            i = int(float(np.real(self.scalar(subs[0])))) - 1
            j = None if len(subs) == 1 else \
                int(float(np.real(self.scalar(subs[1])))) - 1
            # In-place fast path: safe only when nothing else can observe
            # this descriptor or its buffer (refcounts: caller's variable
            # + our argument binding + getrefcount's own temp = 3).
            if (reuse and mat.replica is None and local.base is None
                    and local.flags.owndata and local.flags.writeable
                    and sys.getrefcount(mat) <= 3
                    and sys.getrefcount(local) <= 3):
                new_local = local
            else:
                self.set_element_copies += 1
                new_local = local.copy()
            if mat.owns(i, j):
                idx = mat.local_element_index(i, j)
                new_local[idx] = value
            self.comm.overhead()
            self.comm.compute(mem=mat.local_count())
            if new_local is local:
                return mat
            return mat.like(new_local, dtype=mat.dtype)
        return self.index_assign(mat, subs, rhs)

    def _set_element_fused(self, mat: FusedDMatrix, subs: Sequence,
                           rhs: RValue, reuse: bool) -> RValue:
        """Fused guarded store: one write into the full array; per-rank
        virtual time charged exactly as P lockstep stores would be."""
        if any(isinstance(sub, PerRankScalar) for sub in subs):
            raise FusionDivergence("rank-varying subscript in a store")
        scalar_subs = all(
            sub is not COLON and not isinstance(sub, DMatrix)
            and V.numel(sub) == 1 for sub in subs)
        rhs_ok = (isinstance(rhs, PerRankScalar)
                  or (not isinstance(rhs, DMatrix) and not isinstance(rhs, str)
                      and V.numel(rhs) == 1))
        if not (scalar_subs and rhs_ok and self._in_bounds(mat, subs)):
            return self.index_assign(mat, subs, rhs)
        i = int(float(np.real(self.scalar(subs[0])))) - 1
        j = None if len(subs) == 1 else \
            int(float(np.real(self.scalar(subs[1])))) - 1
        owner = mat.owner_of(i, j)
        value = rhs.values[owner] if isinstance(rhs, PerRankScalar) \
            else self.scalar(rhs)
        full = mat.full
        if isinstance(value, complex) and not np.iscomplexobj(full):
            return self.index_assign(mat, subs, rhs)
        # mat's threshold is 4, not 3: set_element's own frame holds an
        # extra reference while delegating here
        if (reuse and mat.replica is None and full.base is None
                and full.flags.owndata and full.flags.writeable
                and sys.getrefcount(mat) <= 4
                and sys.getrefcount(full) <= 3):
            new_full = full
        else:
            self.set_element_copies += 1
            new_full = full.copy()
        r_, c_ = (i % mat.rows, i // mat.rows) if j is None else (i, j)
        new_full[r_, c_] = value
        self.comm.overhead()
        self.comm.compute_ranks(mem=mat.rank_counts())
        if new_full is full:
            return mat
        return mat.like_full(new_full, dtype=mat.dtype)

    def _in_bounds(self, mat: DMatrix, subs: Sequence) -> bool:
        try:
            if len(subs) == 1:
                i = self.int_scalar(subs[0]) - 1
                return 0 <= i < mat.numel
            i = self.int_scalar(subs[0]) - 1
            j = self.int_scalar(subs[1]) - 1
            return 0 <= i < mat.rows and 0 <= j < mat.cols
        except MatlabRuntimeError:
            return False

    # ------------------------------------------------------------------ #
    # general indexing (gather-based; scalar fast paths above)
    # ------------------------------------------------------------------ #

    def _replicate_sub(self, sub):
        if sub is COLON:
            return COLON
        if isinstance(sub, DMatrix):
            return V.simplify(self.gather_full(sub))
        return sub

    def index_read(self, mat: RValue, subs: Sequence) -> RValue:
        """``mat(subs...)`` — 1-based subscripts, MATLAB semantics."""
        subs = [self._replicate_sub(s) for s in subs]
        if isinstance(mat, DMatrix):
            # scalar fast path: a(i), a(i, j)
            if all(s is not COLON and V.numel(s) == 1 for s in subs):
                i = int(float(np.real(V.as_matrix(subs[0]).reshape(-1)[0]))) - 1
                j = None if len(subs) == 1 else \
                    int(float(np.real(V.as_matrix(subs[1]).reshape(-1)[0]))) - 1
                return self.element(mat, i, j)
            full = self.gather_full(mat)
        else:
            full = mat
        result = V.index_read(full, list(subs))
        self.comm.overhead()
        return self.distribute_full(V.as_matrix(result)) \
            if V.numel(result) > 1 else result

    def index_assign(self, mat: RValue | None, subs: Sequence,
                     rhs: RValue) -> RValue:
        subs = [self._replicate_sub(s) for s in subs]
        base = None
        if mat is not None:
            base = self.gather_full(mat) if isinstance(mat, DMatrix) \
                else mat
        rhs_rep = self.to_interp_value(rhs) if isinstance(rhs, DMatrix) else rhs
        result = V.index_assign(base, list(subs), rhs_rep)
        self.comm.overhead()
        if V.numel(result) > 1:
            return self.distribute_full(V.as_matrix(result))
        return result

    # ------------------------------------------------------------------ #
    # fused elementwise (the compiler's owner-computes for loops)
    # ------------------------------------------------------------------ #

    def ew(self, fn: Callable[..., np.ndarray], nops: int,
           *operands: RValue, spec=None) -> RValue:
        """Apply a fused elementwise kernel.

        ``fn`` receives one ndarray (or scalar) per operand and computes
        the whole statement's elementwise chain in one pass — this is the
        single generated ``for`` loop of the paper's pass 4, so the cost
        model charges ``nops`` flops per element but only *one* temporary.

        ``spec`` is the statement's op tree serialized as nested tuples
        (leaves: ``"@N"`` operand slots and numeric constants).  When a
        native engine is attached, the chain runs as one JIT-compiled C
        loop over the same buffers — bitwise identical by construction
        and verification, falling back to ``fn`` per call otherwise.
        The cost-model charges below are issued identically either way.
        """
        dists = [op for op in operands if isinstance(op, DMatrix)]
        for op in operands:
            self._check_numeric(op, "elementwise operation")
        per_rank = [op for op in operands if isinstance(op, PerRankScalar)]
        if per_rank:
            if dists:
                raise FusionDivergence(
                    "rank-varying scalar mixed into distributed arithmetic")
            # pure-scalar chain over rank-varying values: apply per rank
            # (charge-free, matching the lockstep scalar path)
            outs = []
            for r in range(self.size):
                locals_ = [
                    op.values[r] if isinstance(op, PerRankScalar)
                    else complex(op) if isinstance(op, complex)
                    else np.asarray(V.as_matrix(op)) for op in operands]
                res = np.asarray(fn(*locals_)).reshape(-1)[0]
                outs.append(complex(res) if np.iscomplexobj(res)
                            else float(res))
            return PerRankScalar(outs).collapse()
        if not dists:
            locals_ = [complex(op) if isinstance(op, complex) else
                       np.asarray(V.as_matrix(op)) for op in operands]
            out = fn(*locals_)
            return V.simplify(np.asarray(out))
        shape = dists[0].shape
        for d in dists[1:]:
            if d.shape != shape:
                raise MatlabRuntimeError(
                    f"matrix dimensions must agree ({shape} vs {d.shape})")
        if any(d.scheme != dists[0].scheme for d in dists[1:]):
            # mixed distributions (a per-array plan choice): realign to
            # the first operand's scheme, paying the gather honestly
            scheme = dists[0].scheme
            operands = tuple(self.realign(op, scheme)
                             if isinstance(op, DMatrix) else op
                             for op in operands)
            dists = [op for op in operands if isinstance(op, DMatrix)]
        if isinstance(dists[0], FusedDMatrix):
            # one full-array pass — bitwise identical to the per-block
            # calls (elementwise ufuncs are position-independent)
            args = [op.full if isinstance(op, DMatrix) else op
                    for op in operands]
            out_full = None
            if spec is not None and self.native is not None:
                out_full = self.native.run(spec, args, fn)
            if out_full is None:
                with np.errstate(divide="ignore", invalid="ignore"):
                    out_full = np.asarray(fn(*args))
            if out_full.dtype.kind not in ("f", "c"):
                out_full = out_full.astype(float)
            template = dists[0]
            counts = template.rank_counts()
            self.comm.overhead()
            self.comm.compute_ranks(elems=[c * nops for c in counts],
                                    mem=counts)
            return template.like_full(out_full)
        args = []
        for op in operands:
            if isinstance(op, DMatrix):
                args.append(op.local)
            else:
                args.append(op)  # replicated scalar broadcast
        out_local = None
        if spec is not None and self.native is not None:
            out_local = self.native.run(spec, args, fn)
        if out_local is None:
            with np.errstate(divide="ignore", invalid="ignore"):
                out_local = fn(*args)
        out_local = np.asarray(out_local)
        if out_local.dtype.kind not in ("f", "c"):
            out_local = out_local.astype(float)
        template = dists[0]
        self.comm.overhead()
        self.comm.compute(elems=template.local_count() * nops,
                          mem=template.local_count())
        return template.like(out_local)

    # ------------------------------------------------------------------ #
    # truthiness / control flow support
    # ------------------------------------------------------------------ #

    def truthy(self, value: RValue) -> bool:
        if isinstance(value, PerRankScalar):
            # the branch outcome would differ across ranks: abort fusion
            raise FusionDivergence("control flow on a rank-varying scalar")
        if isinstance(value, FusedDMatrix):
            from ..mpi.comm import LAND

            ok = bool(np.all(value.full != 0)) if value.full.size else True
            self.comm.overhead()
            self.comm.compute_ranks(elems=value.rank_counts())
            combined = self.comm.allreduce(float(ok), op=LAND)
            return bool(combined) and value.numel > 0
        if isinstance(value, DMatrix):
            local_ok = bool(np.all(value.local != 0)) \
                if value.local.size else True
            self.comm.overhead()
            self.comm.compute(elems=value.local_count())
            from ..mpi.comm import LAND

            combined = self.comm.allreduce(float(local_ok), op=LAND)
            return bool(combined) and value.numel > 0
        return V.truthy(value)

    def loop_values(self, iterable: RValue):
        """Yield loop values for ``for v = iterable`` (columns, MATLAB
        semantics).  Scalars yield once; distributed matrices yield
        replicated scalars for row vectors and distributed columns
        otherwise."""
        if isinstance(iterable, str):
            raise MatlabRuntimeError("for: cannot iterate a string")
        if not isinstance(iterable, DMatrix):
            arr = V.as_matrix(iterable)
            if arr.shape[0] == 1:
                for c in range(arr.shape[1]):
                    yield V.simplify(arr[0, c])
            else:
                for c in range(arr.shape[1]):
                    yield V.simplify(arr[:, c:c + 1])
            return
        if iterable.rows == 1:
            full = self.gather_full(iterable).reshape(-1)
            for value in full:
                yield complex(value) if np.iscomplexobj(full) \
                    else float(value)
        else:
            for c in range(iterable.cols):
                yield self.index_read(iterable, [COLON, float(c + 1)])

    # ------------------------------------------------------------------ #
    # I/O (coordinated by rank 0) — ML_print_matrix and friends
    # ------------------------------------------------------------------ #

    def display(self, name: str, value: RValue) -> None:
        rep = self.to_interp_value(value)
        self.write(V.display(name, rep))

    def disp(self, value: RValue) -> None:
        rep = self.to_interp_value(value)
        self.write(V.format_value(rep) + "\n")

    def fprintf(self, fmt: RValue, *args: RValue) -> None:
        from ..interp.builtins import sprintf_cycle

        if not isinstance(fmt, str):
            raise MatlabRuntimeError("fprintf: first argument must be a format")
        values: list = []
        for a in args:
            rep = self.to_interp_value(a)
            if isinstance(rep, str):
                values.append(rep)
            else:
                values.extend(V.as_matrix(rep).reshape(-1, order="F")
                              .tolist())
        self.write(sprintf_cycle(fmt, values))

    def error(self, fmt: RValue, *args: RValue) -> None:
        from ..interp.builtins import sprintf_cycle

        msg = fmt if isinstance(fmt, str) else V.format_value(
            self.to_interp_value(fmt))
        if args:
            values: list = []
            for a in args:
                rep = self.to_interp_value(a)
                values.extend(V.as_matrix(rep).reshape(-1, order="F").tolist())
            msg = sprintf_cycle(msg, values)
        raise MatlabRuntimeError(msg)

    def _store_manager(self):
        """The URL datastore registry for this run (docs/SERVICE.md)."""
        if self.stores is None:
            from ..service.stores import default_manager

            self.stores = default_manager()
        return self.stores

    def load(self, name: RValue) -> RValue:
        if not isinstance(name, str):
            raise MatlabRuntimeError("load: file name must be a string")
        from ..service.stores import StoreError, is_store_url

        if is_store_url(name):
            try:
                data = self._store_manager().load_matrix(name)
            except StoreError as exc:
                raise MatlabRuntimeError(f"load: {exc}") from exc
        else:
            if self.provider is None:
                raise MatlabRuntimeError("load: no data provider configured")
            data = self.provider.load_data_file(name)
            if data is None:
                raise MatlabRuntimeError(
                    f"load: cannot find data file {name!r}")
        full = V.as_matrix(np.asarray(data, dtype=complex)
                           if np.iscomplexobj(np.asarray(data))
                           else np.asarray(data, dtype=float))
        # rank 0 reads the file and scatters row blocks; a store URL
        # charges exactly what the local-file path does, so the same
        # script traces bit-identically against hosted or sample data
        self.comm.overhead()
        self.comm.advance(self.comm.machine.collective_time(
            "scatter", full.nbytes // max(self.size, 1), self.size))
        return self.distribute_full(full)

    def save(self, name: RValue, *args: RValue) -> None:
        if not isinstance(name, str):
            raise MatlabRuntimeError("save: file name must be a string")
        if self.rank == 0:
            values = [self.to_interp_value(a) for a in args]
            from ..service.stores import StoreError, is_store_url

            if is_store_url(name):
                try:
                    self._store_manager().put_text(
                        name, self._render_saved(values))
                except StoreError as exc:
                    raise MatlabRuntimeError(f"save: {exc}") from exc
            self.saved[name] = values
        else:
            for a in args:
                if isinstance(a, DMatrix):
                    self.to_interp_value(a)  # participate in the gather

    @staticmethod
    def _render_saved(values: list) -> str:
        """Whitespace-text rendering of saved values (numpy.loadtxt
        compatible, so a single saved matrix round-trips through
        ``load``)."""
        import io as _io

        buf = _io.StringIO()
        for rep in values:
            arr = np.asarray(V.as_matrix(rep))
            if np.iscomplexobj(arr):
                raise MatlabRuntimeError(
                    "save: complex values cannot be saved to a store URL")
            np.savetxt(buf, np.atleast_2d(arr), fmt="%.17g")
        return buf.getvalue()

    def tic(self) -> None:
        if self.fused:
            self.tic_time = self.comm.clock_snapshot()  # per-rank vector
        else:
            self.tic_time = self.comm.time

    def toc(self):
        if self.fused:
            now = self.comm.clock_snapshot()
            base = self.tic_time if isinstance(self.tic_time, list) \
                else [self.tic_time] * self.size
            return PerRankScalar(
                [n - b for n, b in zip(now, base)]).collapse()
        return float(self.comm.time - self.tic_time)


# -------------------------------------------------------------------------- #
# delegation to the operation modules (import at the bottom avoids cycles)
# -------------------------------------------------------------------------- #

from . import builtins as _builtins  # noqa: E402
from . import linalg as _linalg  # noqa: E402
from . import reductions as _reductions  # noqa: E402
from . import structural as _structural  # noqa: E402


def _delegate(cls):
    cls.matmul = lambda self, a, b: _linalg.matmul(self, a, b)
    cls.dot = lambda self, a, b: _linalg.dot(self, a, b)
    cls.outer = lambda self, a, b: _linalg.outer(self, a, b)
    cls.matvec = lambda self, a, x: _linalg.matvec(self, a, x)
    cls.vecmat = lambda self, x, a: _linalg.vecmat(self, x, a)
    cls.transpose = lambda self, a, conjugate=True: _linalg.transpose(
        self, a, conjugate)
    cls.solve = lambda self, a, b, left=True: _linalg.solve(self, a, b, left)
    cls.matrix_power = lambda self, a, k: _linalg.matrix_power(self, a, k)
    cls.reduce_op = lambda self, name, v: _reductions.reduce_op(self, name, v)
    cls.mean = lambda self, v: _reductions.mean(self, v)
    cls.norm = lambda self, v, mode=None: _reductions.norm(self, v, mode)
    cls.trapz = lambda self, x, y: _reductions.trapz(self, x, y)
    cls.trapz2 = lambda self, z, dx=1.0, dy=1.0: _reductions.trapz2(
        self, z, dx, dy)
    cls.cumulative = lambda self, name, v: _reductions.cumulative(
        self, name, v)
    cls.sort = lambda self, v: _structural.sort(self, v)
    cls.circshift = lambda self, v, k: _structural.circshift(self, v, k)
    cls.call_builtin = lambda self, name, args, nargout=1: \
        _builtins.call_builtin(self, name, args, nargout)
    return cls


_delegate(RuntimeContext)


# -------------------------------------------------------------------------- #
# codegen support methods (used by emitted Python programs)
# -------------------------------------------------------------------------- #


def _codegen_support(cls):
    import numpy as _np
    from ..interp import values as _V

    def loop_range(self, start, step, stop):
        """Replicated loop values for ``for i = a:s:b`` — no vector is
        materialized, exactly like the compiled C loop."""
        sv = float(_np.real(self.scalar(start, "for")))
        pv = float(_np.real(self.scalar(step, "for")))
        ev = float(_np.real(self.scalar(stop, "for")))
        if pv == 0:
            raise MatlabRuntimeError("for: range step must be nonzero")
        n = int(_np.floor((ev - sv) / pv * (1 + _np.finfo(float).eps * 4)
                          + 1e-10)) + 1
        for k in range(max(n, 0)):
            yield sv + pv * k

    def end_extent(self, value, axis, nargs):
        """Value of ``end`` inside a subscript (local metadata, no comm)."""
        r, c = self.shape_of(value)
        if int(self.scalar(nargs)) <= 1:
            return float(r * c)
        return float(r if int(self.scalar(axis)) == 0 else c)

    def switch_match(self, subject, candidate) -> float:
        sv = self.to_interp_value(subject)
        cv = self.to_interp_value(candidate)
        if isinstance(sv, str) or isinstance(cv, str):
            return 1.0 if (isinstance(sv, str) and isinstance(cv, str)
                           and sv == cv) else 0.0
        return 1.0 if bool(_np.all(_V.as_matrix(sv) == _V.as_matrix(cv))) \
            else 0.0

    def matmul_t(self, a, b, conjugate=True):
        return _linalg.matmul_t(self, a, b, conjugate)

    cls.loop_range = loop_range
    cls.end_extent = end_extent
    cls.switch_match = switch_match
    cls.matmul_t = matmul_t
    return cls


_codegen_support(RuntimeContext)
