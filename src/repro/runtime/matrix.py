"""The distributed MATRIX descriptor.

Mirrors the paper's run-time representation: "Every matrix and vector is
represented on each processor by a C structure named MATRIX which contains
global information about its type, rank, and shape ... [and]
processor-dependent information, such as the total number of matrix
elements stored on a particular processor and the address in that
processor's local memory of its first matrix element."

Here the descriptor is :class:`DMatrix`: global shape + dtype plus this
rank's local block.  Matrices are distributed row-contiguously; vectors
(either orientation) are distributed by linear-element blocks; scalars
never become DMatrix — they are replicated Python numbers, exactly as the
compiler replicates scalar variables.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..errors import DistributionError, FusionDivergence
from .distribution import BlockMap, CyclicMap, get_map
from .memory import record_allocation

Scalar = Union[float, complex]
RValue = Union[float, complex, "DMatrix", str]


class DMatrix:
    """One rank's view of a distributed matrix or vector."""

    __slots__ = ("rows", "cols", "dtype", "layout", "local", "map",
                 "nprocs", "rank", "scheme", "replica", "__weakref__")

    def __init__(self, rows: int, cols: int, dtype, local: np.ndarray,
                 nprocs: int, rank: int, scheme: str = "block"):
        self.rows = int(rows)
        self.cols = int(cols)
        self.dtype = np.dtype(dtype)
        self.nprocs = nprocs
        self.rank = rank
        self.scheme = scheme
        self.layout = "elems" if self.is_vector else "rows"
        extent = self.rows * self.cols if self.layout == "elems" else self.rows
        self.map = get_map(scheme, extent, nprocs)
        self.local = local
        #: memoized full array (the replicate-on-first-use cache; None
        #: until the first gather when the cache is enabled).  Sound
        #: because DMatrix values are immutable — every update builds a
        #: new descriptor.
        self.replica = None
        record_allocation(self, local.nbytes)
        expected = self.local_shape()
        if local.shape != expected:
            raise DistributionError(
                f"local block shape {local.shape} != expected {expected} "
                f"(global {self.rows}x{self.cols}, rank {rank}/{nprocs})")

    # ------------------------------------------------------------------ #
    # geometry
    # ------------------------------------------------------------------ #

    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows, self.cols)

    @property
    def numel(self) -> int:
        return self.rows * self.cols

    @property
    def is_vector(self) -> bool:
        return self.rows == 1 or self.cols == 1

    @property
    def is_row_vector(self) -> bool:
        return self.rows == 1 and self.cols != 1

    def local_count(self) -> int:
        return self.local.size

    def local_shape(self) -> tuple[int, ...]:
        if self.layout == "elems":
            return (self.map.count(self.rank),)
        return (self.map.count(self.rank), self.cols)

    def global_row_indices(self) -> np.ndarray:
        """Global indices (rows, or linear for vectors) of the local block."""
        if isinstance(self.map, CyclicMap):
            return self.map.global_indices(self.rank)
        return np.arange(self.map.start(self.rank), self.map.stop(self.rank))

    # ------------------------------------------------------------------ #
    # ownership (ML_owner)
    # ------------------------------------------------------------------ #

    def owner_of(self, i: int, j: int | None = None) -> int:
        """Owning rank of element (i, j) — 0-based; j None = linear index."""
        if self.layout == "elems":
            linear = i if j is None else j * self.rows + i  # column-major
            return self.map.owner(linear)
        if j is None:
            # linear index into a row-distributed matrix (column-major)
            i, j = i % self.rows, i // self.rows
        return self.map.owner(i)

    def owns(self, i: int, j: int | None = None) -> bool:
        return self.owner_of(i, j) == self.rank

    def local_element_index(self, i: int, j: int | None = None):
        """Local position of global element (i, j) on its owner."""
        if self.layout == "elems":
            linear = i if j is None else j * self.rows + i
            return self.map.local_index(linear)
        if j is None:
            i, j = i % self.rows, i // self.rows
        return (self.map.local_index(i), j)

    # ------------------------------------------------------------------ #
    # conversion
    # ------------------------------------------------------------------ #

    @classmethod
    def from_full(cls, full: np.ndarray, nprocs: int, rank: int,
                  scheme: str = "block") -> "DMatrix":
        """Take this rank's slice of a replicated full array (no comm)."""
        full = np.asarray(full)
        if full.ndim != 2:
            raise DistributionError("DMatrix requires a 2-D array")
        rows, cols = full.shape
        is_vec = rows == 1 or cols == 1
        extent = rows * cols if is_vec else rows
        amap = get_map(scheme, extent, nprocs)
        if is_vec:
            flat = full.reshape(-1, order="F")
            idx = (amap.global_indices(rank) if isinstance(amap, CyclicMap)
                   else np.arange(amap.start(rank), amap.stop(rank)))
            local = np.ascontiguousarray(flat[idx])
        else:
            idx = (amap.global_indices(rank) if isinstance(amap, CyclicMap)
                   else np.arange(amap.start(rank), amap.stop(rank)))
            local = np.ascontiguousarray(full[idx, :])
        return cls(rows, cols, full.dtype, local, nprocs, rank, scheme)

    def assemble(self, parts: list[np.ndarray]) -> np.ndarray:
        """Reconstruct the full array from every rank's local block
        (the caller supplies the allgathered parts)."""
        if self.layout == "elems":
            flat = np.empty(self.numel, dtype=self.dtype)
            if isinstance(self.map, CyclicMap):
                for rank, part in enumerate(parts):
                    flat[self.map.global_indices(rank)] = part
            else:
                flat = np.concatenate(parts) if parts else flat
            return flat.reshape((self.rows, self.cols), order="F")
        if isinstance(self.map, CyclicMap):
            full = np.empty((self.rows, self.cols), dtype=self.dtype)
            for rank, part in enumerate(parts):
                full[self.map.global_indices(rank), :] = part
            return full
        return np.vstack(parts) if parts else \
            np.empty((self.rows, self.cols), dtype=self.dtype)

    def like(self, local: np.ndarray, dtype=None) -> "DMatrix":
        """A new DMatrix with the same global geometry, new local data."""
        return DMatrix(self.rows, self.cols, dtype or local.dtype, local,
                       self.nprocs, self.rank, self.scheme)

    def __repr__(self) -> str:
        return (f"DMatrix({self.rows}x{self.cols} {self.dtype}, "
                f"rank {self.rank}/{self.nprocs}, "
                f"local {self.local.shape})")


class FusedDMatrix(DMatrix):
    """All-ranks descriptor for the ``fused`` SPMD backend.

    Where :class:`DMatrix` stores one rank's local block, this stores the
    *full* array once — every rank's block is an implicit, deterministic
    slice of it (``block(r)``), because the distribution maps are pure
    functions of (extent, nprocs).  Runtime ops with a fused path apply
    their kernel across the whole rank axis in one numpy call and charge
    each rank's virtual clock individually.

    Safety net: the per-rank accessors (``local``, ``local_count``,
    ``owns``, ...) raise :class:`~repro.errors.FusionDivergence`, so any
    op *without* a fused path aborts fusion and the executor transparently
    re-runs the program under ``lockstep`` instead of silently computing
    one rank's answer.
    """

    __slots__ = ("full",)

    def __init__(self, rows: int, cols: int, dtype, full: np.ndarray,
                 nprocs: int, scheme: str = "block"):
        self.rows = int(rows)
        self.cols = int(cols)
        self.dtype = np.dtype(dtype)
        self.nprocs = nprocs
        self.rank = 0
        self.scheme = scheme
        self.layout = "elems" if self.is_vector else "rows"
        extent = self.rows * self.cols if self.layout == "elems" else self.rows
        self.map = get_map(scheme, extent, nprocs)
        full = np.asarray(full)
        if full.shape != (self.rows, self.cols):
            raise DistributionError(
                f"full array shape {full.shape} != ({self.rows}, {self.cols})")
        self.full = full
        self.replica = None
        # the tracker models ONE rank's footprint; rank 0 holds the
        # largest block under both distribution schemes
        per_row = self.cols if self.layout == "rows" else 1
        record_allocation(
            self, self.map.count(0) * per_row * self.dtype.itemsize)

    # -- per-rank accessors: no single rank exists here ----------------- #

    def _diverge(self, what: str):
        raise FusionDivergence(
            f"{what} has no fused path (rank-dependent state)")

    @property
    def local(self) -> np.ndarray:
        self._diverge("per-rank local block access")

    def local_count(self) -> int:
        self._diverge("local_count")

    def local_shape(self) -> tuple[int, ...]:
        self._diverge("local_shape")

    def global_row_indices(self) -> np.ndarray:
        self._diverge("global_row_indices")

    def owns(self, i: int, j: int | None = None) -> bool:
        self._diverge("ownership test")

    def like(self, local: np.ndarray, dtype=None) -> "DMatrix":
        self._diverge("like() from a per-rank local")

    # -- the rank axis, made explicit ----------------------------------- #

    def block(self, r: int) -> np.ndarray:
        """Rank ``r``'s local block (a view of the full array where the
        layout allows, a fancy-index copy for cyclic maps)."""
        if self.layout == "elems":
            flat = self.full.reshape(-1, order="F")
            if isinstance(self.map, CyclicMap):
                return flat[self.map.global_indices(r)]
            return flat[self.map.start(r):self.map.stop(r)]
        if isinstance(self.map, CyclicMap):
            return self.full[self.map.global_indices(r), :]
        return self.full[self.map.start(r):self.map.stop(r), :]

    def blocks(self):
        return (self.block(r) for r in range(self.nprocs))

    def rank_counts(self) -> tuple[int, ...]:
        """Per-rank local element counts (what ``local_count`` would
        return on each rank)."""
        per = self.cols if self.layout == "rows" else 1
        return tuple(c * per for c in self.map.counts())

    def rank_global_indices(self, r: int) -> np.ndarray:
        """Rank ``r``'s global row (or linear, for vectors) indices."""
        if isinstance(self.map, CyclicMap):
            return self.map.global_indices(r)
        return np.arange(self.map.start(r), self.map.stop(r))

    def like_full(self, full: np.ndarray, dtype=None) -> "FusedDMatrix":
        """Same geometry, new full data (the fused analogue of like())."""
        return FusedDMatrix(self.rows, self.cols, dtype or full.dtype, full,
                            self.nprocs, self.scheme)

    def __repr__(self) -> str:
        return (f"FusedDMatrix({self.rows}x{self.cols} {self.dtype}, "
                f"{self.nprocs} fused ranks)")


def is_distributed(value) -> bool:
    return isinstance(value, DMatrix)
