"""Plan autotuning: virtual-clock-guided search over optimization plans.

The paper's compiler commits to one optimization plan — row-block
distribution, a fixed peephole schedule, aggressive LICM, owner-computes
guards.  This package makes the plan a first-class value
(:class:`~repro.tuning.plan.Plan`), enumerates a pruned neighborhood of
the default (:mod:`~repro.tuning.space`), and costs each candidate by
running it on the fused backend with the final virtual clock as the
objective (:mod:`~repro.tuning.search`).

Entry points: :func:`tune_program` (programmatic),
``run_spmd(..., tune=True)`` / ``REPRO_TUNE=<budget>`` /
``repro run --tune --explain-plan`` (wired through the compiler).
"""

from .memo import clear_eval_memo, eval_memo_stats
from .plan import (
    ALLREDUCE_ALGOS,
    DEFAULT_PLAN,
    FUSION_REWRITES,
    GATHER_ALGOS,
    GUARD_PLACEMENTS,
    LICM_POLICIES,
    NATIVE_MODES,
    SCHEMES,
    Plan,
)
from .search import Candidate, TuneResult, tune_program
from .space import alignment_classes, enumerate_plans, plan_axes

__all__ = [
    "ALLREDUCE_ALGOS",
    "Candidate",
    "DEFAULT_PLAN",
    "FUSION_REWRITES",
    "GATHER_ALGOS",
    "GUARD_PLACEMENTS",
    "LICM_POLICIES",
    "NATIVE_MODES",
    "Plan",
    "SCHEMES",
    "TuneResult",
    "alignment_classes",
    "clear_eval_memo",
    "enumerate_plans",
    "eval_memo_stats",
    "plan_axes",
    "tune_program",
]
