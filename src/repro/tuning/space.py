"""Plan-space enumeration and pruning.

The raw space is the cross product of every knob on
:class:`~repro.tuning.plan.Plan` — far too big to sweep blindly and
mostly no-ops for any given program.  The enumerator prunes with two
sources of evidence:

* **compile-time stats** from the default-plan compilation: a program
  with zero transpose fusions has nothing to gain (or lose) from
  reordering the peephole schedule; a program with zero hoists doesn't
  need the LICM axis; a program with no guarded stores doesn't need the
  guard axis.
* **a probe run** (the default plan on the fused backend): collective
  counts tell us whether the gather/allreduce algorithm axes can matter
  at this ``nprocs``.

Distribution candidates respect *alignment classes*: names that interact
in distributed statements are flipped together, because mixing schemes
between interacting operands forces the runtime's realignment gathers
(correct, but never what a sensible plan wants to explore first).

Candidates come out deterministically ordered: the default plan first,
then every single-axis deviation, then pairs, triples, ... of compatible
deviations, truncated at the caller's budget.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional

from ..analysis.lattice import Rank
from ..ir.nodes import (
    CallUser,
    Copy,
    Elementwise,
    EwNode,
    IndexAssign,
    IRProgram,
    RTCall,
    SetElement,
    Var,
    ew_operands,
)
from .plan import DEFAULT_PLAN, Plan

#: per-class distribution flips explored (largest classes first)
MAX_DIST_CLASSES = 3


# -------------------------------------------------------------------------- #
# alignment classes
# -------------------------------------------------------------------------- #


def _distributed_names(ir: IRProgram) -> set[str]:
    """Script variables that may hold distributed data (non-scalar rank)."""
    names = set()
    for name, vtype in ir.var_types.items():
        if vtype.rank is not Rank.SCALAR:
            names.add(name)
    return names


def _stmt_var_groups(stmt) -> Iterable[list[str]]:
    """Name groups that one statement forces into the same class."""
    group: list[str] = []
    if isinstance(stmt, Elementwise):
        if isinstance(stmt.dest, Var):
            group.append(stmt.dest.name)
        for op in ew_operands(stmt.expr):
            if isinstance(op, Var):
                group.append(op.name)
    elif isinstance(stmt, Copy):
        for op in (stmt.dest, stmt.src):
            if isinstance(op, Var):
                group.append(op.name)
    elif isinstance(stmt, RTCall):
        # conservative: a run-time call ties its (matrix) operands and
        # destination together — coarser than strictly necessary, but a
        # class that is too big only shrinks the search space, never
        # produces an unsound plan
        if isinstance(stmt.dest, Var):
            group.append(stmt.dest.name)
        for arg in stmt.args:
            items = arg if isinstance(arg, list) else [arg]
            for item in items:
                subs = item if isinstance(item, list) else [item]
                for sub in subs:
                    if isinstance(sub, Var):
                        group.append(sub.name)
    elif isinstance(stmt, (SetElement, IndexAssign)):
        group.append(stmt.var.name)
        if isinstance(stmt.rhs, Var):
            group.append(stmt.rhs.name)
    elif isinstance(stmt, CallUser):
        for d in stmt.dests:
            if isinstance(d, Var):
                group.append(d.name)
        for a in stmt.args:
            if isinstance(a, Var):
                group.append(a.name)
    if group:
        yield group


def alignment_classes(ir: IRProgram) -> list[tuple[str, ...]]:
    """Partition the distributed script variables into classes that must
    share a distribution scheme (union-find over statement co-occurrence).
    Returned largest-first, names sorted within each class."""
    dist = _distributed_names(ir)
    parent: dict[str, str] = {name: name for name in dist}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for block in ir.walk():
        for stmt in block:
            for group in _stmt_var_groups(stmt):
                members = [n for n in group if n in dist]
                for other in members[1:]:
                    union(members[0], other)
    classes: dict[str, set[str]] = {}
    for name in dist:
        classes.setdefault(find(name), set()).add(name)
    return sorted((tuple(sorted(c)) for c in classes.values()),
                  key=lambda c: (-len(c), c))


# -------------------------------------------------------------------------- #
# axis construction
# -------------------------------------------------------------------------- #


def _has_nested_ew(ir: IRProgram) -> bool:
    for block in ir.walk():
        for stmt in block:
            if (isinstance(stmt, Elementwise)
                    and isinstance(stmt.expr, EwNode)
                    and any(isinstance(a, EwNode) for a in stmt.expr.args)):
                return True
    return False


def _has_element_stores(ir: IRProgram) -> bool:
    for block in ir.walk():
        for stmt in block:
            if isinstance(stmt, (SetElement, IndexAssign)):
                return True
    return False


def plan_axes(program, probe_counts: Optional[dict] = None,
              nprocs: int = 1, machine=None) -> dict[str, list[dict]]:
    """The prunable axes for ``program`` (compiled under the default
    plan): axis name -> list of field-override dicts (deviations from
    :data:`DEFAULT_PLAN`).

    ``probe_counts`` is the default fused run's ``collective_counts``
    (None: assume every collective occurs, i.e. don't prune on them).
    ``machine`` gates the topology axes: the collective-hierarchy knob
    is only offered when the world actually spans nodes on that model.
    """
    ir = program.ir
    counts = probe_counts or {}

    def happened(*ops: str) -> bool:
        if not counts:
            return True
        return any(counts.get(op, 0) > 0 for op in ops)

    axes: dict[str, list[dict]] = {}

    stats = program.peephole_stats
    fusion: list[dict] = []
    if stats.transpose_fused > 0:
        fusion.append({"fusion": ("cse",)})          # drop the fuse rewrite
    if stats.cse_removed > 0:
        fusion.append({"fusion": ("transpose_matmul",)})  # drop CSE
    if stats.transpose_fused > 0 or stats.cse_removed > 0:
        fusion.append({"fusion": ()})                # pass 6 off entirely
    if fusion:
        axes["fusion"] = fusion

    if program.licm_stats.hoisted > 0:
        axes["licm"] = [{"licm": "safe"}, {"licm": "off"}]

    if _has_element_stores(ir):
        axes["guard"] = [{"guard": "replicated"}]

    if _has_nested_ew(ir):
        axes["ew_split"] = [{"ew_split": True}]

    if nprocs > 1:
        dist: list[dict] = [{"scheme": "cyclic"}]
        for cls in alignment_classes(ir)[:MAX_DIST_CLASSES]:
            # flip one class to cyclic, and the complement: default goes
            # cyclic while this class is pinned to block
            dist.append({"dist": tuple((name, "cyclic") for name in cls)})
            dist.append({"scheme": "cyclic",
                         "dist": tuple((name, "block") for name in cls)})
        axes["dist"] = dist

        if happened("allgather", "gather", "scatter"):
            axes["gather_algo"] = [{"gather_algo": "doubling"}]
        if happened("allreduce"):
            axes["allreduce_algo"] = [{"allreduce_algo": "halving"}]
        if (machine is not None and machine.spans_nodes(nprocs)
                and happened("allgather", "gather", "scatter", "allreduce",
                             "bcast", "reduce", "alltoall", "barrier",
                             "scan")):
            axes["hierarchy"] = [{"hierarchy": "flat"}]
        axes["cache_gathers"] = [{"cache_gathers": True}]

    return axes


# -------------------------------------------------------------------------- #
# enumeration
# -------------------------------------------------------------------------- #


def _merge(overrides: Iterable[dict]) -> Optional[dict]:
    """Merge override dicts; None if two touch the same field."""
    merged: dict = {}
    for ov in overrides:
        for key in ov:
            if key in merged:
                return None
        merged.update(ov)
    return merged


def enumerate_plans(program, probe_counts: Optional[dict] = None,
                    nprocs: int = 1, budget: int = 64,
                    machine=None) -> list[Plan]:
    """Up to ``budget`` candidate plans, default first, deterministic.

    Order: the default plan, every single-axis deviation, then pairs,
    triples, ... of deviations from *different* axes (same-field
    conflicts are skipped).  The default plan is always candidate 0, so
    any search that evaluates the whole list can never return a plan
    worse than the default.
    """
    axes = plan_axes(program, probe_counts, nprocs, machine=machine)
    pool: list[tuple[str, dict]] = []
    for axis in sorted(axes):
        for override in axes[axis]:
            pool.append((axis, override))

    plans: list[Plan] = [DEFAULT_PLAN]
    seen = {DEFAULT_PLAN.key()}

    def push(overrides: dict) -> bool:
        if len(plans) >= budget:
            return False
        try:
            plan = Plan(**{**DEFAULT_PLAN.as_dict(), **overrides})
        except (TypeError, ValueError):
            return True
        if plan.key() not in seen:
            seen.add(plan.key())
            plans.append(plan)
        return True

    for depth in range(1, len(pool) + 1):
        if len(plans) >= budget:
            break
        made_one = False
        for combo in itertools.combinations(pool, depth):
            axis_names = [axis for axis, _ in combo]
            if len(set(axis_names)) != len(axis_names):
                continue  # two deviations on the same axis
            merged = _merge(ov for _, ov in combo)
            if merged is None:
                continue
            made_one = True
            if not push(merged):
                return plans
        if not made_one:
            break
    return plans
