"""The plan-search driver.

``tune_program`` compiles each candidate plan (through the compile memo,
so distinct *lowerings* compile once) and costs it by actually running
the workload on the **fused backend** — one execution carries all P
simulated ranks, so even a small problem instance yields the full
virtual-clock objective at a fraction of the host cost.  The final
virtual clock (slowest rank) is the figure of merit; every candidate is
also sanity-checked against the default plan's results, and a candidate
whose numerics drift beyond elementwise-reassociation tolerance is
disqualified rather than trusted.

The default plan is always candidate 0, so the tuned plan can never be
worse than the default — the search degrades to "keep the default" when
the neighborhood has nothing to offer.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from ..compiler import compile_cache_stats, compile_cached
from ..mpi.machine import MEIKO_CS2, MachineModel
from .memo import eval_key, eval_lookup, eval_memo_stats, eval_store
from .plan import DEFAULT_PLAN, Plan
from .space import enumerate_plans


@dataclass
class Candidate:
    """One evaluated plan."""

    plan: Plan
    cost: float                   # final virtual clock (seconds); inf: failed
    valid: bool = True            # numerics matched the default plan
    cached: bool = False          # served from the evaluation memo
    error: Optional[str] = None

    @property
    def summary(self) -> str:
        return self.plan.summary()


@dataclass
class TuneResult:
    """Outcome of one plan search (the ``--explain-plan`` payload)."""

    name: str
    nprocs: int
    machine: MachineModel
    budget: int
    candidates: list[Candidate] = field(default_factory=list)
    host_seconds: float = 0.0
    memo: dict = field(default_factory=dict)
    compile_memo: dict = field(default_factory=dict)
    _best_program: Any = field(default=None, repr=False)

    @property
    def default(self) -> Candidate:
        return self.candidates[0]

    @property
    def best(self) -> Candidate:
        valid = [c for c in self.candidates if c.valid
                 and np.isfinite(c.cost)]
        return min(valid, key=lambda c: c.cost) if valid else self.default

    @property
    def best_program(self):
        return self._best_program

    @property
    def improvement(self) -> float:
        """Fractional virtual-clock improvement of best over default."""
        base = self.default.cost
        if not np.isfinite(base) or base <= 0:
            return 0.0
        return (base - self.best.cost) / base

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "nprocs": self.nprocs,
            "machine": self.machine.name,
            "budget": self.budget,
            "host_seconds": self.host_seconds,
            "default_vclock": self.default.cost,
            "tuned_vclock": self.best.cost,
            "improvement_pct": 100.0 * self.improvement,
            "best_plan": self.best.plan.as_dict(),
            "best_summary": self.best.summary,
            "candidates": [
                {"plan": c.summary, "key": c.plan.short_key(),
                 "vclock": c.cost, "valid": c.valid, "cached": c.cached,
                 **({"error": c.error} if c.error else {})}
                for c in self.candidates],
            "memo": self.memo,
            "compile_memo": self.compile_memo,
        }

    def report(self) -> str:
        """Human-readable per-candidate cost table + the winning plan."""
        out = [f"plan search: {self.name} @ P={self.nprocs} "
               f"on {self.machine.name}",
               f"{len(self.candidates)} candidates in "
               f"{self.host_seconds:.2f}s host time "
               f"(eval memo {self.memo.get('hits', 0)} hits, "
               f"compile memo {self.compile_memo.get('hits', 0)} hits)",
               "",
               f"{'vclock(ms)':>12s} {'delta':>8s}  plan",
               "-" * 64]
        base = self.default.cost
        for cand in sorted(self.candidates, key=lambda c: c.cost):
            if not np.isfinite(cand.cost):
                out.append(f"{'failed':>12s} {'-':>8s}  {cand.summary}"
                           + (f"  [{cand.error}]" if cand.error else ""))
                continue
            delta = (f"{100.0 * (base - cand.cost) / base:+7.2f}%"
                     if base > 0 else "   0.00%")
            flag = "" if cand.valid else "  [numerics drifted]"
            out.append(f"{cand.cost * 1e3:12.3f} {delta:>8s}  "
                       f"{cand.summary}{flag}")
        out.append("-" * 64)
        out.append(f"winner ({100.0 * self.improvement:+.2f}% vclock):")
        out.append(self.best.plan.describe())
        return "\n".join(out)


# -------------------------------------------------------------------------- #


def _observed(result) -> dict:
    """Numeric observables for the sanity check (workspace values)."""
    obs = {}
    for key, value in result.workspace.items():
        try:
            obs[key] = np.asarray(value, dtype=complex)
        except (TypeError, ValueError):
            obs[key] = value
    return obs


def _numerics_match(ref: dict, got: dict) -> bool:
    """Approximate equality: distributions legitimately reassociate
    reductions, so bit-identity across *plans* is not required (it IS
    required across backends for one plan — the differential suite)."""
    if set(ref) != set(got):
        return False
    for key, a in ref.items():
        b = got[key]
        if isinstance(a, np.ndarray) and isinstance(b, np.ndarray):
            if a.shape != b.shape:
                return False
            with np.errstate(invalid="ignore"):
                same = np.allclose(a, b, rtol=1e-6, atol=1e-9,
                                   equal_nan=True)
            if not same:
                return False
        elif a != b:
            return False
    return True


def tune_program(source: str, nprocs: int = 4,
                 machine: MachineModel | None = None,
                 budget: int = 64, provider=None, seed: int = 0,
                 name: str = "script") -> TuneResult:
    """Search the plan space for ``source`` and return the full report.

    Every candidate (including candidate 0, the default plan) is costed
    by a fused-backend run; the winner is the valid candidate with the
    smallest final virtual clock.
    """
    machine = machine or MEIKO_CS2
    budget = max(int(budget), 1)
    t0 = time.perf_counter()
    src_hash = hashlib.sha256(source.encode("utf-8")).hexdigest()

    result = TuneResult(name=name, nprocs=nprocs, machine=machine,
                        budget=budget)

    def evaluate(plan: Plan, reference: Optional[dict]):
        key = eval_key(src_hash, nprocs, machine, plan)
        hit = eval_lookup(key)
        if hit is not None:
            cand = Candidate(plan=plan, cost=hit["cost"],
                             valid=hit["valid"], cached=True,
                             error=hit.get("error"))
            return cand, hit.get("observed"), hit.get("counts") or {}
        counts: dict = {}
        try:
            program = compile_cached(source, provider, name=name, plan=plan)
            run = program.run(nprocs=nprocs, machine=machine, seed=seed,
                              backend="fused", plan=plan, tune=False)
            observed = _observed(run)
            counts = dict(run.spmd.collective_counts)
            valid = reference is None or _numerics_match(reference, observed)
            cand = Candidate(plan=plan, cost=run.spmd.elapsed, valid=valid)
        except Exception as exc:  # a bad plan must not kill the search
            observed = None
            cand = Candidate(plan=plan, cost=float("inf"), valid=False,
                             error=f"{type(exc).__name__}: {exc}")
        eval_store(key, {"cost": cand.cost, "valid": cand.valid,
                         "error": cand.error, "observed": observed,
                         "counts": counts})
        return cand, observed, counts

    # a source that does not compile fails identically under every plan:
    # let the compile error propagate rather than report a non-search
    default_program = compile_cached(source, provider, name=name,
                                     plan=DEFAULT_PLAN)

    # candidate 0: the default plan — also the numerics reference and
    # the probe whose collective counts prune the axis list
    default_cand, reference, probe_counts = evaluate(DEFAULT_PLAN, None)
    result.candidates.append(default_cand)
    if not np.isfinite(default_cand.cost):
        # the program compiles but fails at run time: report, don't search
        result.host_seconds = time.perf_counter() - t0
        result.memo = eval_memo_stats()
        result.compile_memo = compile_cache_stats()
        result._best_program = default_program
        return result

    for plan in enumerate_plans(default_program, probe_counts,
                                nprocs=nprocs, budget=budget,
                                machine=machine)[1:]:
        cand, _, _ = evaluate(plan, reference)
        result.candidates.append(cand)

    result.host_seconds = time.perf_counter() - t0
    result.memo = eval_memo_stats()
    result.compile_memo = compile_cache_stats()
    result._best_program = compile_cached(source, provider, name=name,
                                          plan=result.best.plan)
    return result
