"""Optimization plans: every compiler/runtime knob as one value object.

A :class:`Plan` bundles the choices the paper's compiler hard-codes —
row-block distribution, one peephole fusion order, one LICM policy,
owner-computes guards — plus the collective-algorithm selection of the
machine model, into a single frozen, hashable description.  The default
plan reproduces the shipped compiler's behavior bit-for-bit (the golden
traces pin this); the autotuner searches the neighborhood.

Knob reference:

``scheme``
    Default data distribution for created arrays (``block`` | ``cyclic``).
``dist``
    Per-array overrides, a sorted tuple of ``(name, scheme)`` pairs;
    arrays created under a name listed here get that scheme instead of
    the default.  Derived arrays inherit the scheme of their template
    operand; the runtime realigns mixed-scheme operands (at an honest
    allgather cost) so every plan is *correct*, merely not always fast.
``fusion``
    Peephole rewrite schedule for pass 6, an ordered subset of
    ``("transpose_matmul", "cse")``.  Empty tuple disables pass 6.
``licm``
    Pass 6b policy: ``off`` | ``safe`` (only always-safe ops) |
    ``aggressive`` (speculative hoisting, the shipped default).
``guard``
    Guarded-assignment placement: ``owner`` (pass 5 owner-computes
    SetElement, the shipped default) | ``replicated`` (skip pass 5;
    element stores go through the gather-based replicated path).
``ew_split``
    When True, pass 4's fused elementwise trees are split back into
    single-operator statements (the pre-fusion compiler) — an ablation
    axis the tuner can measure but should never pick.
``gather_algo`` / ``allreduce_algo``
    Collective algorithms on the machine model (see
    :class:`repro.mpi.machine.MachineModel`).
``hierarchy``
    Collective topology strategy on the machine model: ``auto`` (the
    default: two-level MagPIe-style collectives whenever the world
    spans nodes) | ``flat`` (topology-oblivious single-level
    collectives over the inter-node link).  Only meaningful on
    hierarchical machines; the axis is offered only when the probe
    world actually spans nodes.
``cache_gathers``
    Reuse gathered replicas of unmodified distributed values.
``native``
    JIT kernel tier for fused elementwise chains (docs/NATIVE.md):
    ``auto`` (use when a C compiler exists — the default) | ``off`` |
    ``require``.  A *host-time* knob: modeled numbers are bit-identical
    either way, so the virtual-clock objective cannot distinguish
    settings — the axis exists so tuned plans can carry an explicit
    tier choice into production runs, not for the search to explore.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any

SCHEMES = ("block", "cyclic")
FUSION_REWRITES = ("transpose_matmul", "cse")
LICM_POLICIES = ("off", "safe", "aggressive")
GUARD_PLACEMENTS = ("owner", "replicated")
GATHER_ALGOS = ("ring", "doubling")
ALLREDUCE_ALGOS = ("tree", "halving")
HIERARCHIES = ("auto", "flat")
NATIVE_MODES = ("auto", "off", "require")


@dataclass(frozen=True)
class Plan:
    """One point in the optimization-plan space (hashable, canonical)."""

    scheme: str = "block"
    dist: tuple[tuple[str, str], ...] = ()
    fusion: tuple[str, ...] = FUSION_REWRITES
    licm: str = "aggressive"
    guard: str = "owner"
    ew_split: bool = False
    gather_algo: str = "ring"
    allreduce_algo: str = "tree"
    hierarchy: str = "auto"
    cache_gathers: bool = False
    native: str = "auto"

    def __post_init__(self) -> None:
        if self.scheme not in SCHEMES:
            raise ValueError(f"scheme must be one of {SCHEMES} "
                             f"(got {self.scheme!r})")
        object.__setattr__(self, "dist",
                           tuple(sorted(tuple(pair) for pair in self.dist)))
        for name, scheme in self.dist:
            if scheme not in SCHEMES:
                raise ValueError(f"dist[{name!r}] must be one of {SCHEMES} "
                                 f"(got {scheme!r})")
        object.__setattr__(self, "fusion", tuple(self.fusion))
        seen = set()
        for rewrite in self.fusion:
            if rewrite not in FUSION_REWRITES:
                raise ValueError(f"unknown fusion rewrite {rewrite!r}; "
                                 f"choose from {FUSION_REWRITES}")
            if rewrite in seen:
                raise ValueError(f"duplicate fusion rewrite {rewrite!r}")
            seen.add(rewrite)
        if self.licm not in LICM_POLICIES:
            raise ValueError(f"licm must be one of {LICM_POLICIES} "
                             f"(got {self.licm!r})")
        if self.guard not in GUARD_PLACEMENTS:
            raise ValueError(f"guard must be one of {GUARD_PLACEMENTS} "
                             f"(got {self.guard!r})")
        if self.gather_algo not in GATHER_ALGOS:
            raise ValueError(f"gather_algo must be one of {GATHER_ALGOS} "
                             f"(got {self.gather_algo!r})")
        if self.allreduce_algo not in ALLREDUCE_ALGOS:
            raise ValueError(f"allreduce_algo must be one of "
                             f"{ALLREDUCE_ALGOS} (got {self.allreduce_algo!r})")
        if self.hierarchy not in HIERARCHIES:
            raise ValueError(f"hierarchy must be one of {HIERARCHIES} "
                             f"(got {self.hierarchy!r})")
        if self.native not in NATIVE_MODES:
            raise ValueError(f"native must be one of {NATIVE_MODES} "
                             f"(got {self.native!r})")

    # -- identity -------------------------------------------------------- #

    def as_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    def key(self) -> str:
        """Content hash of the full plan (candidate-evaluation memo key)."""
        blob = json.dumps(self.as_dict(), sort_keys=True, default=list)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def short_key(self) -> str:
        return self.key()[:12]

    def compile_key(self) -> tuple:
        """The compile-affecting projection: two plans sharing this key
        lower to byte-identical Python (runtime knobs differ only at
        ``run`` time), so the compile memo can share the module."""
        return (self.fusion, self.licm, self.guard, self.ew_split)

    # -- application ----------------------------------------------------- #

    def apply_machine(self, machine):
        """Machine model with this plan's collective algorithms and
        topology strategy."""
        if (machine.gather_algo == self.gather_algo
                and machine.allreduce_algo == self.allreduce_algo
                and machine.collective_hierarchy == self.hierarchy):
            return machine
        return dataclasses.replace(
            machine,
            gather_algo=self.gather_algo,
            allreduce_algo=self.allreduce_algo,
            collective_hierarchy=self.hierarchy)

    # -- rendering ------------------------------------------------------- #

    def summary(self) -> str:
        """Compact diff against :data:`DEFAULT_PLAN` (``"default"`` if
        nothing differs)."""
        deltas = []
        for field in dataclasses.fields(self):
            mine = getattr(self, field.name)
            base = getattr(DEFAULT_PLAN, field.name)
            if mine == base:
                continue
            if field.name == "dist":
                rendered = ",".join(f"{n}:{s}" for n, s in mine)
            elif field.name == "fusion":
                rendered = "+".join(mine) or "none"
            else:
                rendered = str(mine)
            deltas.append(f"{field.name}={rendered}")
        return " ".join(deltas) if deltas else "default"

    def describe(self) -> str:
        """Full multi-line rendering (the ``--explain-plan`` body)."""
        lines = [f"plan {self.short_key()}:"]
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if field.name == "dist":
                value = ", ".join(f"{n}:{s}" for n, s in value) or "(none)"
            elif field.name == "fusion":
                value = " -> ".join(value) or "(disabled)"
            lines.append(f"  {field.name:<15s} {value}")
        return "\n".join(lines)


DEFAULT_PLAN = Plan()
