"""Candidate-evaluation memo.

Tuning the same source at several rank counts (or re-running a sweep)
re-evaluates many identical (source, nprocs, machine, plan) points; the
memo returns the recorded cost instead of re-running the workload.  The
machine model participates in the key as itself — it is a frozen
dataclass, so value equality is exactly "same cost model".
"""

from __future__ import annotations

from typing import Optional

_EVAL_MEMO: dict[tuple, dict] = {}
_EVAL_MEMO_STATS = {"hits": 0, "misses": 0}
_EVAL_MEMO_MAX = 4096


def eval_key(src_hash: str, nprocs: int, machine, plan) -> tuple:
    return (src_hash, nprocs, machine, plan.key())


def eval_lookup(key: tuple) -> Optional[dict]:
    hit = _EVAL_MEMO.get(key)
    if hit is not None:
        _EVAL_MEMO_STATS["hits"] += 1
        return hit
    _EVAL_MEMO_STATS["misses"] += 1
    return None


def eval_store(key: tuple, record: dict) -> None:
    if len(_EVAL_MEMO) >= _EVAL_MEMO_MAX:
        _EVAL_MEMO.pop(next(iter(_EVAL_MEMO)))
    _EVAL_MEMO[key] = record


def eval_memo_stats() -> dict:
    return dict(_EVAL_MEMO_STATS, size=len(_EVAL_MEMO),
                maxsize=_EVAL_MEMO_MAX)


def clear_eval_memo() -> None:
    _EVAL_MEMO.clear()
    _EVAL_MEMO_STATS.update(hits=0, misses=0)
