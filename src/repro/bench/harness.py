"""Measurement harness: one entry point per quantity the paper reports.

All times are *modeled* seconds on the selected
:class:`~repro.mpi.machine.MachineModel` (see DESIGN.md for why); results
are always cross-checked against the reference interpreter so a
performance number is never reported for a wrong answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..analysis.resolve import resolve_program
from ..baselines.matcom import DEFAULT_MATCOM, MatcomModel, run_matcom
from ..compiler import CompiledProgram, OtterCompiler
from ..frontend.parser import parse_script
from ..interp.costmodel import CostMeter
from ..interp.interpreter import Interpreter
from ..mpi.machine import MEIKO_CS2, MachineModel
from .workloads import Workload


@dataclass
class SingleCpuResult:
    """Figure 2 row: modeled single-CPU times of the three systems."""

    workload: str
    interp_time: float
    matcom_time: float
    otter_time: float
    output: str

    @property
    def relative(self) -> dict[str, float]:
        """Performance relative to the interpreter (interpreter = 1.0)."""
        return {
            "interpreter": 1.0,
            "matcom": self.interp_time / self.matcom_time,
            "otter": self.interp_time / self.otter_time,
        }


@dataclass
class SpeedupCurve:
    """One line of Figures 3-6: speedup over the interpreter vs CPUs."""

    workload: str
    machine: str
    nprocs: list[int] = field(default_factory=list)
    speedups: list[float] = field(default_factory=list)
    interp_time: float = 0.0
    compiled_times: list[float] = field(default_factory=list)

    def at(self, p: int) -> float:
        return self.speedups[self.nprocs.index(p)]


class BenchHarness:
    """Compiles each workload once and measures all three systems."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._compiled: dict[str, CompiledProgram] = {}
        self._resolved: dict[str, object] = {}
        self._interp_out: dict[tuple, str] = {}

    # ------------------------------------------------------------------ #

    def compiled(self, workload: Workload,
                 peephole: bool = True, scheme: str = "block",
                 licm: bool = True) -> CompiledProgram:
        key = f"{workload.key}:{hash(workload.source)}:{peephole}:{licm}"
        if key not in self._compiled:
            compiler = OtterCompiler(provider=workload.provider,
                                     peephole=peephole, licm=licm)
            self._compiled[key] = compiler.compile(workload.source,
                                                   name=workload.key)
        return self._compiled[key]

    def _resolve(self, workload: Workload):
        key = f"{workload.key}:{hash(workload.source)}"
        if key not in self._resolved:
            self._resolved[key] = resolve_program(
                parse_script(workload.source, workload.key),
                workload.provider)
        return self._resolved[key]

    # ------------------------------------------------------------------ #
    # the three systems
    # ------------------------------------------------------------------ #

    def interpreter_time(self, workload: Workload,
                         machine: MachineModel = MEIKO_CS2) -> float:
        """Modeled MathWorks-interpreter time on one CPU of ``machine``."""
        meter = CostMeter(machine.cpu.interpreter_params())
        interp = Interpreter(self._resolve(workload), meter=meter,
                             seed=self.seed)
        interp.run()
        self._interp_out[self._wkey(workload)] = "".join(interp.output)
        return meter.time

    def matcom_time(self, workload: Workload,
                    machine: MachineModel = MEIKO_CS2,
                    model: MatcomModel = DEFAULT_MATCOM) -> float:
        interp, elapsed = run_matcom(self._resolve(workload), machine,
                                     model, seed=self.seed)
        self._check_output(workload, "".join(interp.output))
        return elapsed

    def otter_time(self, workload: Workload, nprocs: int = 1,
                   machine: MachineModel = MEIKO_CS2,
                   peephole: bool = True, scheme: str = "block",
                   licm: bool = True) -> float:
        program = self.compiled(workload, peephole=peephole, licm=licm)
        result = program.run(nprocs=nprocs, machine=machine,
                             seed=self.seed, scheme=scheme)
        self._check_output(workload, result.output)
        return result.elapsed

    @staticmethod
    def _wkey(workload: Workload) -> tuple:
        return (workload.key, hash(workload.source))

    def _check_output(self, workload: Workload, output: str) -> None:
        """Numerical cross-check against the interpreter's printout."""
        expected = self._interp_out.get(self._wkey(workload))
        if expected is None:
            return
        got = _printed_numbers(output)
        want = _printed_numbers(expected)
        if len(got) != len(want) or not np.allclose(got, want, rtol=1e-5,
                                                    atol=1e-8):
            raise AssertionError(
                f"{workload.key}: compiled output diverged from the "
                f"interpreter oracle:\n  oracle:   {expected!r}"
                f"\n  compiled: {output!r}")

    # ------------------------------------------------------------------ #
    # paper quantities
    # ------------------------------------------------------------------ #

    def single_cpu(self, workload: Workload,
                   machine: MachineModel = MEIKO_CS2) -> SingleCpuResult:
        """Figure 2: interpreter vs MATCOM vs Otter, one CPU."""
        t_interp = self.interpreter_time(workload, machine)
        t_matcom = self.matcom_time(workload, machine)
        t_otter = self.otter_time(workload, nprocs=1, machine=machine)
        return SingleCpuResult(
            workload=workload.key,
            interp_time=t_interp,
            matcom_time=t_matcom,
            otter_time=t_otter,
            output=self._interp_out.get(self._wkey(workload), ""),
        )

    def speedup_curve(self, workload: Workload, machine: MachineModel,
                      nprocs: Optional[list[int]] = None,
                      peephole: bool = True,
                      scheme: str = "block") -> SpeedupCurve:
        """Figures 3-6: speedup over the interpreter on one CPU."""
        if nprocs is None:
            nprocs = [p for p in (1, 2, 4, 8, 16) if p <= machine.max_cpus]
        t_interp = self.interpreter_time(workload, machine)
        curve = SpeedupCurve(workload=workload.key, machine=machine.name,
                             interp_time=t_interp)
        for p in nprocs:
            t = self.otter_time(workload, nprocs=p, machine=machine,
                                peephole=peephole, scheme=scheme)
            curve.nprocs.append(p)
            curve.compiled_times.append(t)
            curve.speedups.append(t_interp / t)
        return curve


def _printed_numbers(text: str) -> list[float]:
    import re

    out = []
    for token in re.findall(r"[-+]?\d+\.?\d*(?:[eE][-+]?\d+)?", text):
        try:
            out.append(float(token))
        except ValueError:  # pragma: no cover
            pass
    return out
