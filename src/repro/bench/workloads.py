"""The paper's four benchmark applications, as pure MATLAB scripts.

Section 5 of the paper:

1. **Conjugate gradient** — solves a positive-definite system of 2048
   linear equations; "makes extensive use of matrix-vector multiplication
   and vector dot product".
2. **Ocean engineering** — evaluates the nonlinear wave excitation force
   on a submerged sphere using the Morrison equation; "requires vector
   shifts, outer products, and calls to the built-in function trapz2".
   (The original field problem and data are not available; this is a
   synthetic Morrison-equation kernel exercising the same operations —
   see DESIGN.md.)
3. **N-body** — 5 000 particles; "uses the built-in function mean [and]
   exercises the run-time library's broadcast function".  O(n) ops per
   step (a mean-field approximation), as the paper's speedup discussion
   requires.
4. **Transitive closure** — of an n x n adjacency matrix "through log n
   matrix multiplications"; O(n^3) work dominated by ML_matrix_multiply.

Each workload is parameterized by a scale so tests can run small while
the benchmark harness reproduces the paper-size runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..frontend.mfile import DictProvider, MFileProvider


@dataclass(frozen=True)
class Workload:
    key: str
    title: str
    source: str
    provider: Optional[MFileProvider] = None
    seed: int = 0

    def __repr__(self) -> str:
        return f"Workload({self.key})"


# --------------------------------------------------------------------------
# 1. conjugate gradient
# --------------------------------------------------------------------------


def conjugate_gradient(n: int = 2048, iters: int = 30) -> Workload:
    """CG on a positive-definite n x n system (fixed iteration count so
    every system measures identical work)."""
    source = f"""\
% Conjugate gradient solver for a positive definite system (n = {n}).
n = {n};
iters = {iters};
rand('seed', 17);
A = rand(n, n) + n * eye(n);      % strictly diagonally dominant
xtrue = ones(n, 1);
b = A * xtrue;
x = zeros(n, 1);
r = b - A * x;
p = r;
rsold = r' * r;
for i = 1:iters
    Ap = A * p;
    alpha = rsold / (p' * Ap);
    x = x + alpha * p;
    r = r - alpha * Ap;
    rsnew = r' * r;
    p = r + (rsnew / rsold) * p;
    rsold = rsnew;
end
resid = sqrt(rsold);
err = max(abs(x - xtrue));
fprintf('cg: n=%d resid=%.3e err=%.3e\\n', n, resid, err);
"""
    return Workload("cg", "Conjugate Gradient", source)


# --------------------------------------------------------------------------
# 2. ocean engineering (Morrison equation, submerged sphere)
# --------------------------------------------------------------------------


def ocean_engineering(nt: int = 512, nz: int = 128,
                      nfreq: int = 8) -> Workload:
    """Nonlinear wave force on a submerged sphere via the Morrison
    equation: vector shifts, outer products, trapz2 — small data,
    O(n) operations (hence the paper's poor speedup)."""
    source = f"""\
% Morrison-equation wave excitation force on a submerged sphere.
nt = {nt};
nz = {nz};
nfreq = {nfreq};
g = 9.81;
rho = 1025.0;
Cd = 1.0;
Cm = 2.0;
D = 1.2;
H = 2.5;
span = 12.0;
Asec = pi * D^2 / 4;
Vol = pi * D^3 / 6;
total = 0.0;
peak = 0.0;
for fi = 1:nfreq
    T = 6.0 + fi;
    om = 2*pi / T;
    k = om^2 / g;                        % deep-water dispersion
    t = linspace(0, T, nt);
    zrel = linspace(0, span, nz);
    decay = exp(-k * zrel');             % nz x 1 depth attenuation
    ut = cos(om * t);                    % 1 x nt time profile
    dt = T / (nt - 1);
    up = circshift(ut, -1);              % vector shifts for the
    um = circshift(ut, 1);               % centred time derivative
    at = (up - um) / (2 * dt);
    u = (H * om / 2) * decay * ut;       % outer product: nz x nt
    a = (H * om / 2) * decay * at;       % outer product: nz x nt
    drag = 0.5 * rho * Cd * Asec * (u .* abs(u));
    inertia = rho * Cm * Vol * a;
    f = drag + inertia;
    impulse = trapz2(f, span / (nz - 1), dt);
    fmax = max(max(abs(f)));
    total = total + impulse;
    if fmax > peak
        peak = fmax;
    end
end
fprintf('ocean: total=%.6e peak=%.6e\\n', total, peak);
"""
    return Workload("ocean", "Ocean Engineering", source)


# --------------------------------------------------------------------------
# 3. n-body simulation
# --------------------------------------------------------------------------


def nbody(n: int = 5000, steps: int = 25) -> Workload:
    """Mean-field n-body step (O(n) per step) using ``mean`` and tracked
    samples that exercise ML_broadcast and the owner-guarded store."""
    source = f"""\
% Mean-field n-body simulation, {n} particles.
n = {n};
steps = {steps};
rand('seed', 23);
x = rand(n, 1);
y = rand(n, 1);
z = rand(n, 1);
vx = zeros(n, 1);
vy = zeros(n, 1);
vz = zeros(n, 1);
G = 0.5;
dt = 0.005;
soft = 0.05;
mu = 0.01;
trace = zeros(1, steps);
for s = 1:steps
    cx = mean(x);
    cy = mean(y);
    cz = mean(z);
    dx = cx - x;
    dy = cy - y;
    dz = cz - z;
    r2 = dx .* dx + dy .* dy + dz .* dz + soft;
    r = sqrt(r2);
    rinv3 = 1.0 ./ (r2 .* r);
    % mean-field gravity with a short-range softening correction and
    % a weak velocity-dependent drag (dynamical friction)
    corr = 1.0 + soft ./ r2 + (soft * soft) ./ (r2 .* r2);
    ax = G * dx .* rinv3 .* corr - mu * vx .* abs(vx);
    ay = G * dy .* rinv3 .* corr - mu * vy .* abs(vy);
    az = G * dz .* rinv3 .* corr - mu * vz .* abs(vz);
    vx = vx + dt * ax;
    vy = vy + dt * ay;
    vz = vz + dt * az;
    x = x + dt * vx;
    y = y + dt * vy;
    z = z + dt * vz;
    trace(s) = x(1);                 % ML_broadcast + owner-guarded store
end
ke = sum(vx .* vx + vy .* vy + vz .* vz) / 2;
fprintf('nbody: ke=%.6e cx=%.6f trace=%.6f\\n', ke, mean(x), trace(steps));
"""
    return Workload("nbody", "N-body Problem", source)


# --------------------------------------------------------------------------
# 4. transitive closure
# --------------------------------------------------------------------------


def transitive_closure(n: int = 512, avg_degree: float = 3.0) -> Workload:
    """Boolean closure through ceil(log2 n) matrix multiplications —
    the paper's O(n^3) stress test for ML_matrix_multiply."""
    rounds = max(int(math.ceil(math.log2(max(n, 2)))), 1)
    source = f"""\
% Transitive closure of an n x n adjacency matrix by repeated squaring.
n = {n};
rounds = {rounds};
rand('seed', 29);
A = rand(n, n) < {avg_degree} / n;    % random digraph, avg degree {avg_degree}
R = (A + eye(n)) > 0;
for k = 1:rounds
    R = R * R;                        % O(n^3) matrix multiplication
    R = R > 0;
end
reach = sum(sum(R));
fprintf('closure: n=%d reachable=%d\\n', n, reach);
"""
    return Workload("closure", "Transitive Closure", source)


# --------------------------------------------------------------------------
# --------------------------------------------------------------------------
# image filtering (beyond the paper's four: the "300x Faster Matlab using
# MatlabMPI" benchmark family — element-wise-dominated, the native kernel
# tier's showcase.  Deliberately NOT in ALL_KEYS/_FACTORIES: the paper's
# figures and the 2x2 split assertions cover exactly the original four.)
# --------------------------------------------------------------------------


def image_filter(n: int = 256, steps: int = 8) -> Workload:
    """Cross-stencil blur + unsharp mask + edge blend on an n x n image.

    The 2-D stencil is realized exactly the way a row-distributed
    MatlabMPI code does it: ``circshift(img, [k 0])`` reaches the
    vertical neighbours across the distributed rows, and
    ``circshift(img, [0 k])`` reaches the horizontal ones — a purely
    local roll under the row-contiguous distribution, no transpose
    sandwich.  Everything between the shifts is fused elementwise
    chains (blur, sharpen, gradient magnitude via ``sqrt``, threshold
    blend, clamp), which is what makes it the canonical
    elementwise-dominated workload for the native kernel tier.
    """
    source = f"""\
% Image filtering (the MatlabMPI benchmark family): cross-stencil blur,
% unsharp mask, and gradient-magnitude edge blend over an n x n image.
n = {n};
steps = {steps};
rand('seed', 42);
img = rand(n, n);
tau = 0.08;
sh_n = [-1, 0]; sh_s = [1, 0]; sh_w = [0, -1]; sh_e = [0, 1];
for s = 1:steps
    north = circshift(img, sh_n);
    south = circshift(img, sh_s);
    west = circshift(img, sh_w);
    east = circshift(img, sh_e);
    blur = (north + south + west + east) ./ 8 + img ./ 2;
    sharp = img + 1.5 .* (img - blur);
    tone = blur .* blur .* (3 - 2 .* blur);
    gv = (south - north) ./ 2;
    gh = (east - west) ./ 2;
    mag = sqrt(gv .* gv + gh .* gh);
    edges = mag > tau;
    out = edges .* sharp + (1 - edges) .* tone;
    img = max(min(out, 1), 0);
end
total = sum(sum(img));
fprintf('imgfilter: n=%d steps=%d checksum=%.9f\\n', n, steps, total);
"""
    return Workload("image_filter", "Image Filtering", source)


# --------------------------------------------------------------------------
# scales
# --------------------------------------------------------------------------

#: the sizes the paper used (Section 5)
PAPER_SCALE = {
    "cg": dict(n=2048, iters=30),
    "ocean": dict(nt=384, nz=64, nfreq=8),
    "nbody": dict(n=5000, steps=25),
    "closure": dict(n=512),
}

#: fast sizes for CI / default benchmark runs (same shapes, smaller grain)
SMALL_SCALE = {
    "cg": dict(n=512, iters=12),
    "ocean": dict(nt=192, nz=64, nfreq=3),
    "nbody": dict(n=1200, steps=8),
    "closure": dict(n=160),
}

_FACTORIES = {
    "cg": conjugate_gradient,
    "ocean": ocean_engineering,
    "nbody": nbody,
    "closure": transitive_closure,
}

ALL_KEYS = tuple(_FACTORIES)


def make_workload(key: str, scale: str = "paper") -> Workload:
    """Instantiate one of the four benchmarks at 'paper' or 'small' scale."""
    params = (PAPER_SCALE if scale == "paper" else SMALL_SCALE)[key]
    return _FACTORIES[key](**params)


def all_workloads(scale: str = "paper") -> list[Workload]:
    return [make_workload(key, scale) for key in ALL_KEYS]
