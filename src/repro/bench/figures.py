"""Regeneration of every table and figure in the paper.

* :func:`table1` — the survey of parallel-MATLAB systems (static data).
* :func:`figure2` — single-CPU relative performance of the MathWorks
  interpreter, MATCOM, and Otter on the four benchmarks.
* :func:`figure3` .. :func:`figure6` — speedup of the compiled script over
  the interpreter on the three modeled architectures.

Each function returns plain data (and has an ASCII renderer in
:mod:`repro.bench.report`) so benchmarks can assert the paper's *shape*
claims programmatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..mpi.machine import MEIKO_CS2, SPARC20_CLUSTER, SUN_ENTERPRISE
from .harness import BenchHarness, SingleCpuResult, SpeedupCurve
from .workloads import ALL_KEYS, make_workload

MACHINE_ORDER = (MEIKO_CS2, SUN_ENTERPRISE, SPARC20_CLUSTER)


# --------------------------------------------------------------------------
# Table 1
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SystemRow:
    name: str
    site: str
    implementation: str
    pure_matlab_parallel: bool  # compiles *pure* MATLAB to parallel code


TABLE1: tuple[SystemRow, ...] = (
    SystemRow("MATLAB Toolbox", "University of Rostock, Germany",
              "Interpreter", False),
    SystemRow("MultiMATLAB", "Cornell University", "Interpreter", False),
    SystemRow("Parallel Toolbox", "Wake Forest University",
              "Interpreter", False),
    SystemRow("Paramat", "Alpha Data Parallel Systems, UK",
              "Interpreter", False),
    SystemRow("CONLAB", "University of Umea, Sweden",
              "Compiles to C/PICL", False),
    SystemRow("FALCON", "University of Illinois",
              "Compiles to Fortran 90", True),
    SystemRow("RTExpress", "Integrated Sensors",
              "Compiles to C/MPI", False),
    SystemRow("Otter", "Oregon State University",
              "Compiles to C/MPI", True),
)


def table1() -> tuple[SystemRow, ...]:
    """Table 1: MATLAB systems targeting parallel computers.  Only FALCON
    and Otter generate parallel code from pure MATLAB."""
    return TABLE1


# --------------------------------------------------------------------------
# Figure 2
# --------------------------------------------------------------------------


@dataclass
class Figure2:
    scale: str
    results: dict[str, SingleCpuResult] = field(default_factory=dict)

    def relative(self) -> dict[str, dict[str, float]]:
        return {key: res.relative for key, res in self.results.items()}

    def otter_beats_interpreter_everywhere(self) -> bool:
        return all(res.relative["otter"] > 1.0
                   for res in self.results.values())

    def split_vs_matcom(self) -> tuple[int, int]:
        """(otter wins, matcom wins) — the paper reports 2-2."""
        otter = sum(1 for r in self.results.values()
                    if r.relative["otter"] > r.relative["matcom"])
        return otter, len(self.results) - otter


def figure2(scale: str = "paper",
            harness: BenchHarness | None = None) -> Figure2:
    harness = harness or BenchHarness()
    fig = Figure2(scale=scale)
    for key in ALL_KEYS:
        fig.results[key] = harness.single_cpu(make_workload(key, scale))
    return fig


# --------------------------------------------------------------------------
# Figures 3-6
# --------------------------------------------------------------------------


@dataclass
class SpeedupFigure:
    number: int
    workload: str
    scale: str
    curves: dict[str, SpeedupCurve] = field(default_factory=dict)

    def curve(self, machine_name: str) -> SpeedupCurve:
        return self.curves[machine_name]

    def best_at(self, p: int) -> str:
        """Machine with the highest speedup at ``p`` CPUs."""
        candidates = {name: c.at(p) for name, c in self.curves.items()
                      if p in c.nprocs}
        return max(candidates, key=candidates.get)  # type: ignore[arg-type]


_FIGURES = {
    3: "cg",
    4: "ocean",
    5: "nbody",
    6: "closure",
}


def speedup_figure(number: int, scale: str = "paper",
                   harness: BenchHarness | None = None,
                   nprocs: list[int] | None = None) -> SpeedupFigure:
    """Figures 3 (cg), 4 (ocean), 5 (nbody), 6 (transitive closure)."""
    workload_key = _FIGURES[number]
    harness = harness or BenchHarness()
    workload = make_workload(workload_key, scale)
    fig = SpeedupFigure(number=number, workload=workload_key, scale=scale)
    for machine in MACHINE_ORDER:
        fig.curves[machine.name] = harness.speedup_curve(
            workload, machine, nprocs=nprocs)
    return fig


def figure3(scale: str = "paper", **kw) -> SpeedupFigure:
    return speedup_figure(3, scale, **kw)


def figure4(scale: str = "paper", **kw) -> SpeedupFigure:
    return speedup_figure(4, scale, **kw)


def figure5(scale: str = "paper", **kw) -> SpeedupFigure:
    return speedup_figure(5, scale, **kw)


def figure6(scale: str = "paper", **kw) -> SpeedupFigure:
    return speedup_figure(6, scale, **kw)
