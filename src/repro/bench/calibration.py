"""Calibration: the shape claims the reproduction must satisfy.

The reproduction does not chase the paper's absolute wall-clocks (its
testbeds are gone); it targets the *shape* of every reported result.  The
expectations below are asserted by the benchmark suite and recorded in
EXPERIMENTS.md.  Band constants here are deliberately generous — they
encode "who wins and by roughly what factor", not point estimates.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Band:
    lo: float
    hi: float

    def holds(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    def __repr__(self) -> str:
        return f"[{self.lo}, {self.hi}]"


#: Figure 2 — single-CPU claims
FIG2_CLAIMS = {
    # "our compiler always outperforms The MathWorks interpreter"
    "otter_over_interp": Band(1.3, 12.0),
    # "competitive with the MATCOM compiler, outperforming it on two
    #  benchmark scripts and underperforming it on the other two"
    "split": (2, 2),
    "otter_wins": ("ocean", "nbody"),
    "matcom_wins": ("cg", "closure"),
}

#: Figures 3-6 — speedup-at-16-CPU bands on the Meiko model (paper scale)
FIG_MEIKO16_BANDS = {
    "cg": Band(35.0, 75.0),       # paper: "50 times faster ... on 16 CPUs"
    "closure": Band(55.0, 100.0),  # paper: "78 times faster on 16 nodes"
    "ocean": Band(2.0, 25.0),     # paper: "not as good ... small data"
    "nbody": Band(4.0, 30.0),     # paper: "limits the opportunities"
}

#: ordering claims that must hold on the Meiko at 16 CPUs
MEIKO16_ORDERING = ("closure", "cg", "nbody", "ocean")  # descending speedup

#: the cluster claim: "relatively high latency and low bandwidth ... puts a
#: severe damper on speedup achieved beyond four CPUs"
CLUSTER_PLATEAU_FACTOR = 2.2   # speedup(16) < factor * speedup(4)

#: the Meiko claim: "generally achieves greater speedup than the other two"
MEIKO_WINS_AT = 16  # at the full machine size


def check_meiko16(workload: str, speedup: float) -> bool:
    return FIG_MEIKO16_BANDS[workload].holds(speedup)
