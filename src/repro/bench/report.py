"""ASCII renderers for the regenerated tables and figures."""

from __future__ import annotations

from .figures import Figure2, SpeedupFigure, SystemRow
from .workloads import _FACTORIES


def render_table1(rows: tuple[SystemRow, ...]) -> str:
    out = ["Table 1. MATLAB systems targeting parallel computers",
           f"{'Name':18s} {'Site':34s} {'Implementation':24s} "
           f"{'Pure-MATLAB parallel':s}"]
    out.append("-" * 98)
    for row in rows:
        mark = "yes" if row.pure_matlab_parallel else "no"
        out.append(f"{row.name:18s} {row.site:34s} "
                   f"{row.implementation:24s} {mark}")
    return "\n".join(out)


def render_figure2(fig: Figure2) -> str:
    out = ["Figure 2. Relative single-CPU performance "
           f"(scale={fig.scale}; interpreter = 1.0)",
           f"{'Benchmark':22s} {'Interpreter':>12s} {'MATCOM':>9s} "
           f"{'Otter':>9s}"]
    out.append("-" * 56)
    for key, res in fig.results.items():
        rel = res.relative
        title = _FACTORIES[key].__name__.replace("_", " ")
        out.append(f"{title:22s} {rel['interpreter']:12.2f} "
                   f"{rel['matcom']:9.2f} {rel['otter']:9.2f}")
    otter_w, matcom_w = fig.split_vs_matcom()
    out.append(f"(Otter wins {otter_w}, MATCOM wins {matcom_w}; "
               "paper reports a 2-2 split)")
    return "\n".join(out)


def render_speedup_figure(fig: SpeedupFigure) -> str:
    title = {3: "conjugate gradient", 4: "ocean engineering",
             5: "n-body simulation", 6: "transitive closure"}[fig.number]
    out = [f"Figure {fig.number}. Speedup of compiled {title} over the "
           f"MATLAB interpreter on one CPU (scale={fig.scale})"]
    all_ps = sorted({p for c in fig.curves.values() for p in c.nprocs})
    header = f"{'CPUs':>6s}" + "".join(f"{name:>26s}"
                                       for name in fig.curves)
    out.append(header)
    out.append("-" * len(header))
    for p in all_ps:
        row = [f"{p:6d}"]
        for curve in fig.curves.values():
            if p in curve.nprocs:
                row.append(f"{curve.at(p):25.1f}x")
            else:
                row.append(f"{'-':>26s}")
        out.append("".join(row))
    return "\n".join(out)
