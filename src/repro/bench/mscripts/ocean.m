% Morrison-equation wave excitation force on a submerged sphere.
nt = 384;
nz = 64;
nfreq = 8;
g = 9.81;
rho = 1025.0;
Cd = 1.0;
Cm = 2.0;
D = 1.2;
H = 2.5;
span = 12.0;
Asec = pi * D^2 / 4;
Vol = pi * D^3 / 6;
total = 0.0;
peak = 0.0;
for fi = 1:nfreq
    T = 6.0 + fi;
    om = 2*pi / T;
    k = om^2 / g;                        % deep-water dispersion
    t = linspace(0, T, nt);
    zrel = linspace(0, span, nz);
    decay = exp(-k * zrel');             % nz x 1 depth attenuation
    ut = cos(om * t);                    % 1 x nt time profile
    dt = T / (nt - 1);
    up = circshift(ut, -1);              % vector shifts for the
    um = circshift(ut, 1);               % centred time derivative
    at = (up - um) / (2 * dt);
    u = (H * om / 2) * decay * ut;       % outer product: nz x nt
    a = (H * om / 2) * decay * at;       % outer product: nz x nt
    drag = 0.5 * rho * Cd * Asec * (u .* abs(u));
    inertia = rho * Cm * Vol * a;
    f = drag + inertia;
    impulse = trapz2(f, span / (nz - 1), dt);
    fmax = max(max(abs(f)));
    total = total + impulse;
    if fmax > peak
        peak = fmax;
    end
end
fprintf('ocean: total=%.6e peak=%.6e\n', total, peak);
