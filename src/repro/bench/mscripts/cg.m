% Conjugate gradient solver for a positive definite system (n = 2048).
n = 2048;
iters = 30;
rand('seed', 17);
A = rand(n, n) + n * eye(n);      % strictly diagonally dominant
xtrue = ones(n, 1);
b = A * xtrue;
x = zeros(n, 1);
r = b - A * x;
p = r;
rsold = r' * r;
for i = 1:iters
    Ap = A * p;
    alpha = rsold / (p' * Ap);
    x = x + alpha * p;
    r = r - alpha * Ap;
    rsnew = r' * r;
    p = r + (rsnew / rsold) * p;
    rsold = rsnew;
end
resid = sqrt(rsold);
err = max(abs(x - xtrue));
fprintf('cg: n=%d resid=%.3e err=%.3e\n', n, resid, err);
