% Transitive closure of an n x n adjacency matrix by repeated squaring.
n = 512;
rounds = 9;
rand('seed', 29);
A = rand(n, n) < 3.0 / n;    % random digraph, avg degree 3.0
R = (A + eye(n)) > 0;
for k = 1:rounds
    R = R * R;                        % O(n^3) matrix multiplication
    R = R > 0;
end
reach = sum(sum(R));
fprintf('closure: n=%d reachable=%d\n', n, reach);
