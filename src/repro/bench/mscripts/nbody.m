% Mean-field n-body simulation, 5000 particles.
n = 5000;
steps = 25;
rand('seed', 23);
x = rand(n, 1);
y = rand(n, 1);
z = rand(n, 1);
vx = zeros(n, 1);
vy = zeros(n, 1);
vz = zeros(n, 1);
G = 0.5;
dt = 0.005;
soft = 0.05;
mu = 0.01;
trace = zeros(1, steps);
for s = 1:steps
    cx = mean(x);
    cy = mean(y);
    cz = mean(z);
    dx = cx - x;
    dy = cy - y;
    dz = cz - z;
    r2 = dx .* dx + dy .* dy + dz .* dz + soft;
    r = sqrt(r2);
    rinv3 = 1.0 ./ (r2 .* r);
    % mean-field gravity with a short-range softening correction and
    % a weak velocity-dependent drag (dynamical friction)
    corr = 1.0 + soft ./ r2 + (soft * soft) ./ (r2 .* r2);
    ax = G * dx .* rinv3 .* corr - mu * vx .* abs(vx);
    ay = G * dy .* rinv3 .* corr - mu * vy .* abs(vy);
    az = G * dz .* rinv3 .* corr - mu * vz .* abs(vz);
    vx = vx + dt * ax;
    vy = vy + dt * ay;
    vz = vz + dt * az;
    x = x + dt * vx;
    y = y + dt * vy;
    z = z + dt * vz;
    trace(s) = x(1);                 % ML_broadcast + owner-guarded store
end
ke = sum(vx .* vx + vy .* vy + vz .* vz) / 2;
fprintf('nbody: ke=%.6e cx=%.6f trace=%.6f\n', ke, mean(x), trace(steps));
