"""Benchmark workloads and harnesses for every table and figure in the
paper's evaluation (see DESIGN.md for the experiment index)."""

from .calibration import (
    CLUSTER_PLATEAU_FACTOR,
    FIG2_CLAIMS,
    FIG_MEIKO16_BANDS,
    MEIKO16_ORDERING,
    Band,
)
from .figures import (
    Figure2,
    SpeedupFigure,
    SystemRow,
    TABLE1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    speedup_figure,
    table1,
)
from .harness import BenchHarness, SingleCpuResult, SpeedupCurve
from .report import render_figure2, render_speedup_figure, render_table1
from .workloads import (
    ALL_KEYS,
    PAPER_SCALE,
    SMALL_SCALE,
    Workload,
    all_workloads,
    conjugate_gradient,
    image_filter,
    make_workload,
    nbody,
    ocean_engineering,
    transitive_closure,
)

__all__ = [
    "Band", "FIG2_CLAIMS", "FIG_MEIKO16_BANDS", "MEIKO16_ORDERING",
    "CLUSTER_PLATEAU_FACTOR",
    "Figure2", "SpeedupFigure", "SystemRow", "TABLE1",
    "figure2", "figure3", "figure4", "figure5", "figure6",
    "speedup_figure", "table1",
    "BenchHarness", "SingleCpuResult", "SpeedupCurve",
    "render_figure2", "render_speedup_figure", "render_table1",
    "ALL_KEYS", "PAPER_SCALE", "SMALL_SCALE", "Workload", "all_workloads",
    "conjugate_gradient", "image_filter", "make_workload", "nbody",
    "ocean_engineering", "transitive_closure",
]
