"""An interactive MATLAB prompt over the reference interpreter.

``python -m repro repl`` gives the edit–run loop the paper's scientists
worked in: a persistent workspace, immediate display of unsuppressed
results, M-file functions resolved from the current directory, and a few
workspace directives:

* ``whos``  — list variables with size/type
* ``clear`` / ``clear x y`` — drop variables
* ``profile on`` / ``profile report`` — the line profiler
* ``run <file.m> [nprocs]`` — compile the file through the process-wide
  compile cache (docs/SERVICE.md) and execute it on the simulated
  parallel machine; repeat runs are warm cache hits
* ``quit`` / ``exit``

The REPL feeds each input through the real pipeline (parse → resolve with
the workspace's names predefined → interpret against the persistent
environment), so its behaviour is exactly the test suite's semantics.
Multi-line constructs (``for``/``if``/...) are accepted by continuing the
prompt until the block closes.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

import numpy as np

from .analysis.resolve import resolve_program
from .errors import OtterError
from .frontend.mfile import EMPTY_PROVIDER, MFileProvider
from .frontend.parser import parse_script
from .interp.costmodel import CostMeter
from .interp.interpreter import Interpreter
from .interp.profiler import LineProfiler
from .mpi.machine import MEIKO_CS2

_OPENERS = ("if", "for", "while", "switch", "function")


def _block_delta(line: str) -> int:
    """Net block depth of one input line (crude but effective)."""
    depth = 0
    code = line.split("%", 1)[0]
    in_str = False
    tokens = []
    word = ""
    for ch in code:
        if ch == "'":
            in_str = not in_str
        if in_str:
            word = ""
            continue
        if ch.isalnum() or ch == "_":
            word += ch
        else:
            if word:
                tokens.append(word)
            word = ""
    if word:
        tokens.append(word)
    for tok in tokens:
        if tok in _OPENERS:
            depth += 1
        elif tok == "end":
            depth -= 1
    return depth


class Repl:
    """A scriptable REPL (tests drive it with an input list)."""

    def __init__(self, provider: MFileProvider | None = None,
                 out: Optional[Callable[[str], None]] = None,
                 seed: int = 0):
        self.provider = provider or EMPTY_PROVIDER
        self.output: list[str] = []
        self._out = out or self.output.append
        self.seed = seed
        self.profiler: LineProfiler | None = None
        self.meter = CostMeter(MEIKO_CS2.cpu.interpreter_params())
        self._interp = self._fresh_interpreter()
        self._history: list[str] = []

    def _fresh_interpreter(self) -> Interpreter:
        program = resolve_program(parse_script("", "repl"), self.provider)
        interp = Interpreter(program, out=self._out, meter=self.meter,
                             seed=self.seed, profiler=self.profiler)
        return interp

    # ------------------------------------------------------------------ #

    @property
    def workspace(self) -> dict:
        return self._interp.workspace

    def submit(self, source: str) -> bool:
        """Execute one (possibly multi-line) input.  Returns False when
        the session should end."""
        stripped = source.strip()
        if not stripped:
            return True
        if self._directive(stripped):
            return stripped not in ("quit", "exit")
        self._history.append(source)
        try:
            program = resolve_program(
                parse_script(source, "repl"), self.provider,
                predefined=set(self.workspace))
        except OtterError as exc:
            self._out(f"??? {exc}\n")
            return True
        interp = Interpreter(program, out=self._out, meter=self.meter,
                             seed=self.seed, profiler=self.profiler)
        interp.workspace = self._interp.workspace
        interp.globals = self._interp.globals
        interp.rng = self._interp.rng
        try:
            interp.run()
        except OtterError as exc:
            self._out(f"??? {exc}\n")
        self._interp = interp
        return True

    # ------------------------------------------------------------------ #
    # directives
    # ------------------------------------------------------------------ #

    def _directive(self, line: str) -> bool:
        parts = line.replace(";", "").split()
        if not parts:
            return False
        head = parts[0]
        if head in ("quit", "exit"):
            return True
        if head == "whos":
            self._out(self._whos())
            return True
        if head == "clear":
            if len(parts) == 1:
                self.workspace.clear()
            else:
                for name in parts[1:]:
                    self.workspace.pop(name, None)
            return True
        if head == "profile":
            mode = parts[1] if len(parts) > 1 else "report"
            if mode == "on":
                self.profiler = LineProfiler()
                self._interp.profiler = self.profiler
            elif mode == "off":
                self.profiler = None
                self._interp.profiler = None
            elif mode == "report":
                if self.profiler is None:
                    self._out("profiling is off (use 'profile on')\n")
                else:
                    self._out(self.profiler.report() + "\n")
            return True
        if head == "run" and len(parts) > 1:
            self._run_file(parts[1:])
            return True
        if head == "help":
            self._out("directives: whos, clear [names], profile on|off|"
                      "report, run <file.m> [nprocs], quit\n")
            return True
        return False

    def _run_file(self, argv: list[str]) -> None:
        """``run <file.m> [nprocs]``: compile through the shared compile
        cache and execute on the simulated parallel machine.  The REPL
        workspace is untouched — the script runs in its own context."""
        import os

        from .service.cache import get_compile_cache

        machine = MEIKO_CS2
        path = argv[0]
        try:
            nprocs = int(argv[1]) if len(argv) > 1 else 1
        except ValueError:
            self._out(f"run: nprocs must be an integer (got {argv[1]!r})\n")
            return
        try:
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            self._out(f"run: {exc}\n")
            return
        name = os.path.splitext(os.path.basename(path))[0]
        try:
            outcome = get_compile_cache().get_or_compile(
                source, name=name, provider=self.provider,
                nprocs=nprocs, machine=machine)
            result = outcome.program.run(nprocs=nprocs, machine=machine,
                                         seed=self.seed)
        except OtterError as exc:
            self._out(f"??? {exc}\n")
            return
        self._out(result.output)
        self._out(f"[run] {nprocs} rank(s) of {machine.name}: "
                  f"{result.elapsed * 1e3:.3f} ms modeled; "
                  f"cache {outcome.describe()}\n")

    def _whos(self) -> str:
        if not self.workspace:
            return "(empty workspace)\n"
        lines = [f"  {'Name':10s} {'Size':>9s}  {'Bytes':>8s}  Class"]
        for name in sorted(self.workspace):
            value = self.workspace[name]
            if isinstance(value, str):
                cls, nbytes = "char", len(value)
                size = f"1x{len(value)}"
            else:
                arr = np.atleast_2d(np.asarray(value))
                cls = "complex" if np.iscomplexobj(arr) else "double"
                nbytes = arr.nbytes
                size = f"{arr.shape[0]}x{arr.shape[1]}"
            lines.append(f"  {name:10s} {size:>9s}  {nbytes:>8d}  {cls}")
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------ #
    # line-oriented driving (interactive or scripted)
    # ------------------------------------------------------------------ #

    def run_lines(self, lines: Iterable[str]) -> None:
        """Feed prompt lines, buffering multi-line blocks."""
        buffer: list[str] = []
        depth = 0
        for line in lines:
            buffer.append(line)
            depth += _block_delta(line)
            if depth > 0:
                continue
            depth = 0
            source = "\n".join(buffer)
            buffer = []
            if not self.submit(source):
                return

    def interact(self) -> None:  # pragma: no cover - needs a tty
        print("Otter MATLAB REPL — 'help' for directives, 'quit' to leave.")
        buffer: list[str] = []
        depth = 0
        while True:
            try:
                prompt = ">> " if depth == 0 else ".. "
                line = input(prompt)
            except (EOFError, KeyboardInterrupt):
                print()
                return
            buffer.append(line)
            depth += _block_delta(line)
            if depth > 0:
                continue
            depth = 0
            source = "\n".join(buffer)
            buffer = []
            if not self.submit(source):
                return
            for chunk in self.output:
                print(chunk, end="")
            self.output.clear()


def main(provider: MFileProvider | None = None) -> int:  # pragma: no cover
    Repl(provider).interact()
    return 0
