"""Exception hierarchy for the Otter reproduction.

Every subsystem raises a subclass of :class:`OtterError` so callers can
distinguish user-program problems (syntax, type, runtime) from internal
invariant violations.
"""

from __future__ import annotations


class OtterError(Exception):
    """Base class for all errors raised by this package."""


class SourceLocation:
    """A (file, line, column) triple attached to diagnostics.

    ``line`` and ``col`` are 1-based, matching editor conventions and the
    MATLAB interpreter's own error messages.
    """

    __slots__ = ("filename", "line", "col")

    def __init__(self, filename: str = "<script>", line: int = 0, col: int = 0):
        self.filename = filename
        self.line = line
        self.col = col

    def __repr__(self) -> str:
        return f"{self.filename}:{self.line}:{self.col}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SourceLocation)
            and (self.filename, self.line, self.col)
            == (other.filename, other.line, other.col)
        )

    def __hash__(self) -> int:
        return hash((self.filename, self.line, self.col))


class DiagnosticError(OtterError):
    """An error with an attached source location."""

    def __init__(self, message: str, loc: SourceLocation | None = None):
        self.loc = loc or SourceLocation()
        super().__init__(f"{self.loc}: {message}")
        self.message = message


class LexError(DiagnosticError):
    """Raised by the scanner on malformed input."""


class ParseError(DiagnosticError):
    """Raised by the parser on a syntax error."""


class ResolutionError(DiagnosticError):
    """Raised during identifier resolution (pass 2)."""


class InferenceError(DiagnosticError):
    """Raised during type/shape/rank inference (pass 3)."""


class LoweringError(DiagnosticError):
    """Raised during expression rewriting / IR construction (passes 4-6)."""


class CodegenError(DiagnosticError):
    """Raised by a backend (pass 7)."""


class MatlabRuntimeError(OtterError):
    """Raised when executing MATLAB semantics (interpreter or runtime lib)."""


class MpiError(OtterError):
    """Raised by the simulated MPI layer on protocol misuse."""


class MpiTimeoutError(MpiError):
    """A simulated rank waited longer than a configured timeout.

    Raised when a recv/collective exceeds the virtual-clock patience of
    an active :class:`~repro.mpi.faults.FaultPlan`, or (as the
    :class:`SpmdWatchdogError` subclass) when the host-wall-clock
    watchdog expires.  ``wait_graph`` carries the blocked-rank report —
    the same structure the lockstep scheduler builds for deadlocks — so
    a timed-out run always says *who* was waiting on *what*.
    """

    def __init__(self, message: str, wait_graph: str | None = None):
        if wait_graph:
            message = f"{message}\n{wait_graph}"
        super().__init__(message)
        self.wait_graph = wait_graph


class SpmdWatchdogError(MpiTimeoutError):
    """The host-wall-clock watchdog expired: the SPMD run was aborted
    instead of hanging (the free-running threads backend cannot detect
    deadlock on its own)."""


class MpiRetryExhaustedError(MpiTimeoutError):
    """The recovery layer's bounded retry budget ran out: a message was
    re-sent ``max_retries`` times and the chaotic network failed every
    attempt.  A timeout subclass because that is what the simulated
    sender observes — its ack timer fired one time too many."""


class MpiCorruptionError(MpiError):
    """A received message failed its integrity check (the payload was
    corrupted in transit — only injectable via a fault plan)."""


class RankCrashedError(MpiError):
    """A fault plan killed this rank mid-program; propagates through the
    normal abort path so peers unwind instead of deadlocking."""


class FusionDivergence(OtterError):
    """Raised under the ``fused`` SPMD backend when a program's control
    flow (or an operation without a fused path) would depend on the
    individual rank.  ``run_spmd`` catches it and transparently re-runs
    the program under ``lockstep`` — fusion is an optimization, never a
    semantics change."""


class DistributionError(OtterError):
    """Raised by the data-distribution machinery on invalid layouts."""
