"""Trace exporters: canonical text, Chrome ``trace_event`` JSON, and
the compiler-pass timing report.

Canonical output is the determinism contract: it contains only virtual
state (event order ``(rank, seq)``, virtual timestamps via ``repr`` for
full float precision) and therefore must be byte-identical run to run
and — for the event kinds every backend emits identically — across
backends.  Host timestamps, scheduler notes, and pass timings are
advisory and appear only in the Chrome export.
"""

from __future__ import annotations

import json
from typing import Any, Optional

import numpy as np

from .recorder import WorldTrace


def _fmt(value: Any) -> str:
    # numpy scalars normalize to the Python value first: repr of a
    # np.float64 is "np.float64(...)" which would leak the substrate's
    # array representation into the canonical bytes (float64 <-> float
    # conversion is exact, so this changes nothing for plain floats)
    if isinstance(value, float):
        return repr(float(value))
    if isinstance(value, np.integer):
        return str(int(value))
    return str(value)


def canonical_events(trace: WorldTrace) -> str:
    """Byte-deterministic text serialization of the event stream.

    One line per event, ``(rank, seq)`` order, floats via ``repr``;
    host time is deliberately absent."""
    out = []
    for e in trace.events():
        args = " ".join(f"{k}={_fmt(v)}" for k, v in sorted(e.args.items()))
        out.append(f"r{e.rank} #{e.seq} {e.name} cat={e.cat} "
                   f"line={e.line} t0={_fmt(e.t0)} dur={_fmt(e.dur)}"
                   + (f" {args}" if args else ""))
    return "\n".join(out) + ("\n" if out else "")


def chrome_trace(trace: WorldTrace,
                 pass_timings: Optional[list[tuple[str, float]]] = None
                 ) -> dict:
    """A Chrome ``trace_event`` document (open in Perfetto / chrome://
    tracing).  Rank timelines use the *virtual* clock (µs); the
    compiler-pass and scheduler tracks carry advisory host timings on
    separate process ids so they never mix with modeled time."""
    events: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": 1,
         "args": {"name": "simulated ranks (virtual time)"}},
    ]
    for rank in range(trace.nprocs):
        events.append({"name": "thread_name", "ph": "M", "pid": 1,
                       "tid": rank, "args": {"name": f"rank {rank}"}})
    for e in trace.events():
        args = dict(e.args)
        if e.line:
            args["line"] = e.line
        events.append({
            "name": e.name, "cat": e.cat, "ph": "X", "pid": 1,
            "tid": e.rank, "ts": e.t0 * 1e6, "dur": e.dur * 1e6,
            "args": args,
        })
    if pass_timings:
        events.append({"name": "process_name", "ph": "M", "pid": 2,
                       "args": {"name": "compiler passes (host time)"}})
        ts = 0.0
        for name, seconds in pass_timings:
            events.append({"name": name, "cat": "pass", "ph": "X",
                           "pid": 2, "tid": 0, "ts": ts,
                           "dur": seconds * 1e6})
            ts += seconds * 1e6
    if trace.sched_notes:
        events.append({"name": "process_name", "ph": "M", "pid": 3,
                       "args": {"name": "lockstep scheduler (host time)"}})
        base = trace.sched_notes[0][0]
        for host, rank, what in trace.sched_notes:
            events.append({"name": f"park:{what}", "cat": "sched",
                           "ph": "i", "pid": 3, "tid": rank,
                           "ts": (host - base) * 1e6, "s": "t"})
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otterMeta": dict(trace.meta)}


def write_chrome_trace(trace: WorldTrace, path: str,
                       pass_timings: Optional[list] = None) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(trace, pass_timings), fh)
        fh.write("\n")


def pass_report(pass_timings: list[tuple[str, float]],
                tune=None, native=None, cache=None) -> str:
    """Compiler-pass timing table (host seconds; advisory).

    ``tune`` is an optional :class:`repro.tuning.TuneResult`; when given,
    the plan search's per-candidate cost table and winning plan are
    appended, so a tuned run's trace summary tells the whole story.

    ``native`` is an optional ``RunResult.native`` dict (the native
    kernel tier's counter deltas for the run): kernel compiles and
    cache hits are host-side compiler activity, so they belong in this
    report — never in the canonical trace stream, which the golden
    suite pins byte-identical with the tier on or off.

    ``cache`` is an optional compile-cache outcome description (see
    :meth:`repro.service.cache.CacheOutcome.describe`); on a warm hit
    the pass table below it is empty — the zero-recompile criterion of
    docs/SERVICE.md, made visible."""
    total = sum(seconds for _name, seconds in pass_timings) or 1e-30
    out = []
    if cache is not None:
        out.append(f"[cache] {cache}")
    out += [f"{'pass':<12s} {'time(ms)':>10s} {'%':>6s}",
            "-" * 31]
    for name, seconds in pass_timings:
        out.append(f"{name:<12s} {seconds * 1e3:10.3f} "
                   f"{100.0 * seconds / total:5.1f}%")
    out.append("-" * 31)
    out.append(f"{'total':<12s} {total * 1e3:10.3f} {100.0:5.1f}%")
    if native is not None:
        out.append("")
        out.append(f"native kernel tier (mode {native.get('mode', 'auto')})")
        out.append("-" * 31)
        out.append(f"{'native calls':<18s} {native['native_calls']:>8d}")
        out.append(f"{'kernels loaded':<18s} {native['kernels']:>8d}")
        out.append(f"{'  compiled':<18s} {native['compiles']:>8d}")
        out.append(f"{'  disk cache hits':<18s} {native['disk_hits']:>8d}")
        out.append(f"{'warm call hits':<18s} {native['mem_hits']:>8d}")
        fallbacks = (native["guard_fallbacks"] + native["verify_rejects"]
                     + native["unsupported_specs"] + native["probe_rejects"]
                     + native["signature_fallbacks"]
                     + native["compile_failures"])
        out.append(f"{'numpy fallbacks':<18s} {fallbacks:>8d}")
    if tune is not None:
        out.append("")
        out.append(tune.report())
    return "\n".join(out)
