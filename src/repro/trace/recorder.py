"""Per-rank trace recording for the simulated MPI substrate.

Design constraints (in priority order):

1. **Zero cost when disabled.**  Every call site in the substrate is
   guarded by an ``if rec is not None`` on a cached per-communicator
   reference, so the disabled path costs one attribute read and a
   branch.
2. **Zero perturbation when enabled.**  Recorders only *read* virtual
   state (clocks, byte counts); they never advance a clock, touch the
   RNG, or take a lock.  Enabling tracing cannot change results,
   virtual times, or communication accounting — a property test pins
   this down (tests/trace/test_zero_perturbation.py).
3. **Bit-determinism.**  Each rank appends only to its own recorder, in
   its own deterministic program order, with its own sequence counter.
   The canonical ordering is ``(rank, seq)`` — never host time, never
   arrival order — so the same program + seed + nprocs yields a
   byte-identical canonical trace on every run and on every backend.

Host wall-clock timestamps are recorded as an *advisory* field for the
Chrome exporter and are excluded from canonical serialization and the
golden-trace suite.
"""

from __future__ import annotations

import time
from typing import Any, Optional

import numpy as np

#: per-line accumulator slots (see :mod:`repro.trace.profile`)
_CALLS, _MSGS, _BYTES, _COLLS, _VTIME = range(5)


class TraceEvent:
    """One recorded span/instant on one rank's virtual timeline."""

    __slots__ = ("rank", "seq", "name", "cat", "line", "t0", "dur",
                 "args", "host")

    def __init__(self, rank: int, seq: int, name: str, cat: str,
                 line: int, t0: float, dur: float,
                 args: Optional[dict] = None, host: float = 0.0):
        self.rank = rank
        self.seq = seq
        self.name = name      # e.g. "mpi.send", "allreduce", "compute"
        self.cat = cat        # "mpi"|"compute"|"io"|"fault"|"recovery"|"rt"
        self.line = line      # originating MATLAB source line (0: none)
        self.t0 = t0          # virtual start time (seconds)
        self.dur = dur        # virtual duration (seconds)
        self.args = args or {}
        self.host = host      # advisory host perf_counter timestamp

    def __repr__(self) -> str:  # debugging aid only
        return (f"TraceEvent(r{self.rank}#{self.seq} {self.name} "
                f"line={self.line} t0={self.t0:.9g} dur={self.dur:.9g})")


class RankRecorder:
    """Event log + per-line accumulators for one simulated rank.

    Only the rank's own carrier thread appends (the same discipline
    :class:`~repro.mpi.faults.FaultState` uses), so no locking.  The
    per-line accumulator rows are ``[calls, msgs, bytes, colls,
    vtime]`` keyed by source line; line 0 collects substrate work that
    precedes any marked statement.
    """

    __slots__ = ("rank", "events", "lines", "_seq")

    def __init__(self, rank: int):
        self.rank = rank
        self.events: list[TraceEvent] = []
        self.lines: dict[int, list] = {}
        self._seq = 0

    # -- low-level ------------------------------------------------------- #

    def _row(self, line: int) -> list:
        row = self.lines.get(line)
        if row is None:
            row = [0, 0, 0, 0, 0.0]
            self.lines[line] = row
        return row

    def event(self, name: str, cat: str, line: int, t0: float,
              dur: float, **args: Any) -> None:
        """Append a raw event (no accumulator side effects)."""
        self.events.append(TraceEvent(
            self.rank, self._seq, name, cat, line, t0, dur, args,
            host=time.perf_counter()))
        self._seq += 1

    # -- substrate hooks -------------------------------------------------- #
    # Each hook mirrors exactly one clock/counter mutation in the MPI
    # layer, so per-line vtime sums to the rank's final clock and the
    # msgs/bytes/colls totals match the World counters (invariants
    # asserted in tests/trace/test_trace_layer.py).

    def charge(self, line: int, dt: float) -> None:
        """Virtual seconds charged by ``advance`` (compute/overhead)."""
        self._row(line)[_VTIME] += dt

    def calls(self, line: int, n: int) -> None:
        """Run-time-library call tally (``overhead``)."""
        self._row(line)[_CALLS] += n

    def compute(self, line: int, t0: float, dt: float) -> None:
        """A local-computation span (time itself is charged by the
        ``advance`` that follows — this only records the event)."""
        self.event("compute", "compute", line, t0, dt)

    def send(self, line: int, t0: float, dur: float, dest: int,
             tag: int, nbytes: int) -> None:
        self.event("mpi.send", "mpi", line, t0, dur,
                   dest=dest, tag=tag, bytes=nbytes)
        row = self._row(line)
        row[_MSGS] += 1
        row[_BYTES] += nbytes
        row[_VTIME] += dur

    def extra_copies(self, line: int, copies: int, nbytes: int) -> None:
        """Fault-injected duplicates that crossed the wire (mirrors the
        explicit ``messages_sent``/``bytes_sent`` accounting)."""
        row = self._row(line)
        row[_MSGS] += copies
        row[_BYTES] += nbytes

    def recv(self, line: int, t0: float, dur: float, source: int,
             tag: int, nbytes: int) -> None:
        self.event("mpi.recv", "mpi", line, t0, dur,
                   source=source, tag=tag, bytes=nbytes)
        row = self._row(line)
        row[_VTIME] += dur

    def collective(self, op: str, line: int, t0: float, dur: float,
                   nbytes: int) -> None:
        self.event(op, "mpi", line, t0, dur, bytes=nbytes)
        row = self._row(line)
        row[_COLLS] += 1
        row[_VTIME] += dur

    def fault(self, text: str, t0: float) -> None:
        """An injected chaos event (same stream as everything else, so
        chaos tests assert on events instead of scraping stderr)."""
        self.event("fault", "fault", 0, t0, 0.0, what=text)

    def recovery(self, name: str, t0: float, **args: Any) -> None:
        """A self-healing event — ``retry`` / ``rollback`` /
        ``restart`` / ``degrade`` (see docs/OBSERVABILITY.md for the
        per-name args schema).  Zero-fault runs record none, so golden
        traces are untouched."""
        self.event(name, "recovery", 0, t0, 0.0, **args)

    def io(self, line: int, t0: float, nbytes: int) -> None:
        """Coordinated output written by rank 0."""
        self.event("io.write", "io", line, t0, 0.0, bytes=nbytes)

    # -- views ------------------------------------------------------------ #

    @property
    def vtime_total(self) -> float:
        return sum(row[_VTIME] for row in self.lines.values())


class WorldTrace:
    """All recorders of one SPMD execution, plus advisory side data."""

    def __init__(self, nprocs: int):
        self.nprocs = nprocs
        self.recorders = [RankRecorder(rank) for rank in range(nprocs)]
        #: advisory: (host_time, rank, reason) scheduler park notes
        self.sched_notes: list[tuple[float, int, str]] = []
        #: run metadata stamped by the executor (backend, machine, ...)
        self.meta: dict[str, Any] = {}

    # -- scheduler hook ---------------------------------------------------- #

    def sched_note(self, rank: int, what: str) -> None:
        """Called by the lockstep scheduler under its lock (host-time
        advisory data; never part of the canonical trace)."""
        self.sched_notes.append((time.perf_counter(), rank, what))

    # -- vectorized hooks (fused backend) ----------------------------------- #
    # One call charges every rank from numpy per-rank columns instead of
    # P scalar method calls.  Each helper applies exactly the per-rank
    # hook sequence of RankRecorder (same events, same accumulator-row
    # creation — including zero-valued rows), with payloads converted to
    # plain Python floats/ints via ``.tolist()``, so canonical traces
    # and line profiles are byte-identical to a scalar recording of the
    # same schedule.

    def batch_charge(self, line: int, dt: float) -> None:
        """``charge(line, dt)`` on every rank (uniform dt)."""
        dt = float(dt)
        for rec in self.recorders:
            rec._row(line)[_VTIME] += dt

    def batch_calls(self, line: int, n: int) -> None:
        """``calls(line, n)`` on every rank."""
        for rec in self.recorders:
            rec._row(line)[_CALLS] += n

    def batch_compute(self, line: int, t0s, dt: float) -> None:
        """A compute event on every rank: per-rank starts, uniform
        duration (the matching charge arrives via batch_charge)."""
        dt = float(dt)
        for rec, t0 in zip(self.recorders, t0s.tolist()):
            rec.event("compute", "compute", line, t0, dt)

    def batch_rank_compute(self, line: int, t0s, dts) -> None:
        """Per-rank compute: event iff that rank's dt > 0, charge
        always (mirrors the fused scalar compute_ranks loop)."""
        for rec, t0, dt in zip(self.recorders,
                               np.asarray(t0s).tolist(),
                               np.broadcast_to(dts,
                                               (self.nprocs,)).tolist()):
            if dt > 0.0:
                rec.event("compute", "compute", line, t0, dt)
            rec._row(line)[_VTIME] += dt

    def batch_collective(self, op: str, line: int, t0s, tnew: float,
                         nbytes: int) -> None:
        """``collective(op, ...)`` on every rank; per-rank durations are
        computed here as ``tnew - t0`` (same expression, same floats as
        the scalar path)."""
        tnew = float(tnew)
        for rec, t0 in zip(self.recorders, t0s.tolist()):
            dur = tnew - t0
            rec.event(op, "mpi", line, t0, dur, bytes=nbytes)
            row = rec._row(line)
            row[_COLLS] += 1
            row[_VTIME] += dur

    def batch_send(self, line: int, t0s, durs, dests, tag: int,
                   nbytes: int) -> None:
        """``send(...)`` on every rank (columns: start, duration,
        destination)."""
        for rec, t0, dur, dest in zip(self.recorders, t0s.tolist(),
                                      durs.tolist(), dests.tolist()):
            rec.event("mpi.send", "mpi", line, t0, dur,
                      dest=dest, tag=tag, bytes=nbytes)
            row = rec._row(line)
            row[_MSGS] += 1
            row[_BYTES] += nbytes
            row[_VTIME] += dur

    def batch_recv(self, line: int, t0s, durs, sources, tag: int,
                   nbytes: int) -> None:
        """``recv(...)`` on every rank (columns: start, duration,
        source)."""
        for rec, t0, dur, source in zip(self.recorders, t0s.tolist(),
                                        durs.tolist(), sources.tolist()):
            rec.event("mpi.recv", "mpi", line, t0, dur,
                      source=source, tag=tag, bytes=nbytes)
            rec._row(line)[_VTIME] += dur

    # -- canonical views ---------------------------------------------------- #

    def events(self):
        """Every event in canonical ``(rank, seq)`` order.  Each
        per-rank list is already seq-ordered, so this is a plain
        rank-major concatenation."""
        for recorder in self.recorders:
            yield from recorder.events

    def fault_events(self) -> list[TraceEvent]:
        return [e for e in self.events() if e.cat == "fault"]

    def recovery_events(self) -> list[TraceEvent]:
        """Self-healing events (retry/rollback/restart/degrade) in
        canonical order — empty unless a non-abort on_fault policy
        actually healed something."""
        return [e for e in self.events() if e.cat == "recovery"]

    def line_profile(self) -> dict[int, Any]:
        """The merged per-source-line communication profile (see
        :func:`repro.trace.profile.merge_line_profiles`)."""
        from .profile import merge_line_profiles

        return merge_line_profiles([r.lines for r in self.recorders])
