"""Deterministic observability for the Otter reproduction.

The trace layer answers the question the paper reasons with — *where
does the (virtual) time go, statement by statement?* — without
perturbing the run it observes:

* :class:`~repro.trace.recorder.WorldTrace` holds one
  :class:`~repro.trace.recorder.RankRecorder` per simulated rank.  The
  MPI substrate (``Comm``/``FusedComm``/``World``), the runtime library,
  and the fault injector append events to the recorder of the acting
  rank only, so no locking is ever needed — even under the free-running
  ``threads`` backend.
* Events are stamped with the **virtual clock**; host time is carried as
  an advisory side-channel and excluded from canonical output.  Because
  per-rank virtual-clock trajectories are bit-identical across the
  ``lockstep``/``threads``/``fused`` backends (the repo's standing
  differential invariant), the canonical trace is too.
* :mod:`repro.trace.profile` folds events into the per-source-line
  communication profile (calls, messages, bytes, collectives, virtual
  seconds per statement) shared by the interpreter's ``--profile`` and
  the compiler's ``--trace-summary``.
* :mod:`repro.trace.export` renders Chrome ``trace_event`` JSON
  (viewable in Perfetto), the canonical event text, and the
  compiler-pass timing report.

See docs/OBSERVABILITY.md for the event taxonomy and the determinism
guarantees.
"""

from .recorder import RankRecorder, TraceEvent, WorldTrace
from .profile import (
    ProfileRow,
    merge_line_profiles,
    render_ranked_profile,
    render_source_profile,
)
from .export import (
    canonical_events,
    chrome_trace,
    pass_report,
    write_chrome_trace,
)

__all__ = [
    "RankRecorder",
    "TraceEvent",
    "WorldTrace",
    "ProfileRow",
    "merge_line_profiles",
    "render_ranked_profile",
    "render_source_profile",
    "canonical_events",
    "chrome_trace",
    "pass_report",
    "write_chrome_trace",
]
