"""The per-source-line communication profile and its renderers.

This is the table the paper reasons with: for every MATLAB statement,
how many run-time-library calls it made, how many messages and bytes it
moved, how many collectives it entered, and how many virtual seconds it
cost.  The same renderer serves the interpreter's ``--profile`` and the
compiled ``--trace-summary`` (and the golden-trace suite, which pins the
rendered bytes across backends and runs).

Merge semantics across ranks (all bit-deterministic, because every
per-rank accumulator is built by the same float-add sequence on every
backend):

* ``calls``/``colls`` — rank 0's counts (loosely synchronous SPMD: every
  rank executes the same statements, so rank 0 is representative and the
  collective count matches ``World.collectives`` exactly);
* ``msgs``/``bytes`` — summed over ranks (matches ``messages_sent`` /
  ``bytes_sent``);
* ``time`` — the maximum over ranks (the statement's modeled wall time:
  the slowest rank).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

#: accumulator slots (shared with :mod:`repro.trace.recorder`)
_CALLS, _MSGS, _BYTES, _COLLS, _VTIME = range(5)

HEADER = (f"{'line':>6s} {'calls':>8s} {'msgs':>7s} {'bytes':>12s} "
          f"{'colls':>6s} {'time(ms)':>10s} {'%':>6s}  source")
RULE = "-" * 78


@dataclass
class ProfileRow:
    """One source line's accumulated profile."""

    calls: int = 0
    msgs: int = 0
    bytes: int = 0
    colls: int = 0
    time: float = 0.0

    @property
    def hits(self) -> int:
        """Interpreter-profiler name for the call/execution count."""
        return self.calls


def merge_line_profiles(
        rank_lines: Iterable[Mapping[int, list]]) -> dict[int, ProfileRow]:
    """Fold per-rank ``{line: [calls, msgs, bytes, colls, vtime]}``
    accumulators into one ``{line: ProfileRow}`` profile."""
    merged: dict[int, ProfileRow] = {}
    for rank, lines in enumerate(rank_lines):
        for line, acc in lines.items():
            row = merged.get(line)
            if row is None:
                row = merged[line] = ProfileRow()
            if rank == 0:
                row.calls += acc[_CALLS]
                row.colls += acc[_COLLS]
            row.msgs += acc[_MSGS]
            row.bytes += acc[_BYTES]
            row.time = max(row.time, acc[_VTIME])
    return merged


def _format_row(line_label: str, row: ProfileRow, total: float,
                source_text: str) -> str:
    pct = 100.0 * row.time / total
    return (f"{line_label:>6s} {row.calls:8d} {row.msgs:7d} "
            f"{row.bytes:12d} {row.colls:6d} {row.time * 1e3:10.3f} "
            f"{pct:5.1f}%  {source_text}")


def _blank_row(line_label: str, source_text: str) -> str:
    return (f"{line_label:>6s} {'':8s} {'':7s} {'':12s} {'':6s} "
            f"{'':10s} {'':6s}  {source_text}")


def render_source_profile(rows: Mapping[int, ProfileRow],
                          source: Optional[str] = None,
                          filename: str = "<script>",
                          elapsed: Optional[float] = None) -> str:
    """ASCII per-line profile.  With ``source``, every script line is
    annotated; rows for lines outside the script (or line 0: substrate
    work before any marked statement) are appended after the listing.

    The output is byte-deterministic: times use fixed-point formatting
    of bit-identical floats, and ``elapsed`` (if given) is rendered with
    ``repr`` so the full precision is pinned."""
    total = sum(row.time for row in rows.values()) or 1e-30
    out = [HEADER, RULE]
    seen: set[int] = set()
    if source is not None:
        for lineno, text in enumerate(source.splitlines(), start=1):
            row = rows.get(lineno)
            seen.add(lineno)
            if row is None:
                out.append(_blank_row(str(lineno), text))
            else:
                out.append(_format_row(str(lineno), row, total, text))
    extra = sorted(line for line in rows if line not in seen)
    for lineno in extra:
        label = "-" if lineno == 0 else str(lineno)
        out.append(_format_row(label, rows[lineno], total,
                               "(no source line)" if lineno == 0
                               else filename))
    out.append(RULE)
    totals = ProfileRow(
        calls=sum(r.calls for r in rows.values()),
        msgs=sum(r.msgs for r in rows.values()),
        bytes=sum(r.bytes for r in rows.values()),
        colls=sum(r.colls for r in rows.values()),
        time=sum(r.time for r in rows.values()),
    )
    out.append(_format_row("total", totals, total, ""))
    if elapsed is not None:
        out.append(f"elapsed: {elapsed!r} virtual seconds")
    return "\n".join(out)


def render_ranked_profile(rows: Mapping[tuple[str, int], ProfileRow],
                          top: int = 0) -> str:
    """Hottest-lines listing for multi-file profiles (interpreter runs
    that cross into M-file functions)."""
    total = sum(row.time for row in rows.values()) or 1e-30
    ranked = sorted(rows.items(), key=lambda item: item[1].time,
                    reverse=True)
    if top:
        ranked = ranked[:top]
    out = [HEADER, RULE]
    for (fname, lineno), row in ranked:
        out.append(_format_row(str(lineno), row, total, fname))
    return "\n".join(out)
