"""MPI datatypes (sizes drive the communication cost model)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Datatype:
    name: str
    size: int  # bytes per element
    np_dtype: object

    def __repr__(self) -> str:
        return f"MPI.{self.name}"


DOUBLE = Datatype("DOUBLE", 8, np.float64)
FLOAT = Datatype("FLOAT", 4, np.float32)
INT = Datatype("INT", 4, np.int32)
LONG = Datatype("LONG", 8, np.int64)
CHAR = Datatype("CHAR", 1, np.int8)
DOUBLE_COMPLEX = Datatype("DOUBLE_COMPLEX", 16, np.complex128)
BYTE = Datatype("BYTE", 1, np.uint8)


def sizeof(obj) -> int:
    """Approximate wire size in bytes of a message payload.

    O(1) for the payload shapes the runtime sends — numpy arrays
    (``.nbytes``) and shallow tuples of arrays; the element-wise
    recursion over deep lists/dicts is the legacy fallback only.
    """
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (float, int)):
        return 8
    if isinstance(obj, complex):
        return 16
    if isinstance(obj, np.generic):
        return obj.itemsize  # numpy scalar (np.int64, np.complex128, ...)
    if isinstance(obj, str):
        return len(obj)
    if isinstance(obj, (tuple, list)):
        return sum(sizeof(x) for x in obj) + 8
    if isinstance(obj, dict):
        return sum(sizeof(k) + sizeof(v) for k, v in obj.items()) + 8
    return 64  # opaque object: header-sized guess
