"""SPMD launcher for the simulated MPI layer.

``run_spmd`` starts one carrier thread per rank, hands each a
:class:`~repro.mpi.comm.Comm`, and collects results, per-rank virtual
times, and any exception.  A failure on one rank aborts the world so
peers blocked in ``recv``/collectives unwind instead of deadlocking.

Two backends execute the rank programs (``backend=`` argument, or the
``REPRO_SPMD_BACKEND`` environment variable; default ``lockstep``):

``lockstep``
    Cooperative: a :class:`~repro.mpi.scheduler.LockstepScheduler`
    gates the carrier threads so exactly one rank runs at a time,
    parking at blocking points and handing off.  Deterministic, nearly
    free per extra rank, and it *detects* deadlock (reporting the full
    blocked-rank wait graph) instead of hanging.

``threads``
    Free-running OS threads rendezvousing on a condition variable.
    Kept for differential testing of the scheduler: both backends must
    produce identical virtual times and communication statistics.

``fused``
    Rank fusion: the program runs **once** with a
    :class:`~repro.mpi.fused.FusedComm` carrying all ranks' state, so
    the interpreter's control-flow overhead is paid once instead of P
    times.  Accounting (virtual clocks, message/byte/collective counts)
    is bit-identical to ``lockstep``.  If the program turns out to be
    rank-dependent (it reads ``comm.rank``, or hits an op with no fused
    path), the run raises :class:`~repro.errors.FusionDivergence` and
    ``run_spmd`` transparently re-runs it under ``lockstep`` — fusion is
    an optimization, never a semantics change.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..errors import FusionDivergence, MpiError
from .comm import Comm, World, _Abort
from .fused import FusedComm
from .machine import MachineModel
from .scheduler import LockstepScheduler

BACKENDS = ("lockstep", "threads", "fused")

#: environment override for the default backend (used by the CI matrix
#: to run the whole suite under each backend)
BACKEND_ENV_VAR = "REPRO_SPMD_BACKEND"


def resolve_backend(backend: Optional[str] = None) -> str:
    """Pick the SPMD backend: explicit argument > environment > default."""
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR) or "lockstep"
    if backend not in BACKENDS:
        raise MpiError(
            f"unknown SPMD backend {backend!r} (expected one of "
            f"{', '.join(BACKENDS)})")
    return backend


@dataclass
class SpmdResult:
    """Outcome of one SPMD execution."""

    results: list[Any]
    times: list[float]            # final virtual clock per rank
    machine: MachineModel
    nprocs: int
    messages_sent: int = 0
    bytes_sent: int = 0
    collectives: int = 0
    collective_counts: dict[str, int] = field(default_factory=dict)
    backend: str = "lockstep"

    @property
    def elapsed(self) -> float:
        """Virtual wall-clock of the run: the slowest rank."""
        return max(self.times) if self.times else 0.0


def run_spmd(nprocs: int, machine: MachineModel,
             fn: Callable[..., Any], *args: Any,
             backend: Optional[str] = None,
             on_fused_fallback: Optional[Callable[[], Any]] = None,
             **kwargs: Any) -> SpmdResult:
    """Run ``fn(comm, *args, **kwargs)`` on ``nprocs`` simulated ranks.

    ``on_fused_fallback`` is invoked (if given) when a ``fused`` run
    diverges, *before* the lockstep re-run — callers use it to discard
    any partial side effects the aborted fused pass left behind.
    """
    backend = resolve_backend(backend)
    if backend == "fused":
        comm = FusedComm(nprocs, machine)  # validates nprocs vs machine
        try:
            result = fn(comm, *args, **kwargs)
        except FusionDivergence:
            if on_fused_fallback is not None:
                on_fused_fallback()
            return run_spmd(nprocs, machine, fn, *args,
                            backend="lockstep", **kwargs)
        except BaseException as exc:  # noqa: BLE001 - parity with lockstep
            raise MpiError(f"rank 0 failed: {exc}") from exc
        world = comm.world
        return SpmdResult(
            results=[result] * nprocs,
            times=list(world.clocks),
            machine=machine,
            nprocs=nprocs,
            messages_sent=world.messages_sent,
            bytes_sent=world.bytes_sent,
            collectives=world.collectives,
            collective_counts=dict(world.collective_counts),
            backend="fused",
        )
    scheduler = LockstepScheduler(nprocs) if backend == "lockstep" else None
    world = World(nprocs, machine, scheduler=scheduler)
    if scheduler is not None:
        scheduler.on_deadlock = world.abort
    results: list[Any] = [None] * nprocs
    errors: list[tuple[int, BaseException]] = []
    lock = threading.Lock()

    def worker(rank: int) -> None:
        comm = Comm(world, rank)
        if scheduler is not None:
            scheduler.start_rank(rank)
        try:
            if world.aborted is None:
                results[rank] = fn(comm, *args, **kwargs)
        except _Abort:
            pass  # a peer failed; its error is the one to report
        except BaseException as exc:  # noqa: BLE001 - must not deadlock
            with lock:
                errors.append((rank, exc))
            world.abort(exc)
            if scheduler is not None:
                scheduler.abort()
        finally:
            if scheduler is not None:
                scheduler.finish_rank(rank)

    if scheduler is not None:
        scheduler.kickoff()
    if nprocs == 1:
        # fast path: no threads needed (the baton, if any, is pre-set)
        worker(0)
    else:
        threads = [threading.Thread(target=worker, args=(rank,),
                                    name=f"spmd-rank-{rank}", daemon=True)
                   for rank in range(nprocs)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    if errors:
        rank, exc = min(errors, key=lambda pair: pair[0])
        raise MpiError(f"rank {rank} failed: {exc}") from exc
    if world.aborted is not None:
        # no rank raised, yet the world aborted: the scheduler detected
        # a deadlock and recorded the wait graph as the abort cause
        if isinstance(world.aborted, MpiError):
            raise world.aborted
        raise MpiError(f"SPMD run aborted: {world.aborted}")

    return SpmdResult(
        results=results,
        times=list(world.clocks),
        machine=machine,
        nprocs=nprocs,
        messages_sent=world.messages_sent,
        bytes_sent=world.bytes_sent,
        collectives=world.collectives,
        collective_counts=dict(world.collective_counts),
        backend=backend,
    )
