"""SPMD launcher for the simulated MPI layer.

``run_spmd`` starts one carrier thread per rank, hands each a
:class:`~repro.mpi.comm.Comm`, and collects results, per-rank virtual
times, and any exception.  A failure on one rank aborts the world so
peers blocked in ``recv``/collectives unwind instead of deadlocking.

Two backends execute the rank programs (``backend=`` argument, or the
``REPRO_SPMD_BACKEND`` environment variable; default ``lockstep``):

``lockstep``
    Cooperative: a :class:`~repro.mpi.scheduler.LockstepScheduler`
    gates the carrier threads so exactly one rank runs at a time,
    parking at blocking points and handing off.  Deterministic, nearly
    free per extra rank, and it *detects* deadlock (reporting the full
    blocked-rank wait graph) instead of hanging.

``threads``
    Free-running OS threads rendezvousing on a condition variable.
    Kept for differential testing of the scheduler: both backends must
    produce identical virtual times and communication statistics.

``fused``
    Rank fusion: the program runs **once** with a
    :class:`~repro.mpi.fused.FusedComm` carrying all ranks' state, so
    the interpreter's control-flow overhead is paid once instead of P
    times.  Accounting (virtual clocks, message/byte/collective counts)
    is bit-identical to ``lockstep``.  If the program turns out to be
    rank-dependent (it reads ``comm.rank``, or hits an op with no fused
    path), the run raises :class:`~repro.errors.FusionDivergence` and
    ``run_spmd`` transparently re-runs it under ``lockstep`` — fusion is
    an optimization, never a semantics change.

Self-healing (``on_fault=`` / ``$REPRO_ON_FAULT``; see
:mod:`repro.mpi.recovery` and docs/RESILIENCE.md): with a non-abort
policy, a faulted run retries dropped/corrupted messages at the comm
layer, and — under ``restart``/``degrade`` — replays terminal faults
(crashes, timeouts, fault-induced deadlocks) from the last checkpoint
up to ``max_restarts`` times, with ``degrade`` returning a partial
result carrying a :class:`~repro.mpi.recovery.RecoveryReport` instead
of raising when the budget runs out.  One host-watchdog budget covers
the *whole* call: the fused attempt, any lockstep fallback, and every
restart attempt draw down the same allowance.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..errors import FusionDivergence, MpiCorruptionError, MpiError, \
    MpiTimeoutError, RankCrashedError, SpmdWatchdogError
from .comm import Comm, World, _Abort
from .faults import FaultPlan, FaultState, load_plan
from .fused import FusedComm
from .machine import MachineModel
from .recovery import ActiveRecovery, RecoveryReport, resolve_recovery
from .scheduler import DeadlockError, LockstepScheduler

BACKENDS = ("lockstep", "threads", "fused")

#: environment override for the default backend (used by the CI matrix
#: to run the whole suite under each backend)
BACKEND_ENV_VAR = "REPRO_SPMD_BACKEND"

#: environment default for the chaos fault plan (inline spec or a path)
FAULT_PLAN_ENV_VAR = "REPRO_FAULT_PLAN"

#: environment default for the host-wall-clock watchdog (seconds)
WATCHDOG_ENV_VAR = "REPRO_WATCHDOG_SECONDS"

#: environment default for trace recording (any non-empty value except
#: "0" enables it; the CLI additionally interprets the value — see
#: docs/OBSERVABILITY.md)
TRACE_ENV_VAR = "REPRO_TRACE"

#: environment default for plan autotuning ("0"/"" off, "1"/other truthy
#: on with the default candidate budget, an integer sets the budget)
TUNE_ENV_VAR = "REPRO_TUNE"

#: candidate budget used when tuning is enabled without an explicit one
DEFAULT_TUNE_BUDGET = 64

#: after an abort, give wedged carrier threads this long to unwind
#: before abandoning them (they are daemons; the process stays healthy)
_TEARDOWN_GRACE = 5.0


def resolve_backend(backend: Optional[str] = None) -> str:
    """Pick the SPMD backend: explicit argument > environment > default."""
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR) or "lockstep"
    if backend not in BACKENDS:
        raise MpiError(
            f"unknown SPMD backend {backend!r} (expected one of "
            f"{', '.join(BACKENDS)})")
    return backend


def resolve_fault_plan(fault_plan=None) -> Optional[FaultPlan]:
    """Pick the chaos plan: explicit argument > $REPRO_FAULT_PLAN > none.

    Accepts a :class:`FaultPlan`, an inline spec string, or a path."""
    if fault_plan is not None:
        return load_plan(fault_plan)
    return load_plan(os.environ.get(FAULT_PLAN_ENV_VAR))


def resolve_trace(trace: Optional[bool] = None) -> bool:
    """Decide whether to record a trace: argument > $REPRO_TRACE > off."""
    if trace is not None:
        return bool(trace)
    raw = os.environ.get(TRACE_ENV_VAR)
    return bool(raw) and raw != "0"


def resolve_tune(tune: Optional[bool] = None,
                 budget: Optional[int] = None) -> Optional[int]:
    """Decide the autotuning candidate budget (None: tuning off).

    ``tune=True`` enables with ``budget`` (or the default);
    ``tune=False`` disables regardless of the environment;
    ``tune=None`` consults ``$REPRO_TUNE``.
    """
    if tune is False:
        return None
    if tune:
        return int(budget) if budget else DEFAULT_TUNE_BUDGET
    raw = os.environ.get(TUNE_ENV_VAR, "")
    if not raw or raw == "0":
        return None
    try:
        value = int(raw)
    except ValueError:
        return int(budget) if budget else DEFAULT_TUNE_BUDGET
    if value <= 0:
        return None
    return value


def resolve_watchdog(watchdog: Optional[float] = None) -> Optional[float]:
    """Pick the host-wall-clock watchdog: argument > environment > off."""
    if watchdog is not None:
        value = float(watchdog)
    else:
        raw = os.environ.get(WATCHDOG_ENV_VAR)
        if not raw:
            return None
        try:
            value = float(raw)
        except ValueError:
            raise MpiError(
                f"{WATCHDOG_ENV_VAR} must be a number of seconds "
                f"(got {raw!r})") from None
    if value <= 0:
        raise MpiError(f"watchdog must be positive (got {value:g}s)")
    return value


@dataclass
class SpmdResult:
    """Outcome of one SPMD execution."""

    results: list[Any]
    times: list[float]            # final virtual clock per rank
    machine: MachineModel
    nprocs: int
    messages_sent: int = 0
    bytes_sent: int = 0
    collectives: int = 0
    collective_counts: dict[str, int] = field(default_factory=dict)
    backend: str = "lockstep"
    #: deterministic log of injected chaos events (rank order), empty
    #: when no fault plan was active; spans *every* restart attempt
    fault_events: list[str] = field(default_factory=list)
    #: the :class:`~repro.trace.WorldTrace` recorded for this run, or
    #: ``None`` when tracing was off (the default)
    trace: Optional[Any] = None
    #: structured self-healing account
    #: (:class:`~repro.mpi.recovery.RecoveryReport`) when a non-abort
    #: ``on_fault`` policy was active, else ``None``.  On a ``degrade``
    #: outcome ``recovery.degraded`` is True and per-rank ``results``
    #: may contain ``None`` for ranks that never finished.
    recovery: Optional[RecoveryReport] = None
    #: per-rank message re-send counts from the retry layer (all zeros
    #: unless retries healed something this attempt)
    rank_retries: list[int] = field(default_factory=list)

    @property
    def elapsed(self) -> float:
        """Virtual wall-clock of the run: the slowest rank."""
        return max(self.times) if self.times else 0.0


def _arm_watchdog(world: World, scheduler, budget: float,
                  total: Optional[float] = None) -> threading.Timer:
    """Start the host-wall-clock watchdog for one execution attempt.
    The timer fires after ``budget`` (the *remaining* allowance — one
    budget spans fused attempt, fallback, and restarts) but the
    diagnostic names ``total``, the allowance the caller configured.
    The timer aborts the *world*; blocked ranks unwind through the
    normal abort path, and the fused backend checks the abort flag at
    every collective charge."""
    if total is None:
        total = budget

    def _expire() -> None:
        graph = world.wait_snapshot()
        exc = SpmdWatchdogError(
            f"SPMD watchdog expired after {total:g}s host time; "
            f"aborting the run instead of hanging",
            wait_graph=graph or None)
        world.abort(exc)
        if scheduler is not None:
            scheduler.abort()

    timer = threading.Timer(budget, _expire)
    timer.daemon = True
    timer.start()
    return timer


def _recoverable(exc: BaseException, plan: Optional[FaultPlan]) -> bool:
    """Is this failure one the recovery layer may heal by replaying?

    Only fault-induced structured failures qualify — and only when a
    fault plan was active (a deadlock in a healthy program is a program
    bug; replaying it would loop).  The host watchdog is never
    recoverable: its budget is already spent."""
    if plan is None or isinstance(exc, SpmdWatchdogError):
        return False
    return isinstance(exc, (RankCrashedError, MpiCorruptionError,
                            MpiTimeoutError, DeadlockError))


def _select_error(world: World,
                  errors: list[tuple[int, BaseException]]
                  ) -> Optional[BaseException]:
    """The exception one attempt should surface (or ``None``): the
    lowest failing rank wins, non-MPI errors are wrapped exactly as the
    historical raise sites did — built without raising so the recovery
    loop can decide whether it heals or surfaces."""
    if errors:
        rank, exc = min(errors, key=lambda pair: pair[0])
        if isinstance(exc, MpiError):
            return exc
        wrapped = MpiError(f"rank {rank} failed: {exc}")
        wrapped.__cause__ = exc
        wrapped.__suppress_context__ = True
        return wrapped
    if world.aborted is not None:
        # no rank raised, yet the world aborted: the scheduler detected
        # a deadlock (or the watchdog fired) and recorded the cause
        if isinstance(world.aborted, MpiError):
            return world.aborted
        wrapped = MpiError(f"SPMD run aborted: {world.aborted}")
        wrapped.__cause__ = world.aborted
        wrapped.__suppress_context__ = True
        return wrapped
    return None


def _unconsumed(world: World) -> Optional[MpiError]:
    """Chaos left messages on the wire that no rank ever received
    (e.g. duplicates): a protocol anomaly, reported deterministically."""
    if world.faults is not None and any(world.mailboxes.values()):
        leftovers = ", ".join(
            f"rank {src}->rank {dst} tag={tag} x{len(queue)}"
            for (src, dst, tag), queue in sorted(world.mailboxes.items())
            if queue)
        return MpiError(
            f"unconsumed messages after faulted run: {leftovers}")
    return None


def _run_attempt(nprocs: int, machine: MachineModel, fn: Callable,
                 args: tuple, kwargs: dict, backend: str,
                 plan: Optional[FaultPlan],
                 fault_state: Optional[FaultState],
                 recovery: Optional[ActiveRecovery],
                 start_base: float, world_trace,
                 budget: Optional[float],
                 watchdog_total: Optional[float] = None):
    """One execution attempt of the threaded backends.

    Builds a fresh world (carrying the cross-attempt fault state, so
    fired one-shot rules stay consumed on replay, and the recovery
    ledger), runs every rank, and returns ``(world, results, error)``
    without raising for rank failures — the caller's recovery loop
    decides what heals and what surfaces."""
    scheduler = LockstepScheduler(nprocs) if backend == "lockstep" else None
    world = World(nprocs, machine, scheduler=scheduler, fault_plan=plan,
                  trace=world_trace, fault_state=fault_state,
                  recovery=recovery, start_time=start_base)
    if scheduler is not None:
        scheduler.trace = world_trace
        scheduler.on_deadlock = world.abort
        if world.virtual_timeout is not None:
            timeout = world.virtual_timeout
            scheduler.deadlock_factory = lambda graph: MpiTimeoutError(
                f"virtual-clock timeout (limit {timeout:.9g}s): "
                f"no simulated rank can make progress", wait_graph=graph)
    results: list[Any] = [None] * nprocs
    errors: list[tuple[int, BaseException]] = []
    lock = threading.Lock()

    def worker(rank: int) -> None:
        comm = Comm(world, rank)
        if scheduler is not None:
            scheduler.start_rank(rank)
        try:
            if world.aborted is None:
                results[rank] = fn(comm, *args, **kwargs)
        except _Abort:
            pass  # a peer failed; its error is the one to report
        except BaseException as exc:  # noqa: BLE001 - must not deadlock
            with lock:
                errors.append((rank, exc))
            world.abort(exc)
            if scheduler is not None:
                scheduler.abort()
        finally:
            if scheduler is not None:
                scheduler.finish_rank(rank)

    timer: Optional[threading.Timer] = None
    if budget is not None:
        timer = _arm_watchdog(world, scheduler, budget, watchdog_total)
    try:
        if scheduler is not None:
            scheduler.kickoff()
        if nprocs == 1:
            # fast path: no threads needed (the baton, if any, is pre-set)
            worker(0)
        else:
            threads = [threading.Thread(target=worker, args=(rank,),
                                        name=f"spmd-rank-{rank}",
                                        daemon=True)
                       for rank in range(nprocs)]
            for thread in threads:
                thread.start()
            # guaranteed teardown: joins are bounded once the world has
            # aborted, so a truly wedged rank (e.g. an infinite compute
            # loop the watchdog cannot interrupt) is abandoned as a
            # daemon after a grace period instead of hanging the caller
            deadline: Optional[float] = None
            for thread in threads:
                while thread.is_alive():
                    thread.join(timeout=0.1)
                    if world.aborted is None:
                        continue
                    if deadline is None:
                        deadline = time.monotonic() + _TEARDOWN_GRACE
                    elif time.monotonic() > deadline:
                        break
    finally:
        if timer is not None:
            timer.cancel()
    return world, results, _select_error(world, errors)


def run_spmd(nprocs: int, machine: MachineModel,
             fn: Callable[..., Any], *args: Any,
             backend: Optional[str] = None,
             on_fused_fallback: Optional[Callable[[], Any]] = None,
             fault_plan=None,
             watchdog: Optional[float] = None,
             trace: Optional[bool] = None,
             on_fault: Optional[str] = None,
             max_restarts: Optional[int] = None,
             checkpoint_every: Optional[int] = None,
             **kwargs: Any) -> SpmdResult:
    """Run ``fn(comm, *args, **kwargs)`` on ``nprocs`` simulated ranks.

    ``on_fused_fallback`` is invoked (if given) when a ``fused`` run
    diverges, *before* the lockstep re-run — and again before each
    recovery restart attempt — callers use it to discard any partial
    side effects the aborted pass left behind.

    ``fault_plan`` (a :class:`~repro.mpi.faults.FaultPlan`, inline spec
    string, or path; default ``$REPRO_FAULT_PLAN``) injects a
    deterministic chaos schedule.  ``watchdog`` (seconds, default
    ``$REPRO_WATCHDOG_SECONDS``) aborts the run with a structured
    :class:`~repro.errors.SpmdWatchdogError` if it exceeds that much
    *host* wall-clock time; one budget covers the fused attempt, any
    lockstep fallback, and every restart.  See docs/RESILIENCE.md.

    ``on_fault`` / ``max_restarts`` / ``checkpoint_every`` (defaults
    ``$REPRO_ON_FAULT`` / ``$REPRO_MAX_RESTARTS`` /
    ``$REPRO_CHECKPOINT_EVERY``) select the self-healing policy; the
    default ``"abort"`` reproduces the historical fail-fast behavior
    exactly.  See :mod:`repro.mpi.recovery`.

    ``trace`` (default ``$REPRO_TRACE``) records a deterministic
    :class:`~repro.trace.WorldTrace` of the run, returned on
    ``SpmdResult.trace``.  See docs/OBSERVABILITY.md.
    """
    backend = resolve_backend(backend)
    plan = resolve_fault_plan(fault_plan)
    watchdog = resolve_watchdog(watchdog)
    tracing = resolve_trace(trace)
    policy = resolve_recovery(on_fault, max_restarts, checkpoint_every)
    recovery: Optional[ActiveRecovery] = None
    if policy.active and plan is not None:
        # without a plan there is nothing injectable to heal — the
        # policy stays inert and healthy runs pay nothing
        recovery = ActiveRecovery(policy, nprocs, seed=plan.seed)
    deadline = time.monotonic() + watchdog if watchdog is not None \
        else None

    def budget_left(what: str) -> Optional[float]:
        """Remaining host-watchdog budget, raising once exhausted so a
        fallback/restart never gets a fresh allowance."""
        if deadline is None:
            return None
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise SpmdWatchdogError(
                f"SPMD watchdog expired after {watchdog:g}s host time: "
                f"budget exhausted before {what}")
        return remaining

    def new_trace():
        from ..trace import WorldTrace

        wt = WorldTrace(nprocs)
        wt.meta.update(backend=backend, machine=machine.name,
                       nprocs=nprocs)
        return wt

    if backend == "fused":
        world_trace = new_trace() if tracing else None
        timer: Optional[threading.Timer] = None
        try:
            try:
                comm = FusedComm(nprocs, machine,  # validates nprocs
                                 fault_plan=plan, trace=world_trace,
                                 recovery=recovery)
                if watchdog is not None:
                    timer = _arm_watchdog(comm.world, None, watchdog)
                result = fn(comm, *args, **kwargs)
                if comm.world.aborted is not None:
                    raise comm.world.aborted
            except FusionDivergence:
                # rank-dependent program — or a chaos plan, whose fault
                # schedule is inherently rank-dependent: re-run honestly
                # (with a fresh trace; the aborted fused pass is
                # discarded along with its World).  The re-run inherits
                # the *remaining* watchdog budget: one budget covers
                # the whole call, never a fresh allowance per attempt.
                if timer is not None:
                    timer.cancel()
                    timer = None
                if on_fused_fallback is not None:
                    on_fused_fallback()
                remaining = budget_left("the lockstep re-run")
                return run_spmd(nprocs, machine, fn, *args,
                                backend="lockstep",
                                on_fused_fallback=on_fused_fallback,
                                fault_plan=plan, watchdog=remaining,
                                trace=tracing, on_fault=policy.on_fault,
                                max_restarts=policy.max_restarts,
                                checkpoint_every=policy.checkpoint_every,
                                **kwargs)
            except MpiError:
                raise  # substrate diagnostics keep their structured type
            except BaseException as exc:  # noqa: BLE001 - lockstep parity
                raise MpiError(f"rank 0 failed: {exc}") from exc
        finally:
            if timer is not None:
                timer.cancel()
        world = comm.world
        report: Optional[RecoveryReport] = None
        if recovery is not None:
            recovery.finish_attempt(world, "completed", None)
            report = recovery.report
        return SpmdResult(
            results=[result] * nprocs,
            times=world.clocks.tolist(),
            machine=machine,
            nprocs=nprocs,
            messages_sent=world.messages_sent,
            bytes_sent=world.bytes_sent,
            collectives=world.collectives,
            collective_counts=dict(world.collective_counts),
            backend="fused",
            trace=world_trace,
            recovery=report,
            rank_retries=world.rank_retries.tolist(),
        )

    fault_state: Optional[FaultState] = None
    if plan is not None and plan.has_faults:
        # built once and carried across restart attempts: fired
        # one-shot rules (step=/count=) stay consumed, so a replay does
        # not re-trip the crash it is recovering from
        fault_state = FaultState(plan, nprocs)

    while True:
        attempt_no = recovery.attempt if recovery is not None else 0
        budget = budget_left(f"execution attempt {attempt_no}") \
            if deadline is not None else None
        world_trace = new_trace() if tracing else None
        if recovery is not None:
            recovery.stamp_pending(world_trace)
        start_base = recovery.start_base if recovery is not None else 0.0
        world, results, exc = _run_attempt(
            nprocs, machine, fn, args, kwargs, backend, plan,
            fault_state, recovery, start_base, world_trace, budget,
            watchdog)

        anomaly = None
        if exc is None:
            anomaly = _unconsumed(world)
            exc = anomaly
        # degrade only swallows fault-induced failures (and the
        # unconsumed-message anomaly, which only chaos can produce) —
        # a user program bug always surfaces
        degraded_ok = (exc is not None and recovery is not None
                       and policy.degrade
                       and (anomaly is not None
                            or _recoverable(exc, plan)))
        if exc is None or degraded_ok:
            may_restart = (exc is not None and recovery is not None
                           and policy.restarts_enabled
                           and _recoverable(exc, plan)
                           and recovery.attempt < policy.max_restarts)
            if not may_restart:
                report = None
                if recovery is not None:
                    outcome = "completed" if exc is None else "degraded"
                    recovery.finish_attempt(world, outcome, exc)
                    if exc is not None:
                        recovery.report.degraded = True
                        recovery.report.error = \
                            f"{type(exc).__name__}: {exc}".splitlines()[0]
                        recovery.note(f"degrade: {type(exc).__name__}")
                        if world_trace is not None:
                            world_trace.recorders[0].recovery(
                                "degrade", float(world.clocks.max()),
                                error=type(exc).__name__)
                    report = recovery.report
                return SpmdResult(
                    results=results,
                    times=world.clocks.tolist(),
                    machine=machine,
                    nprocs=nprocs,
                    messages_sent=world.messages_sent,
                    bytes_sent=world.bytes_sent,
                    collectives=world.collectives,
                    collective_counts=dict(world.collective_counts),
                    backend=backend,
                    fault_events=world.faults.events
                    if world.faults is not None else [],
                    trace=world_trace,
                    recovery=report,
                    rank_retries=world.rank_retries.tolist(),
                )

        # the attempt failed: heal if the policy and budgets allow
        if recovery is not None and _recoverable(exc, plan):
            recovery.finish_attempt(world, "failed", exc)
            if (policy.restarts_enabled
                    and recovery.attempt < policy.max_restarts):
                recovery.plan_restart(world, machine, exc)
                if on_fused_fallback is not None:
                    on_fused_fallback()  # discard partial side effects
                continue
        raise exc
