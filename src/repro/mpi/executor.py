"""SPMD launcher for the simulated MPI layer.

``run_spmd`` starts one carrier thread per rank, hands each a
:class:`~repro.mpi.comm.Comm`, and collects results, per-rank virtual
times, and any exception.  A failure on one rank aborts the world so
peers blocked in ``recv``/collectives unwind instead of deadlocking.

Two backends execute the rank programs (``backend=`` argument, or the
``REPRO_SPMD_BACKEND`` environment variable; default ``lockstep``):

``lockstep``
    Cooperative: a :class:`~repro.mpi.scheduler.LockstepScheduler`
    gates the carrier threads so exactly one rank runs at a time,
    parking at blocking points and handing off.  Deterministic, nearly
    free per extra rank, and it *detects* deadlock (reporting the full
    blocked-rank wait graph) instead of hanging.

``threads``
    Free-running OS threads rendezvousing on a condition variable.
    Kept for differential testing of the scheduler: both backends must
    produce identical virtual times and communication statistics.

``fused``
    Rank fusion: the program runs **once** with a
    :class:`~repro.mpi.fused.FusedComm` carrying all ranks' state, so
    the interpreter's control-flow overhead is paid once instead of P
    times.  Accounting (virtual clocks, message/byte/collective counts)
    is bit-identical to ``lockstep``.  If the program turns out to be
    rank-dependent (it reads ``comm.rank``, or hits an op with no fused
    path), the run raises :class:`~repro.errors.FusionDivergence` and
    ``run_spmd`` transparently re-runs it under ``lockstep`` — fusion is
    an optimization, never a semantics change.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..errors import FusionDivergence, MpiError, MpiTimeoutError, \
    SpmdWatchdogError
from .comm import Comm, World, _Abort
from .faults import FaultPlan, load_plan
from .fused import FusedComm
from .machine import MachineModel
from .scheduler import LockstepScheduler

BACKENDS = ("lockstep", "threads", "fused")

#: environment override for the default backend (used by the CI matrix
#: to run the whole suite under each backend)
BACKEND_ENV_VAR = "REPRO_SPMD_BACKEND"

#: environment default for the chaos fault plan (inline spec or a path)
FAULT_PLAN_ENV_VAR = "REPRO_FAULT_PLAN"

#: environment default for the host-wall-clock watchdog (seconds)
WATCHDOG_ENV_VAR = "REPRO_WATCHDOG_SECONDS"

#: environment default for trace recording (any non-empty value except
#: "0" enables it; the CLI additionally interprets the value — see
#: docs/OBSERVABILITY.md)
TRACE_ENV_VAR = "REPRO_TRACE"

#: environment default for plan autotuning ("0"/"" off, "1"/other truthy
#: on with the default candidate budget, an integer sets the budget)
TUNE_ENV_VAR = "REPRO_TUNE"

#: candidate budget used when tuning is enabled without an explicit one
DEFAULT_TUNE_BUDGET = 64

#: after an abort, give wedged carrier threads this long to unwind
#: before abandoning them (they are daemons; the process stays healthy)
_TEARDOWN_GRACE = 5.0


def resolve_backend(backend: Optional[str] = None) -> str:
    """Pick the SPMD backend: explicit argument > environment > default."""
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR) or "lockstep"
    if backend not in BACKENDS:
        raise MpiError(
            f"unknown SPMD backend {backend!r} (expected one of "
            f"{', '.join(BACKENDS)})")
    return backend


def resolve_fault_plan(fault_plan=None) -> Optional[FaultPlan]:
    """Pick the chaos plan: explicit argument > $REPRO_FAULT_PLAN > none.

    Accepts a :class:`FaultPlan`, an inline spec string, or a path."""
    if fault_plan is not None:
        return load_plan(fault_plan)
    return load_plan(os.environ.get(FAULT_PLAN_ENV_VAR))


def resolve_trace(trace: Optional[bool] = None) -> bool:
    """Decide whether to record a trace: argument > $REPRO_TRACE > off."""
    if trace is not None:
        return bool(trace)
    raw = os.environ.get(TRACE_ENV_VAR)
    return bool(raw) and raw != "0"


def resolve_tune(tune: Optional[bool] = None,
                 budget: Optional[int] = None) -> Optional[int]:
    """Decide the autotuning candidate budget (None: tuning off).

    ``tune=True`` enables with ``budget`` (or the default);
    ``tune=False`` disables regardless of the environment;
    ``tune=None`` consults ``$REPRO_TUNE``.
    """
    if tune is False:
        return None
    if tune:
        return int(budget) if budget else DEFAULT_TUNE_BUDGET
    raw = os.environ.get(TUNE_ENV_VAR, "")
    if not raw or raw == "0":
        return None
    try:
        value = int(raw)
    except ValueError:
        return int(budget) if budget else DEFAULT_TUNE_BUDGET
    if value <= 0:
        return None
    return value


def resolve_watchdog(watchdog: Optional[float] = None) -> Optional[float]:
    """Pick the host-wall-clock watchdog: argument > environment > off."""
    if watchdog is not None:
        value = float(watchdog)
    else:
        raw = os.environ.get(WATCHDOG_ENV_VAR)
        if not raw:
            return None
        try:
            value = float(raw)
        except ValueError:
            raise MpiError(
                f"{WATCHDOG_ENV_VAR} must be a number of seconds "
                f"(got {raw!r})") from None
    if value <= 0:
        raise MpiError(f"watchdog must be positive (got {value:g}s)")
    return value


@dataclass
class SpmdResult:
    """Outcome of one SPMD execution."""

    results: list[Any]
    times: list[float]            # final virtual clock per rank
    machine: MachineModel
    nprocs: int
    messages_sent: int = 0
    bytes_sent: int = 0
    collectives: int = 0
    collective_counts: dict[str, int] = field(default_factory=dict)
    backend: str = "lockstep"
    #: deterministic log of injected chaos events (rank order), empty
    #: when no fault plan was active
    fault_events: list[str] = field(default_factory=list)
    #: the :class:`~repro.trace.WorldTrace` recorded for this run, or
    #: ``None`` when tracing was off (the default)
    trace: Optional[Any] = None

    @property
    def elapsed(self) -> float:
        """Virtual wall-clock of the run: the slowest rank."""
        return max(self.times) if self.times else 0.0


def run_spmd(nprocs: int, machine: MachineModel,
             fn: Callable[..., Any], *args: Any,
             backend: Optional[str] = None,
             on_fused_fallback: Optional[Callable[[], Any]] = None,
             fault_plan=None,
             watchdog: Optional[float] = None,
             trace: Optional[bool] = None,
             **kwargs: Any) -> SpmdResult:
    """Run ``fn(comm, *args, **kwargs)`` on ``nprocs`` simulated ranks.

    ``on_fused_fallback`` is invoked (if given) when a ``fused`` run
    diverges, *before* the lockstep re-run — callers use it to discard
    any partial side effects the aborted fused pass left behind.

    ``fault_plan`` (a :class:`~repro.mpi.faults.FaultPlan`, inline spec
    string, or path; default ``$REPRO_FAULT_PLAN``) injects a
    deterministic chaos schedule.  ``watchdog`` (seconds, default
    ``$REPRO_WATCHDOG_SECONDS``) aborts the run with a structured
    :class:`~repro.errors.SpmdWatchdogError` if it exceeds that much
    *host* wall-clock time — the safety net that keeps the free-running
    ``threads`` backend from hanging CI.  See docs/RESILIENCE.md.

    ``trace`` (default ``$REPRO_TRACE``) records a deterministic
    :class:`~repro.trace.WorldTrace` of the run, returned on
    ``SpmdResult.trace``.  See docs/OBSERVABILITY.md.
    """
    backend = resolve_backend(backend)
    plan = resolve_fault_plan(fault_plan)
    watchdog = resolve_watchdog(watchdog)
    tracing = resolve_trace(trace)

    def new_trace():
        from ..trace import WorldTrace

        wt = WorldTrace(nprocs)
        wt.meta.update(backend=backend, machine=machine.name,
                       nprocs=nprocs)
        return wt

    if backend == "fused":
        world_trace = new_trace() if tracing else None
        try:
            comm = FusedComm(nprocs, machine,  # validates nprocs/machine
                             fault_plan=plan, trace=world_trace)
            result = fn(comm, *args, **kwargs)
        except FusionDivergence:
            # rank-dependent program — or a chaos plan, whose fault
            # schedule is inherently rank-dependent: re-run honestly
            # (with a fresh trace; the aborted fused pass is discarded
            # along with its World)
            if on_fused_fallback is not None:
                on_fused_fallback()
            return run_spmd(nprocs, machine, fn, *args,
                            backend="lockstep", fault_plan=plan,
                            watchdog=watchdog, trace=tracing, **kwargs)
        except MpiError:
            raise  # substrate diagnostics keep their structured type
        except BaseException as exc:  # noqa: BLE001 - parity with lockstep
            raise MpiError(f"rank 0 failed: {exc}") from exc
        world = comm.world
        return SpmdResult(
            results=[result] * nprocs,
            times=world.clocks.tolist(),
            machine=machine,
            nprocs=nprocs,
            messages_sent=world.messages_sent,
            bytes_sent=world.bytes_sent,
            collectives=world.collectives,
            collective_counts=dict(world.collective_counts),
            backend="fused",
            trace=world_trace,
        )
    scheduler = LockstepScheduler(nprocs) if backend == "lockstep" else None
    world_trace = new_trace() if tracing else None
    world = World(nprocs, machine, scheduler=scheduler, fault_plan=plan,
                  trace=world_trace)
    if scheduler is not None:
        scheduler.trace = world_trace
        scheduler.on_deadlock = world.abort
        if world.virtual_timeout is not None:
            timeout = world.virtual_timeout
            scheduler.deadlock_factory = lambda graph: MpiTimeoutError(
                f"virtual-clock timeout (limit {timeout:.9g}s): "
                f"no simulated rank can make progress", wait_graph=graph)
    results: list[Any] = [None] * nprocs
    errors: list[tuple[int, BaseException]] = []
    lock = threading.Lock()

    def worker(rank: int) -> None:
        comm = Comm(world, rank)
        if scheduler is not None:
            scheduler.start_rank(rank)
        try:
            if world.aborted is None:
                results[rank] = fn(comm, *args, **kwargs)
        except _Abort:
            pass  # a peer failed; its error is the one to report
        except BaseException as exc:  # noqa: BLE001 - must not deadlock
            with lock:
                errors.append((rank, exc))
            world.abort(exc)
            if scheduler is not None:
                scheduler.abort()
        finally:
            if scheduler is not None:
                scheduler.finish_rank(rank)

    timer: Optional[threading.Timer] = None
    if watchdog is not None:
        def _expire() -> None:
            graph = world.wait_snapshot()
            exc = SpmdWatchdogError(
                f"SPMD watchdog expired after {watchdog:g}s host time; "
                f"aborting the run instead of hanging",
                wait_graph=graph or None)
            world.abort(exc)
            if scheduler is not None:
                scheduler.abort()

        timer = threading.Timer(watchdog, _expire)
        timer.daemon = True
        timer.start()
    try:
        if scheduler is not None:
            scheduler.kickoff()
        if nprocs == 1:
            # fast path: no threads needed (the baton, if any, is pre-set)
            worker(0)
        else:
            threads = [threading.Thread(target=worker, args=(rank,),
                                        name=f"spmd-rank-{rank}",
                                        daemon=True)
                       for rank in range(nprocs)]
            for thread in threads:
                thread.start()
            # guaranteed teardown: joins are bounded once the world has
            # aborted, so a truly wedged rank (e.g. an infinite compute
            # loop the watchdog cannot interrupt) is abandoned as a
            # daemon after a grace period instead of hanging the caller
            deadline: Optional[float] = None
            for thread in threads:
                while thread.is_alive():
                    thread.join(timeout=0.1)
                    if world.aborted is None:
                        continue
                    if deadline is None:
                        deadline = time.monotonic() + _TEARDOWN_GRACE
                    elif time.monotonic() > deadline:
                        break
    finally:
        if timer is not None:
            timer.cancel()

    if errors:
        rank, exc = min(errors, key=lambda pair: pair[0])
        if isinstance(exc, MpiError):
            raise exc  # structured substrate diagnostic: keep the type
        raise MpiError(f"rank {rank} failed: {exc}") from exc
    if world.aborted is not None:
        # no rank raised, yet the world aborted: the scheduler detected
        # a deadlock (or the watchdog fired) and recorded the cause
        if isinstance(world.aborted, MpiError):
            raise world.aborted
        raise MpiError(
            f"SPMD run aborted: {world.aborted}") from world.aborted
    if world.faults is not None and any(world.mailboxes.values()):
        # chaos left messages on the wire that no rank ever received
        # (e.g. duplicates): a protocol anomaly, reported deterministically
        leftovers = ", ".join(
            f"rank {src}->rank {dst} tag={tag} x{len(queue)}"
            for (src, dst, tag), queue in sorted(world.mailboxes.items())
            if queue)
        raise MpiError(
            f"unconsumed messages after faulted run: {leftovers}")

    return SpmdResult(
        results=results,
        times=world.clocks.tolist(),
        machine=machine,
        nprocs=nprocs,
        messages_sent=world.messages_sent,
        bytes_sent=world.bytes_sent,
        collectives=world.collectives,
        collective_counts=dict(world.collective_counts),
        backend=backend,
        fault_events=world.faults.events if world.faults is not None
        else [],
        trace=world_trace,
    )
