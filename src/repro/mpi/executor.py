"""SPMD launcher for the simulated MPI layer.

``run_spmd`` starts one thread per rank, hands each a
:class:`~repro.mpi.comm.Comm`, and collects results, per-rank virtual
times, and any exception.  A failure on one rank aborts the world so peers
blocked in ``recv``/collectives unwind instead of deadlocking.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import MpiError
from .comm import Comm, World, _Abort
from .machine import MachineModel


@dataclass
class SpmdResult:
    """Outcome of one SPMD execution."""

    results: list[Any]
    times: list[float]            # final virtual clock per rank
    machine: MachineModel
    nprocs: int
    messages_sent: int = 0
    bytes_sent: int = 0
    collectives: int = 0
    collective_counts: dict[str, int] = field(default_factory=dict)

    @property
    def elapsed(self) -> float:
        """Virtual wall-clock of the run: the slowest rank."""
        return max(self.times) if self.times else 0.0


def run_spmd(nprocs: int, machine: MachineModel,
             fn: Callable[..., Any], *args: Any, **kwargs: Any) -> SpmdResult:
    """Run ``fn(comm, *args, **kwargs)`` on ``nprocs`` simulated ranks."""
    world = World(nprocs, machine)
    results: list[Any] = [None] * nprocs
    errors: list[tuple[int, BaseException]] = []
    lock = threading.Lock()

    def worker(rank: int) -> None:
        comm = Comm(world, rank)
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except _Abort:
            pass  # a peer failed; its error is the one to report
        except BaseException as exc:  # noqa: BLE001 - must not deadlock
            with lock:
                errors.append((rank, exc))
            world.abort(exc)

    if nprocs == 1:
        # fast path: no threads needed
        worker(0)
    else:
        threads = [threading.Thread(target=worker, args=(rank,),
                                    name=f"spmd-rank-{rank}", daemon=True)
                   for rank in range(nprocs)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    if errors:
        rank, exc = min(errors, key=lambda pair: pair[0])
        raise MpiError(f"rank {rank} failed: {exc}") from exc

    return SpmdResult(
        results=results,
        times=list(world.clocks),
        machine=machine,
        nprocs=nprocs,
        messages_sent=world.messages_sent,
        bytes_sent=world.bytes_sent,
        collectives=world.collectives,
        collective_counts=dict(world.collective_counts),
    )
