"""Cooperative lockstep scheduler for simulated SPMD ranks.

The free-running ``threads`` backend lets every rank's carrier thread
run whenever the OS pleases and rendezvouses them on one
``threading.Condition`` — correct, but each collective is a
double-barrier broadcast across GIL-contended threads, with timeout
polling (``cond.wait(0.2)``) so aborts are noticed.

This module implements the discrete-event alternative: **exactly one
rank runs at a time**.  Each rank still owns a carrier thread (rank
programs are plain Python functions that block mid-stack), but execution
is gated by a per-rank *baton*.  A rank runs until it *blocks* — a
``recv`` with no matching message, or a collective that peers have not
reached — then parks itself and hands the baton to the next runnable
rank.  The peer that satisfies the wait (the matching ``send``, or the
last rank to arrive at the collective) marks the parked rank runnable
again.  Consequences:

* no lock stampedes and no spurious wakeups — every futex wake
  transfers control to exactly the thread that will run next;
* no timeout polling — a blocked rank sleeps until it is handed the
  baton (aborts release every baton);
* runs are **bit-deterministic**: the interleaving is a pure function
  of the program, so virtual clocks, message counts, and mailbox
  ordering cannot vary run to run;
* a cycle of blocked ranks is *detected*, not hung: when a rank parks
  and no rank is runnable, the scheduler reports the full wait graph
  as a :class:`DeadlockError` instead of waiting forever.

The baton is a raw ``_thread``-level lock used as a binary semaphore
(park = ``acquire``, handoff = ``release``): unlike ``threading.Event``
it needs no wrapping condition variable and no ``clear()`` round-trip —
``acquire`` leaves the lock held again — which keeps a handoff down to
one futex operation.  Handoff cost is the scheduler's figure of merit:
every blocking MPI operation of every rank pays it once.

The scheduler knows nothing about MPI semantics: the comm layer decides
*when* to block and *whom* to unblock; this module only moves the baton
and keeps the run queue.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Optional

from ..errors import MpiError

#: wait-graph reports list every rank up to this world size; larger
#: worlds get the truncated cycle + census rendering (small-P reports —
#: everything the existing tests pin — are unchanged)
_WAIT_GRAPH_FULL_LIMIT = 32

#: rank lifecycle states
READY = "ready"        # in the run queue, waiting for the baton
RUNNING = "running"    # holds the baton (at most one rank)
BLOCKED = "blocked"    # parked on a recv/collective until a peer acts
DONE = "done"          # program returned (or raised)


class DeadlockError(MpiError):
    """Every live rank is blocked on a peer: the run cannot progress."""


class LockstepScheduler:
    """Run queue + baton handoff for one SPMD world.

    Thread-safety: the lockstep invariant means at most one carrier
    thread mutates scheduler state at a time, but handoff windows
    briefly overlap (the parking thread releases the next baton before
    it sleeps), so all state transitions take ``_lock``.  The lock is
    never held while sleeping.
    """

    def __init__(self, nprocs: int):
        self.nprocs = nprocs
        self._lock = threading.Lock()
        # batons start held; a dispatch releases exactly one, and the
        # woken rank's acquire leaves it held again (self-resetting)
        self._batons = [threading.Lock() for _ in range(nprocs)]
        for baton in self._batons:
            baton.acquire()
        self._state = [READY] * nprocs
        # why a rank is blocked: any object; str()-ed lazily, only when
        # a deadlock report is built (no formatting on the park path)
        self._reason: list[Any] = [None] * nprocs
        self._run_queue: deque[int] = deque(range(nprocs))
        self._current: Optional[int] = None
        self._aborted = False
        #: called with a DeadlockError when the run queue empties while
        #: ranks are still blocked (wired to ``World.abort``)
        self.on_deadlock: Optional[Callable[[BaseException], None]] = None
        #: builds the no-progress exception from the wait-graph report;
        #: the executor swaps in MpiTimeoutError when a fault plan
        #: configures a virtual-clock timeout (a run that cannot
        #: progress has, a fortiori, exceeded any finite patience)
        self.deadlock_factory: Callable[[str], BaseException] = DeadlockError
        #: observability: number of baton handoffs performed
        self.handoffs = 0
        #: optional :class:`~repro.trace.WorldTrace` receiving advisory
        #: park notes (host time only; never canonical trace content)
        self.trace: Optional[Any] = None

    # -- lifecycle ------------------------------------------------------ #

    def kickoff(self) -> None:
        """Hand the baton to the first ready rank (call once, before the
        carrier threads run their programs)."""
        with self._lock:
            self._dispatch_locked()

    def start_rank(self, rank: int) -> None:
        """Park the carrier thread until this rank first gets the baton
        (or the world aborts — the caller re-checks abort state)."""
        self._wait_for_baton(rank)

    def finish_rank(self, rank: int) -> None:
        """The rank's program returned or raised: retire it and pass the
        baton on."""
        with self._lock:
            self._state[rank] = DONE
            self._reason[rank] = None
            if self._current == rank:
                self._current = None
            self._dispatch_locked()

    def abort(self) -> None:
        """Wake every parked rank so it can observe the world's abort."""
        with self._lock:
            self._abort_locked()

    # -- blocking and handoff ------------------------------------------- #

    def block(self, rank: int, reason: Any) -> None:
        """Park the calling rank until a peer calls :meth:`unblock`.

        ``reason`` describes the wait; it is stringified only if a
        deadlock report needs it.
        """
        with self._lock:
            if self._aborted:
                return
            self._state[rank] = BLOCKED
            self._reason[rank] = reason
            if self.trace is not None:
                self.trace.sched_note(
                    rank, reason[0] if isinstance(reason, tuple)
                    else str(reason))
            if self._current == rank:
                self._current = None
            self._dispatch_locked()
        self._wait_for_baton(rank)

    def unblock(self, rank: int) -> None:
        """Mark a parked rank runnable (it runs when it gets the baton)."""
        with self._lock:
            if self._state[rank] == BLOCKED:
                self._state[rank] = READY
                self._reason[rank] = None
                self._run_queue.append(rank)

    def yield_now(self, rank: int) -> None:
        """Rotate the baton without blocking: give every other runnable
        rank a turn, then resume.  Keeps ``Request.test()`` polling
        loops live — a spinning rank would otherwise starve the peer
        whose send it is polling for."""
        with self._lock:
            if self._aborted or not self._run_queue:
                return  # nothing else can run; keep the baton
            self._state[rank] = READY
            self._run_queue.append(rank)
            if self._current == rank:
                self._current = None
            self._dispatch_locked()
        self._wait_for_baton(rank)

    # -- internals ------------------------------------------------------ #

    def _wait_for_baton(self, rank: int) -> None:
        baton = self._batons[rank]
        while True:
            baton.acquire()
            if self._aborted or self._current == rank:
                return
            # stale wake (abort raced a normal handoff): wait again

    def _dispatch_locked(self) -> None:
        """Hand the baton to the next ready rank; detect deadlock if the
        queue is empty while ranks are still blocked."""
        if self._aborted:
            return
        while self._run_queue:
            nxt = self._run_queue.popleft()
            if self._state[nxt] != READY:
                continue  # retired while queued
            self._state[nxt] = RUNNING
            self._current = nxt
            self.handoffs += 1
            self._batons[nxt].release()
            return
        blocked = [r for r in range(self.nprocs)
                   if self._state[r] == BLOCKED]
        if blocked:
            error = self.deadlock_factory(self._wait_graph_locked())
            self._abort_locked()
            if self.on_deadlock is not None:
                self.on_deadlock(error)

    def _abort_locked(self) -> None:
        if self._aborted:
            return
        self._aborted = True
        for baton in self._batons:
            # wake parked ranks; a rank that is running (baton already
            # released, or never parked) makes this a double release
            try:
                baton.release()
            except RuntimeError:
                pass

    def _wait_graph_locked(self) -> str:
        header = "deadlock: no simulated rank can make progress\n  "
        if self.nprocs <= _WAIT_GRAPH_FULL_LIMIT:
            lines = []
            for rank in range(self.nprocs):
                state = self._state[rank]
                if state == BLOCKED:
                    lines.append(f"rank {rank}: blocked in "
                                 f"{_format_reason(self._reason[rank])}")
                else:
                    lines.append(f"rank {rank}: {state}")
            return header + "\n  ".join(lines)
        # large worlds: a P=1024 report listing every rank would be
        # unreadable (and O(P) strings to build) — show any recv wait
        # cycle, the first WAIT_REPORT_LIMIT blocked ranks, and a
        # per-state census for the rest
        from .comm import WAIT_REPORT_LIMIT, find_wait_cycle

        edges = {}
        blocked = []
        census: dict[str, int] = {}
        for rank in range(self.nprocs):
            state = self._state[rank]
            census[state] = census.get(state, 0) + 1
            if state != BLOCKED:
                continue
            blocked.append(rank)
            reason = self._reason[rank]
            if (isinstance(reason, tuple) and reason[0] == "recv"
                    and reason[1] >= 0):
                edges[rank] = reason[1]
        lines = []
        cycle = find_wait_cycle(edges)
        if cycle:
            lines.append("recv cycle: "
                         + " -> ".join(str(r) for r in cycle + [cycle[0]]))
        on_cycle = set(cycle)
        rest = [r for r in blocked if r not in on_cycle]
        shown = rest[:WAIT_REPORT_LIMIT]
        for rank in cycle + shown:
            lines.append(f"rank {rank}: blocked in "
                         f"{_format_reason(self._reason[rank])}")
        if len(rest) > len(shown):
            lines.append(f"... and {len(rest) - len(shown)} more "
                         f"blocked ranks")
        lines.append("states: " + ", ".join(
            f"{state}={census[state]}" for state in sorted(census)))
        return header + "\n  ".join(lines)


def _format_reason(reason: Any) -> str:
    """Render a park reason record (built lazily: the park hot path
    stores a tuple; formatting happens only in a deadlock report)."""
    if isinstance(reason, tuple):
        what = reason[0]
        if what == "recv":
            _, source, tag = reason
            return f"recv(source={source}, tag={tag})"
        if what == "collective":
            _, op, arrived, total = reason
            return f"{op or 'collective'} ({arrived}/{total} arrived)"
        head, *detail = reason
        return f"{head}({', '.join(str(d) for d in detail)})"
    return str(reason)
