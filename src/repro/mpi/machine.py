"""Performance models of the paper's three target architectures.

The paper benchmarks on: a 16-CPU Meiko CS-2 (distributed-memory
multicomputer), an 8-CPU Sun Enterprise SMP, and a cluster of four 4-CPU
Sun SPARCserver-20s on Ethernet.  We cannot have the hardware, so each is
modeled by:

* a :class:`CpuModel` — per-flop / per-element costs of the compiled
  run-time library on one CPU (plus interpreter-degradation factors used
  by :mod:`repro.interp.costmodel`);
* a link model — latency/bandwidth per rank pair, *hierarchical* for the
  SMP cluster (fast inside a 4-CPU node, 10 Mb/s shared Ethernet across);
* contention hooks — SMP memory-bus pressure and Ethernet's shared
  medium, which are precisely what flatten the cluster's speedup curves
  beyond one SMP in Figures 3-6.

Absolute constants are era-plausible (UltraSPARC/SuperSPARC-class CPUs,
microsecond SMP latencies, ~1 ms Ethernet RTTs); the reproduction targets
curve *shapes*, not the authors' exact wall clocks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from ..interp.costmodel import InterpCostParams


@dataclass(frozen=True)
class CpuModel:
    """Single-CPU cost of compiled (C-like) code."""

    flop_time: float      # s per flop in dense kernels (matmul, matvec)
    elem_time: float      # s per element per fused elementwise op
    mem_time: float       # s per element of memory traffic (copies, temps)
    call_overhead: float  # s per run-time-library call (MATRIX bookkeeping)
    # Interpreter degradation factors (The MathWorks interpreter, 1997)
    interp_elem_factor: float = 2.5
    interp_flop_factor: float = 4.5
    interp_op_overhead: float = 8.0e-5
    interp_stmt_dispatch: float = 1.2e-5
    interp_index_time: float = 4.0e-6

    def interpreter_params(self) -> InterpCostParams:
        return InterpCostParams(
            stmt_dispatch=self.interp_stmt_dispatch,
            op_overhead=self.interp_op_overhead,
            elem_time=self.elem_time * self.interp_elem_factor,
            flop_time=self.flop_time * self.interp_flop_factor,
            mem_time=self.mem_time * 2.0,
            index_time=self.interp_index_time,
        )


@dataclass(frozen=True)
class Link:
    latency: float    # seconds, one message
    bandwidth: float  # bytes/second

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError(f"link latency must be >= 0 "
                             f"(got {self.latency!r})")
        if self.bandwidth <= 0:
            raise ValueError(f"link bandwidth must be > 0 "
                             f"(got {self.bandwidth!r})")


@dataclass(frozen=True)
class MachineModel:
    """Topology + cost model for one parallel architecture."""

    name: str
    max_cpus: int
    cpu: CpuModel
    intra_link: Link                  # within one node (or the only link)
    inter_link: Link | None = None    # across nodes (None: flat machine)
    cpus_per_node: int = 0            # 0 means all CPUs in one "node"
    # SMP memory-bus contention: memory-bound work is scaled by
    # 1 + alpha*(p_active - 1) on a shared bus.
    bus_contention: float = 0.0
    # Shared-medium network (Ethernet): concurrent inter-node transfers
    # divide the wire; True divides bandwidth by the number of
    # simultaneously communicating node pairs.
    shared_medium: bool = False
    # Primary memory available to one CPU's share of the data (bytes);
    # era-plausible 1997 values.  Backs the paper's Section 7 claim that
    # parallel machines solve problems no single workstation can hold.
    memory_per_cpu: int = 128 * 1024 * 1024
    # Collective algorithm selection (the autotuner's communication axis).
    # Defaults model the run-time library the paper benchmarked: ring /
    # sequential-root gathers and a binomial reduce+bcast allreduce.
    # ``doubling`` (recursive doubling, log2(P) latency terms) and
    # ``halving`` (Rabenseifner reduce-scatter + allgather) are the
    # textbook replacements a later library generation would ship.
    gather_algo: str = "ring"        # ring | doubling
    allreduce_algo: str = "tree"     # tree | halving
    # Hierarchical (MagPIe-style two-level) collectives on multi-node
    # machines: ``auto`` decomposes every collective into an intra-node
    # stage plus an inter-node stage over one representative per node;
    # ``flat`` models a topology-oblivious library where every tree/ring
    # hop may cross the network (the autotuner's on/off axis).
    collective_hierarchy: str = "auto"  # auto | flat

    def __post_init__(self) -> None:
        if self.gather_algo not in ("ring", "doubling"):
            raise ValueError(f"gather_algo must be 'ring' or 'doubling' "
                             f"(got {self.gather_algo!r})")
        if self.allreduce_algo not in ("tree", "halving"):
            raise ValueError(f"allreduce_algo must be 'tree' or 'halving' "
                             f"(got {self.allreduce_algo!r})")
        if self.collective_hierarchy not in ("auto", "flat"):
            raise ValueError(f"collective_hierarchy must be 'auto' or "
                             f"'flat' (got {self.collective_hierarchy!r})")
        if self.max_cpus < 1:
            raise ValueError(f"max_cpus must be >= 1 "
                             f"(got {self.max_cpus!r})")
        if self.cpus_per_node < 0:
            raise ValueError(f"cpus_per_node must be >= 0 "
                             f"(got {self.cpus_per_node!r})")
        if self.bus_contention < 0:
            raise ValueError(f"bus_contention must be >= 0 "
                             f"(got {self.bus_contention!r})")
        if self.memory_per_cpu <= 0:
            raise ValueError(f"memory_per_cpu must be > 0 "
                             f"(got {self.memory_per_cpu!r})")

    # -- topology ------------------------------------------------------- #

    def node_of(self, rank: int) -> int:
        if self.cpus_per_node <= 0:
            return 0
        return rank // self.cpus_per_node

    def link_between(self, a: int, b: int) -> Link:
        if self.inter_link is not None and self.node_of(a) != self.node_of(b):
            return self.inter_link
        return self.intra_link

    def spans_nodes(self, nprocs: int) -> bool:
        return (self.inter_link is not None and self.cpus_per_node > 0
                and nprocs > self.cpus_per_node)

    # -- compute -------------------------------------------------------- #

    def memory_scale(self, active_cpus: int) -> float:
        """Slowdown of memory-bound work when ``active_cpus`` share a bus."""
        if self.bus_contention <= 0.0 or self.cpus_per_node <= 0:
            sharing = active_cpus if self.inter_link is None else 1
        else:
            sharing = min(active_cpus, self.cpus_per_node)
        if self.inter_link is None and self.cpus_per_node <= 0:
            sharing = active_cpus
        return 1.0 + self.bus_contention * max(sharing - 1, 0)

    def compute_time(self, flops: int = 0, elems: int = 0, mem: int = 0,
                     active_cpus: int = 1) -> float:
        scale = self.memory_scale(active_cpus)
        return (flops * self.cpu.flop_time
                + elems * self.cpu.elem_time * scale
                + mem * self.cpu.mem_time * scale)

    def compute_time_vec(self, flops=None, elems=None, mem=None,
                         active_cpus: int = 1) -> np.ndarray:
        """Rank-indexed :meth:`compute_time`: each argument is a per-rank
        count vector (or ``None`` for zero), the result is the per-rank
        cost array.  Term order and association match the scalar formula
        exactly, so each element is *bit-identical* to the scalar call —
        the contract the vectorized fused accounting relies on."""
        scale = self.memory_scale(active_cpus)
        f = 0.0 if flops is None else np.asarray(flops, dtype=np.float64)
        e = 0.0 if elems is None else np.asarray(elems, dtype=np.float64)
        m = 0.0 if mem is None else np.asarray(mem, dtype=np.float64)
        return (f * self.cpu.flop_time
                + e * self.cpu.elem_time * scale
                + m * self.cpu.mem_time * scale)

    # -- communication -------------------------------------------------- #

    def p2p_time(self, src: int, dst: int, nbytes: int,
                 concurrent_inter: int = 1) -> float:
        link = self.link_between(src, dst)
        bandwidth = link.bandwidth
        if (self.shared_medium and self.inter_link is not None
                and link is self.inter_link and concurrent_inter > 1):
            bandwidth = bandwidth / concurrent_inter
        return link.latency + nbytes / bandwidth

    def p2p_time_vec(self, src: np.ndarray, dst: np.ndarray,
                     nbytes: int) -> tuple[np.ndarray, np.ndarray]:
        """Per-pair ``(latency, p2p_time)`` arrays for simultaneous
        messages ``src[i] -> dst[i]`` of ``nbytes`` each (no shared-medium
        concurrency adjustment — matching ``p2p_time``'s default).  Each
        element is bit-identical to the scalar ``p2p_time`` call."""
        if self.inter_link is None or self.cpus_per_node <= 0:
            lat = np.full(len(src), self.intra_link.latency)
            return lat, lat + nbytes / self.intra_link.bandwidth
        crosses = (src // self.cpus_per_node) != (dst // self.cpus_per_node)
        lat = np.where(crosses, self.inter_link.latency,
                       self.intra_link.latency)
        bandwidth = np.where(crosses, self.inter_link.bandwidth,
                             self.intra_link.bandwidth)
        return lat, lat + nbytes / bandwidth

    def collective_time(self, op: str, nbytes: int, nprocs: int) -> float:
        """Cost of one collective over ``nprocs`` ranks moving ``nbytes``
        per rank (for gather-like ops: per-rank contribution).

        Flat machines use binomial trees (bcast/reduce) and rings
        (gather-family).  Hierarchical machines (the SMP cluster) use
        two-level MagPIe-style collectives: full speed inside each node,
        then one representative per node across the (shared) Ethernet —
        which is exactly why the paper's cluster curves flatten past the
        four CPUs of a single SMP instead of collapsing.
        """
        if nprocs <= 1:
            return 0.0
        if not self.spans_nodes(nprocs):
            return self._flat_collective(op, nbytes,
                                         nprocs, self.intra_link, 1.0)
        assert self.inter_link is not None and self.cpus_per_node > 0
        nodes = math.ceil(nprocs / self.cpus_per_node)
        if self.collective_hierarchy == "flat":
            # topology-oblivious library: every tree/ring hop is priced
            # as if it crossed the network, and a shared medium sees all
            # concurrently communicating node pairs at once
            contention = float(max(nodes - 1, 1)) if self.shared_medium \
                else 1.0
            return self._flat_collective(op, nbytes, nprocs,
                                         self.inter_link, contention)
        per_node = min(self.cpus_per_node, nprocs)
        # shared medium: concurrent inter-node transfers in one tree/ring
        # stage serialize on the single wire
        contention = float(max(nodes - 1, 1)) if self.shared_medium else 1.0
        intra = self._flat_collective(op, nbytes, per_node, self.intra_link,
                                      1.0)
        # One representative per node goes across the wire.  Gather-family
        # ops carry the node's aggregated contribution; bcast/reduce move
        # the same payload at every level.
        aggregated = op in ("gather", "scatter", "allgather", "alltoall")
        inter_bytes = nbytes * per_node if aggregated else nbytes
        inter = self._flat_collective(op, inter_bytes, nodes,
                                      self.inter_link, contention)
        return intra + inter

    def _flat_collective(self, op: str, nbytes: int, nprocs: int,
                         link: Link, contention: float) -> float:
        if nprocs <= 1:
            return 0.0
        bandwidth = link.bandwidth / contention
        stages = math.ceil(math.log2(nprocs))
        per_msg = link.latency + nbytes / bandwidth
        if op in ("bcast", "reduce"):
            return stages * per_msg
        if op == "allreduce":
            if nbytes <= 0:
                return stages * link.latency
            if self.allreduce_algo == "halving":
                # Rabenseifner: reduce-scatter + allgather, each log2(P)
                # stages, moving ~2*(P-1)/P of the payload in total
                return 2 * (stages * link.latency
                            + (nprocs - 1) * nbytes / (nprocs * bandwidth))
            return 2 * stages * per_msg
        if op == "barrier":
            return 2 * stages * link.latency
        if op in ("gather", "scatter", "allgather", "alltoall"):
            if self.gather_algo == "doubling" and op != "alltoall":
                # recursive doubling: log2(P) rounds of exponentially
                # growing payloads — same (P-1)*nbytes wire volume, only
                # log2(P) latency terms (alltoall is personalized and
                # keeps the ring schedule)
                return stages * link.latency + (nprocs - 1) * nbytes / bandwidth
            # ring / sequential-root algorithms: (P-1) messages of the
            # per-rank contribution
            return (nprocs - 1) * per_msg
        raise ValueError(f"unknown collective {op!r}")


# --------------------------------------------------------------------------
# the three machines
# --------------------------------------------------------------------------

# Reference CPU (the paper's sequential baseline is "a single UltraSPARC
# CPU"): ~65 Mflop/s compiled dense kernels, ~30 M elements/s streaming.
_ULTRASPARC = CpuModel(
    flop_time=1.0 / 65e6,
    elem_time=1.0 / 30e6,
    mem_time=1.0 / 55e6,
    call_overhead=4.0e-6,
)

MEIKO_CS2 = MachineModel(
    name="Meiko CS-2",
    max_cpus=16,
    cpu=_ULTRASPARC,
    # Elan/Elite fat-tree: low latency, high bandwidth, full bisection —
    # "the best balance between processor speed, message latency, and
    # aggregate message-passing bandwidth" (paper, Section 6).
    intra_link=Link(latency=8.0e-5, bandwidth=5.0e7),
    memory_per_cpu=64 * 1024 * 1024,   # 64 MB per CS-2 node
)

SUN_ENTERPRISE = MachineModel(
    name="Sun Enterprise 4000",
    max_cpus=8,
    cpu=replace(_ULTRASPARC, flop_time=1.0 / 70e6),
    # Message passing through shared memory: microsecond latency, memcpy
    # bandwidth — but every CPU shares one Gigaplane memory bus.
    intra_link=Link(latency=2.5e-6, bandwidth=1.5e8),
    cpus_per_node=0,
    bus_contention=0.13,
    memory_per_cpu=128 * 1024 * 1024,  # 1 GB Gigaplane / 8 CPUs
)

SPARC20_CLUSTER = MachineModel(
    name="SPARCserver-20 cluster",
    max_cpus=16,
    cpu=replace(_ULTRASPARC, flop_time=1.0 / 40e6, elem_time=1.0 / 22e6),
    # four 4-CPU SMP nodes; 10 Mb/s shared Ethernet between nodes
    intra_link=Link(latency=4.0e-6, bandwidth=1.0e8),
    inter_link=Link(latency=9.0e-4, bandwidth=1.05e6),
    cpus_per_node=4,
    bus_contention=0.05,
    shared_medium=True,
    memory_per_cpu=32 * 1024 * 1024,   # 128 MB SPARCserver-20 / 4 CPUs
)

#: a well-equipped 1997 scientist's workstation (the paper's comparison
#: point for the memory argument)
WORKSTATION_MEMORY = 128 * 1024 * 1024


# --------------------------------------------------------------------------
# modern machines (the P=1024 scaling vehicles; see docs/SCALING.md)
# --------------------------------------------------------------------------

# A current server core: ~5 Gflop/s scalar dense kernels per core,
# DDR-bound streaming, sub-microsecond library call overhead.
_MODERN_CORE = CpuModel(
    flop_time=1.0 / 5e9,
    elem_time=1.0 / 2e9,
    mem_time=1.0 / 4e9,
    call_overhead=1.0e-7,
)

FATTREE_CLUSTER = MachineModel(
    name="Fat-tree cluster",
    max_cpus=2048,
    cpu=_MODERN_CORE,
    # shared memory within a 32-core node; full-bisection HDR-class
    # fabric between the 64 nodes (no shared medium: a fat tree keeps
    # concurrent node pairs from serializing, unlike 1997's Ethernet)
    intra_link=Link(latency=3.0e-7, bandwidth=8.0e9),
    inter_link=Link(latency=1.5e-6, bandwidth=1.2e10),
    cpus_per_node=32,
    bus_contention=0.02,
    memory_per_cpu=4 * 1024 * 1024 * 1024,
)

# GPU-era flop rates: each "rank" models one accelerator — hundreds of
# Gflop/s sustained on dense kernels, kernel-launch-scale call overhead,
# NVLink-class links inside a node and a 200 Gb/s NIC between nodes.
_GPU = CpuModel(
    flop_time=1.0 / 5e11,
    elem_time=1.0 / 1e11,
    mem_time=1.0 / 2e11,
    call_overhead=3.0e-6,
)

GPU_CLUSTER = MachineModel(
    name="GPU cluster",
    max_cpus=1024,
    cpu=_GPU,
    intra_link=Link(latency=5.0e-6, bandwidth=2.0e11),
    inter_link=Link(latency=5.0e-6, bandwidth=2.5e10),
    cpus_per_node=8,
    memory_per_cpu=32 * 1024 * 1024 * 1024,
)

MACHINES: dict[str, MachineModel] = {
    "meiko": MEIKO_CS2,
    "enterprise": SUN_ENTERPRISE,
    "cluster": SPARC20_CLUSTER,
    "fattree": FATTREE_CLUSTER,
    "gpu": GPU_CLUSTER,
}


def get_machine(name: str) -> MachineModel:
    try:
        return MACHINES[name]
    except KeyError:
        raise KeyError(
            f"unknown machine {name!r}; choose from {sorted(MACHINES)}"
        ) from None
