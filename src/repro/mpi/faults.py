"""Deterministic fault injection ("chaos") for the simulated MPI layer.

Otter's generated programs are loosely synchronous SPMD codes whose
correctness depends on every rank observing identical control flow.  The
substrate must therefore *prove* it degrades gracefully when the network
misbehaves: a lost, delayed, duplicated, or corrupted message — or a
rank dying mid-collective — must produce a structured diagnostic, never
a hang and never silently wrong modeled numbers.

This module defines the fault *schedule*:

:class:`FaultRule`
    One injectable fault: ``drop`` / ``delay`` / ``duplicate`` /
    ``corrupt`` (bit-flip the payload) / ``crash`` (kill a rank at a
    given operation).  Each rule is scoped by acting rank (the sender
    for message faults, the victim for crashes), destination, tag,
    operation name, and a virtual-time window, and optionally sampled
    with a seed-driven probability or capped at a fire count.

:class:`FaultPlan`
    An immutable, reusable bundle of rules + seed (+ an optional
    virtual-clock timeout).  Parsable from a small text format so plans
    travel through ``--fault-plan`` / ``$REPRO_FAULT_PLAN``.

:class:`FaultState`
    The per-run mutable consultation state.  **Determinism is the whole
    point**: every decision is a pure function of ``(seed, rule index,
    acting rank, per-rank occurrence index)`` via a cryptographic hash —
    never of wall-clock time, thread interleaving, or a shared RNG
    stream — so an identical plan+seed reproduces the identical fault
    schedule on every run and on every backend (each rank executes the
    same operation sequence under ``lockstep``, ``threads``, and the
    lockstep fallback of ``fused``).

Payload integrity (the ``corrupt`` detector) also lives here: when a
plan is active every message carries a CRC32 checksum computed at send
time, and the receiver verifies it, turning a silent bit-flip into a
:class:`~repro.errors.MpiCorruptionError`.  Checksums cost host time
only — virtual-time accounting is untouched, which is what keeps
zero-fault chaos runs bit-identical to the non-chaos baseline.
"""

from __future__ import annotations

import hashlib
import math
import os
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from ..errors import MpiError, RankCrashedError

#: fault kinds that act on one message at send time
MESSAGE_KINDS = ("drop", "delay", "duplicate", "corrupt")
#: all fault kinds
KINDS = MESSAGE_KINDS + ("crash",)

_KIND_ALIASES = {"dup": "duplicate", "bitflip": "corrupt", "flip": "corrupt"}


def _hash01(*parts: Any) -> float:
    """Deterministic uniform [0, 1) from arbitrary hashable parts.

    SHA-256 over the ``repr`` — stable across processes, platforms, and
    Python hash randomization (unlike ``hash()``)."""
    digest = hashlib.sha256(repr(parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


def _hash_int(*parts: Any) -> int:
    digest = hashlib.sha256(repr(parts).encode("utf-8")).digest()
    return int.from_bytes(digest[8:16], "big")


# ------------------------------------------------------------------------- #
# payload integrity
# ------------------------------------------------------------------------- #


def _payload_bytes(obj: Any) -> bytes:
    if isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        return arr.tobytes() + repr((arr.shape, arr.dtype.str)).encode()
    # repr of float round-trips exactly; containers recurse via repr too
    return repr(obj).encode("utf-8", errors="replace")


def payload_checksum(obj: Any) -> int:
    """CRC32 integrity tag for one message payload (host-time only)."""
    return zlib.crc32(_payload_bytes(obj))


def corrupt_payload(obj: Any, salt: int) -> tuple[Any, bool]:
    """A bit-flipped *copy* of ``obj`` (the original may be aliased by
    the sender).  Returns ``(corrupted, True)``, or ``(obj, False)``
    when the payload type has no meaningful bit representation."""
    h = _hash_int("corrupt", salt)
    if isinstance(obj, np.ndarray) and obj.nbytes > 0:
        arr = np.ascontiguousarray(obj).copy()
        flat = arr.view(np.uint8).reshape(-1)
        flat[h % flat.size] ^= np.uint8(1 << (h // 7 % 8))
        return arr, True
    if isinstance(obj, float):
        raw = bytearray(struct.pack("<d", obj))
        raw[h % 8] ^= 1 << (h // 11 % 8)
        return struct.unpack("<d", bytes(raw))[0], True
    if isinstance(obj, bool):
        return (not obj), True
    if isinstance(obj, int):
        return obj ^ (1 << (h % 32)), True
    if isinstance(obj, str) and obj:
        i = h % len(obj)
        return obj[:i] + chr(ord(obj[i]) ^ 1) + obj[i + 1:], True
    return obj, False  # opaque container: leave intact (logged by caller)


# ------------------------------------------------------------------------- #
# rules and plans
# ------------------------------------------------------------------------- #


def _scope_matches(scope, value: int) -> bool:
    """Does a rank/dest scope (``None`` wildcard, single int, or an
    inclusive ``(lo, hi)`` range) cover ``value``?"""
    if scope is None:
        return True
    if isinstance(scope, tuple):
        return scope[0] <= value <= scope[1]
    return scope == value


def _scope_interval(scope) -> tuple[float, float]:
    if scope is None:
        return (-math.inf, math.inf)
    if isinstance(scope, tuple):
        return (scope[0], scope[1])
    return (scope, scope)


def _scopes_overlap(a, b) -> bool:
    """Do two rank scopes cover at least one common rank?"""
    alo, ahi = _scope_interval(a)
    blo, bhi = _scope_interval(b)
    return alo <= bhi and blo <= ahi


def _scope_str(scope) -> str:
    if isinstance(scope, tuple):
        return f"{scope[0]}-{scope[1]}"
    return str(scope)


def _check_scope(scope, what: str) -> None:
    """Eagerly reject malformed rank/dest scopes (negative ranks,
    inverted ranges) so a bad plan fails at load time with a message
    naming the field, never mid-run."""
    if scope is None:
        return
    if isinstance(scope, tuple):
        lo, hi = scope
        if lo < 0 or hi < 0:
            raise MpiError(
                f"fault plan: {what} range {lo}-{hi} has a negative "
                f"rank (ranks are >= 0)")
        if lo > hi:
            raise MpiError(
                f"fault plan: {what} range {lo}-{hi} is inverted "
                f"(write {hi}-{lo})")
    elif scope < 0:
        raise MpiError(
            f"fault plan: {what}={scope} is negative (ranks are >= 0)")


@dataclass(frozen=True)
class FaultRule:
    """One injectable fault, scoped by rank/destination/tag/op/time.

    ``rank`` is the *acting* rank: the sender for message faults, the
    victim for crashes.  ``None`` scope fields match anything; ``rank``
    and ``dest`` also accept an inclusive ``(lo, hi)`` range (spelled
    ``rank=lo-hi`` in the text format).  ``probability`` < 1 samples
    deterministically from the plan seed; ``count`` caps fires **per
    rank** (per-rank scoping is what keeps schedules identical across
    backends).  ``step`` (1-based) makes a crash fire at the rank's
    N-th matching operation.

    Every field is validated eagerly at construction — a malformed plan
    fails when it is *loaded*, with a message naming the offending
    field, never as a mid-run surprise.
    """

    kind: str
    rank: Any = None        # None | int | (lo, hi) inclusive
    dest: Any = None        # None | int | (lo, hi) inclusive
    tag: Optional[int] = None
    op: Optional[str] = None
    t_min: float = 0.0
    t_max: float = math.inf
    probability: float = 1.0
    count: Optional[int] = None
    step: Optional[int] = None
    delay: float = 0.0

    def __post_init__(self):
        if self.kind not in KINDS:
            raise MpiError(f"unknown fault kind {self.kind!r} "
                           f"(expected one of {', '.join(KINDS)})")
        if self.kind == "crash" and self.rank is None:
            raise MpiError("crash faults need an explicit rank= scope")
        _check_scope(self.rank, "rank")
        _check_scope(self.dest, "dst")
        if self.tag is not None and self.tag < 0:
            raise MpiError(
                f"fault plan: tag={self.tag} is negative — the substrate "
                f"rejects negative tags at send time, so this rule could "
                f"never match a message")
        if not 0.0 <= self.probability <= 1.0:
            raise MpiError(
                f"fault probability must be in [0, 1] "
                f"(got {self.probability})")
        if self.count is not None and self.count < 1:
            raise MpiError(
                f"fault plan: count={self.count} would never fire "
                f"(use count >= 1, or drop the rule)")
        if self.step is not None and self.step < 1:
            raise MpiError(
                f"fault plan: step={self.step} is invalid (steps are "
                f"1-based occurrence indices)")
        if self.t_min < 0.0:
            raise MpiError(
                f"fault plan: after={self.t_min:g} is negative "
                f"(virtual time starts at 0)")
        if self.t_max <= self.t_min:
            raise MpiError(
                f"fault plan: empty time window "
                f"[after={self.t_min:g}, before={self.t_max:g}) — "
                f"the rule could never fire")
        if self.delay < 0.0:
            raise MpiError(
                f"fault plan: by={self.delay:g} is negative (a delay "
                f"cannot move a message back in time)")
        if self.kind == "delay" and self.delay <= 0.0:
            raise MpiError("delay faults need by=<seconds> > 0")

    # -- scope checks --------------------------------------------------- #

    def _window(self, now: float) -> bool:
        return self.t_min <= now < self.t_max

    def matches_message(self, src: int, dest: int, tag: int,
                        now: float) -> bool:
        return (self.kind in MESSAGE_KINDS
                and _scope_matches(self.rank, src)
                and _scope_matches(self.dest, dest)
                and (self.tag is None or self.tag == tag)
                and (self.op is None or self.op == "send")
                and self._window(now))

    def matches_op(self, rank: int, op: str, now: float) -> bool:
        return (self.kind == "crash"
                and _scope_matches(self.rank, rank)
                and (self.op is None or self.op == op)
                and self._window(now))

    def describe(self) -> str:
        parts = [self.kind]
        for key, value, default in (
                ("rank", self.rank, None), ("dst", self.dest, None),
                ("tag", self.tag, None), ("op", self.op, None),
                ("step", self.step, None), ("count", self.count, None)):
            if value != default:
                if key in ("rank", "dst"):
                    value = _scope_str(value)
                parts.append(f"{key}={value}")
        if self.kind == "delay":
            parts.append(f"by={self.delay:g}")
        if self.probability < 1.0:
            parts.append(f"p={self.probability:g}")
        if self.t_min > 0.0:
            parts.append(f"after={self.t_min:g}")
        if not math.isinf(self.t_max):
            parts.append(f"before={self.t_max:g}")
        return " ".join(parts)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable fault schedule: rules + seed (+ virtual timeout).

    The plan itself carries no mutable state, so one plan can be run
    many times — each run builds a fresh :class:`FaultState` — and the
    injected schedule is identical every time.
    """

    rules: tuple[FaultRule, ...] = ()
    seed: int = 0
    #: virtual-clock patience: a rank whose recv/collective wait exceeds
    #: this many *simulated* seconds raises MpiTimeoutError
    virtual_timeout: Optional[float] = None

    def __init__(self, rules=(), seed: int = 0,
                 virtual_timeout: Optional[float] = None):
        object.__setattr__(self, "rules", tuple(rules))
        object.__setattr__(self, "seed", int(seed))
        object.__setattr__(self, "virtual_timeout", virtual_timeout)
        if virtual_timeout is not None and virtual_timeout <= 0:
            raise MpiError("timeout must be positive (virtual seconds)")
        self._validate_rules()

    def _validate_rules(self) -> None:
        """Eager cross-rule checks: duplicate rules and double-kill
        crash overlaps fail at load time with the offending directives
        spelled out, never as a mid-run surprise."""
        seen: dict[FaultRule, int] = {}
        for i, rule in enumerate(self.rules):
            j = seen.get(rule)
            if j is not None:
                raise MpiError(
                    f"fault plan: rule {i + 1} ({rule.describe()!r}) "
                    f"duplicates rule {j + 1} — each would fire on the "
                    f"same occurrences; use count= to fire more than "
                    f"once")
            seen[rule] = i
        crashes = [(i, r) for i, r in enumerate(self.rules)
                   if r.kind == "crash"]
        for n, (i, a) in enumerate(crashes):
            for j, b in crashes[n + 1:]:
                if (_scopes_overlap(a.rank, b.rank)
                        and (a.op is None or b.op is None or a.op == b.op)
                        and a.step == b.step):
                    raise MpiError(
                        f"fault plan: crash rules {i + 1} "
                        f"({a.describe()!r}) and {j + 1} "
                        f"({b.describe()!r}) overlap on rank scope "
                        f"{_scope_str(a.rank)} vs {_scope_str(b.rank)} "
                        f"— the second can never fire (the rank is "
                        f"already dead); narrow the rank= ranges or "
                        f"give the rules distinct step= positions")

    @property
    def has_faults(self) -> bool:
        """True when any injectable rule exists (a timeout-only plan is
        not chaotic: it never perturbs a healthy run)."""
        return bool(self.rules)

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        if self.virtual_timeout is not None:
            parts.append(f"timeout={self.virtual_timeout:g}")
        parts.extend(rule.describe() for rule in self.rules)
        return "; ".join(parts)

    # -- parsing --------------------------------------------------------- #

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the textual plan format (see docs/RESILIENCE.md).

        Directives are separated by ``;`` or newlines; ``#`` starts a
        comment.  ``seed=N`` and ``timeout=S`` are plan-level; every
        other directive is ``<kind> key=value ...``::

            seed=7; timeout=0.5
            drop rank=0 dst=1 tag=3 p=0.5 count=2
            delay by=0.002 after=0.001
            corrupt tag=9
            crash rank=2 op=allreduce step=3
        """
        rules: list[FaultRule] = []
        seed = 0
        timeout: Optional[float] = None
        for raw_line in text.replace(";", "\n").splitlines():
            line = raw_line.split("#", 1)[0].strip()
            if not line:
                continue
            tokens = line.split()
            head = tokens[0].lower()
            if "=" in head:  # plan-level key=value directive
                for token in tokens:
                    key, _, value = token.partition("=")
                    key = key.lower()
                    if key == "seed":
                        seed = _parse_int(value, "seed")
                    elif key == "timeout":
                        timeout = _parse_float(value, "timeout")
                    else:
                        raise MpiError(
                            f"fault plan: unknown directive {token!r}")
                continue
            kind = _KIND_ALIASES.get(head, head)
            if kind not in KINDS:
                raise MpiError(f"fault plan: unknown fault kind {head!r} "
                               f"(expected one of {', '.join(KINDS)})")
            fields: dict[str, Any] = {"kind": kind}
            for token in tokens[1:]:
                key, eq, value = token.partition("=")
                if not eq:
                    raise MpiError(
                        f"fault plan: expected key=value, got {token!r}")
                key = key.lower()
                if value in ("*", "any"):
                    continue
                if key in ("rank", "src", "source"):
                    fields["rank"] = _parse_scope(value, key)
                elif key in ("dst", "dest"):
                    fields["dest"] = _parse_scope(value, key)
                elif key == "tag":
                    fields["tag"] = _parse_int(value, key)
                elif key == "op":
                    fields["op"] = value
                elif key in ("p", "prob", "probability"):
                    fields["probability"] = _parse_float(value, key)
                elif key == "count":
                    fields["count"] = _parse_int(value, key)
                elif key == "step":
                    fields["step"] = _parse_int(value, key)
                elif key in ("by", "delay"):
                    fields["delay"] = _parse_float(value, key)
                elif key == "after":
                    fields["t_min"] = _parse_float(value, key)
                elif key == "before":
                    fields["t_max"] = _parse_float(value, key)
                else:
                    raise MpiError(f"fault plan: unknown key {key!r} "
                                   f"in {line!r}")
            rules.append(FaultRule(**fields))
        return cls(rules=rules, seed=seed, virtual_timeout=timeout)


def _parse_int(value: str, what: str) -> int:
    try:
        return int(value)
    except ValueError:
        raise MpiError(f"fault plan: {what} needs an integer "
                       f"(got {value!r})") from None


def _parse_scope(value: str, what: str):
    """A rank scope: a single integer, or an inclusive ``lo-hi`` range
    (``rank=0-3`` matches ranks 0, 1, 2, and 3)."""
    body = value[1:] if value.startswith("-") else value
    if "-" in body:
        lo, _, hi = value.partition("-")
        return (_parse_int(lo, what), _parse_int(hi, what))
    return _parse_int(value, what)


def _parse_float(value: str, what: str) -> float:
    try:
        return float(value)
    except ValueError:
        raise MpiError(f"fault plan: {what} needs a number "
                       f"(got {value!r})") from None


def load_plan(spec) -> Optional[FaultPlan]:
    """Resolve a ``--fault-plan`` / ``$REPRO_FAULT_PLAN`` value.

    ``None``/empty → no plan; an existing :class:`FaultPlan` passes
    through; ``@path`` or a path to an existing file reads the file;
    anything else parses as an inline plan."""
    if spec is None:
        return None
    if isinstance(spec, FaultPlan):
        return spec
    text = str(spec).strip()
    if not text:
        return None
    if text.startswith("@"):
        return FaultPlan.parse(_read_plan_file(text[1:]))
    if os.path.exists(text):
        return FaultPlan.parse(_read_plan_file(text))
    return FaultPlan.parse(text)


def _read_plan_file(path: str) -> str:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return fh.read()
    except OSError as exc:
        raise MpiError(f"fault plan: cannot read {path!r}: {exc}") from None


# ------------------------------------------------------------------------- #
# per-run consultation state
# ------------------------------------------------------------------------- #


@dataclass
class MessageFate:
    """What the chaotic network does to one posted message.

    ``corrupted`` marks a payload a corrupt rule actually mangled —
    the recovery layer's retry loop treats it as a failed attempt (the
    receiver's checksum NACK triggers a re-send), while without
    recovery it travels on and fails the receive-side integrity
    check."""

    payload: Any
    deliver: bool = True
    copies: int = 1
    extra_delay: float = 0.0
    checksum: Optional[int] = None
    corrupted: bool = False


class FaultState:
    """Mutable per-run state consulted at every send/recv/sync.

    All counters are **per acting rank**: each rank's schedule depends
    only on its own deterministic operation sequence, never on how the
    backend interleaves ranks — which is exactly what makes the same
    plan reproduce the same faults under every backend.  Under the
    ``threads`` backend each rank's counters are touched only by its own
    carrier thread, so no locking is needed; the per-rank event logs are
    flattened in rank order for reporting.
    """

    def __init__(self, plan: FaultPlan, nprocs: int):
        self.plan = plan
        self.nprocs = nprocs
        # per-rank, per-rule occurrence counter (scope matches seen)
        self._seen = [[0] * len(plan.rules) for _ in range(nprocs)]
        # per-rank, per-rule fire counter (rules actually applied)
        self._fired = [[0] * len(plan.rules) for _ in range(nprocs)]
        self._events: list[list[str]] = [[] for _ in range(nprocs)]
        #: optional ``(rank, text, now)`` callback mirroring every logged
        #: fault into a trace recorder (wired by ``World`` when tracing)
        self.sink = None

    # -- decision core --------------------------------------------------- #

    def _should_fire(self, rule_idx: int, rule: FaultRule,
                     rank: int) -> bool:
        """Advance the (rank, rule) occurrence counter and decide.

        Pure function of (seed, rule index, rank, occurrence index):
        no wall clock, no shared RNG stream, no interleaving."""
        occurrence = self._seen[rank][rule_idx]
        self._seen[rank][rule_idx] = occurrence + 1
        if rule.step is not None and occurrence + 1 != rule.step:
            return False
        if rule.count is not None \
                and self._fired[rank][rule_idx] >= rule.count:
            return False
        if rule.probability < 1.0 and _hash01(
                self.plan.seed, rule_idx, rank,
                occurrence) >= rule.probability:
            return False
        self._fired[rank][rule_idx] += 1
        return True

    def _log(self, rank: int, text: str, now: float = 0.0) -> None:
        self._events[rank].append(text)
        if self.sink is not None:
            self.sink(rank, text, now)

    # -- hooks ----------------------------------------------------------- #

    def check_crash(self, rank: int, op: str, now: float) -> None:
        """Consulted at every send/recv/sync: kill the rank if a crash
        rule fires here."""
        for idx, rule in enumerate(self.plan.rules):
            if not rule.matches_op(rank, op, now):
                continue
            if self._should_fire(idx, rule, rank):
                n = self._seen[rank][idx]
                self._log(rank, f"crash rank={rank} op={op} "
                                f"occurrence={n}", now)
                raise RankCrashedError(
                    f"fault plan: rank {rank} crashed at {op} "
                    f"(occurrence {n}, virtual t={now:.9g})")

    def on_message(self, src: int, dest: int, tag: int, nbytes: int,
                   now: float, payload: Any) -> MessageFate:
        """Consulted once per posted message, on the sender.  Applies
        every firing message rule in plan order (``drop`` wins and stops
        further processing) and stamps the integrity checksum."""
        fate = MessageFate(payload=payload,
                           checksum=payload_checksum(payload))
        where = f"rank {src}->rank {dest} tag={tag}"
        for idx, rule in enumerate(self.plan.rules):
            if not rule.matches_message(src, dest, tag, now):
                continue
            if not self._should_fire(idx, rule, src):
                continue
            if rule.kind == "drop":
                fate.deliver = False
                self._log(src, f"drop {where} ({nbytes} B)", now)
                return fate
            if rule.kind == "delay":
                fate.extra_delay += rule.delay
                self._log(src, f"delay {where} by={rule.delay:g}", now)
            elif rule.kind == "duplicate":
                fate.copies += 1
                self._log(src, f"duplicate {where}", now)
            elif rule.kind == "corrupt":
                corrupted, ok = corrupt_payload(
                    fate.payload, _hash_int(self.plan.seed, idx, src,
                                            self._seen[src][idx]))
                if ok:
                    fate.payload = corrupted
                    fate.corrupted = True
                    self._log(src, f"corrupt {where}", now)
                else:
                    self._log(src, f"corrupt {where} skipped "
                                   f"(uncorruptible payload)", now)
        return fate

    @property
    def events(self) -> list[str]:
        """All injected-fault events, flattened in rank order (each
        rank's list is in its own deterministic program order)."""
        out: list[str] = []
        for rank_events in self._events:
            out.extend(rank_events)
        return out
