"""The rank-fused SPMD backend's communicator facade.

``backend="fused"`` executes a generated program **once** instead of P
times: the program's control flow is identical on every rank (loosely
synchronous SPMD — pass 5 guards all rank-dependent stores), so one pass
can carry all ranks' state simultaneously.  Distributed values become
:class:`~repro.runtime.matrix.FusedDMatrix` (the full array plus the
distribution geometry); replicated scalars stay single Python numbers.

:class:`FusedComm` is the communication/accounting half of that design.
Communication ops never move data here — the fused runtime paths already
computed every rank's result as an in-process permutation or reduction —
but each op charges **exactly** what the lockstep backend would charge:

* per-rank virtual clocks (``compute_ranks`` groups ranks by identical
  work, so a P-rank charge costs O(distinct counts) model evaluations);
* ``messages_sent`` / ``bytes_sent`` for point-to-point patterns
  (``ring_exchange`` mirrors P simultaneous ``sendrecv`` calls);
* ``collectives`` / ``collective_counts`` via the ``charge_*`` helpers,
  which replicate the lockstep cost formulas byte for byte — including
  the ``size == 1`` shortcut of bcast/reduce/allreduce that tallies the
  op without a rendezvous.

The collective cost formulas in :mod:`repro.mpi.comm` are symmetric
functions of the per-rank contributions (max of ``sizeof``), so the
fused charges are *bit-identical* to lockstep without simulating the
scheduler's arrival order.

Divergence: anything that would make the single pass rank-dependent —
reading ``comm.rank``, point-to-point with data, rank-dependent truth
values — raises :class:`~repro.errors.FusionDivergence`; ``run_spmd``
catches it and re-runs the program under ``lockstep``.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

import numpy as np

from ..errors import FusionDivergence
from . import datatypes
from .comm import SUM, World
from .machine import MachineModel


class PerRankScalar:
    """A scalar whose value differs across the fused ranks (``toc`` is
    the canonical producer: clocks advance per rank).  Collapses back to
    a plain float wherever the values agree; using a disagreeing one for
    control flow or as a replicated scalar raises FusionDivergence."""

    __slots__ = ("values",)

    def __init__(self, values: Sequence):
        self.values = tuple(
            complex(v) if isinstance(v, (complex, np.complexfloating))
            else float(v) for v in values)

    def collapse(self):
        """A plain scalar when all ranks agree, else self."""
        if len(set(self.values)) == 1:
            return self.values[0]
        return self

    def __repr__(self) -> str:
        return f"PerRankScalar({list(self.values)})"

    # Any implicit coercion means a code path without explicit per-rank
    # handling is about to treat this as a replicated value — abort
    # fusion rather than silently computing one rank's answer.

    def _diverge(self):
        raise FusionDivergence(
            "rank-varying scalar used as a replicated value")

    def __array__(self, dtype=None, copy=None):
        self._diverge()

    def __float__(self):
        self._diverge()

    def __int__(self):
        self._diverge()

    def __index__(self):
        self._diverge()

    def __complex__(self):
        self._diverge()

    def __bool__(self):
        self._diverge()


class FusedComm:
    """All P ranks' communicator, driven by one pass of the program.

    Exposes the subset of the :class:`~repro.mpi.comm.Comm` surface that
    rank-agnostic runtime code needs (``size``, ``machine``, replicated
    ``compute``/``overhead``/``advance``, and the replicated collectives
    ``barrier``/``bcast``/``allreduce``/``allgather``), plus the fused
    accounting helpers.  Everything rank-dependent raises
    :class:`FusionDivergence`.
    """

    is_fused = True

    def __init__(self, nprocs: int, machine: MachineModel,
                 fault_plan=None, trace=None):
        if fault_plan is not None and fault_plan.has_faults:
            # fault schedules are per-rank by construction; a single
            # fused pass cannot honor them — fall back to lockstep
            raise FusionDivergence(
                "fault injection is rank-dependent; chaos runs fall "
                "back to lockstep")
        # World doubles as the stats/clocks container so SpmdResult and
        # compiler instrumentation read the same fields on every backend
        self.world = World(nprocs, machine, fault_plan=fault_plan,
                           trace=trace)
        self.size = nprocs
        self.machine = machine
        self.line = 0
        self._recs = None if trace is None else trace.recorders

    # -- identity --------------------------------------------------------- #

    @property
    def rank(self) -> int:
        raise FusionDivergence("program reads the MPI rank")

    @property
    def clocks(self) -> list:
        return self.world.clocks

    @property
    def time(self) -> float:
        raise FusionDivergence("per-rank clock read outside tic/toc")

    def clock_snapshot(self):
        return list(self.world.clocks)

    def clock_restore(self, snapshot) -> None:
        self.world.clocks[:] = snapshot

    # -- replicated virtual time ------------------------------------------ #

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise FusionDivergence("cannot advance the clock backwards")
        for r in range(self.size):
            self.world.clocks[r] += dt
        if self._recs is not None:
            line = self.line
            for rec in self._recs:
                rec.charge(line, dt)

    def compute(self, flops: int = 0, elems: int = 0, mem: int = 0) -> None:
        """Identical local computation on every rank."""
        dt = self.machine.compute_time(
            flops=flops, elems=elems, mem=mem, active_cpus=self.size)
        if self._recs is not None and dt > 0.0:
            clocks = self.world.clocks
            line = self.line
            for r, rec in enumerate(self._recs):
                rec.compute(line, clocks[r], dt)
        self.advance(dt)

    def overhead(self, calls: int = 1) -> None:
        if self._recs is not None:
            line = self.line
            for rec in self._recs:
                rec.calls(line, calls)
        self.advance(calls * self.machine.cpu.call_overhead)

    def trace_suspend(self):
        """Pause recording (instrumentation-only work); returns a token
        for :meth:`trace_resume`."""
        token = self._recs
        self._recs = None
        return token

    def trace_resume(self, token) -> None:
        self._recs = token

    def trace_io(self, nbytes: int) -> None:
        if self._recs is not None:
            # output happens on rank 0 on every backend
            self._recs[0].io(self.line, self.world.clocks[0], nbytes)

    def compute_ranks(self, flops: Optional[Sequence[int]] = None,
                      elems: Optional[Sequence[int]] = None,
                      mem: Optional[Sequence[int]] = None) -> None:
        """Per-rank local computation (one sequence entry per rank).

        Block distributions produce at most two distinct counts, so the
        model is evaluated O(1) times and the result memoized per charge.
        """
        clocks = self.world.clocks
        recs = self._recs
        line = self.line
        memo: dict = {}
        for r in range(self.size):
            key = (flops[r] if flops is not None else 0,
                   elems[r] if elems is not None else 0,
                   mem[r] if mem is not None else 0)
            dt = memo.get(key)
            if dt is None:
                dt = self.machine.compute_time(
                    flops=key[0], elems=key[1], mem=key[2],
                    active_cpus=self.size)
                memo[key] = dt
            if recs is not None:
                if dt > 0.0:
                    recs[r].compute(line, clocks[r], dt)
                recs[r].charge(line, dt)
            clocks[r] += dt

    # -- collective accounting -------------------------------------------- #

    def _sync_cost(self, op: str, cost: float, nbytes: int = 0) -> None:
        """One rendezvous: all clocks meet at max + cost (exactly what
        ``World._run_combine`` + the per-rank ``max`` does), and the
        collective tallies advance."""
        w = self.world
        pre = list(w.clocks)
        tnew = max(pre) + cost
        w.clocks[:] = [tnew] * self.size
        w.collectives += 1
        w._count(op)
        if self._recs is not None:
            line = self.line
            for r, rec in enumerate(self._recs):
                rec.collective(op, line, pre[r], tnew - pre[r], nbytes)

    def charge_barrier(self) -> None:
        self._sync_cost("barrier", self.machine.collective_time(
            "barrier", 0, self.size))

    def charge_bcast(self, nbytes: int) -> None:
        if self.size == 1:
            self.world._count("bcast")
            if self._recs is not None:
                self._recs[0].collective("bcast", self.line,
                                         self.world.clocks[0], 0.0, nbytes)
            return
        self._sync_cost("bcast", self.machine.collective_time(
            "bcast", nbytes, self.size), nbytes)

    def charge_reduce(self, nbytes: int, kind: str = "allreduce") -> None:
        if self.size == 1:
            self.world._count(kind)
            if self._recs is not None:
                self._recs[0].collective(kind, self.line,
                                         self.world.clocks[0], 0.0, nbytes)
            return
        cost = self.machine.collective_time(kind, nbytes, self.size)
        cost += int(np.ceil(np.log2(self.size))) * (nbytes / 8.0) \
            * self.machine.cpu.elem_time
        self._sync_cost(kind, cost, nbytes)

    def charge_allgather(self, nbytes: int) -> None:
        self._sync_cost("allgather", self.machine.collective_time(
            "allgather", nbytes, self.size), nbytes)

    def charge_alltoall(self, per_nbytes: int) -> None:
        self._sync_cost("alltoall", self.machine.collective_time(
            "alltoall", per_nbytes, self.size), per_nbytes)

    def charge_scan(self, nbytes: int) -> None:
        # comm.scan tallies as "scan" but costs like an allreduce
        self._sync_cost("scan", self.machine.collective_time(
            "allreduce", nbytes, self.size), nbytes)

    def ring_exchange(self, nbytes: int, forward: bool) -> None:
        """Accounting for P simultaneous ``sendrecv`` calls with the ring
        neighbour (circshift's boundary exchange): each rank charges the
        buffered-send injection at its pre-op clock, posts the arrival,
        then waits for its own incoming boundary."""
        w = self.world
        p = self.size
        if p == 1:
            return  # self-exchange: no wire traffic
        pre = list(w.clocks)
        arrivals = [0.0] * p
        for r in range(p):
            dest = (r + 1) % p if forward else (r - 1) % p
            arrivals[dest] = pre[r] + self.machine.p2p_time(r, dest, nbytes)
            w.clocks[r] = pre[r] + \
                self.machine.link_between(r, dest).latency * 0.5
            w.messages_sent += 1
            w.bytes_sent += nbytes
            if self._recs is not None:
                self._recs[r].send(self.line, pre[r],
                                   w.clocks[r] - pre[r], dest, 0, nbytes)
        for r in range(p):
            me = w.clocks[r]
            w.clocks[r] = max(me, arrivals[r])
            if self._recs is not None:
                source = (r - 1) % p if forward else (r + 1) % p
                self._recs[r].recv(self.line, me,
                                   max(0.0, arrivals[r] - me),
                                   source, 0, nbytes)

    # -- replicated collectives ------------------------------------------- #
    # Unbranched (rank-agnostic) runtime code can only ever contribute a
    # replicated value, so these fold P identical contributions — exactly
    # what the lockstep rendezvous would compute.

    def barrier(self) -> None:
        self.charge_barrier()

    def bcast(self, obj: Any, root: int = 0) -> Any:
        self.charge_bcast(datatypes.sizeof(obj))
        return obj

    def allreduce(self, obj: Any, op: Callable = SUM) -> Any:
        acc = obj
        for _ in range(self.size - 1):
            acc = op(acc, obj)
        self.charge_reduce(datatypes.sizeof(obj))
        return acc

    def allgather(self, obj: Any) -> list:
        self.charge_allgather(datatypes.sizeof(obj))
        return [obj] * self.size

    # -- everything rank-dependent diverges -------------------------------- #

    def _diverge(self, what: str):
        raise FusionDivergence(f"{what} has no fused path")

    def send(self, *args, **kwargs):
        self._diverge("point-to-point send")

    def recv(self, *args, **kwargs):
        self._diverge("point-to-point recv")

    def sendrecv(self, *args, **kwargs):
        self._diverge("point-to-point sendrecv")

    def isend(self, *args, **kwargs):
        self._diverge("nonblocking send")

    def irecv(self, *args, **kwargs):
        self._diverge("nonblocking recv")

    def reduce(self, *args, **kwargs):
        self._diverge("rooted reduce")  # result differs per rank

    def gather(self, *args, **kwargs):
        self._diverge("rooted gather")

    def scatter(self, *args, **kwargs):
        self._diverge("scatter")  # each rank receives a different item

    def alltoall(self, *args, **kwargs):
        self._diverge("raw alltoall")  # each rank receives a different row

    def scan(self, *args, **kwargs):
        self._diverge("raw scan")  # prefix results differ per rank
