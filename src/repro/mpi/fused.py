"""The rank-fused SPMD backend's communicator facade.

``backend="fused"`` executes a generated program **once** instead of P
times: the program's control flow is identical on every rank (loosely
synchronous SPMD — pass 5 guards all rank-dependent stores), so one pass
can carry all ranks' state simultaneously.  Distributed values become
:class:`~repro.runtime.matrix.FusedDMatrix` (the full array plus the
distribution geometry); replicated scalars stay single Python numbers.

:class:`FusedComm` is the communication/accounting half of that design.
Communication ops never move data here — the fused runtime paths already
computed every rank's result as an in-process permutation or reduction —
but each op charges **exactly** what the lockstep backend would charge:

* per-rank virtual clocks (``compute_ranks`` groups ranks by identical
  work, so a P-rank charge costs O(distinct counts) model evaluations);
* ``messages_sent`` / ``bytes_sent`` for point-to-point patterns
  (``ring_exchange`` mirrors P simultaneous ``sendrecv`` calls);
* ``collectives`` / ``collective_counts`` via the ``charge_*`` helpers,
  which replicate the lockstep cost formulas byte for byte — including
  the ``size == 1`` shortcut of bcast/reduce/allreduce that tallies the
  op without a rendezvous.

The collective cost formulas in :mod:`repro.mpi.comm` are symmetric
functions of the per-rank contributions (max of ``sizeof``), so the
fused charges are *bit-identical* to lockstep without simulating the
scheduler's arrival order.

Divergence: anything that would make the single pass rank-dependent —
reading ``comm.rank``, point-to-point with data, rank-dependent truth
values — raises :class:`~repro.errors.FusionDivergence`; ``run_spmd``
catches it and re-runs the program under ``lockstep``.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Optional, Sequence

import numpy as np

from ..errors import FusionDivergence
from . import datatypes
from .comm import MAX, MIN, PROD, SUM, World
from .machine import MachineModel

#: reduction ops whose rank-order fold over *identical* float64
#: contributions can run as a ``ufunc.accumulate`` — numpy's accumulate
#: is a strict sequential left fold in C, so the result is bit-identical
#: to the Python loop ``acc = op(acc, obj)`` repeated P-1 times
_FOLD_UFUNCS = {SUM: np.add, PROD: np.multiply,
                MAX: np.maximum, MIN: np.minimum}

_MISSING = object()


def _bits_equal(a: Any, b: Any) -> bool:
    """Exact (bit-level for floats: ``repr`` separates ``0.0``/``-0.0``)
    equality — the fixed-point test of :meth:`FusedComm._fold_value`."""
    return type(a) is type(b) and a == b and repr(a) == repr(b)


class PerRankScalar:
    """A scalar whose value differs across the fused ranks (``toc`` is
    the canonical producer: clocks advance per rank).  Collapses back to
    a plain float wherever the values agree; using a disagreeing one for
    control flow or as a replicated scalar raises FusionDivergence."""

    __slots__ = ("values",)

    def __init__(self, values: Sequence):
        self.values = tuple(
            complex(v) if isinstance(v, (complex, np.complexfloating))
            else float(v) for v in values)

    def collapse(self):
        """A plain scalar when all ranks agree, else self."""
        if len(set(self.values)) == 1:
            return self.values[0]
        return self

    def __repr__(self) -> str:
        return f"PerRankScalar({list(self.values)})"

    # Any implicit coercion means a code path without explicit per-rank
    # handling is about to treat this as a replicated value — abort
    # fusion rather than silently computing one rank's answer.

    def _diverge(self):
        raise FusionDivergence(
            "rank-varying scalar used as a replicated value")

    def __array__(self, dtype=None, copy=None):
        self._diverge()

    def __float__(self):
        self._diverge()

    def __int__(self):
        self._diverge()

    def __index__(self):
        self._diverge()

    def __complex__(self):
        self._diverge()

    def __bool__(self):
        self._diverge()


class FusedComm:
    """All P ranks' communicator, driven by one pass of the program.

    Exposes the subset of the :class:`~repro.mpi.comm.Comm` surface that
    rank-agnostic runtime code needs (``size``, ``machine``, replicated
    ``compute``/``overhead``/``advance``, and the replicated collectives
    ``barrier``/``bcast``/``allreduce``/``allgather``), plus the fused
    accounting helpers.  Everything rank-dependent raises
    :class:`FusionDivergence`.
    """

    is_fused = True

    def __init__(self, nprocs: int, machine: MachineModel,
                 fault_plan=None, trace=None, recovery=None):
        if fault_plan is not None and fault_plan.has_faults:
            # fault schedules are per-rank by construction; a single
            # fused pass cannot honor them — checkpoint state (if any)
            # and fall back to lockstep, which heals under the same
            # recovery policy
            raise FusionDivergence(
                "fault injection is rank-dependent; chaos runs fall "
                "back to lockstep")
        # World doubles as the stats/clocks container so SpmdResult and
        # compiler instrumentation read the same fields on every backend
        self.world = World(nprocs, machine, fault_plan=fault_plan,
                           trace=trace, recovery=recovery)
        self.size = nprocs
        self.machine = machine
        self.line = 0
        # the WorldTrace itself (not the recorder list): fused charge
        # paths feed whole per-rank columns to its batch_* hooks
        self._trace = trace
        # (op, size, type, value) -> fold result; replicated reductions
        # recur with identical inputs, so each distinct fold runs once
        self._fold_memo: dict = {}

    # -- identity --------------------------------------------------------- #

    @property
    def rank(self) -> int:
        raise FusionDivergence("program reads the MPI rank")

    @property
    def clocks(self) -> np.ndarray:
        return self.world.clocks

    @property
    def time(self) -> float:
        raise FusionDivergence("per-rank clock read outside tic/toc")

    def clock_snapshot(self) -> list:
        return self.world.clocks.tolist()

    def clock_restore(self, snapshot) -> None:
        self.world.clocks[:] = snapshot

    # -- replicated virtual time ------------------------------------------ #

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise FusionDivergence("cannot advance the clock backwards")
        self.world.clocks += dt
        if self._trace is not None:
            self._trace.batch_charge(self.line, dt)

    def compute(self, flops: int = 0, elems: int = 0, mem: int = 0) -> None:
        """Identical local computation on every rank."""
        dt = self.machine.compute_time(
            flops=flops, elems=elems, mem=mem, active_cpus=self.size)
        if self._trace is not None and dt > 0.0:
            self._trace.batch_compute(self.line, self.world.clocks, dt)
        self.advance(dt)

    def overhead(self, calls: int = 1) -> None:
        if self._trace is not None:
            self._trace.batch_calls(self.line, calls)
        self.advance(calls * self.machine.cpu.call_overhead)

    def trace_suspend(self):
        """Pause recording (instrumentation-only work); returns a token
        for :meth:`trace_resume`."""
        token = self._trace
        self._trace = None
        return token

    def trace_resume(self, token) -> None:
        self._trace = token

    def trace_io(self, nbytes: int) -> None:
        if self._trace is not None:
            # output happens on rank 0 on every backend
            self._trace.recorders[0].io(self.line, self.world.clocks[0],
                                        nbytes)

    def compute_ranks(self, flops: Optional[Sequence[int]] = None,
                      elems: Optional[Sequence[int]] = None,
                      mem: Optional[Sequence[int]] = None) -> None:
        """Per-rank local computation (one sequence entry per rank).

        One vectorized model evaluation charges all P clocks; each
        element of :meth:`MachineModel.compute_time_vec` is bit-identical
        to the scalar ``compute_time`` call the lockstep backend makes.
        """
        clocks = self.world.clocks
        dts = self.machine.compute_time_vec(
            flops=flops, elems=elems, mem=mem, active_cpus=self.size)
        if self._trace is not None:
            self._trace.batch_rank_compute(self.line, clocks, dts)
        clocks += dts

    # -- collective accounting -------------------------------------------- #

    def _sync_cost(self, op: str, cost: float, nbytes: int = 0) -> None:
        """One rendezvous: all clocks meet at max + cost (exactly what
        ``World._run_combine`` + the per-rank ``max`` does), and the
        collective tallies advance."""
        w = self.world
        if w.aborted is not None:
            # the single fused pass has no blocked ranks to unwind, so
            # the watchdog's abort is observed here, at the next
            # collective boundary
            raise w.aborted
        pre = w.clocks.copy()
        tnew = float(pre.max()) + cost
        w.clocks[:] = tnew
        w.collectives += 1
        w.rank_collectives += 1
        w._count(op)
        recovery = w.recovery
        if (recovery is not None and recovery.policy.checkpoint_every
                and w.collectives
                % recovery.policy.checkpoint_every == 0):
            # the fused backend's single fused state snapshots at the
            # same cadence and boundaries as the per-rank backends
            recovery.store.take(w, tnew, recovery.attempt)
        if self._trace is not None:
            self._trace.batch_collective(op, self.line, pre, tnew, nbytes)

    def charge_barrier(self) -> None:
        self._sync_cost("barrier", self.machine.collective_time(
            "barrier", 0, self.size))

    def charge_bcast(self, nbytes: int) -> None:
        if self.size == 1:
            self.world._count("bcast")
            if self._trace is not None:
                self._trace.recorders[0].collective(
                    "bcast", self.line, self.world.clocks[0], 0.0, nbytes)
            return
        self._sync_cost("bcast", self.machine.collective_time(
            "bcast", nbytes, self.size), nbytes)

    def charge_reduce(self, nbytes: int, kind: str = "allreduce") -> None:
        if self.size == 1:
            self.world._count(kind)
            if self._trace is not None:
                self._trace.recorders[0].collective(
                    kind, self.line, self.world.clocks[0], 0.0, nbytes)
            return
        cost = self.machine.collective_time(kind, nbytes, self.size)
        cost += int(np.ceil(np.log2(self.size))) * (nbytes / 8.0) \
            * self.machine.cpu.elem_time
        self._sync_cost(kind, cost, nbytes)

    def charge_allgather(self, nbytes: int) -> None:
        self._sync_cost("allgather", self.machine.collective_time(
            "allgather", nbytes, self.size), nbytes)

    def charge_alltoall(self, per_nbytes: int) -> None:
        self._sync_cost("alltoall", self.machine.collective_time(
            "alltoall", per_nbytes, self.size), per_nbytes)

    def charge_scan(self, nbytes: int) -> None:
        # comm.scan tallies as "scan" but costs like an allreduce
        self._sync_cost("scan", self.machine.collective_time(
            "allreduce", nbytes, self.size), nbytes)

    def ring_exchange(self, nbytes: int, forward: bool) -> None:
        """Accounting for P simultaneous ``sendrecv`` calls with the ring
        neighbour (circshift's boundary exchange): each rank charges the
        buffered-send injection at its pre-op clock, posts the arrival,
        then waits for its own incoming boundary."""
        w = self.world
        if w.aborted is not None:
            raise w.aborted
        p = self.size
        if p == 1:
            return  # self-exchange: no wire traffic
        pre = w.clocks.copy()
        ranks = np.arange(p)
        step = 1 if forward else -1
        dests = (ranks + step) % p
        lat, ptime = self.machine.p2p_time_vec(ranks, dests, nbytes)
        arrivals = np.empty(p, dtype=np.float64)
        arrivals[dests] = pre + ptime
        w.clocks[:] = pre + lat * 0.5
        w.rank_messages += 1
        w.rank_bytes += nbytes
        if self._trace is not None:
            self._trace.batch_send(self.line, pre, w.clocks - pre,
                                   dests, 0, nbytes)
        me = w.clocks.copy()
        np.maximum(me, arrivals, out=w.clocks)
        if self._trace is not None:
            sources = (ranks - step) % p
            self._trace.batch_recv(self.line, me,
                                   np.maximum(0.0, arrivals - me),
                                   sources, 0, nbytes)

    # -- replicated collectives ------------------------------------------- #
    # Unbranched (rank-agnostic) runtime code can only ever contribute a
    # replicated value, so these fold P identical contributions — exactly
    # what the lockstep rendezvous would compute.

    def barrier(self) -> None:
        self.charge_barrier()

    def bcast(self, obj: Any, root: int = 0) -> Any:
        self.charge_bcast(datatypes.sizeof(obj))
        return obj

    def allreduce(self, obj: Any, op: Callable = SUM) -> Any:
        acc = self._fold_identical(op, obj)
        self.charge_reduce(datatypes.sizeof(obj))
        return acc

    def _fold_identical(self, op: Callable, obj: Any) -> Any:
        """``op`` folded over P identical contributions, bit-identical to
        the lockstep rank-order loop ``acc = op(acc, obj)`` × (P-1) but
        sub-linear in interpreter work: distinct folds are memoized, the
        builtin ops on finite floats run as one C ``ufunc.accumulate``
        (a strict sequential left fold), integer SUM/PROD use the exact
        closed forms, and any fold that reaches a bitwise fixed point
        stops early (all remaining iterations are no-ops)."""
        if self.size == 1:
            return obj
        try:
            key = (id(op), self.size, type(obj).__name__, obj)
            hit = self._fold_memo.get(key, _MISSING)
        except TypeError:           # unhashable contribution
            key = None
            hit = _MISSING
        if hit is not _MISSING:
            return hit
        acc = self._fold_value(op, obj)
        if key is not None:
            self._fold_memo[key] = acc
        return acc

    def _fold_value(self, op: Callable, obj: Any) -> Any:
        n = self.size
        if type(obj) is float and math.isfinite(obj):
            ufunc = _FOLD_UFUNCS.get(op)
            if ufunc is not None:
                # Python float arithmetic over/underflows silently to
                # inf/0.0; match that (numpy would warn)
                with np.errstate(over="ignore", under="ignore"):
                    return float(ufunc.accumulate(np.full(n, obj))[-1])
        if type(obj) is int:
            # integer arithmetic is exact and associative: the closed
            # forms equal the fold for any P (no int64 overflow — these
            # stay Python ints)
            if op is SUM:
                return obj * n
            if op is PROD:
                return obj ** n
        acc = op(obj, obj)
        for _ in range(n - 2):
            nxt = op(acc, obj)
            if _bits_equal(nxt, acc):
                return nxt          # fixed point: remaining folds no-op
            acc = nxt
        return acc

    def allgather(self, obj: Any) -> list:
        self.charge_allgather(datatypes.sizeof(obj))
        return [obj] * self.size

    # -- everything rank-dependent diverges -------------------------------- #

    def _diverge(self, what: str):
        raise FusionDivergence(f"{what} has no fused path")

    def send(self, *args, **kwargs):
        self._diverge("point-to-point send")

    def recv(self, *args, **kwargs):
        self._diverge("point-to-point recv")

    def sendrecv(self, *args, **kwargs):
        self._diverge("point-to-point sendrecv")

    def isend(self, *args, **kwargs):
        self._diverge("nonblocking send")

    def irecv(self, *args, **kwargs):
        self._diverge("nonblocking recv")

    def reduce(self, *args, **kwargs):
        self._diverge("rooted reduce")  # result differs per rank

    def gather(self, *args, **kwargs):
        self._diverge("rooted gather")

    def scatter(self, *args, **kwargs):
        self._diverge("scatter")  # each rank receives a different item

    def alltoall(self, *args, **kwargs):
        self._diverge("raw alltoall")  # each rank receives a different row

    def scan(self, *args, **kwargs):
        self._diverge("raw scan")  # prefix results differ per rank
