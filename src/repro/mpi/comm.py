"""Simulated MPI: communicator, point-to-point, and collectives.

Each SPMD rank runs on its own carrier thread (see
:mod:`repro.mpi.executor`).  Data moves through in-process mailboxes and
rendezvous slots — real values, really exchanged, so compiled programs
compute real answers.  *Time*, however, is virtual: every rank owns a
clock, computation charges it through the machine's
:class:`~repro.mpi.machine.MachineModel`, and every communication
operation advances/synchronizes clocks according to the model's
latency/bandwidth/topology.  Reported speedups are ratios of virtual
times, which is what lets a laptop reproduce the shape of the paper's
Meiko CS-2 / SMP / Ethernet-cluster results.

Two execution backends share this module (selected in
:func:`~repro.mpi.executor.run_spmd`):

* ``lockstep`` (default) — a cooperative scheduler
  (:mod:`repro.mpi.scheduler`) gates the carrier threads so exactly one
  rank runs at a time; blocking operations park the rank and hand off,
  so there are no locks on the hot path, no condvar broadcasts, no
  timeout polling, and runs are bit-deterministic.
* ``threads`` — free-running threads rendezvousing on one
  ``threading.Condition``; kept for differential testing of the
  scheduler itself.

The API mirrors mpi4py's lowercase (pickle-object) methods.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Optional

import numpy as np

from ..errors import MpiCorruptionError, MpiError, MpiRetryExhaustedError, \
    MpiTimeoutError
from .datatypes import sizeof
from .faults import FaultState, payload_checksum
from .machine import MachineModel
from .recovery import retry_backoff

ANY_SOURCE = -1
ANY_TAG = -1

_WAIT_TIMEOUT = 0.2  # seconds between abort checks while blocked (threads)

#: wait-graph rendering cap: reports list at most this many blocked
#: ranks beyond any detected cycle (a P=1024 deadlock report must stay
#: readable and O(1)-ish to format)
WAIT_REPORT_LIMIT = 16


def find_wait_cycle(edges: dict) -> list:
    """Ranks on the first cycle of a wait graph (``waiter -> waited-on``
    single-successor edges; wildcard waits simply have no edge).  Empty
    list when every chain dead-ends.  Deterministic: chains are chased
    from the lowest-numbered waiter up."""
    visited: set = set()
    for start in sorted(edges):
        if start in visited:
            continue
        index: dict = {}
        path: list = []
        node = start
        while node in edges and node not in index and node not in visited:
            index[node] = len(path)
            path.append(node)
            node = edges[node]
        visited.update(path)
        if node in index:
            return path[index[node]:]
    return []

#: sentinel for "no matching message yet" from a nonblocking probe
_NOT_READY = object()


class Status:
    """Receive status: who sent, with what tag, how many bytes."""

    __slots__ = ("source", "tag", "nbytes")

    def __init__(self, source: int = -1, tag: int = -1, nbytes: int = 0):
        self.source = source
        self.tag = tag
        self.nbytes = nbytes


# -- reduction operators ---------------------------------------------------


def _op_sum(a, b):
    return a + b


def _op_prod(a, b):
    return a * b


def _op_max(a, b):
    return np.maximum(a, b) if isinstance(a, np.ndarray) \
        or isinstance(b, np.ndarray) else max(a, b)


def _op_min(a, b):
    return np.minimum(a, b) if isinstance(a, np.ndarray) \
        or isinstance(b, np.ndarray) else min(a, b)


def _op_land(a, b):
    return np.logical_and(a, b).astype(float) if isinstance(a, np.ndarray) \
        else float(bool(a) and bool(b))


def _op_lor(a, b):
    return np.logical_or(a, b).astype(float) if isinstance(a, np.ndarray) \
        else float(bool(a) or bool(b))


SUM: Callable = _op_sum
PROD: Callable = _op_prod
MAX: Callable = _op_max
MIN: Callable = _op_min
LAND: Callable = _op_land
LOR: Callable = _op_lor


class _Abort(MpiError):
    """Raised inside blocked ranks when another rank fails."""


class World:
    """Shared state of one SPMD execution.

    ``scheduler`` is a :class:`~repro.mpi.scheduler.LockstepScheduler`
    when the cooperative backend is active, else ``None``.  Under
    lockstep, exactly one rank runs at a time, so shared state is
    mutated without taking ``cond``.
    """

    def __init__(self, nprocs: int, machine: MachineModel, scheduler=None,
                 fault_plan=None, trace=None, fault_state=None,
                 recovery=None, start_time: float = 0.0):
        if nprocs < 1:
            raise MpiError("need at least one process")
        if nprocs > machine.max_cpus:
            raise MpiError(
                f"{machine.name} has only {machine.max_cpus} CPUs "
                f"(asked for {nprocs})")
        self.nprocs = nprocs
        self.machine = machine
        self.scheduler = scheduler
        #: optional :class:`~repro.trace.recorder.WorldTrace`; when set,
        #: each rank's Comm caches its own recorder and the substrate
        #: records events (None: every trace hook is one dead branch)
        self.trace = trace
        #: cross-attempt recovery state
        #: (:class:`~repro.mpi.recovery.ActiveRecovery`) when a
        #: non-abort ``on_fault`` policy is active, else ``None`` —
        #: the retry loop and checkpoint hook both key off this
        self.recovery = recovery
        # chaos: a seeded FaultPlan makes every send/recv/sync consult
        # FaultState; a plan with no injectable rules costs nothing.
        # A restart attempt passes the *carried* fault_state so fired
        # one-shot rules stay consumed across the replay.
        self.faults: Optional[FaultState] = None
        self.virtual_timeout: Optional[float] = None
        if fault_plan is not None:
            self.virtual_timeout = fault_plan.virtual_timeout
            if fault_state is not None:
                self.faults = fault_state
            elif fault_plan.has_faults:
                self.faults = FaultState(fault_plan, nprocs)
        if self.faults is not None:
            if trace is not None:
                # injected-fault events join the trace stream (the
                # CLI echoes to stderr only when no recorder exists)
                recorders = trace.recorders
                self.faults.sink = (
                    lambda rank, text, now:
                    recorders[rank].fault(text, now))
            else:
                # a carried fault_state may still point at a discarded
                # attempt's recorders
                self.faults.sink = None
        #: uniform clock base of this execution attempt (0.0 except on
        #: recovery restarts, where it encodes the failed prefix +
        #: restart overhead - checkpoint credit)
        self.start_time = float(start_time)
        #: per-rank virtual clocks.  A rank-indexed float64 array so the
        #: fused backend can charge all P ranks with one vector
        #: expression; scalar indexing (``clocks[r] += dt``) keeps the
        #: lockstep/threads per-rank view and is bit-identical to the
        #: old Python-list arithmetic (IEEE float64 either way).
        self.clocks = np.full(nprocs, self.start_time, dtype=np.float64)
        self.cond = threading.Condition()
        # (src, dst, tag) -> deque of (payload, arrival_time, nbytes,
        # checksum); the wire size is computed once at send time and
        # carried with the message so receive-side accounting never
        # re-walks payloads; checksum is None unless faults are active
        self.mailboxes: dict[tuple[int, int, int], deque] = {}
        # rank -> (source, tag) pattern it is blocked on: lockstep uses
        # it to unpark exactly the matching rank, the watchdog to report
        # who was waiting on what when a run had to be aborted
        self._recv_waiting: dict[int, tuple[int, int]] = {}
        self.aborted: Optional[BaseException] = None
        # collective rendezvous state
        self._slots: list[Any] = [None] * nprocs
        self._coll_result: Any = None
        self._coll_time: float = 0.0
        self._coll_tmax: float = 0.0  # rendezvous instant, pre-cost
        #: payload size of the current collective, published by each
        #: combine closure for the trace layer (exactly the value fed to
        #: ``collective_time``, so every backend reports the same bytes)
        self._coll_nbytes: int = 0
        self._arrived = 0
        self._departed = 0
        self._generation = 0
        # message statistics (observability / tests): rank-indexed
        # primaries so the fused backend can bump all P ranks at once;
        # the scalar totals everyone reads are properties over these.
        self.rank_messages = np.zeros(nprocs, dtype=np.int64)
        self.rank_bytes = np.zeros(nprocs, dtype=np.int64)
        self.rank_collectives = np.zeros(nprocs, dtype=np.int64)
        #: message re-sends by the recovery layer (zero unless a
        #: non-abort on_fault policy healed a drop/corrupt fault)
        self.rank_retries = np.zeros(nprocs, dtype=np.int64)
        self.collectives = 0
        self.collective_counts: dict[str, int] = {}

    @property
    def messages_sent(self) -> int:
        """Total messages across ranks (sum of ``rank_messages``)."""
        return int(self.rank_messages.sum())

    @property
    def bytes_sent(self) -> int:
        """Total payload bytes across ranks (sum of ``rank_bytes``)."""
        return int(self.rank_bytes.sum())

    # ------------------------------------------------------------------ #

    def abort(self, exc: BaseException) -> None:
        with self.cond:
            if self.aborted is None:
                self.aborted = exc
            self.cond.notify_all()

    def _check_abort(self) -> None:
        if self.aborted is not None:
            raise _Abort(f"peer rank failed: {self.aborted!r}")

    def _count(self, op: str) -> None:
        """Tally one collective by name.  Callers either hold ``cond``,
        run under the lockstep baton, or are the only rank — so a plain
        increment is race-free everywhere it is used."""
        self.collective_counts[op] = self.collective_counts.get(op, 0) + 1

    def wait_snapshot(self) -> str:
        """Best-effort report of who is blocked on what (the watchdog's
        post-mortem; under lockstep the scheduler's wait graph is the
        authoritative version).  At most ``WAIT_REPORT_LIMIT`` waiters
        are listed beyond any recv cycle — a P=1024 report stays
        readable; below the cap the rendering is byte-identical to the
        full listing."""
        waiting = self._recv_waiting

        def render(rank: int) -> str:
            source, tag = waiting[rank]
            return (f"rank {rank}: blocked in "
                    f"recv(source={source}, tag={tag})")

        ranks = sorted(waiting)
        lines = []
        if len(ranks) > WAIT_REPORT_LIMIT:
            cycle = find_wait_cycle(
                {r: waiting[r][0] for r in ranks
                 if waiting[r][0] != ANY_SOURCE})
            if cycle:
                lines.append("recv cycle: " +
                             " -> ".join(str(r) for r in
                                         cycle + [cycle[0]]))
            on_cycle = set(cycle)
            rest = [r for r in ranks if r not in on_cycle]
            shown = rest[:WAIT_REPORT_LIMIT]
            lines.extend(render(r) for r in cycle)
            lines.extend(render(r) for r in shown)
            if len(rest) > len(shown):
                lines.append(f"... and {len(rest) - len(shown)} more "
                             f"blocked ranks")
        else:
            lines.extend(render(r) for r in ranks)
        if self._arrived:
            lines.append(f"collective rendezvous incomplete: "
                         f"{self._arrived}/{self.nprocs} arrived")
        return "\n  ".join(lines)

    def _check_virtual_timeout(self, rank: int, waited: float,
                               what: str) -> None:
        """Raise if a rank's simulated wait exceeded the plan's patience."""
        timeout = self.virtual_timeout
        if timeout is not None and waited > timeout:
            raise MpiTimeoutError(
                f"rank {rank} timed out in {what}: waited {waited:.9g}s "
                f"virtual (timeout {timeout:.9g}s)")

    # ------------------------------------------------------------------ #
    # rendezvous: every rank calls sync(contribute, combine);
    # `combine(slots, tmax)` runs on exactly one rank (the last to
    # arrive) and returns the (shared result, new common clock).
    # Collective accounting is folded into the rendezvous itself: the
    # combining rank tallies `op`, so no caller takes a separate lock
    # round-trip just to bump a counter.
    # ------------------------------------------------------------------ #

    def _run_combine(self, combine: Callable, op: Optional[str]) -> None:
        """All contributions are in: run ``combine`` exactly once and
        publish the result for this generation."""
        self._coll_nbytes = 0  # combines that price bytes re-publish
        tmax = float(self.clocks.max())
        result, tnew = combine(list(self._slots), tmax)
        self._coll_result = result
        self._coll_time = tnew
        self._coll_tmax = tmax
        self._arrived = 0
        self._generation += 1
        self.collectives += 1
        self.rank_collectives += 1
        if op is not None:
            self._count(op)
        recovery = self.recovery
        if (recovery is not None and recovery.policy.checkpoint_every
                and self.collectives
                % recovery.policy.checkpoint_every == 0):
            # collective boundaries are the only instants where every
            # rank's position is known (all contributions are in), so
            # they are where snapshots are consistent
            recovery.store.take(self, tnew, recovery.attempt)

    def sync(self, rank: int, contribution: Any,
             combine: Callable[[list, float], tuple[Any, float]],
             op: Optional[str] = None, rec=None, line: int = 0):
        """``rec``/``line`` are the calling rank's trace recorder and
        current source line (``None``/0 when tracing is off or
        suspended) — passed by value so a suspended recorder really
        records nothing."""
        if self.faults is not None:
            self.faults.check_crash(rank, op or "collective",
                                    self.clocks[rank])
        if self.scheduler is not None:
            return self._sync_lockstep(rank, contribution, combine, op,
                                       rec, line)
        return self._sync_threads(rank, contribution, combine, op,
                                  rec, line)

    def _sync_lockstep(self, rank: int, contribution: Any,
                       combine: Callable, op: Optional[str],
                       rec=None, line: int = 0):
        """Single-runner rendezvous: no locks, no broadcast, no polling.

        Early ranks park; the last rank to arrive runs ``combine`` once
        and unparks everyone.  A parked rank reads the published result
        as its first action on resume, which happens-before any rank
        can complete the *next* collective (that would require this rank
        to have arrived there first), so one result slot suffices and no
        departure barrier is needed.
        """
        self._check_abort()
        self._slots[rank] = contribution
        self._arrived += 1
        if self._arrived < self.nprocs:
            # reason is a lazy record; only a deadlock report formats it
            self.scheduler.block(
                rank, ("collective", op, self._arrived, self.nprocs))
            self._check_abort()
        else:
            self._run_combine(combine, op)
            self._slots = [None] * self.nprocs
            for peer in range(self.nprocs):
                if peer != rank:
                    self.scheduler.unblock(peer)
        self._check_virtual_timeout(
            rank, self._coll_tmax - self.clocks[rank], op or "collective")
        t0 = self.clocks[rank]
        self.clocks[rank] = max(t0, self._coll_time)
        if rec is not None:
            rec.collective(op or "collective", line, t0,
                           self.clocks[rank] - t0, self._coll_nbytes)
        return self._coll_result

    def _sync_threads(self, rank: int, contribution: Any,
                      combine: Callable, op: Optional[str],
                      rec=None, line: int = 0):
        with self.cond:
            self._check_abort()
            generation = self._generation
            self._slots[rank] = contribution
            self._arrived += 1
            if self._arrived == self.nprocs:
                self._run_combine(combine, op)
                self.cond.notify_all()
            else:
                while (self._generation == generation
                       and self.aborted is None):
                    self.cond.wait(_WAIT_TIMEOUT)
                self._check_abort()
            result = self._coll_result
            self._check_virtual_timeout(
                rank, self._coll_tmax - self.clocks[rank],
                op or "collective")
            t0 = self.clocks[rank]
            self.clocks[rank] = max(t0, self._coll_time)
            if rec is not None:
                # still under ``cond`` and before departure, so
                # ``_coll_nbytes`` cannot yet belong to the *next*
                # collective of a faster peer
                rec.collective(op or "collective", line, t0,
                               self.clocks[rank] - t0, self._coll_nbytes)
            self._departed += 1
            if self._departed == self.nprocs:
                self._departed = 0
                self._slots = [None] * self.nprocs
                self.cond.notify_all()
            else:
                # hold the next collective until everyone has read
                while self._departed != 0 and self.aborted is None:
                    self.cond.wait(_WAIT_TIMEOUT)
                self._check_abort()
            return result


class Request:
    """Handle for a nonblocking operation.

    ``wait()`` blocks until completion.  ``test()`` mirrors MPI_Test:
    it *attempts* completion via the nonblocking ``poll_fn`` (returning
    ``_NOT_READY`` when the operation cannot finish yet) instead of
    only reporting whether ``wait()`` already ran.
    """

    def __init__(self, wait_fn: Callable[[], Any],
                 poll_fn: Optional[Callable[[], Any]] = None):
        self._wait_fn = wait_fn
        self._poll_fn = poll_fn
        self._done = False
        self._value: Any = None

    @classmethod
    def completed(cls, value: Any = None) -> "Request":
        """An already-finished request (buffered sends complete at post)."""
        request = cls(lambda: value)
        request._done = True
        request._value = value
        return request

    def wait(self) -> Any:
        if not self._done:
            self._value = self._wait_fn()
            self._done = True
        return self._value

    def test(self) -> bool:
        """Try to complete without blocking; True once complete."""
        if self._done:
            return True
        if self._poll_fn is not None:
            value = self._poll_fn()
            if value is not _NOT_READY:
                self._value = value
                self._done = True
        return self._done


class Comm:
    """One rank's view of the communicator (mpi4py-style lowercase API)."""

    def __init__(self, world: World, rank: int):
        self.world = world
        self.rank = rank
        self.size = world.nprocs
        self.machine = world.machine
        #: current MATLAB source line (generated code stores line markers
        #: here; plain attribute, so the disabled-tracing cost is one
        #: store per marked statement)
        self.line = 0
        #: this rank's trace recorder, or None (tracing off/suspended);
        #: every hook below guards on this single cached reference
        self._rec = None if world.trace is None \
            else world.trace.recorders[rank]

    # -- virtual time --------------------------------------------------- #

    @property
    def time(self) -> float:
        return self.world.clocks[self.rank]

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise MpiError("cannot advance the clock backwards")
        self.world.clocks[self.rank] += dt
        if self._rec is not None:
            self._rec.charge(self.line, dt)

    def compute(self, flops: int = 0, elems: int = 0, mem: int = 0) -> None:
        """Charge local computation to this rank's clock."""
        dt = self.machine.compute_time(
            flops=flops, elems=elems, mem=mem, active_cpus=self.size)
        if self._rec is not None and dt > 0.0:
            self._rec.compute(self.line, self.world.clocks[self.rank], dt)
        self.advance(dt)

    def overhead(self, calls: int = 1) -> None:
        """Charge run-time-library call overhead."""
        if self._rec is not None:
            self._rec.calls(self.line, calls)
        self.advance(calls * self.machine.cpu.call_overhead)

    def clock_snapshot(self):
        """Opaque snapshot of this rank's clock (see ``clock_restore``)."""
        return self.world.clocks[self.rank]

    def clock_restore(self, snapshot) -> None:
        """Roll the clock back to a snapshot (instrumentation support)."""
        self.world.clocks[self.rank] = snapshot

    # -- tracing -------------------------------------------------------- #

    def trace_suspend(self):
        """Detach this rank's recorder (for instrumentation-only work
        whose clock cost is rolled back, e.g. final-workspace gathers);
        returns a token for :meth:`trace_resume`."""
        rec, self._rec = self._rec, None
        return rec

    def trace_resume(self, token) -> None:
        self._rec = token

    def trace_io(self, nbytes: int) -> None:
        """Record a program-output event (rank 0 writes on every backend)."""
        if self._rec is not None:
            self._rec.io(self.line, self.world.clocks[self.rank], nbytes)

    # -- point-to-point -------------------------------------------------- #

    def _check_dest(self, dest: int) -> None:
        if not (0 <= dest < self.size):
            raise MpiError(f"invalid destination rank {dest}")

    def _check_source(self, source: int) -> None:
        if source != ANY_SOURCE and not (0 <= source < self.size):
            raise MpiError(
                f"invalid source rank {source} (use ANY_SOURCE for a "
                f"wildcard)")

    def _check_tag(self, tag: int, wildcard_ok: bool = False) -> None:
        """Reject negative tags: they collide with the ``ANY_TAG`` /
        ``ANY_SOURCE`` sentinels (-1) and would match the wrong
        message."""
        if wildcard_ok and tag == ANY_TAG:
            return
        if not isinstance(tag, (int, np.integer)) or isinstance(tag, bool) \
                or tag < 0:
            raise MpiError(
                f"invalid tag {tag!r}: tags must be nonnegative integers "
                f"(negative values collide with the ANY_TAG sentinel)")

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        self._check_dest(dest)
        self._check_tag(tag)
        nbytes = sizeof(obj)
        world = self.world
        scheduler = world.scheduler
        if scheduler is None:
            with world.cond:
                world._check_abort()
                self._post_message(obj, dest, tag, nbytes)
                world.cond.notify_all()
            return
        world._check_abort()
        delivered = self._post_message(obj, dest, tag, nbytes)
        # unpark the receiver iff it is parked on a matching pattern
        # (a send to self never finds the sender parked)
        if not delivered:
            return
        waiting = world._recv_waiting.get(dest)
        if waiting is not None:
            wsource, wtag = waiting
            if (wsource in (ANY_SOURCE, self.rank)
                    and wtag in (ANY_TAG, tag)):
                scheduler.unblock(dest)

    def _post_message(self, obj: Any, dest: int, tag: int,
                      nbytes: int) -> bool:
        """Charge the sender, enqueue the message, update statistics.

        Returns False when a fault rule dropped the message (the sender
        is charged either way — it cannot tell the wire lost it)."""
        world = self.world
        faults = world.faults
        rec = self._rec
        checksum = None
        copies = 1
        extra_delay = 0.0
        delivered = True
        if faults is not None:
            faults.check_crash(self.rank, "send", world.clocks[self.rank])
            recovery = world.recovery
            retrying = (recovery is not None
                        and recovery.policy.retries_enabled)
            attempt = 0
            penalty = 0.0
            while True:
                fate = faults.on_message(
                    self.rank, dest, tag, nbytes,
                    world.clocks[self.rank] + penalty, obj)
                if not retrying or (fate.deliver and not fate.corrupted):
                    break
                if attempt >= recovery.policy.max_retries:
                    raise MpiRetryExhaustedError(
                        f"rank {self.rank} -> rank {dest} (tag {tag}, "
                        f"{nbytes} B): retry budget exhausted after "
                        f"{recovery.policy.max_retries} re-sends — "
                        f"every attempt was "
                        f"{'corrupted' if fate.deliver else 'dropped'}")
                # the simulated transport notices the failure — ack
                # timeout for a drop, checksum NACK for corruption —
                # and re-sends with seeded exponential backoff.  The
                # lost attempt is charged honestly: its bytes crossed
                # (or tried to cross) the wire, and the detection +
                # backoff latency delays the eventual delivery.
                penalty += self._retry_cost(dest, nbytes, fate,
                                            attempt, recovery, faults)
                attempt += 1
            obj = fate.payload
            checksum = fate.checksum
            copies = fate.copies
            extra_delay = fate.extra_delay + penalty
            delivered = fate.deliver
        t_send = world.clocks[self.rank]
        arrival = t_send + self.machine.p2p_time(self.rank, dest, nbytes) \
            + extra_delay
        # buffered send: sender is occupied for the injection overhead
        world.clocks[self.rank] = t_send + \
            self.machine.link_between(self.rank, dest).latency * 0.5
        world.rank_messages[self.rank] += 1
        world.rank_bytes[self.rank] += nbytes
        if rec is not None:
            rec.send(self.line, t_send, world.clocks[self.rank] - t_send,
                     dest, tag, nbytes)
        if not delivered:
            return False
        key = (self.rank, dest, tag)
        queue = world.mailboxes.setdefault(key, deque())
        for _ in range(copies):
            queue.append((obj, arrival, nbytes, checksum))
        if copies > 1:
            # the duplicate crossed the wire too: accounted explicitly,
            # never silently
            world.rank_messages[self.rank] += copies - 1
            world.rank_bytes[self.rank] += nbytes * (copies - 1)
            if rec is not None:
                rec.extra_copies(self.line, copies - 1,
                                 nbytes * (copies - 1))
        return True

    def _retry_cost(self, dest: int, nbytes: int, fate, attempt: int,
                    recovery, faults: FaultState) -> float:
        """Account one failed send attempt and price its recovery.

        Returns the virtual seconds between the failed attempt and the
        re-send: the transport's detection latency (an ack timeout of
        ``rto_factor`` link latencies for a drop; a full payload
        crossing plus a NACK hop for corruption — the mangled bytes
        *did* travel) plus seeded exponential backoff.  The failed
        attempt's wire traffic is charged to the per-rank accounting
        arrays, and the retry is logged to the fault event stream and
        the trace."""
        world = self.world
        rank = self.rank
        link = self.machine.link_between(rank, dest)
        if fate.deliver:    # corrupted: payload crossed, NACK came back
            detect = self.machine.p2p_time(rank, dest, nbytes) \
                + link.latency
            why = "corrupt"
        else:               # dropped: the sender's ack timer fired
            detect = recovery.policy.rto_factor * link.latency
            why = "drop"
        backoff = retry_backoff(faults.plan.seed, rank,
                                recovery.next_retry_seq(rank), attempt,
                                link.latency)
        cost = detect + backoff
        world.rank_messages[rank] += 1
        world.rank_bytes[rank] += nbytes
        world.rank_retries[rank] += 1
        now = world.clocks[rank]
        faults._log(rank, f"retry {why} rank {rank}->rank {dest} "
                          f"attempt={attempt + 1} cost={cost:.9g}", now)
        recovery.note(f"retry {why} rank {rank}->rank {dest} "
                      f"attempt={attempt + 1} cost={cost:.9g}")
        rec = self._rec
        if rec is not None:
            rec.recovery("retry", now, dest=dest, cause=why,
                         attempt=attempt + 1, cost=cost, bytes=nbytes)
        return cost

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             status: Optional[Status] = None) -> Any:
        self._check_source(source)
        self._check_tag(tag, wildcard_ok=True)
        world = self.world
        if world.faults is not None:
            world.faults.check_crash(self.rank, "recv",
                                     world.clocks[self.rank])
        scheduler = world.scheduler
        if scheduler is None:
            with world.cond:
                while True:
                    world._check_abort()
                    key = self._find_message(source, tag)
                    if key is not None:
                        world._recv_waiting.pop(self.rank, None)
                        return self._take_message(key, status)
                    # record the wait pattern for watchdog post-mortems
                    world._recv_waiting[self.rank] = (source, tag)
                    world.cond.wait(_WAIT_TIMEOUT)
        while True:
            world._check_abort()
            key = self._find_message(source, tag)
            if key is not None:
                return self._take_message(key, status)
            world._recv_waiting[self.rank] = (source, tag)
            scheduler.block(self.rank, ("recv", source, tag))
            world._recv_waiting.pop(self.rank, None)

    def _take_message(self, key: tuple[int, int, int],
                      status: Optional[Status]) -> Any:
        """Dequeue a matched message, verify integrity, and charge the
        receive clock (raising if the virtual wait exceeded the plan's
        timeout — the rank would have given up before the data came)."""
        world = self.world
        obj, arrival, nbytes, checksum = world.mailboxes[key].popleft()
        if not world.mailboxes[key]:
            del world.mailboxes[key]
        me = world.clocks[self.rank]
        world._check_virtual_timeout(
            self.rank, arrival - me,
            f"recv(source={key[0]}, tag={key[2]})")
        if checksum is not None and payload_checksum(obj) != checksum:
            raise MpiCorruptionError(
                f"message from rank {key[0]} to rank {key[1]} "
                f"(tag {key[2]}, {nbytes} B) failed its integrity check: "
                f"payload corrupted in transit")
        world.clocks[self.rank] = max(me, arrival)
        if self._rec is not None:
            self._rec.recv(self.line, me, max(0.0, arrival - me),
                           key[0], key[2], nbytes)
        if status is not None:
            status.source, status.tag = key[0], key[2]
            status.nbytes = nbytes
        return obj

    def _try_recv(self, source: int, tag: int,
                  status: Optional[Status] = None) -> Any:
        """Nonblocking receive attempt: the matched payload, or
        ``_NOT_READY``.  Under lockstep a miss rotates the baton once so
        ``while not request.test()`` polling loops cannot starve the
        sender, then re-probes."""
        world = self.world
        scheduler = world.scheduler
        if scheduler is None:
            with world.cond:
                world._check_abort()
                key = self._find_message(source, tag)
                if key is None:
                    return _NOT_READY
                return self._take_message(key, status)
        world._check_abort()
        key = self._find_message(source, tag)
        if key is None:
            scheduler.yield_now(self.rank)
            world._check_abort()
            key = self._find_message(source, tag)
        if key is None:
            return _NOT_READY
        return self._take_message(key, status)

    def _find_message(self, source: int, tag: int):
        for key in self.world.mailboxes:
            src, dst, mtag = key
            if dst != self.rank:
                continue
            if source != ANY_SOURCE and src != source:
                continue
            if tag != ANY_TAG and mtag != tag:
                continue
            if self.world.mailboxes[key]:
                return key
        return None

    def sendrecv(self, obj: Any, dest: int, sendtag: int = 0,
                 source: int = ANY_SOURCE, recvtag: int = ANY_TAG) -> Any:
        self._check_dest(dest)
        self._check_tag(sendtag)
        self._check_source(source)
        self._check_tag(recvtag, wildcard_ok=True)
        if dest == self.rank and (source in (ANY_SOURCE, self.rank)):
            return obj  # self-exchange: no wire traffic
        request = self.isend(obj, dest, sendtag)
        received = self.recv(source, recvtag)
        request.wait()
        return received

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        self.send(obj, dest, tag)  # buffered: completes immediately
        return Request.completed()

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        # validate at post time (like MPI_Irecv), not first wait()/test()
        self._check_source(source)
        self._check_tag(tag, wildcard_ok=True)
        return Request(wait_fn=lambda: self.recv(source, tag),
                       poll_fn=lambda: self._try_recv(source, tag))

    # -- collectives ------------------------------------------------------ #

    def barrier(self) -> None:
        cost = self.machine.collective_time("barrier", 0, self.size)

        def combine(slots, tmax):
            return None, tmax + cost

        self.world.sync(self.rank, None, combine, op="barrier",
                        rec=self._rec, line=self.line)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        if not (0 <= root < self.size):
            raise MpiError(f"invalid root {root}")
        if self.size == 1:
            self.world._count("bcast")
            if self._rec is not None:
                self._rec.collective("bcast", self.line,
                                     self.world.clocks[self.rank], 0.0,
                                     sizeof(obj))
            return obj
        machine = self.machine
        size = self.size
        world = self.world

        def combine(slots, tmax):
            payload = slots[root]
            nbytes = sizeof(payload)
            world._coll_nbytes = nbytes
            cost = machine.collective_time("bcast", nbytes, size)
            return payload, tmax + cost

        return self.world.sync(self.rank, obj if self.rank == root else None,
                               combine, op="bcast",
                               rec=self._rec, line=self.line)

    def reduce(self, obj: Any, op: Callable = SUM, root: int = 0) -> Any:
        result = self._reduce_impl(obj, op, "reduce")
        return result if self.rank == root else None

    def allreduce(self, obj: Any, op: Callable = SUM) -> Any:
        return self._reduce_impl(obj, op, "allreduce")

    def _reduce_impl(self, obj: Any, op: Callable, kind: str) -> Any:
        if self.size == 1:
            self.world._count(kind)
            if self._rec is not None:
                self._rec.collective(kind, self.line,
                                     self.world.clocks[self.rank], 0.0,
                                     sizeof(obj))
            return obj
        machine = self.machine
        size = self.size
        world = self.world

        def combine(slots, tmax):
            acc = slots[0]
            for item in slots[1:]:
                acc = op(acc, item)
            nbytes = max(sizeof(s) for s in slots)
            world._coll_nbytes = nbytes
            cost = machine.collective_time(kind, nbytes, size)
            # reduction arithmetic itself: log2(P) combining steps
            elems = nbytes / 8.0
            cost += int(np.ceil(np.log2(size))) * elems * machine.cpu.elem_time
            return acc, tmax + cost

        return self.world.sync(self.rank, obj, combine, op=kind,
                               rec=self._rec, line=self.line)

    def gather(self, obj: Any, root: int = 0) -> Optional[list]:
        machine = self.machine
        size = self.size
        world = self.world

        def combine(slots, tmax):
            nbytes = max(sizeof(s) for s in slots)
            world._coll_nbytes = nbytes
            cost = machine.collective_time("gather", nbytes, size)
            return list(slots), tmax + cost

        result = self.world.sync(self.rank, obj, combine, op="gather",
                                 rec=self._rec, line=self.line)
        return result if self.rank == root else None

    def allgather(self, obj: Any) -> list:
        machine = self.machine
        size = self.size
        world = self.world

        def combine(slots, tmax):
            nbytes = max(sizeof(s) for s in slots)
            world._coll_nbytes = nbytes
            cost = machine.collective_time("allgather", nbytes, size)
            return list(slots), tmax + cost

        return self.world.sync(self.rank, obj, combine, op="allgather",
                               rec=self._rec, line=self.line)

    def scatter(self, objs: Optional[list], root: int = 0) -> Any:
        machine = self.machine
        size = self.size
        world = self.world
        if self.rank == root:
            if objs is None or len(objs) != size:
                raise MpiError("scatter: root must supply one item per rank")

        def combine(slots, tmax):
            items = slots[root]
            per = sizeof(items[0]) if items else 0
            world._coll_nbytes = per
            cost = machine.collective_time("scatter", per, size)
            return items, tmax + cost

        items = self.world.sync(self.rank,
                                objs if self.rank == root else None,
                                combine, op="scatter",
                                rec=self._rec, line=self.line)
        return items[self.rank]

    def alltoall(self, objs: list) -> list:
        if len(objs) != self.size:
            raise MpiError("alltoall: need one item per rank")
        machine = self.machine
        size = self.size
        world = self.world

        def combine(slots, tmax):
            per = max((sizeof(row[0]) if row else 0) for row in slots)
            world._coll_nbytes = per
            cost = machine.collective_time("alltoall", per, size)
            transposed = [[slots[src][dst] for src in range(size)]
                          for dst in range(size)]
            return transposed, tmax + cost

        result = self.world.sync(self.rank, objs, combine, op="alltoall",
                                 rec=self._rec, line=self.line)
        return result[self.rank]

    def scan(self, obj: Any, op: Callable = SUM) -> Any:
        """Inclusive prefix reduction."""
        machine = self.machine
        size = self.size
        rank = self.rank
        world = self.world

        def combine(slots, tmax):
            prefixes = []
            acc = None
            for item in slots:
                acc = item if acc is None else op(acc, item)
                prefixes.append(acc)
            nbytes = max(sizeof(s) for s in slots)
            world._coll_nbytes = nbytes
            cost = machine.collective_time("allreduce", nbytes, size)
            return prefixes, tmax + cost

        result = self.world.sync(self.rank, obj, combine, op="scan",
                                 rec=self._rec, line=self.line)
        return result[rank]
