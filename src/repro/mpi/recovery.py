"""Self-healing for faulted SPMD runs: retry, checkpoint/restart, degrade.

PR 4 made every injected fault *terminal*: a dropped message starves the
receiver into a deadlock report, a corrupted payload raises
:class:`~repro.errors.MpiCorruptionError`, a crash rule kills the run.
This module adds the three layers that let a chaotic run *finish*:

**Retry-with-backoff** (wired into ``Comm._post_message``)
    When the policy enables retries, a message the chaotic network drops
    or corrupts is detected by the simulated transport (ack timeout for
    a drop, checksum NACK for corruption) and re-sent with exponential
    backoff + jitter derived from the fault-plan seed.  Every failed
    attempt is charged honestly: the lost bytes/messages land in the
    per-rank numpy accounting arrays, the detection + backoff latency
    lands on the message's arrival time, and ``rank_retries`` counts the
    re-sends.  A bounded retry budget escalates to
    :class:`~repro.errors.MpiRetryExhaustedError`.

**Checkpoint/restart** (wired into ``World._run_combine`` /
``FusedComm._sync_cost`` and the ``run_spmd`` attempt loop)
    Every ``checkpoint_every``-th collective snapshots the world's
    accounting state (per-rank clocks/counters, in-flight mailbox
    queues, collective tallies) plus any registered per-rank payloads
    (the runtime context contributes its RNG state) into a
    :class:`CheckpointStore`.  Generated programs keep their workspace
    in Python frame locals, which cannot be captured from outside the
    frame — so restart is *replay-based*: the program deterministically
    re-executes from the start (the seed-driven fault schedule is a pure
    function of per-rank occurrence indices, and fired one-shot rules
    stay consumed across attempts), while the restarted world's clocks
    begin at a uniform base that credits the checkpointed prefix and
    charges a modeled restart protocol (rejoin barrier + checkpoint
    rebroadcast).  Because the base shift is uniform and IEEE-754
    addition/max are monotone, every recovered rank clock is ``>=`` its
    fault-free baseline, and the *data* results are bit-identical (they
    never depend on the clocks).

**Graceful degradation** (``on_fault=abort|retry|restart|degrade``)
    ``abort`` is exactly the pre-existing behavior (and the default:
    healthy runs pay nothing).  ``retry`` heals message faults only;
    ``restart`` additionally replays after terminal faults, up to
    ``max_restarts`` times; ``degrade`` does everything ``restart`` does
    but returns a partial result carrying a structured
    :class:`RecoveryReport` instead of raising when the budget runs out.

Determinism caveat: fault rules windowed on *absolute* virtual time
(``after=``/``before=``) are evaluated against the restarted clock base,
so their schedule can shift across attempts; occurrence-indexed rules
(``step=``/``count=``/``p=``) replay identically.  See
docs/RESILIENCE.md.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from ..errors import MpiError
from .faults import _hash01

#: the four degradation policies, in increasing order of self-healing
ON_FAULT_POLICIES = ("abort", "retry", "restart", "degrade")

#: environment default for the degradation policy
ON_FAULT_ENV_VAR = "REPRO_ON_FAULT"

#: environment default for the restart budget
MAX_RESTARTS_ENV_VAR = "REPRO_MAX_RESTARTS"

#: environment default for the checkpoint cadence (collectives)
CHECKPOINT_EVERY_ENV_VAR = "REPRO_CHECKPOINT_EVERY"

DEFAULT_MAX_RESTARTS = 2
DEFAULT_MAX_RETRIES = 8


@dataclass(frozen=True)
class RecoveryPolicy:
    """How a run reacts to injected faults (immutable, reusable).

    ``on_fault="abort"`` (the default) disables every recovery path and
    reproduces the pre-recovery behavior bit for bit.  ``max_retries``
    bounds per-message re-sends; ``max_restarts`` bounds whole-run
    replays; ``checkpoint_every`` (collectives) enables snapshots that
    earn a virtual-clock credit on restart (``None``: restart replays
    from the beginning with no credit).  ``rto_factor`` scales the
    link latency into the simulated sender's ack timeout.
    """

    on_fault: str = "abort"
    max_restarts: int = DEFAULT_MAX_RESTARTS
    checkpoint_every: Optional[int] = None
    max_retries: int = DEFAULT_MAX_RETRIES
    rto_factor: float = 4.0
    checkpoint_dir: Optional[str] = None

    def __post_init__(self):
        if self.on_fault not in ON_FAULT_POLICIES:
            raise MpiError(
                f"unknown on_fault policy {self.on_fault!r} (expected "
                f"one of {', '.join(ON_FAULT_POLICIES)})")
        if self.max_restarts < 0:
            raise MpiError(
                f"max_restarts must be >= 0 (got {self.max_restarts})")
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise MpiError(
                f"checkpoint_every must be >= 1 collectives "
                f"(got {self.checkpoint_every})")
        if self.max_retries < 0:
            raise MpiError(
                f"max_retries must be >= 0 (got {self.max_retries})")
        if self.rto_factor <= 0:
            raise MpiError(
                f"rto_factor must be positive (got {self.rto_factor})")

    @property
    def active(self) -> bool:
        """Any recovery at all? (False: every hook is one dead branch)"""
        return self.on_fault != "abort"

    @property
    def retries_enabled(self) -> bool:
        return self.active

    @property
    def restarts_enabled(self) -> bool:
        return self.on_fault in ("restart", "degrade")

    @property
    def degrade(self) -> bool:
        return self.on_fault == "degrade"


def resolve_recovery(on_fault: Optional[str] = None,
                     max_restarts: Optional[int] = None,
                     checkpoint_every: Optional[int] = None,
                     checkpoint_dir: Optional[str] = None) -> RecoveryPolicy:
    """Build the policy: explicit arguments > environment > defaults."""
    if on_fault is None:
        on_fault = os.environ.get(ON_FAULT_ENV_VAR) or "abort"
    if max_restarts is None:
        raw = os.environ.get(MAX_RESTARTS_ENV_VAR)
        max_restarts = _env_int(raw, MAX_RESTARTS_ENV_VAR) \
            if raw else DEFAULT_MAX_RESTARTS
    if checkpoint_every is None:
        raw = os.environ.get(CHECKPOINT_EVERY_ENV_VAR)
        checkpoint_every = _env_int(raw, CHECKPOINT_EVERY_ENV_VAR) \
            if raw else None
    return RecoveryPolicy(on_fault=on_fault,
                          max_restarts=int(max_restarts),
                          checkpoint_every=checkpoint_every,
                          checkpoint_dir=checkpoint_dir)


def _env_int(raw: str, what: str) -> int:
    try:
        return int(raw)
    except ValueError:
        raise MpiError(
            f"{what} must be an integer (got {raw!r})") from None


def retry_backoff(seed: int, rank: int, seq: int, attempt: int,
                  base: float) -> float:
    """Virtual seconds of exponential backoff before re-send number
    ``attempt`` (0-based): ``base * 2**attempt * (1 + jitter)`` with the
    jitter a pure function of the fault seed and the sender's retry
    sequence number — deterministic on every backend, never a shared
    RNG stream."""
    jitter = _hash01(seed, "retry", rank, seq, attempt)
    return base * (2.0 ** attempt) * (1.0 + jitter)


# ------------------------------------------------------------------------- #
# checkpoints
# ------------------------------------------------------------------------- #


@dataclass
class Checkpoint:
    """One snapshot of a world's accounting state at a collective
    boundary.  ``vtime_rel`` is the snapshot instant relative to the
    attempt's clock base — the virtual-clock credit a restart earns for
    not re-paying the checkpointed prefix."""

    index: int
    attempt: int
    collectives: int
    vtime: float
    vtime_rel: float
    clocks: np.ndarray
    rank_messages: np.ndarray
    rank_bytes: np.ndarray
    rank_collectives: np.ndarray
    rank_retries: np.ndarray
    collective_counts: dict[str, int]
    #: deep-copied in-flight queues: (src, dst, tag) -> list of
    #: (payload, arrival, nbytes, checksum)
    mailboxes: dict
    #: opaque per-rank payloads from registered providers (the runtime
    #: context contributes its RNG state and peak-memory watermark)
    payloads: dict[int, Any] = field(default_factory=dict)

    @property
    def nbytes(self) -> int:
        """Approximate checkpoint size: what a real restart protocol
        would rebroadcast (accounting arrays + queued payload bytes)."""
        total = (self.clocks.nbytes + self.rank_messages.nbytes
                 + self.rank_bytes.nbytes + self.rank_collectives.nbytes
                 + self.rank_retries.nbytes)
        for queue in self.mailboxes.values():
            for _payload, _arrival, nbytes, _crc in queue:
                total += int(nbytes)
        return total


class CheckpointStore:
    """In-memory (optionally on-disk) store of :class:`Checkpoint`\\ s.

    ``directory`` persists each snapshot as ``ckpt-NNN.pkl`` so a
    post-mortem can inspect what the run would have restarted from.
    Payload providers are per-rank callables registered by runtime
    layers that own state the world cannot see (RNG streams, memory
    watermarks); they are invoked at snapshot time."""

    def __init__(self, directory: Optional[str] = None):
        self.checkpoints: list[Checkpoint] = []
        self.directory = directory
        self._providers: dict[int, Callable[[], Any]] = {}

    def register_payload(self, rank: int,
                         provider: Callable[[], Any]) -> None:
        self._providers[rank] = provider

    @property
    def last(self) -> Optional[Checkpoint]:
        return self.checkpoints[-1] if self.checkpoints else None

    def last_for_attempt(self, attempt: int) -> Optional[Checkpoint]:
        """The newest checkpoint taken *during* the given attempt (a
        snapshot from an earlier attempt describes program positions the
        failing attempt may not have re-reached, so it earns no
        credit)."""
        for ck in reversed(self.checkpoints):
            if ck.attempt == attempt:
                return ck
        return None

    def take(self, world, vtime: float, attempt: int) -> Checkpoint:
        payloads = {}
        for rank, provider in self._providers.items():
            try:
                payloads[rank] = provider()
            except Exception:   # a provider must never kill the run
                payloads[rank] = None
        ck = Checkpoint(
            index=len(self.checkpoints),
            attempt=attempt,
            collectives=world.collectives,
            vtime=float(vtime),
            vtime_rel=float(vtime) - world.start_time,
            clocks=world.clocks.copy(),
            rank_messages=world.rank_messages.copy(),
            rank_bytes=world.rank_bytes.copy(),
            rank_collectives=world.rank_collectives.copy(),
            rank_retries=world.rank_retries.copy(),
            collective_counts=dict(world.collective_counts),
            mailboxes={key: [tuple(m) for m in queue]
                       for key, queue in world.mailboxes.items() if queue},
            payloads=payloads,
        )
        self.checkpoints.append(ck)
        if self.directory is not None:
            self._persist(ck)
        return ck

    def _persist(self, ck: Checkpoint) -> None:
        os.makedirs(self.directory, exist_ok=True)
        path = os.path.join(self.directory, f"ckpt-{ck.index:03d}.pkl")
        try:
            with open(path, "wb") as fh:
                pickle.dump(ck, fh)
        except (OSError, pickle.PicklingError) as exc:
            raise MpiError(
                f"checkpoint store: cannot write {path!r}: {exc}") from None


# ------------------------------------------------------------------------- #
# the per-run recovery ledger
# ------------------------------------------------------------------------- #


@dataclass
class AttemptRecord:
    """One execution attempt inside a recovering ``run_spmd`` call."""

    index: int
    outcome: str                 # "completed" | "failed" | "degraded"
    error: Optional[str] = None
    error_type: Optional[str] = None
    start_base: float = 0.0      # uniform clock base the attempt ran at
    elapsed: float = 0.0         # slowest rank's clock at attempt end
    retries: int = 0             # message re-sends during this attempt


@dataclass
class RecoveryReport:
    """Structured account of what healed (attached to ``SpmdResult`` /
    ``RunResult`` whenever a non-abort policy was active)."""

    policy: RecoveryPolicy
    attempts: list[AttemptRecord] = field(default_factory=list)
    #: deterministic human-readable event log (retry / rollback /
    #: restart / degrade), in occurrence order
    events: list[str] = field(default_factory=list)
    checkpoints: int = 0
    degraded: bool = False
    error: Optional[str] = None

    @property
    def retries(self) -> int:
        return sum(a.retries for a in self.attempts)

    @property
    def restarts(self) -> int:
        return max(0, len(self.attempts) - 1)

    @property
    def healed(self) -> bool:
        """True when the run hit at least one fault yet completed."""
        return (not self.degraded
                and bool(self.attempts)
                and self.attempts[-1].outcome == "completed"
                and (self.retries > 0 or self.restarts > 0))

    def summary(self) -> str:
        tail = self.attempts[-1].outcome if self.attempts else "n/a"
        parts = [f"on_fault={self.policy.on_fault}",
                 f"attempts={len(self.attempts)}",
                 f"retries={self.retries}",
                 f"restarts={self.restarts}",
                 f"checkpoints={self.checkpoints}",
                 f"outcome={'degraded' if self.degraded else tail}"]
        if self.error:
            parts.append(f"error={self.error}")
        return " ".join(parts)


class ActiveRecovery:
    """Mutable cross-attempt recovery state for one ``run_spmd`` call.

    Carried across restart attempts (unlike the ``World``, which is
    rebuilt per attempt): the checkpoint store, the report, the next
    uniform clock base, and the per-rank retry sequence numbers that
    feed backoff jitter (so re-sends in attempt N+1 draw fresh jitter
    instead of replaying attempt N's)."""

    def __init__(self, policy: RecoveryPolicy, nprocs: int, seed: int = 0):
        self.policy = policy
        self.nprocs = nprocs
        self.seed = seed
        self.store = CheckpointStore(policy.checkpoint_dir)
        self.report = RecoveryReport(policy)
        self.attempt = 0
        self.start_base = 0.0
        self._retry_seq = [0] * nprocs
        #: (name, t0, args) recovery events awaiting the next attempt's
        #: trace (the failing attempt's trace is discarded with its
        #: world, so rollback/restart stamps go on the successor)
        self.pending_trace: list[tuple[str, float, dict]] = []

    def next_retry_seq(self, rank: int) -> int:
        seq = self._retry_seq[rank]
        self._retry_seq[rank] = seq + 1
        return seq

    def note(self, text: str) -> None:
        self.report.events.append(text)

    def finish_attempt(self, world, outcome: str,
                       exc: Optional[BaseException]) -> AttemptRecord:
        record = AttemptRecord(
            index=self.attempt,
            outcome=outcome,
            error=None if exc is None else str(exc).splitlines()[0],
            error_type=None if exc is None else type(exc).__name__,
            start_base=self.start_base,
            elapsed=float(world.clocks.max()) if world.nprocs else 0.0,
            retries=int(world.rank_retries.sum()),
        )
        self.report.attempts.append(record)
        self.report.checkpoints = len(self.store.checkpoints)
        return record

    def plan_restart(self, world, machine,
                     exc: BaseException) -> float:
        """Account one rollback+restart and return the next attempt's
        uniform clock base.

        The base is ``fail_time + restart_overhead - checkpoint_credit``:
        every rank pays a modeled restart protocol (a rejoin barrier on
        the way down, another on the way up, and a broadcast of the
        checkpoint image), then replays; the credit is the checkpointed
        prefix the replay does not re-pay.  The credit only counts a
        checkpoint the *failing* attempt actually reached, so the base
        is monotonically nondecreasing across attempts — which (with
        uniform shifts and monotone IEEE-754 ``+``/``max``) is what
        keeps every recovered clock >= its fault-free baseline."""
        fail_time = float(world.clocks.max())
        ck = self.store.last_for_attempt(self.attempt)
        credit = ck.vtime_rel if ck is not None else 0.0
        overhead = 2.0 * machine.collective_time("barrier", 0, self.nprocs)
        overhead += machine.collective_time(
            "bcast", ck.nbytes if ck is not None else 0, self.nprocs)
        base = fail_time + overhead - credit
        what = type(exc).__name__
        if ck is not None:
            self.note(f"rollback to checkpoint {ck.index} "
                      f"(collective {ck.collectives}, vtime_rel="
                      f"{ck.vtime_rel:.9g}) after {what}")
            self.pending_trace.append(
                ("rollback", fail_time,
                 {"checkpoint": ck.index, "error": what,
                  "credit": ck.vtime_rel}))
        else:
            self.note(f"rollback to program start after {what} "
                      f"(no checkpoint this attempt)")
            self.pending_trace.append(
                ("rollback", fail_time, {"checkpoint": -1, "error": what,
                                         "credit": 0.0}))
        self.note(f"restart attempt {self.attempt + 1} "
                  f"base={base:.9g} overhead={overhead:.9g}")
        self.pending_trace.append(
            ("restart", base, {"attempt": self.attempt + 1,
                               "overhead": overhead}))
        self.attempt += 1
        self.start_base = base
        return base

    def stamp_pending(self, world_trace) -> None:
        """Flush queued rollback/restart events into a fresh attempt's
        trace (rank 0's recorder, like every run-level event)."""
        if world_trace is None:
            self.pending_trace.clear()
            return
        rec = world_trace.recorders[0]
        for name, t0, args in self.pending_trace:
            rec.recovery(name, t0, **args)
        self.pending_trace.clear()
