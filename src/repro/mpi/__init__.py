"""Simulated MPI substrate: communicator, machine models, SPMD executor.

Real data exchange, virtual time — see :mod:`repro.mpi.comm` for the
design.  The public surface mirrors mpi4py's lowercase API.
"""

from .comm import (
    ANY_SOURCE,
    ANY_TAG,
    Comm,
    LAND,
    LOR,
    MAX,
    MIN,
    PROD,
    Request,
    Status,
    SUM,
    World,
)
from .datatypes import (
    BYTE,
    CHAR,
    DOUBLE,
    DOUBLE_COMPLEX,
    Datatype,
    FLOAT,
    INT,
    LONG,
    sizeof,
)
from ..errors import (
    FusionDivergence,
    MpiCorruptionError,
    MpiError,
    MpiRetryExhaustedError,
    MpiTimeoutError,
    RankCrashedError,
    SpmdWatchdogError,
)
from .executor import (
    BACKEND_ENV_VAR,
    BACKENDS,
    FAULT_PLAN_ENV_VAR,
    SpmdResult,
    WATCHDOG_ENV_VAR,
    resolve_backend,
    resolve_fault_plan,
    resolve_watchdog,
    run_spmd,
)
from .faults import FaultPlan, FaultRule, load_plan
from .fused import FusedComm, PerRankScalar
from .recovery import (
    CHECKPOINT_EVERY_ENV_VAR,
    Checkpoint,
    CheckpointStore,
    MAX_RESTARTS_ENV_VAR,
    ON_FAULT_ENV_VAR,
    ON_FAULT_POLICIES,
    RecoveryPolicy,
    RecoveryReport,
    resolve_recovery,
)
from .machine import (
    CpuModel,
    FATTREE_CLUSTER,
    GPU_CLUSTER,
    Link,
    MACHINES,
    MEIKO_CS2,
    MachineModel,
    SPARC20_CLUSTER,
    SUN_ENTERPRISE,
    get_machine,
)
from .scheduler import DeadlockError, LockstepScheduler

__all__ = [
    "ANY_SOURCE", "ANY_TAG", "Comm", "World", "Request", "Status",
    "SUM", "PROD", "MAX", "MIN", "LAND", "LOR",
    "Datatype", "DOUBLE", "FLOAT", "INT", "LONG", "CHAR",
    "DOUBLE_COMPLEX", "BYTE", "sizeof",
    "SpmdResult", "run_spmd", "BACKENDS", "BACKEND_ENV_VAR",
    "resolve_backend", "LockstepScheduler", "DeadlockError", "MpiError",
    "FusedComm", "PerRankScalar", "FusionDivergence",
    "FaultPlan", "FaultRule", "load_plan", "resolve_fault_plan",
    "resolve_watchdog", "FAULT_PLAN_ENV_VAR", "WATCHDOG_ENV_VAR",
    "MpiTimeoutError", "SpmdWatchdogError", "MpiCorruptionError",
    "RankCrashedError", "MpiRetryExhaustedError",
    "RecoveryPolicy", "RecoveryReport", "Checkpoint", "CheckpointStore",
    "resolve_recovery", "ON_FAULT_POLICIES", "ON_FAULT_ENV_VAR",
    "MAX_RESTARTS_ENV_VAR", "CHECKPOINT_EVERY_ENV_VAR",
    "CpuModel", "Link", "MachineModel", "MACHINES",
    "MEIKO_CS2", "SUN_ENTERPRISE", "SPARC20_CLUSTER",
    "FATTREE_CLUSTER", "GPU_CLUSTER", "get_machine",
]

from .machine import WORKSTATION_MEMORY  # noqa: E402

__all__.append("WORKSTATION_MEMORY")
