"""Native kernel tier: JIT-compiled fused elementwise chains.

The emitter serializes each elementwise statement's op tree alongside
the numpy lambda; :class:`NativeEngine` compiles that tree into a single
C loop (via cffi ABI-mode dlopen), caches the shared object by content
hash in-process and on disk, and executes it instead of the lambda —
same bits, no intermediate temporaries, no per-op dispatch.

This tier changes *host* wall-clock only.  The virtual clock, message
counts, and byte counts the paper's figures are built on are charged
identically whether a chain runs natively or through numpy; the golden
trace suite pins that.

Modes (``--native`` / ``$REPRO_NATIVE``):

``auto``     (default) use the tier when cffi + a C compiler exist,
             silently fall back otherwise — and per-kernel on
             unsupported ops, compile failures, or bit mismatches.
``off``      never touch the tier.
``require``  raise :class:`NativeUnavailableError` if the toolchain is
             missing (CI uses this to prove the tier actually engaged).

Environment: ``REPRO_NATIVE`` (mode), ``REPRO_NATIVE_CC`` (compiler
override, authoritative), ``REPRO_KERNEL_CACHE`` (cache directory,
default ``~/.cache/repro-kernels``).
"""

from __future__ import annotations

import os
import threading
from typing import Optional

from ..errors import OtterError
from .cache import ENV_CACHE_DIR, KernelCache, KernelCompileError
from .codegen import ABI_VERSION, UnsupportedSpecError, generate_source, \
    spec_key
from .engine import ENV_CC, NativeEngine, NativeStats, find_compiler
from .ops import OPS, spec_reference

ENV_NATIVE = "REPRO_NATIVE"

NATIVE_MODES = ("auto", "off", "require")


class NativeUnavailableError(OtterError):
    """``--native=require`` but the tier cannot run here."""


_registry_lock = threading.Lock()
_engines: dict[tuple, NativeEngine] = {}


def get_engine() -> NativeEngine:
    """The process-wide engine for the current toolchain environment.

    Keyed by (compiler override, cache dir) so tests that monkeypatch
    ``REPRO_NATIVE_CC`` or ``REPRO_KERNEL_CACHE`` get a fresh engine
    while normal runs share one — kernels, probes, and stats accumulate
    across every program executed in the process.
    """
    key = (os.environ.get(ENV_CC), os.environ.get(ENV_CACHE_DIR))
    with _registry_lock:
        engine = _engines.get(key)
        if engine is None:
            engine = NativeEngine()
            _engines[key] = engine
        return engine


def reset_engines() -> None:
    """Drop all cached engines (tests only — kernels stay on disk)."""
    with _registry_lock:
        _engines.clear()


def resolve_native(mode: Optional[str] = None) -> Optional[NativeEngine]:
    """Resolve a native mode to an engine (or ``None`` = numpy only).

    Precedence mirrors the other runtime knobs: explicit argument over
    ``$REPRO_NATIVE`` over the ``auto`` default.
    """
    if mode is None:
        mode = os.environ.get(ENV_NATIVE) or "auto"
    if mode not in NATIVE_MODES:
        raise ValueError(
            f"native mode must be one of {NATIVE_MODES}, got {mode!r}")
    if mode == "off":
        return None
    engine = get_engine()
    if not engine.available:
        if mode == "require":
            raise NativeUnavailableError(
                f"native kernels required but unavailable: "
                f"{engine.unavailable_reason}")
        return None
    return engine


__all__ = [
    "ABI_VERSION",
    "ENV_CACHE_DIR",
    "ENV_CC",
    "ENV_NATIVE",
    "KernelCache",
    "KernelCompileError",
    "NATIVE_MODES",
    "NativeEngine",
    "NativeStats",
    "NativeUnavailableError",
    "OPS",
    "UnsupportedSpecError",
    "find_compiler",
    "generate_source",
    "get_engine",
    "reset_engines",
    "resolve_native",
    "spec_key",
    "spec_reference",
]
