"""On-disk content-addressed kernel cache.

Layout: one ``k_<hash>.c`` / ``k_<hash>.so`` pair per kernel under the
cache root (``$REPRO_KERNEL_CACHE`` or ``~/.cache/repro-kernels``).  The
hash covers op tree + slot signature + codegen ABI version, so a cache
directory can be shared freely across runs, processes, and repo
checkouts — a warm cache compiles nothing.

Publishing is atomic (compile to a pid-suffixed temp name, then
``os.replace``) so concurrent processes racing on the same kernel both
succeed and one .so wins.
"""

from __future__ import annotations

import os
import subprocess
from pathlib import Path

ENV_CACHE_DIR = "REPRO_KERNEL_CACHE"


class KernelCompileError(Exception):
    """The host compiler rejected a generated kernel."""


def default_cache_dir() -> Path:
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro-kernels"


class KernelCache:
    """Filesystem store for compiled kernels, keyed by content hash."""

    def __init__(self, root: str | os.PathLike | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self._ready = False

    def _ensure_root(self) -> None:
        if not self._ready:
            self.root.mkdir(parents=True, exist_ok=True)
            self._ready = True

    def so_path(self, key: str) -> Path:
        return self.root / f"k_{key}.so"

    def source_path(self, key: str) -> Path:
        return self.root / f"k_{key}.c"

    def lookup(self, key: str) -> Path | None:
        """Return the shared object for ``key`` if already on disk."""
        path = self.so_path(key)
        return path if path.exists() else None

    def build(self, key: str, source: str, cc: str,
              extra_flags: tuple[str, ...] = ()) -> Path:
        """Compile ``source`` and publish it under ``key`` atomically.

        The flags pin strict IEEE semantics: no fast-math value
        rewrites, and ``-ffp-contract=off`` so the compiler cannot fuse
        ``a*b + c`` into an FMA — either would break bit-identity with
        the numpy path.  ``-fno-math-errno`` is the one liberty taken:
        it never changes a computed value, only skips the errno
        bookkeeping, which is what lets ``sqrt`` inline to a bare
        ``sqrtsd`` instead of a guarded libm call.
        """
        self._ensure_root()
        src = self.source_path(key)
        src.write_text(source)
        final = self.so_path(key)
        tmp = self.root / f"k_{key}.{os.getpid()}.tmp.so"
        cmd = [cc, "-O2", "-fPIC", "-shared",
               "-fno-fast-math", "-ffp-contract=off", "-fno-math-errno",
               *extra_flags, str(src), "-o", str(tmp), "-lm"]
        try:
            proc = subprocess.run(cmd, capture_output=True, text=True,
                                  timeout=60)
        except (OSError, subprocess.SubprocessError) as exc:
            raise KernelCompileError(f"{cc}: {exc}") from exc
        if proc.returncode != 0:
            tmp.unlink(missing_ok=True)
            raise KernelCompileError(
                f"{cc} exited {proc.returncode}: {proc.stderr.strip()}")
        os.replace(tmp, final)
        return final
