"""The native kernel engine: compile, cache, verify, execute, fall back.

``NativeEngine.run(spec, args, reference)`` is the single entry point
``RuntimeContext.ew`` calls.  It either returns the computed float64
array — bitwise identical to what the numpy lambda would produce — or
``None``, in which case the caller runs the numpy path.  Every reason
for returning ``None`` is counted in :class:`NativeStats` so the pass
report and CI can show exactly where the tier engaged.

Correctness layers (all per-kernel, all automatic):

1. *Signature gate*: only float64 C-contiguous arrays of one shape plus
   real scalars are admitted; anything else (complex, ints, views) is a
   numpy call.
2. *Op admission*: PROBED ops run a one-time in-process differential
   probe against the numpy reference (see ops.py) before any kernel
   using them compiles.
3. *Semantic guards*: kernels abort (rc=1) on inputs whose MATLAB
   semantics need complex promotion; the call falls back.
4. *First-call verification*: each kernel's first result is compared
   bitwise against the reference lambda; any mismatch blacklists the
   kernel permanently.

The engine is shared across ranks and backends; the free-running
threads backend may call it concurrently, so compilation, cache
mutation, and probing hold a lock (kernel *execution* does not — the
C loop only touches its own buffers).
"""

from __future__ import annotations

import os
import shutil
import sysconfig
import threading
from typing import Optional

import numpy as np

from .cache import KernelCache, KernelCompileError
from .codegen import (UnsupportedSpecError, cdef_signature, generate_source,
                      spec_key)
from .ops import OPS, PROBED, probe_samples, spec_reference

ENV_CC = "REPRO_NATIVE_CC"

#: stat counters, in report order
STAT_FIELDS = (
    "native_calls",       # calls served by a compiled kernel
    "kernels",            # distinct kernels loaded this process
    "compiles",           # kernels built by the C compiler
    "disk_hits",          # kernels dlopen'ed straight from the disk cache
    "mem_hits",           # calls that found their kernel in-process
    "guard_fallbacks",    # calls aborted by a semantic guard (rc != 0)
    "verify_rejects",     # kernels blacklisted by first-call verification
    "unsupported_specs",  # specs outside the compilable subset
    "probe_rejects",      # specs refused because a PROBED op failed
    "signature_fallbacks",  # calls with non-float64/complex/strided args
    "compile_failures",   # cc rejected a kernel (spec blacklisted)
)


class NativeStats:
    """Thread-safe counters for the tier's pass-report section."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counts = dict.fromkeys(STAT_FIELDS, 0)

    def bump(self, field: str, by: int = 1) -> None:
        with self._lock:
            self._counts[field] += by

    def bump_pair(self, first: str, second: str) -> None:
        """Two counters, one lock acquisition (the warm-call hot path)."""
        with self._lock:
            self._counts[first] += 1
            self._counts[second] += 1

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)


class _Kernel:
    __slots__ = ("cfun", "lib", "nslots", "sig", "verified", "blacklisted")

    def __init__(self, cfun, lib, sig: str):
        self.cfun = cfun
        self.lib = lib  # keep the dlopen handle alive
        self.sig = sig
        self.nslots = len(sig)
        self.verified = 0
        self.blacklisted = False


#: sentinel: spec permanently numpy-only for this process
_UNSUPPORTED = object()


def _resolve_cc(cand: str) -> Optional[str]:
    if os.path.sep in cand:
        if os.path.isfile(cand) and os.access(cand, os.X_OK):
            return cand
        return None
    return shutil.which(cand)


def find_compiler(cc: Optional[str] = None) -> Optional[str]:
    """Resolve the host C compiler.

    An explicit argument or ``$REPRO_NATIVE_CC`` is *authoritative*: if
    it does not resolve, the tier is unavailable — a deliberately
    poisoned compiler (tests, the CI no-compiler leg) must not fall back
    to the system toolchain.  Otherwise try ``$CC``, the python build's
    configured compiler, then ``cc``/``gcc``/``clang`` on PATH.
    Returns ``None`` when nothing usable exists — the tier then reports
    itself unavailable and every chain runs through numpy.
    """
    explicit = cc or os.environ.get(ENV_CC)
    if explicit:
        return _resolve_cc(explicit)
    candidates = [os.environ.get("CC")]
    sys_cc = (sysconfig.get_config_var("CC") or "").split()
    if sys_cc:
        candidates.append(sys_cc[0])
    candidates += ["cc", "gcc", "clang"]
    for cand in candidates:
        if not cand:
            continue
        found = _resolve_cc(cand)
        if found:
            return found
    return None


class NativeEngine:
    """Process-wide JIT tier for fused elementwise chains."""

    def __init__(self, cache_dir: Optional[str] = None,
                 cc: Optional[str] = None, verify_calls: int = 1):
        self._lock = threading.RLock()
        self.stats = NativeStats()
        self.cache = KernelCache(cache_dir)
        self.cc = find_compiler(cc)
        self.verify_calls = verify_calls
        self._ffi = None
        self._dparr = None  # cached ffi.typeof("double[]")
        self._kernels: dict[str, object] = {}
        #: per-call-site memo: id(spec) -> (spec, {sig: _Kernel|_UNSUPPORTED}).
        #: The emitter materializes each call site's spec as a code-object
        #: constant, so its identity is stable across calls — warm calls
        #: skip the content hash entirely.  The strong reference in the
        #: entry keeps the id from ever being reused.  Plain dict ops are
        #: GIL-atomic; a race between threads at worst duplicates the
        #: slow-path lookup, which is idempotent.
        self._fast: dict[int, tuple] = {}
        self._op_admission: dict[str, bool] = {}
        self._probing: set[str] = set()
        self._toolchain: Optional[bool] = None
        self.unavailable_reason: Optional[str] = None
        if self.cc is None:
            self.unavailable_reason = "no C compiler found"

    # ---------------------------------------------------------------- #
    # availability
    # ---------------------------------------------------------------- #

    @property
    def available(self) -> bool:
        """True when cffi + a working compiler + a writable cache exist.

        The first query pays a trial compile; the verdict is cached for
        the life of the engine.
        """
        with self._lock:
            if self._toolchain is None:
                self._toolchain = self._probe_toolchain()
            return self._toolchain

    def _probe_toolchain(self) -> bool:
        if self.cc is None:
            return False
        try:
            import cffi  # noqa: F401
        except ImportError:
            self.unavailable_reason = "cffi is not installed"
            return False
        try:
            source, _ = generate_source(("+", "@0", 1.0), "a", "k_trial")
            self.cache.build("trial", source, self.cc)
        except (KernelCompileError, OSError) as exc:
            self.unavailable_reason = f"toolchain probe failed: {exc}"
            return False
        return True

    def _get_ffi(self):
        if self._ffi is None:
            from cffi import FFI
            self._ffi = FFI()
            self._dparr = self._ffi.typeof("double[]")
        return self._ffi

    # ---------------------------------------------------------------- #
    # the hot path
    # ---------------------------------------------------------------- #

    def run(self, spec, args, reference=None) -> Optional[np.ndarray]:
        """Execute ``spec`` over ``args`` natively, or return ``None``.

        ``args`` is the positional operand list the numpy lambda would
        receive (float64 arrays and scalars).  ``reference`` is that
        lambda, used only for first-call verification.  A ``None``
        return means "use the numpy path" — never an error.
        """
        prep = self._prepare_args(spec, args)
        if prep is None:
            self.stats.bump("signature_fallbacks")
            return None
        sig, shape, call_values = prep
        ent = self._fast.get(id(spec))
        if ent is not None and ent[0] is spec:
            kern = ent[1].get(sig)
        else:
            ent = kern = None
        if kern is None:
            kern = self._kernel_for(spec, sig)
            if ent is None:
                ent = (spec, {})
                self._fast[id(spec)] = ent
            ent[1][sig] = kern if kern is not None else _UNSUPPORTED
            if kern is None:
                return None
            warm = False
        elif kern is _UNSUPPORTED or kern.blacklisted:
            return None
        else:
            warm = True
        out = np.empty(shape, dtype=np.float64)
        ffi = self._ffi
        dparr = self._dparr
        from_buffer = ffi.from_buffer
        cargs = [
            from_buffer(dparr, v) if v.__class__ is np.ndarray else v
            for v in call_values
        ]
        rc = kern.cfun(out.size, from_buffer(dparr, out), *cargs)
        if rc != 0:
            self.stats.bump("guard_fallbacks")
            return None
        if kern.verified < self.verify_calls:
            if reference is None:
                return None
            with np.errstate(divide="ignore", invalid="ignore"):
                ref = np.asarray(reference(*args))
            if (ref.dtype != np.float64 or ref.shape != out.shape
                    or ref.tobytes() != out.tobytes()):
                kern.blacklisted = True
                self.stats.bump("verify_rejects")
                return None
            kern.verified += 1
        if warm:
            self.stats.bump_pair("mem_hits", "native_calls")
        else:
            self.stats.bump("native_calls")
        return out

    def _prepare_args(self, spec, args):
        """Gate + normalize the operand list.

        Returns ``(sig, shape, call_values)`` or ``None``.  Arrays must
        be float64, C-contiguous, and share one shape; size-1 arrays and
        numpy scalars demote to C ``double`` arguments; complex anywhere
        means the numpy path (output dtype would differ).
        """
        if not isinstance(spec, tuple):
            return None
        sig = []
        values = []
        shape = None
        for a in args:
            if isinstance(a, np.ndarray):
                if a.size != 1:
                    if a.dtype != np.float64 or not a.flags.c_contiguous:
                        return None
                    if shape is None:
                        shape = a.shape
                    elif a.shape != shape:
                        return None
                    sig.append("a")
                    values.append(a)
                    continue
                if a.dtype != np.float64:  # size-1 broadcast
                    return None
                sig.append("s")
                values.append(float(a.reshape(-1)[0]))
                continue
            # bool before int: bool is an int subclass
            if isinstance(a, (bool, np.bool_)):
                sig.append("s")
                values.append(1.0 if a else 0.0)
                continue
            if isinstance(a, (float, int, np.floating, np.integer)):
                sig.append("s")
                values.append(float(a))
                continue
            return None
        if shape is None:
            return None  # pure-scalar chains never reach the tier
        return "".join(sig), shape, values

    # ---------------------------------------------------------------- #
    # kernel construction
    # ---------------------------------------------------------------- #

    def _kernel_for(self, spec, sig: str) -> Optional[_Kernel]:
        key = spec_key(spec, sig)
        kern = self._kernels.get(key)
        if kern is not None:
            if kern is _UNSUPPORTED:
                return None
            self.stats.bump("mem_hits")
            return None if kern.blacklisted else kern
        with self._lock:
            kern = self._kernels.get(key)
            if kern is not None:  # raced another thread
                if kern is _UNSUPPORTED:
                    return None
                self.stats.bump("mem_hits")
                return None if kern.blacklisted else kern
            kern = self._build_kernel(spec, sig, key, gate_probes=True)
            self._kernels[key] = kern if kern is not None else _UNSUPPORTED
            return kern

    def _build_kernel(self, spec, sig: str, key: str,
                      gate_probes: bool) -> Optional[_Kernel]:
        """Compile-or-load one kernel.  Caller holds the lock."""
        if not self.available:
            return None
        name = f"k_{key}"
        try:
            source, ops_used = generate_source(spec, sig, name)
        except UnsupportedSpecError:
            self.stats.bump("unsupported_specs")
            return None
        if gate_probes:
            for op in sorted(ops_used):
                if not self._op_admitted(op):
                    self.stats.bump("probe_rejects")
                    return None
            # a single-op spec IS its own probe kernel: a passing probe
            # already compiled and registered it under this very key
            existing = self._kernels.get(key)
            if existing is not None and existing is not _UNSUPPORTED:
                return existing
        path = self.cache.lookup(key)
        if path is not None:
            self.stats.bump("disk_hits")
        else:
            try:
                path = self.cache.build(key, source, self.cc)
            except KernelCompileError:
                self.stats.bump("compile_failures")
                return None
            self.stats.bump("compiles")
        ffi = self._get_ffi()
        try:
            ffi.cdef(cdef_signature(sig, name))
            lib = ffi.dlopen(str(path))
            cfun = getattr(lib, name)
        except Exception:
            self.stats.bump("compile_failures")
            return None
        self.stats.bump("kernels")
        return _Kernel(cfun, lib, sig)

    # ---------------------------------------------------------------- #
    # per-op differential probes
    # ---------------------------------------------------------------- #

    def _op_admitted(self, op: str) -> bool:
        info = OPS[op]
        if info.kind != PROBED:
            return True
        verdict = self._op_admission.get(op)
        if verdict is not None:
            return verdict
        if op in self._probing:  # defensive: no recursive probes
            return False
        self._probing.add(op)
        try:
            verdict = self._probe_op(op)
        finally:
            self._probing.discard(op)
        self._op_admission[op] = verdict
        return verdict

    def _probe_op(self, op: str) -> bool:
        """One-time bitwise sweep of a PROBED op against numpy.

        Builds the single-op kernel, runs it over the deterministic
        sample set for the op's domain, and admits the op only if every
        result bit matches the reference.  numpy builds whose SIMD
        transcendentals differ from libm fail here and their chains stay
        on the numpy path — correctness never depends on the platform.
        """
        info = OPS[op]
        samples = probe_samples(info.domain)[:info.arity]
        spec = (op, *(f"@{i}" for i in range(info.arity)))
        sig = "a" * info.arity
        key = spec_key(spec, sig)
        kern = self._kernels.get(key)
        if kern is None or kern is _UNSUPPORTED:
            kern = self._build_kernel(spec, sig, key, gate_probes=False)
            self._kernels[key] = kern if kern is not None else _UNSUPPORTED
        if kern is None or kern is _UNSUPPORTED:
            return False
        arrays = [np.ascontiguousarray(s, dtype=np.float64)
                  for s in samples]
        out = np.empty(arrays[0].shape, dtype=np.float64)
        ffi = self._get_ffi()
        cargs = [ffi.cast("double *", a.ctypes.data) for a in arrays]
        rc = kern.cfun(out.size, ffi.cast("double *", out.ctypes.data),
                       *cargs)
        if rc != 0:
            return False
        ref = np.asarray(spec_reference(spec)(*arrays))
        return (ref.dtype == np.float64 and ref.shape == out.shape
                and ref.tobytes() == out.tobytes())
