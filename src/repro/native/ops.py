"""Native-tier op registry: per-op C templates and admission rules.

Every IR elementwise op that the native tier can compile appears here
with a C expression template.  The hard requirement (ISSUE 8, ROADMAP)
is *bit-identity* with the numpy path, so ops are split into two
classes:

``exact``
    IEEE-754 requires a correctly-rounded result (arithmetic,
    comparisons, logicals, ``sqrt``, ``fabs``, ``floor`` ...), so the C
    expression is bitwise-identical to numpy by construction on any
    conforming platform.

``probed``
    numpy may route through its own SIMD implementations (``exp``,
    ``log``, ``sin`` ... differ from libm in the last ulp on this very
    container), so the op is admitted *per process* only after a
    one-time differential probe: compile a single-op kernel, sweep a
    deterministic sample set, and require bitwise equality against the
    numpy reference.  A probe failure rejects the op for the process and
    every chain using it falls back to numpy.

Ops whose MATLAB semantics promote to complex (``sqrt``/``log`` of
negatives, fractional powers of negative bases) carry a *guard*: a C
condition evaluated per element that aborts the kernel (return 1) so the
caller re-runs the chain through numpy, which performs the promotion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..codegen import kernels as K

EXACT = "exact"
PROBED = "probed"


@dataclass(frozen=True)
class OpInfo:
    """One compilable elementwise op.

    ``expr`` and ``guard`` are ``str.format`` templates whose positional
    fields are the C expressions of the operand values.
    """

    arity: int
    expr: str
    kind: str = EXACT
    guard: Optional[str] = None
    #: probe sample domain: "all" | "positive" | "pairs" | "pow_pairs"
    domain: str = "all"


#: IR op name -> OpInfo.  Keys mirror py_emitter._EW_OPERATORS plus the
#: ``fn:<name>`` builtins from kernels.FUNCS.
OPS: dict[str, OpInfo] = {
    # IEEE arithmetic: correctly rounded, always exact
    "+": OpInfo(2, "({0} + {1})"),
    "-": OpInfo(2, "({0} - {1})"),
    ".*": OpInfo(2, "({0} * {1})"),
    "./": OpInfo(2, "({0} / {1})"),
    ".\\": OpInfo(2, "({1} / {0})"),
    "u-": OpInfo(1, "(-{0})"),
    "u+": OpInfo(1, "({0})"),
    # comparisons / logicals produce 0.0/1.0 doubles (NaN compares false,
    # NaN != 0 is true so NaN is truthy — both match numpy)
    "==": OpInfo(2, "(({0} == {1}) ? 1.0 : 0.0)"),
    "~=": OpInfo(2, "(({0} != {1}) ? 1.0 : 0.0)"),
    "<": OpInfo(2, "(({0} < {1}) ? 1.0 : 0.0)"),
    ">": OpInfo(2, "(({0} > {1}) ? 1.0 : 0.0)"),
    "<=": OpInfo(2, "(({0} <= {1}) ? 1.0 : 0.0)"),
    ">=": OpInfo(2, "(({0} >= {1}) ? 1.0 : 0.0)"),
    "&": OpInfo(2, "((({0} != 0.0) && ({1} != 0.0)) ? 1.0 : 0.0)"),
    "|": OpInfo(2, "((({0} != 0.0) || ({1} != 0.0)) ? 1.0 : 0.0)"),
    "&&": OpInfo(2, "((({0} != 0.0) && ({1} != 0.0)) ? 1.0 : 0.0)"),
    "||": OpInfo(2, "((({0} != 0.0) || ({1} != 0.0)) ? 1.0 : 0.0)"),
    "u~": OpInfo(1, "(({0} == 0.0) ? 1.0 : 0.0)"),
    # exact libm subset (IEEE-mandated or pure FP classification)
    "fn:sqrt": OpInfo(1, "sqrt({0})", guard="({0} < 0.0)"),
    "fn:abs": OpInfo(1, "fabs({0})"),
    "fn:floor": OpInfo(1, "floor({0})"),
    "fn:ceil": OpInfo(1, "ceil({0})"),
    "fn:fix": OpInfo(1, "trunc({0})"),
    "fn:round": OpInfo(1, "floor({0} + 0.5)"),
    "fn:sign": OpInfo(
        1, "(({0} > 0.0) ? 1.0 : (({0} < 0.0) ? -1.0 : {0}))"),
    "fn:isnan": OpInfo(1, "(({0} != {0}) ? 1.0 : 0.0)"),
    "fn:isinf": OpInfo(1, "(isinf({0}) ? 1.0 : 0.0)"),
    "fn:isfinite": OpInfo(1, "(isfinite({0}) ? 1.0 : 0.0)"),
    "fn:double": OpInfo(1, "({0})"),
    # real float64 inputs only (the signature gate rejects complex)
    "fn:real": OpInfo(1, "({0})"),
    "fn:conj": OpInfo(1, "({0})"),
    "fn:imag": OpInfo(1, "0.0"),
    # transcendentals: numpy's SIMD kernels are *not* libm on every
    # platform — admitted per process only if the probe proves identity
    "fn:exp": OpInfo(1, "exp({0})", kind=PROBED),
    "fn:log": OpInfo(1, "log({0})", kind=PROBED,
                     guard="({0} < 0.0)", domain="positive"),
    "fn:log2": OpInfo(1, "log2({0})", kind=PROBED,
                      guard="({0} < 0.0)", domain="positive"),
    "fn:log10": OpInfo(1, "log10({0})", kind=PROBED,
                       guard="({0} < 0.0)", domain="positive"),
    "fn:sin": OpInfo(1, "sin({0})", kind=PROBED),
    "fn:cos": OpInfo(1, "cos({0})", kind=PROBED),
    "fn:tan": OpInfo(1, "tan({0})", kind=PROBED),
    "fn:asin": OpInfo(1, "asin({0})", kind=PROBED),
    "fn:acos": OpInfo(1, "acos({0})", kind=PROBED),
    "fn:atan": OpInfo(1, "atan({0})", kind=PROBED),
    "fn:sinh": OpInfo(1, "sinh({0})", kind=PROBED),
    "fn:cosh": OpInfo(1, "cosh({0})", kind=PROBED),
    "fn:tanh": OpInfo(1, "tanh({0})", kind=PROBED),
    "fn:angle": OpInfo(1, "atan2(0.0, {0})", kind=PROBED),
    "fn:atan2": OpInfo(2, "atan2({0}, {1})", kind=PROBED, domain="pairs"),
    "fn:hypot": OpInfo(2, "hypot({0}, {1})", kind=PROBED, domain="pairs"),
    "fn:rem": OpInfo(2, "fmod({0}, {1})", kind=PROBED, domain="pairs"),
    # numpy maximum/minimum propagate NaN and return the *second* operand
    # on ties (0.0 vs -0.0).  The inner ternary is exactly x86
    # maxsd/minsd semantics (second operand on false, NaN compares
    # false), so gcc emits the branchless SIMD form; only the rare
    # NaN-in-first-operand blend can branch, and it predicts perfectly
    # on real data — the naive short-circuit form mispredicts on every
    # crossing of the threshold and runs ~4x slower
    "fn:maximum": OpInfo(
        2, "(({0} != {0}) ? {0} : (({0} > {1}) ? {0} : {1}))",
        kind=PROBED, domain="pairs"),
    "fn:minimum": OpInfo(
        2, "(({0} != {0}) ? {0} : (({0} < {1}) ? {0} : {1}))",
        kind=PROBED, domain="pairs"),
    # general a .^ b through libm pow (numpy's pow SIMD kernel usually
    # diverges, so this rarely survives the probe; the constant-exponent
    # rewrites in codegen are the ones that matter)
    "fn:power": OpInfo(2, "pow({0}, {1})", kind=PROBED, domain="pow_pairs"),
}

#: constant-exponent rewrites for ``a .^ c`` (K.pow_ semantics).  numpy
#: evaluates np.asarray(a) ** np.asarray(c) through np.power, and the
#: probe checks that np.power with this exact constant is bitwise equal
#: to the rewritten form.  Keyed by the constant; each value is a
#: (pseudo-op name, expr template) pair registered below as PROBED.
POW_CONST_REWRITES: dict[float, str] = {
    0.0: "pow:0",
    1.0: "pow:1",
    2.0: "pow:2",
    -1.0: "pow:-1",
}

OPS.update({
    "pow:0": OpInfo(1, "1.0", kind=PROBED),
    "pow:1": OpInfo(1, "({0})", kind=PROBED),
    "pow:2": OpInfo(1, "({0} * {0})", kind=PROBED),
    "pow:-1": OpInfo(1, "(1.0 / {0})", kind=PROBED),
})


# --------------------------------------------------------------------- #
# numpy reference interpreter (probes + tests)
# --------------------------------------------------------------------- #

#: IR operator -> the kernels.py callable the emitted lambda would use
_SPEC_KERNELS: dict[str, Callable] = {
    "+": K.add, "-": K.sub,
    ".*": K.mul, "./": K.div, ".\\": K.ldiv, ".^": K.pow_,
    "==": K.eq, "~=": K.ne, "<": K.lt, ">": K.gt, "<=": K.le, ">=": K.ge,
    "&": K.land, "|": K.lor, "&&": K.land, "||": K.lor,
    "u-": K.neg, "u+": K.pos, "u~": K.lnot,
}

#: ``fn:<name>`` reference callables used by rt.ew call sites that pass
#: specs directly (runtime/builtins.py) — these are NOT kernels.FUNCS
#: for every name: power/max/min go through different numpy entry points
_SPEC_FN_REFS: dict[str, Callable] = {
    "power": lambda a, b: np.asarray(a) ** np.asarray(b),
    "maximum": np.maximum,
    "minimum": np.minimum,
}


def spec_reference(spec):
    """Build the numpy reference callable for an op-tree spec.

    The returned function takes one positional argument per ``@N`` slot
    and reproduces exactly what the emitted lambda computes (kernels.K
    for operators, kernels.FUNCS for named functions).  Used by the
    per-op probes and the differential test suite.
    """

    def ev(node, slots):
        if isinstance(node, tuple):
            op, args = node[0], [ev(a, slots) for a in node[1:]]
            if op in _SPEC_KERNELS:
                return _SPEC_KERNELS[op](*args)
            if op.startswith("pow:"):
                return K.pow_(args[0], float(op[4:]))
            if op.startswith("fn:"):
                name = op[3:]
                if name in _SPEC_FN_REFS:
                    return _SPEC_FN_REFS[name](*args)
                return K.fn(name)(*args)
            raise KeyError(op)
        if isinstance(node, str):  # "@N" slot
            return slots[int(node[1:])]
        return node  # literal constant

    def call(*slots):
        with np.errstate(all="ignore"):
            return ev(spec, slots)

    return call


# --------------------------------------------------------------------- #
# probe sample sets
# --------------------------------------------------------------------- #

_SPECIALS = np.array([
    0.0, -0.0, 1.0, -1.0, 0.5, -0.5, 2.0, -2.0, np.pi, -np.pi,
    np.inf, -np.inf, np.nan, 1e308, -1e308, 5e-324, -5e-324,
    0.1, 1.0 / 3.0, 1e-16, 7.25, 1023.5,
])


def probe_samples(domain: str):
    """Deterministic sample arrays for a probe domain.

    Returns a list of operand arrays (one per kernel slot).  Samples are
    fixed-seed so admission decisions are reproducible run to run.
    """
    rng = np.random.default_rng(0xC0FFEE)
    base = np.concatenate([
        rng.uniform(-1e3, 1e3, 1024),
        rng.uniform(-2.0, 2.0, 1024),
        np.exp(rng.uniform(-200.0, 200.0, 1024)) * rng.choice(
            [-1.0, 1.0], 1024),
        _SPECIALS,
    ])
    if domain == "positive":
        return [np.abs(base)]
    if domain == "pairs":
        other = np.concatenate([base[1:], base[:1]])
        return [base, other]
    if domain == "pow_pairs":
        # stay off the complex-promotion guard: integral exponents for
        # arbitrary bases, arbitrary exponents for non-negative bases
        with np.errstate(all="ignore"):
            exps = np.floor(np.concatenate([base[1:], base[:1]]) % 7.0) - 3.0
        bases = np.concatenate([base, np.abs(base)])
        exps = np.concatenate([exps, np.concatenate([base[1:], base[:1]])])
        return [bases, exps]
    return [base]
