"""Spec tree -> C source for the native kernel tier.

A *spec* is the elementwise op tree the emitter already lowers into the
``rt.ew`` lambda, serialized as nested tuples::

    ('+', ('fn:sqrt', ('.*', '@0', '@0')), 2.0)

Leaves are ``"@N"`` operand-slot strings and numeric literals; interior
nodes are ``(op, arg, ...)``.  Together with the call-site *signature*
(one ``'a'``/``'s'`` char per slot: float64 array or real scalar) a spec
maps deterministically to one C translation unit: a single loop, one
statement per op node, zero intermediate arrays.

Kernels return ``int``: 0 on success, 1 when a semantic guard fired
(e.g. ``sqrt`` of a negative — MATLAB promotes to complex, C cannot),
in which case the caller discards the output buffer and re-runs the
chain through numpy.
"""

from __future__ import annotations

import hashlib
import math

from .ops import OPS, POW_CONST_REWRITES

#: bump whenever generated code or the calling convention changes — the
#: version participates in the content hash, so stale on-disk kernels
#: from older ABIs are never dlopen'ed
ABI_VERSION = 2


class UnsupportedSpecError(Exception):
    """The spec contains an op/operand the native tier cannot compile."""


def spec_key(spec, sig: str) -> str:
    """Content hash identifying one compiled kernel.

    Covers the canonical op tree, the slot signature, and the codegen
    ABI version; dtype and shape-class are implied (float64, flat
    C-contiguous) because the signature gate admits nothing else.
    """
    text = f"repro-native:{ABI_VERSION}:{sig}:{spec!r}"
    return hashlib.sha256(text.encode()).hexdigest()[:20]


def _literal(value) -> str:
    if isinstance(value, bool):
        return "1.0" if value else "0.0"
    if isinstance(value, int):
        value = float(value)
    if isinstance(value, complex):
        if value.imag == 0.0:
            value = value.real
        else:
            raise UnsupportedSpecError("complex constant")
    if not isinstance(value, float):
        raise UnsupportedSpecError(f"non-numeric constant {value!r}")
    if math.isnan(value):
        return "(0.0 / 0.0)"
    if math.isinf(value):
        return "(1.0 / 0.0)" if value > 0 else "(-1.0 / 0.0)"
    return repr(value)


def _normalize_pow(node):
    """Rewrite ``a .^ const`` to its probed pseudo-op when possible."""
    op, args = node[0], node[1:]
    if op != ".^" or len(args) != 2:
        return node
    exp = args[1]
    if isinstance(exp, bool) or not isinstance(exp, (int, float)):
        raise UnsupportedSpecError("non-constant .^ exponent")
    exp = float(exp)
    rewrite = POW_CONST_REWRITES.get(exp)
    if rewrite is None:
        raise UnsupportedSpecError(f".^ exponent {exp!r}")
    return (rewrite, args[0])


def generate_source(spec, sig: str, name: str) -> tuple[str, set[str]]:
    """Render the kernel C source.

    Returns ``(source, ops_used)`` where ``ops_used`` is the set of op
    registry keys the kernel depends on (the engine gates PROBED ops on
    their one-time differential probe before compiling).

    Raises :class:`UnsupportedSpecError` for anything outside the
    compilable subset — the caller records the spec as permanently
    numpy-only.
    """
    if not isinstance(spec, tuple):
        raise UnsupportedSpecError("spec is not an op tree")
    body: list[str] = []
    ops_used: set[str] = set()
    counter = [0]

    def emit(node) -> str:
        if isinstance(node, tuple):
            node = _normalize_pow(node)
            op = node[0]
            info = OPS.get(op)
            if info is None:
                raise UnsupportedSpecError(f"op {op!r}")
            if len(node) - 1 != info.arity:
                raise UnsupportedSpecError(f"arity of {op!r}")
            ops_used.add(op)
            args = [emit(a) for a in node[1:]]
            if info.guard is not None:
                body.append(f"        if {info.guard.format(*args)} "
                            "return 1;")
            tmp = f"t{counter[0]}"
            counter[0] += 1
            body.append(f"        double {tmp} = "
                        f"{info.expr.format(*args)};")
            return tmp
        if isinstance(node, str):
            if not node.startswith("@"):
                raise UnsupportedSpecError(f"leaf {node!r}")
            slot = int(node[1:])
            if slot < 0 or slot >= len(sig):
                raise UnsupportedSpecError(f"slot {node!r} out of range")
            return f"a{slot}[i]" if sig[slot] == "a" else f"s{slot}"
        return _literal(node)

    result = emit(spec)
    params = "".join(
        f", const double *restrict a{i}" if kind == "a" else f", double s{i}"
        for i, kind in enumerate(sig))
    lines = [
        "#include <math.h>",
        "",
        f"int {name}(long n, double *restrict out{params})",
        "{",
        "    long i;",
        "    for (i = 0; i < n; i++) {",
        *body,
        f"        out[i] = {result};",
        "    }",
        "    return 0;",
        "}",
        "",
    ]
    return "\n".join(lines), ops_used


def cdef_signature(sig: str, name: str) -> str:
    """The cffi ``cdef`` declaration matching :func:`generate_source`."""
    params = "".join(
        f", const double *a{i}" if kind == "a" else f", double s{i}"
        for i, kind in enumerate(sig))
    return f"int {name}(long n, double *out{params});"
