"""Otter — a parallel MATLAB compiler (reproduction of Quinn, Malishevsky,
Seelam & Zhao, *Preliminary Results from a Parallel MATLAB Compiler*,
IPPS 1998).

The package translates pure MATLAB scripts into loosely synchronous SPMD
programs over a message-passing run-time library, and reproduces the
paper's evaluation on performance models of its three target machines.

Quickstart::

    from repro import OtterCompiler
    from repro.mpi import MEIKO_CS2

    compiler = OtterCompiler()
    program = compiler.compile("x = ones(256, 256); disp(sum(sum(x)));")
    result = program.run(nprocs=8, machine=MEIKO_CS2)
    print(result.output)          # what the script printed (rank 0)
    print(result.elapsed)         # modeled parallel execution time
    print(program.c_source)       # the SPMD C the paper's backend emits

Subpackages
-----------
``repro.frontend``   MATLAB scanner/parser/AST (pass 1)
``repro.analysis``   resolution, SSA, type/shape inference (passes 2-3)
``repro.ir``         statement-level IR and passes 4-6
``repro.codegen``    Python and C backends (pass 7)
``repro.runtime``    the distributed run-time library (ML_* operations)
``repro.mpi``        simulated MPI substrate with machine models
``repro.interp``     reference MATLAB interpreter (oracle + baseline)
``repro.baselines``  the MATCOM-like sequential compiled baseline
``repro.bench``      workloads and harnesses for every table/figure
"""

from .compiler import CompiledProgram, OtterCompiler, RunResult, compile_source
from .errors import (
    CodegenError,
    DiagnosticError,
    InferenceError,
    LexError,
    LoweringError,
    MatlabRuntimeError,
    MpiError,
    OtterError,
    ParseError,
    ResolutionError,
)

__version__ = "0.1.0"

__all__ = [
    "CompiledProgram",
    "OtterCompiler",
    "RunResult",
    "compile_source",
    "OtterError", "DiagnosticError", "LexError", "ParseError",
    "ResolutionError", "InferenceError", "LoweringError", "CodegenError",
    "MatlabRuntimeError", "MpiError",
    "__version__",
]
