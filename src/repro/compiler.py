"""The Otter compiler driver — all seven passes.

1. scan/parse (``repro.frontend``)
2. identifier resolution (``repro.analysis.resolve``)
3. type/rank/shape inference on SSA form (``repro.analysis.infer``)
4. expression rewriting to statement-level IR (``repro.ir.lower``)
5. guarding of scalar element stores (``repro.ir.guard``)
6. peephole optimization of run-time-call sequences (``repro.ir.peephole``)
7. code emission — SPMD Python (executable, :mod:`repro.codegen.py_emitter`)
   and SPMD C with ML_* run-time calls (:mod:`repro.codegen.c_emitter`)

Typical use::

    from repro import OtterCompiler
    from repro.mpi import MEIKO_CS2

    program = OtterCompiler().compile("x = ones(4, 4) * 3; disp(sum(x));")
    result = program.run(nprocs=8, machine=MEIKO_CS2)
    print(result.output, result.elapsed)
"""

from __future__ import annotations

import time
import types as _types
from dataclasses import dataclass, field
from typing import Any, Optional

from .analysis.infer import ProgramTypes, infer_types
from .analysis.resolve import ResolvedProgram, resolve_program
from .frontend.mfile import EMPTY_PROVIDER, MFileProvider
from .frontend.parser import parse_script
from .ir.guard import guard_program
from .ir.lower import lower_program
from .ir.nodes import IRProgram
from .ir.licm import LicmStats, licm_program
from .ir.peephole import PeepholeStats, peephole_program
from .ir.pretty import pretty_ir
from .mpi.executor import SpmdResult, run_spmd
from .mpi.machine import MachineModel
from .runtime.context import RuntimeContext


@dataclass
class RunResult:
    """Outcome of executing a compiled program."""

    workspace: dict[str, Any]
    output: str
    elapsed: float                # virtual seconds (slowest rank)
    spmd: SpmdResult
    #: per-rank high-water mark of local distributed-data bytes
    peak_local_bytes: list[int] = field(default_factory=list)

    @property
    def trace(self):
        """The :class:`~repro.trace.WorldTrace` of the run (or ``None``)."""
        return self.spmd.trace

    @property
    def nprocs(self) -> int:
        return self.spmd.nprocs


@dataclass
class CompiledProgram:
    """A fully compiled MATLAB program."""

    name: str
    resolved: ResolvedProgram
    types: ProgramTypes
    ir: IRProgram
    python_source: str
    peephole_stats: PeepholeStats
    licm_stats: LicmStats
    provider: MFileProvider
    #: host seconds spent in each compiler pass: [(name, seconds), ...]
    pass_timings: list[tuple[str, float]] = field(default_factory=list)
    _module: Optional[_types.ModuleType] = field(default=None, repr=False)

    # ------------------------------------------------------------------ #

    @property
    def c_source(self) -> str:
        """SPMD C with run-time library calls (textual backend)."""
        from .codegen.c_emitter import emit_c

        return emit_c(self.ir)

    def ir_dump(self) -> str:
        return pretty_ir(self.ir)

    # ------------------------------------------------------------------ #

    def _load_module(self) -> _types.ModuleType:
        if self._module is None:
            module = _types.ModuleType(f"otter_generated_{self.name}")
            exec(compile(self.python_source,
                         f"<otter:{self.name}>", "exec"), module.__dict__)
            self._module = module
        return self._module

    def run(self, nprocs: int = 1, machine: MachineModel | None = None,
            seed: int = 0, scheme: str = "block",
            cache_gathers: bool = False,
            backend: str | None = None,
            fault_plan=None,
            watchdog: float | None = None,
            trace: bool | None = None) -> RunResult:
        """Execute on ``nprocs`` simulated ranks of ``machine``.

        ``backend`` picks the SPMD execution backend (``"lockstep"``,
        ``"threads"``, or ``"fused"``); ``None`` defers to
        ``REPRO_SPMD_BACKEND`` / the lockstep default — see
        :func:`repro.mpi.executor.run_spmd`.  ``fault_plan`` and
        ``watchdog`` pass straight through to ``run_spmd`` (chaos
        injection and the host-wall-clock safety net; see
        docs/RESILIENCE.md).  ``trace`` records a deterministic
        :class:`~repro.trace.WorldTrace`, surfaced on
        ``RunResult.trace`` (default ``$REPRO_TRACE``; see
        docs/OBSERVABILITY.md).
        """
        from .mpi.machine import MEIKO_CS2

        machine = machine or MEIKO_CS2
        main = self._load_module().main
        output: list[str] = []
        provider = self.provider

        peaks: dict[int, int] = {}

        def rank_main(comm):
            rt = RuntimeContext(comm, out=output.append, seed=seed,
                                scheme=scheme, provider=provider,
                                cache_gathers=cache_gathers)
            try:
                workspace = main(rt)
                peaks[rt.rank] = rt.peak_local_bytes
                clocks = comm.clock_snapshot()
                token = comm.trace_suspend()
                # Replicate the final workspace (gathers run on every
                # rank, in the same deterministic order) so callers see
                # plain values.  This is *instrumentation* — roll its
                # cost back off the virtual clock (and keep it out of
                # the trace) so `elapsed` measures only the program.
                replicated = {name: rt.to_interp_value(value)
                              for name, value in workspace.items()}
                comm.clock_restore(clocks)
                comm.trace_resume(token)
                return replicated
            finally:
                # crucial for the nprocs==1 / fused inline paths, which
                # run on the caller's thread: don't leak the tracker
                rt.close()

        def discard_partial_fused():
            # a diverged fused pass may have produced output/peaks already;
            # the lockstep re-run must start from a clean slate
            output.clear()
            peaks.clear()

        spmd = run_spmd(nprocs, machine, rank_main, backend=backend,
                        on_fused_fallback=discard_partial_fused,
                        fault_plan=fault_plan, watchdog=watchdog,
                        trace=trace)
        if spmd.backend == "fused":
            # one pass stood in for all ranks: its (rank-0-modeled) peak
            # applies to every rank's local share estimate
            peaks.update({r: peaks.get(0, 0) for r in range(nprocs)})
        workspace = spmd.results[0] or {}
        # drop never-assigned variables for a clean workspace view
        workspace = {k: v for k, v in workspace.items() if v is not None}
        return RunResult(workspace=workspace, output="".join(output),
                         elapsed=spmd.elapsed, spmd=spmd,
                         peak_local_bytes=[peaks.get(r, 0)
                                           for r in range(nprocs)])


class OtterCompiler:
    """Front door: compile MATLAB source through all seven passes."""

    def __init__(self, provider: MFileProvider | None = None,
                 peephole: bool = True, licm: bool = True):
        self.provider = provider or EMPTY_PROVIDER
        self.peephole = peephole
        self.licm = licm

    def compile(self, source: str, name: str = "script") -> CompiledProgram:
        timings: list[tuple[str, float]] = []

        def timed(pass_name, fn, *args, **kwargs):
            t0 = time.perf_counter()
            result = fn(*args, **kwargs)
            timings.append((pass_name, time.perf_counter() - t0))
            return result

        script = timed("parse", parse_script, source, name)       # pass 1
        resolved = timed("resolve", resolve_program,              # pass 2
                         script, self.provider)
        types = timed("infer", infer_types, resolved)             # pass 3
        ir = timed("lower", lower_program, resolved, types)       # pass 4
        timed("guard", guard_program, ir)                         # pass 5
        stats = timed("peephole", peephole_program,               # pass 6
                      ir, enabled=self.peephole)
        licm_stats = timed("licm", licm_program,                  # pass 6b
                           ir, enabled=self.licm)
        from .codegen.py_emitter import emit_python               # pass 7

        py_source = timed("emit", emit_python, ir)
        return CompiledProgram(
            name=name,
            resolved=resolved,
            types=types,
            ir=ir,
            python_source=py_source,
            peephole_stats=stats,
            licm_stats=licm_stats,
            provider=self.provider,
            pass_timings=timings,
        )


def compile_source(source: str, provider: MFileProvider | None = None,
                   peephole: bool = True, licm: bool = True,
                   name: str = "script") -> CompiledProgram:
    """Convenience one-shot compile."""
    return OtterCompiler(provider, peephole, licm).compile(source, name)
