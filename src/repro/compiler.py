"""The Otter compiler driver — all seven passes.

1. scan/parse (``repro.frontend``)
2. identifier resolution (``repro.analysis.resolve``)
3. type/rank/shape inference on SSA form (``repro.analysis.infer``)
4. expression rewriting to statement-level IR (``repro.ir.lower``)
5. guarding of scalar element stores (``repro.ir.guard``)
6. peephole optimization of run-time-call sequences (``repro.ir.peephole``)
7. code emission — SPMD Python (executable, :mod:`repro.codegen.py_emitter`)
   and SPMD C with ML_* run-time calls (:mod:`repro.codegen.c_emitter`)

Typical use::

    from repro import OtterCompiler
    from repro.mpi import MEIKO_CS2

    program = OtterCompiler().compile("x = ones(4, 4) * 3; disp(sum(x));")
    result = program.run(nprocs=8, machine=MEIKO_CS2)
    print(result.output, result.elapsed)
"""

from __future__ import annotations

import time
import types as _types
from dataclasses import dataclass, field
from typing import Any, Optional

from .analysis.infer import ProgramTypes, infer_types
from .analysis.resolve import ResolvedProgram, resolve_program
from .frontend.mfile import EMPTY_PROVIDER, MFileProvider
from .frontend.parser import parse_script
from .ir.guard import guard_program
from .ir.lower import lower_program
from .ir.nodes import IRProgram
from .ir.licm import LicmStats, licm_program
from .ir.peephole import PeepholeStats, peephole_program
from .ir.pretty import pretty_ir
from .mpi.executor import SpmdResult, run_spmd
from .mpi.machine import MachineModel
from .runtime.context import RuntimeContext


@dataclass
class RunResult:
    """Outcome of executing a compiled program."""

    workspace: dict[str, Any]
    output: str
    elapsed: float                # virtual seconds (slowest rank)
    spmd: SpmdResult
    #: per-rank high-water mark of local distributed-data bytes
    peak_local_bytes: list[int] = field(default_factory=list)
    #: the plan-search report when the run was autotuned (``tune=True``)
    tune: Optional[Any] = None
    #: native-kernel-tier activity during this run (counter deltas from
    #: repro.native.NativeStats plus the resolved mode), or ``None``
    #: when the tier was off/unavailable
    native: Optional[dict] = None

    @property
    def trace(self):
        """The :class:`~repro.trace.WorldTrace` of the run (or ``None``)."""
        return self.spmd.trace

    @property
    def recovery(self):
        """The :class:`~repro.mpi.RecoveryReport` of the run (or
        ``None`` when no non-abort ``on_fault`` policy was active)."""
        return self.spmd.recovery

    @property
    def nprocs(self) -> int:
        return self.spmd.nprocs


@dataclass
class CompiledProgram:
    """A fully compiled MATLAB program."""

    name: str
    #: pass-1..6 artifacts; ``None`` on a program rehydrated from the
    #: on-disk compile cache (recompiled lazily by :meth:`_ensure_front_end`)
    resolved: Optional[ResolvedProgram]
    types: Optional[ProgramTypes]
    ir: Optional[IRProgram]
    python_source: str
    peephole_stats: PeepholeStats
    licm_stats: LicmStats
    provider: MFileProvider
    #: host seconds spent in each compiler pass: [(name, seconds), ...]
    pass_timings: list[tuple[str, float]] = field(default_factory=list)
    #: the optimization plan the program was compiled under (None: the
    #: compiler defaults, which equal repro.tuning.DEFAULT_PLAN)
    plan: Optional[Any] = None
    #: original MATLAB source (the autotuner recompiles variants of it)
    source: str = ""
    _module: Optional[_types.ModuleType] = field(default=None, repr=False)

    # ------------------------------------------------------------------ #

    @property
    def from_cache(self) -> bool:
        """True for a program rehydrated from the on-disk compile cache:
        it runs straight from the cached emitted Python; the front-end
        artifacts (AST, types, IR) are recompiled lazily on demand."""
        return self.ir is None

    def _ensure_front_end(self) -> None:
        """Recompile the pass-1..6 artifacts for a rehydrated program.

        A disk-cache hit carries only what execution needs (the emitted
        Python, stats, plan, source); ``c_source``/``ir_dump`` are the
        rare consumers of the IR, and they pay the passes on demand —
        execution never does.
        """
        if self.ir is not None:
            return
        fresh = compile_source(self.source, self.provider, name=self.name,
                               plan=self.plan)
        self.resolved = fresh.resolved
        self.types = fresh.types
        self.ir = fresh.ir

    @property
    def c_source(self) -> str:
        """SPMD C with run-time library calls (textual backend)."""
        from .codegen.c_emitter import emit_c

        self._ensure_front_end()
        return emit_c(self.ir)

    @property
    def matlab_source(self) -> str:
        """Normalized echo of the parsed script (the ``--emit matlab``
        output: pass-2 AST unparsed back to canonical MATLAB)."""
        from .frontend.unparse import unparse_script

        self._ensure_front_end()
        return unparse_script(self.resolved.script.node)

    def ir_dump(self) -> str:
        self._ensure_front_end()
        return pretty_ir(self.ir)

    # ------------------------------------------------------------------ #

    def _load_module(self) -> _types.ModuleType:
        if self._module is None:
            module = _types.ModuleType(f"otter_generated_{self.name}")
            exec(compile(self.python_source,
                         f"<otter:{self.name}>", "exec"), module.__dict__)
            self._module = module
        return self._module

    def run(self, nprocs: int = 1, machine: MachineModel | None = None,
            seed: int = 0, scheme: str = "block",
            cache_gathers: bool = False,
            backend: str | None = None,
            fault_plan=None,
            watchdog: float | None = None,
            trace: bool | None = None,
            on_fault: str | None = None,
            max_restarts: int | None = None,
            checkpoint_every: int | None = None,
            plan=None,
            tune: bool | None = None,
            tune_budget: int | None = None,
            native: str | None = None,
            stores=None) -> RunResult:
        """Execute on ``nprocs`` simulated ranks of ``machine``.

        ``backend`` picks the SPMD execution backend (``"lockstep"``,
        ``"threads"``, or ``"fused"``); ``None`` defers to
        ``REPRO_SPMD_BACKEND`` / the lockstep default — see
        :func:`repro.mpi.executor.run_spmd`.  ``fault_plan`` and
        ``watchdog`` pass straight through to ``run_spmd`` (chaos
        injection and the host-wall-clock safety net; see
        docs/RESILIENCE.md).  ``trace`` records a deterministic
        :class:`~repro.trace.WorldTrace`, surfaced on
        ``RunResult.trace`` (default ``$REPRO_TRACE``; see
        docs/OBSERVABILITY.md).  ``on_fault`` selects the self-healing
        policy for faulted runs (``"abort"``/``"retry"``/
        ``"restart"``/``"degrade"``; ``None`` defers to
        ``$REPRO_ON_FAULT`` then ``abort``), with ``max_restarts`` and
        ``checkpoint_every`` tuning the restart budget and checkpoint
        cadence; the recovery report lands on ``RunResult.recovery``
        (see docs/RESILIENCE.md).

        ``plan`` applies a :class:`repro.tuning.Plan`'s *runtime* knobs
        (distribution, collective algorithms, gather caching) — the
        compile-side knobs must have been applied at ``compile`` time
        (see :func:`compile_cached`).  ``tune=True`` (or ``REPRO_TUNE``
        when ``tune is None``) first searches the plan space on the
        fused backend, then runs the winner here; the search report
        lands on ``RunResult.tune`` (see docs/TUNING.md).

        ``native`` selects the JIT kernel tier (``"auto"``/``"off"``/
        ``"require"``); ``None`` defers to the plan's ``native`` axis,
        then ``$REPRO_NATIVE``, then ``auto`` — see docs/NATIVE.md.
        Kernel activity lands on ``RunResult.native``.

        ``stores`` is a :class:`repro.service.StoreManager` for
        URL-schema ``load``/``save`` targets (``file://``, ``mem://``,
        ``s3://``); ``None`` uses the process-wide default manager —
        see docs/SERVICE.md.
        """
        from .mpi.executor import resolve_tune
        from .mpi.machine import MEIKO_CS2

        budget = resolve_tune(tune, tune_budget)
        if budget:
            from .tuning import tune_program

            tuned = tune_program(self.source or "", nprocs=nprocs,
                                 machine=machine, budget=budget,
                                 provider=self.provider, seed=seed,
                                 name=self.name)
            result = tuned.best_program.run(
                nprocs=nprocs, machine=machine, seed=seed,
                backend=backend, fault_plan=fault_plan, watchdog=watchdog,
                trace=trace, on_fault=on_fault, max_restarts=max_restarts,
                checkpoint_every=checkpoint_every,
                plan=tuned.best.plan, tune=False,
                native=native, stores=stores)
            result.tune = tuned
            return result

        plan = plan if plan is not None else self.plan
        if plan is not None:
            machine = plan.apply_machine(machine or MEIKO_CS2)
            scheme = plan.scheme
            cache_gathers = cache_gathers or plan.cache_gathers
            dist_plan = dict(plan.dist)
        else:
            dist_plan = None

        machine = machine or MEIKO_CS2
        main = self._load_module().main
        output: list[str] = []
        provider = self.provider

        import os as _os

        from .native import ENV_NATIVE, resolve_native

        native_mode = native
        if native_mode is None and plan is not None \
                and getattr(plan, "native", "auto") != "auto":
            native_mode = plan.native
        engine = resolve_native(native_mode)
        native_mode = native_mode or _os.environ.get(ENV_NATIVE) or "auto"
        stats_before = engine.stats.snapshot() if engine is not None else None

        peaks: dict[int, int] = {}

        def rank_main(comm):
            rt = RuntimeContext(comm, out=output.append, seed=seed,
                                scheme=scheme, provider=provider,
                                cache_gathers=cache_gathers,
                                dist_plan=dist_plan, native=engine,
                                stores=stores)
            try:
                workspace = main(rt)
                peaks[rt.rank] = rt.peak_local_bytes
                clocks = comm.clock_snapshot()
                token = comm.trace_suspend()
                # Replicate the final workspace (gathers run on every
                # rank, in the same deterministic order) so callers see
                # plain values.  This is *instrumentation* — roll its
                # cost back off the virtual clock (and keep it out of
                # the trace) so `elapsed` measures only the program.
                replicated = {name: rt.to_interp_value(value)
                              for name, value in workspace.items()}
                comm.clock_restore(clocks)
                comm.trace_resume(token)
                return replicated
            finally:
                # crucial for the nprocs==1 / fused inline paths, which
                # run on the caller's thread: don't leak the tracker
                rt.close()

        def discard_partial_fused():
            # a diverged fused pass may have produced output/peaks already;
            # the lockstep re-run must start from a clean slate
            output.clear()
            peaks.clear()

        spmd = run_spmd(nprocs, machine, rank_main, backend=backend,
                        on_fused_fallback=discard_partial_fused,
                        fault_plan=fault_plan, watchdog=watchdog,
                        trace=trace, on_fault=on_fault,
                        max_restarts=max_restarts,
                        checkpoint_every=checkpoint_every)
        if spmd.backend == "fused":
            # one pass stood in for all ranks: its (rank-0-modeled) peak
            # applies to every rank's local share estimate
            peaks.update({r: peaks.get(0, 0) for r in range(nprocs)})
        workspace = spmd.results[0] or {}
        # drop never-assigned variables for a clean workspace view
        workspace = {k: v for k, v in workspace.items() if v is not None}
        native_report = None
        if engine is not None:
            after = engine.stats.snapshot()
            native_report = {k: after[k] - stats_before[k] for k in after}
            native_report["mode"] = native_mode
        return RunResult(workspace=workspace, output="".join(output),
                         elapsed=spmd.elapsed, spmd=spmd,
                         peak_local_bytes=[peaks.get(r, 0)
                                           for r in range(nprocs)],
                         native=native_report)


class OtterCompiler:
    """Front door: compile MATLAB source through all seven passes.

    ``plan`` (a :class:`repro.tuning.Plan`, duck-typed to avoid an import
    cycle) selects the compile-side knobs: peephole fusion schedule, LICM
    policy, guard placement, and elementwise splitting.  Without a plan
    the legacy ``peephole``/``licm`` booleans apply (the shipped
    defaults, identical to the default plan).
    """

    def __init__(self, provider: MFileProvider | None = None,
                 peephole: bool = True, licm: bool = True, plan=None):
        self.provider = provider or EMPTY_PROVIDER
        self.peephole = peephole
        self.licm = licm
        self.plan = plan

    def compile(self, source: str, name: str = "script") -> CompiledProgram:
        timings: list[tuple[str, float]] = []

        plan = self.plan
        if plan is not None:
            peep_enabled = bool(plan.fusion)
            peep_schedule = plan.fusion
            licm_policy = plan.licm
            guard_placement = plan.guard
            ew_split = plan.ew_split
        else:
            peep_enabled = self.peephole
            peep_schedule = None
            licm_policy = "aggressive" if self.licm else "off"
            guard_placement = "owner"
            ew_split = False

        def timed(pass_name, fn, *args, **kwargs):
            t0 = time.perf_counter()
            result = fn(*args, **kwargs)
            timings.append((pass_name, time.perf_counter() - t0))
            return result

        script = timed("parse", parse_script, source, name)       # pass 1
        resolved = timed("resolve", resolve_program,              # pass 2
                         script, self.provider)
        types = timed("infer", infer_types, resolved)             # pass 3
        ir = timed("lower", lower_program, resolved, types,       # pass 4
                   ew_split=ew_split)
        timed("guard", guard_program, ir,                         # pass 5
              placement=guard_placement)
        stats = timed("peephole", peephole_program,               # pass 6
                      ir, enabled=peep_enabled, schedule=peep_schedule)
        licm_stats = timed("licm", licm_program,                  # pass 6b
                           ir, policy=licm_policy)
        from .codegen.py_emitter import emit_python               # pass 7

        py_source = timed("emit", emit_python, ir)
        return CompiledProgram(
            name=name,
            resolved=resolved,
            types=types,
            ir=ir,
            python_source=py_source,
            peephole_stats=stats,
            licm_stats=licm_stats,
            provider=self.provider,
            pass_timings=timings,
            plan=plan,
            source=source,
        )


def compile_source(source: str, provider: MFileProvider | None = None,
                   peephole: bool = True, licm: bool = True,
                   name: str = "script", plan=None) -> CompiledProgram:
    """Convenience one-shot compile."""
    return OtterCompiler(provider, peephole, licm, plan=plan) \
        .compile(source, name)


# -------------------------------------------------------------------------- #
# the compile memo: a thin projection over the service's content-
# addressed CompileCache.  Keyed by canonical source + provider + the
# plan's *compile-affecting* projection, so the autotuner's candidate
# sweep pays the seven passes once per distinct lowering, not once per
# candidate.  Deliberately memory-tier-only: the on-disk tier belongs to
# full request keys (see repro.service.cache and docs/SERVICE.md).
# -------------------------------------------------------------------------- #


def compile_cached(source: str, provider: MFileProvider | None = None,
                   name: str = "script", plan=None) -> CompiledProgram:
    """Memoized :func:`compile_source` (same CompiledProgram object back
    for the same (source, provider, compile-side plan knobs)).

    Safe to share: a CompiledProgram is immutable after compilation and
    ``run`` keeps no per-run state on it.  Runtime-only plan knobs
    (distribution, collective algorithms) deliberately do NOT key the
    memo — pass the full plan to :meth:`CompiledProgram.run` instead.
    """
    from .service.cache import get_compile_cache

    key_plan = ("default",) if plan is None else plan.compile_key()
    return get_compile_cache().get_or_compile(
        source, provider=provider, name=name, plan=plan,
        key_plan=key_plan, disk=False).program


def compile_cache_stats() -> dict:
    from .service.cache import get_compile_cache

    return get_compile_cache().stats()


def clear_compile_cache() -> None:
    from .service.cache import get_compile_cache

    get_compile_cache().clear()
