"""Reference MATLAB interpreter: the correctness oracle and the paper's
interpreter baseline (with a 1997-era cost model)."""

from .builtins import TABLE as BUILTIN_TABLE
from .costmodel import CostMeter, InterpCostParams, NULL_METER, NullMeter
from .interpreter import Interpreter, apply_binop, run_source
from .profiler import LineProfiler, LineStats
from .values import (
    COLON,
    Value,
    as_matrix,
    colon_range,
    display,
    format_value,
    index_assign,
    index_read,
    is_scalar,
    numel,
    shape_of,
    simplify,
    truthy,
)

__all__ = [
    "BUILTIN_TABLE",
    "CostMeter", "InterpCostParams", "NULL_METER", "NullMeter",
    "Interpreter", "apply_binop", "run_source",
    "LineProfiler", "LineStats",
    "COLON", "Value", "as_matrix", "colon_range", "display", "format_value",
    "index_assign", "index_read", "is_scalar", "numel", "shape_of",
    "simplify", "truthy",
]
