"""Per-line execution profiler for the reference interpreter.

The paper's motivation section describes scientists iterating on MATLAB
models; a line profiler is the tool that tells them *which* statements
dominate (and therefore what the parallel compiler will speed up).  The
profiler hooks the interpreter's statement dispatch and attributes the
cost-meter time delta of each statement to its source line.

The accumulator and report share the trace layer's per-line profile
schema (:class:`~repro.trace.profile.ProfileRow` and its renderers), so
``python -m repro interp script.m --profile`` and the compiled
``python -m repro run script.m --trace-summary`` emit the same table —
the interpreter simply has no messages/bytes/collectives to report.

Use::

    from repro.interp import CostMeter, Interpreter, LineProfiler
    profiler = LineProfiler()
    meter = CostMeter(machine.cpu.interpreter_params())
    Interpreter(program, meter=meter, profiler=profiler).run()
    print(profiler.report(source))

or from the CLI: ``python -m repro interp script.m --profile``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..trace.profile import (
    ProfileRow,
    render_ranked_profile,
    render_source_profile,
)

#: backwards-compatible name: one profiled line's statistics
LineStats = ProfileRow


@dataclass
class LineProfiler:
    """Accumulates per-(file, line) hit counts and modeled seconds."""

    lines: dict[tuple[str, int], ProfileRow] = field(default_factory=dict)
    enabled: bool = True
    _total: float = 0.0

    def record(self, filename: str, line: int, dt: float) -> None:
        if not self.enabled or line <= 0:
            return
        row = self.lines.setdefault((filename, line), ProfileRow())
        row.calls += 1
        row.time += dt
        self._total += dt

    # ------------------------------------------------------------------ #

    def total_time(self) -> float:
        """Sum of recorded times — O(1), kept running by :meth:`record`."""
        return self._total

    def hottest(self, k: int = 10) -> list[tuple[tuple[str, int], ProfileRow]]:
        return sorted(self.lines.items(),
                      key=lambda item: item[1].time, reverse=True)[:k]

    def report(self, source: str | None = None,
               filename: str = "<script>", top: int = 0) -> str:
        """ASCII profile in the shared trace-schema format; with
        ``source``, annotates the script's lines (rows from other files
        — M-file functions — show in the ranked ``report()`` view)."""
        if source is not None:
            names = {fname for fname, _line in self.lines}
            if filename not in names and len(names) == 1:
                filename = next(iter(names))  # single-file run: use it
            by_line = {line: row for (fname, line), row in self.lines.items()
                       if fname == filename}
            return render_source_profile(by_line, source, filename=filename)
        return render_ranked_profile(self.lines, top=top)
