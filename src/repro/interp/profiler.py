"""Per-line execution profiler for the reference interpreter.

The paper's motivation section describes scientists iterating on MATLAB
models; a line profiler is the tool that tells them *which* statements
dominate (and therefore what the parallel compiler will speed up).  The
profiler hooks the interpreter's statement dispatch and attributes the
cost-meter time delta of each statement to its source line.

Use::

    from repro.interp import CostMeter, Interpreter, LineProfiler
    profiler = LineProfiler()
    meter = CostMeter(machine.cpu.interpreter_params())
    Interpreter(program, meter=meter, profiler=profiler).run()
    print(profiler.report(source))

or from the CLI: ``python -m repro interp script.m --profile``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class LineStats:
    hits: int = 0
    time: float = 0.0


@dataclass
class LineProfiler:
    """Accumulates per-(file, line) hit counts and modeled seconds."""

    lines: dict[tuple[str, int], LineStats] = field(default_factory=dict)
    enabled: bool = True
    _total: float = 0.0

    def record(self, filename: str, line: int, dt: float) -> None:
        if not self.enabled or line <= 0:
            return
        stats = self.lines.setdefault((filename, line), LineStats())
        stats.hits += 1
        stats.time += dt
        self._total += dt

    # ------------------------------------------------------------------ #

    def total_time(self) -> float:
        """Sum of recorded times — O(1), kept running by :meth:`record`."""
        return self._total

    def hottest(self, k: int = 10) -> list[tuple[tuple[str, int], LineStats]]:
        return sorted(self.lines.items(),
                      key=lambda item: item[1].time, reverse=True)[:k]

    def report(self, source: str | None = None,
               filename: str = "<script>", top: int = 0) -> str:
        """ASCII profile; with ``source``, annotates the script's lines."""
        total = self.total_time() or 1e-30
        out = [f"{'line':>6s} {'hits':>8s} {'time(ms)':>10s} {'%':>6s}  "
               f"source"]
        out.append("-" * 72)
        if source is not None:
            src_lines = source.splitlines()
            for lineno, text in enumerate(src_lines, start=1):
                stats = self.lines.get((filename, lineno))
                if stats is None:
                    out.append(f"{lineno:6d} {'':8s} {'':10s} {'':6s}  "
                               f"{text}")
                else:
                    pct = 100.0 * stats.time / total
                    out.append(
                        f"{lineno:6d} {stats.hits:8d} "
                        f"{stats.time * 1e3:10.3f} {pct:5.1f}%  {text}")
            return "\n".join(out)
        ranked = self.hottest(top or len(self.lines))
        for (fname, lineno), stats in ranked:
            pct = 100.0 * stats.time / total
            out.append(f"{lineno:6d} {stats.hits:8d} "
                       f"{stats.time * 1e3:10.3f} {pct:5.1f}%  {fname}")
        return "\n".join(out)
