"""Cost model for the reference MATLAB interpreter.

The benchmarks in the paper are *relative to The MathWorks interpreter* on
one CPU, so the interpreter must carry a performance model of its 1997
self.  The model below charges virtual seconds to a meter as the
interpreter executes:

* ``stmt_dispatch`` — parse-tree walk + dispatch per executed statement
* ``op_overhead``  — per vector/matrix operation (dynamic dispatch, type
  checks, result allocation)
* ``elem_time``    — per element per elementwise operation (the 1997
  interpreter's vector loops, slower than compiled C)
* ``flop_time``    — per floating-point operation in O(n^3)/O(n^2) kernels
  (matrix multiply, matrix-vector multiply, solve)
* ``mem_time``     — per element of temporary traffic (the interpreter
  materializes every intermediate)
* ``index_time``   — per scalar element access ``a(i,j)``

Compiled code (Otter or MATCOM) is charged by *its* models; the ratio of
the two reproduces Figure 2, and the parallel run-time's model on top of
the simulated MPI layer reproduces Figures 3-6.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class InterpCostParams:
    stmt_dispatch: float
    op_overhead: float
    elem_time: float
    flop_time: float
    mem_time: float
    index_time: float


class CostMeter:
    """Accumulates virtual seconds; the interpreter calls the charge_*
    hooks as it executes."""

    def __init__(self, params: InterpCostParams):
        self.params = params
        self.time = 0.0
        self.stmts = 0
        self.ops = 0

    def reset(self) -> None:
        self.time = 0.0
        self.stmts = 0
        self.ops = 0

    def charge_stmt(self) -> None:
        self.stmts += 1
        self.time += self.params.stmt_dispatch

    def charge_elementwise(self, nelems: int, nops: int = 1) -> None:
        """An elementwise op over ``nelems`` elements (+ a temporary)."""
        self.ops += 1
        p = self.params
        self.time += (p.op_overhead
                      + nelems * nops * p.elem_time
                      + nelems * p.mem_time)

    def charge_flops(self, flops: int) -> None:
        """A dense linear-algebra kernel of ``flops`` operations."""
        self.ops += 1
        self.time += self.params.op_overhead + flops * self.params.flop_time

    def charge_alloc(self, nelems: int) -> None:
        self.time += self.params.op_overhead + nelems * self.params.mem_time

    def charge_index(self) -> None:
        self.time += self.params.index_time

    def charge_copy(self, nelems: int) -> None:
        self.time += nelems * self.params.mem_time


class NullMeter:
    """No-op meter used when only program results are wanted."""

    time = 0.0
    stmts = 0
    ops = 0

    def reset(self) -> None:  # pragma: no cover - trivial
        pass

    def charge_stmt(self) -> None:
        pass

    def charge_elementwise(self, nelems: int, nops: int = 1) -> None:
        pass

    def charge_flops(self, flops: int) -> None:
        pass

    def charge_alloc(self, nelems: int) -> None:
        pass

    def charge_index(self) -> None:
        pass

    def charge_copy(self, nelems: int) -> None:
        pass


NULL_METER = NullMeter()
