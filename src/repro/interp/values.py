"""MATLAB value semantics.

Every MATLAB value is conceptually a 2-D matrix; scalars are 1x1.  This
module supplies the value representation shared by the reference
interpreter and (for I/O formatting) the distributed run-time library:

* numbers are Python ``float``/``complex`` (for 1x1) or 2-D ``numpy``
  arrays (``float64``/``complex128``) stored in the workspace
* strings are Python ``str``
* indexing is 1-based; *linear* indexing is column-major, as in MATLAB
* indexed assignment grows the array, zero-filling new elements
* value (copy) semantics: stored arrays are never aliased mutably

The display formatting here is deliberately simple and *identical* between
the interpreter and compiled code, so differential tests can compare
program output byte-for-byte.
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

from ..errors import MatlabRuntimeError

Scalar = Union[float, complex]

#: numpy 2.x renamed ``trapz`` to ``trapezoid``; support both.
np_trapz = getattr(np, "trapezoid", None) or np.trapz

Value = Union[float, complex, np.ndarray, str]


# --------------------------------------------------------------------------
# construction / classification
# --------------------------------------------------------------------------


def as_matrix(value: Value) -> np.ndarray:
    """View any numeric value as a 2-D array (no copy when possible)."""
    if isinstance(value, str):
        raise MatlabRuntimeError("expected a numeric value, got a string")
    if isinstance(value, (int, float)):
        return np.array([[float(value)]])
    if isinstance(value, complex):
        return np.array([[value]])
    arr = np.asarray(value)
    if arr.ndim == 0:
        return arr.reshape(1, 1)
    if arr.ndim == 1:
        return arr.reshape(1, -1)  # bare 1-D data is a row vector
    if arr.ndim != 2:
        raise MatlabRuntimeError(f"{arr.ndim}-D arrays are not supported")
    return arr


def simplify(arr: np.ndarray) -> Value:
    """Collapse 1x1 arrays to Python scalars (the canonical scalar form)."""
    a = np.asarray(arr)
    if a.size == 1 and a.ndim <= 2:
        item = a.reshape(-1)[0]
        if np.iscomplexobj(a):
            c = complex(item)
            return c if c.imag != 0 else float(c.real)
        return float(item)
    return as_matrix(a)


def is_scalar(value: Value) -> bool:
    if isinstance(value, (int, float, complex)):
        return True
    if isinstance(value, str):
        return False
    return np.asarray(value).size == 1


def is_string(value: Value) -> bool:
    return isinstance(value, str)


def shape_of(value: Value) -> tuple[int, int]:
    if isinstance(value, str):
        return (1, len(value)) if value else (0, 0)
    if isinstance(value, (int, float, complex)):
        return (1, 1)
    arr = as_matrix(value)
    return (arr.shape[0], arr.shape[1])


def numel(value: Value) -> int:
    r, c = shape_of(value)
    return r * c


def truthy(value: Value) -> bool:
    """MATLAB if/while semantics: true iff nonempty and all elements nonzero."""
    if isinstance(value, str):
        return len(value) > 0
    arr = as_matrix(value)
    return arr.size > 0 and bool(np.all(arr != 0))


def colon_range(start: float, step: float, stop: float) -> np.ndarray:
    """MATLAB ``start:step:stop`` as a row vector (inclusive, fp-tolerant)."""
    if step == 0:
        raise MatlabRuntimeError("range step must be nonzero")
    span = (stop - start) / step
    n = int(np.floor(span * (1 + np.finfo(float).eps * 4) + 1e-10)) + 1
    if n <= 0:
        return np.zeros((1, 0))
    return (start + step * np.arange(n, dtype=float)).reshape(1, -1)


# --------------------------------------------------------------------------
# indexing (1-based, column-major linear order)
# --------------------------------------------------------------------------


def _index_vector(idx: Value, extent: int, what: str) -> np.ndarray:
    """Convert one subscript to a 0-based integer vector; ':' handled by
    the caller."""
    arr = as_matrix(idx)
    if arr.size == 0:
        return np.zeros(0, dtype=np.intp)
    flat = np.asarray(arr, dtype=float).reshape(-1, order="F")
    rounded = np.rint(flat)
    if not np.allclose(flat, rounded, atol=1e-9):
        raise MatlabRuntimeError(f"{what}: subscripts must be integers")
    ints = rounded.astype(np.intp)
    if np.any(ints < 1):
        raise MatlabRuntimeError(f"{what}: subscripts must be >= 1")
    return ints - 1


COLON = object()  # sentinel for a ':' subscript


def index_read(value: Value, subs: list) -> Value:
    """``value(subs...)`` with 1 or 2 subscripts (each a value or COLON)."""
    arr = as_matrix(value)
    rows, cols = arr.shape
    if len(subs) == 1:
        sub = subs[0]
        if sub is COLON:  # a(:) -> column vector, column-major
            return simplify(arr.reshape(-1, 1, order="F"))
        flat = arr.reshape(-1, order="F")
        idx = _index_vector(sub, arr.size, "index")
        if np.any(idx >= arr.size):
            raise MatlabRuntimeError("index exceeds matrix dimensions")
        picked = flat[idx]
        if is_scalar(sub):
            return simplify(picked)
        sub_shape = shape_of(sub)
        if min(rows, cols) == 1 and min(sub_shape) == 1:
            # vector indexed by vector keeps the *source* orientation
            if rows == 1:
                return simplify(picked.reshape(1, -1))
            return simplify(picked.reshape(-1, 1))
        return simplify(picked.reshape(sub_shape, order="F"))
    if len(subs) != 2:
        raise MatlabRuntimeError("only 1- and 2-D indexing is supported")
    ri, ci = subs
    r_idx = (np.arange(rows, dtype=np.intp) if ri is COLON
             else _index_vector(ri, rows, "row index"))
    c_idx = (np.arange(cols, dtype=np.intp) if ci is COLON
             else _index_vector(ci, cols, "column index"))
    if np.any(r_idx >= rows) or np.any(c_idx >= cols):
        raise MatlabRuntimeError("index exceeds matrix dimensions")
    return simplify(arr[np.ix_(r_idx, c_idx)])


def index_assign(value: Value | None, subs: list, rhs: Value) -> Value:
    """Functional indexed store: returns the updated (possibly grown) value.

    ``value`` may be None (the variable did not exist yet).
    """
    rhs_arr = as_matrix(rhs)
    if value is None:
        base = np.zeros((0, 0), dtype=rhs_arr.dtype)
    else:
        base = as_matrix(value).copy()
    if np.iscomplexobj(rhs_arr) and not np.iscomplexobj(base):
        base = base.astype(complex)
    rows, cols = base.shape

    if len(subs) == 1:
        sub = subs[0]
        if sub is COLON:
            if rhs_arr.size not in (1, base.size):
                raise MatlabRuntimeError(
                    "a(:) = b requires matching element counts")
            flat = base.reshape(-1, order="F").copy()
            flat[:] = rhs_arr.reshape(-1, order="F")
            return simplify(flat.reshape(base.shape, order="F"))
        idx = _index_vector(sub, 0, "index")
        if idx.size == 0:
            return simplify(base)
        needed = int(idx.max()) + 1
        if base.size == 0:
            base = np.zeros((1, needed), dtype=base.dtype)  # new row vector
        elif needed > base.size:
            if rows == 1:
                grown = np.zeros((1, needed), dtype=base.dtype)
                grown[0, :cols] = base[0]
                base = grown
            elif cols == 1:
                grown = np.zeros((needed, 1), dtype=base.dtype)
                grown[:rows, 0] = base[:, 0]
                base = grown
            else:
                raise MatlabRuntimeError(
                    "linear-index growth is only defined for vectors")
        rows, cols = base.shape
        flat = base.reshape(-1, order="F").copy()
        src = rhs_arr.reshape(-1, order="F")
        if src.size == 1:
            flat[idx] = src[0]
        elif src.size == idx.size:
            flat[idx] = src
        else:
            raise MatlabRuntimeError("subscripted assignment dimension mismatch")
        return simplify(flat.reshape((rows, cols), order="F"))

    if len(subs) != 2:
        raise MatlabRuntimeError("only 1- and 2-D indexing is supported")
    ri, ci = subs
    r_idx = (np.arange(rows, dtype=np.intp) if ri is COLON
             else _index_vector(ri, rows, "row index"))
    c_idx = (np.arange(cols, dtype=np.intp) if ci is COLON
             else _index_vector(ci, cols, "column index"))
    if ri is COLON and rows == 0 and r_idx.size == 0:
        r_idx = np.arange(shape_of(rhs)[0], dtype=np.intp)
    if ci is COLON and cols == 0 and c_idx.size == 0:
        c_idx = np.arange(shape_of(rhs)[1], dtype=np.intp)
    need_rows = max(rows, int(r_idx.max()) + 1 if r_idx.size else rows)
    need_cols = max(cols, int(c_idx.max()) + 1 if c_idx.size else cols)
    if need_rows > rows or need_cols > cols:
        grown = np.zeros((need_rows, need_cols), dtype=base.dtype)
        grown[:rows, :cols] = base
        base = grown
    block = rhs_arr
    if block.size == 1:
        base[np.ix_(r_idx, c_idx)] = block.reshape(-1)[0]
    else:
        expected = (r_idx.size, c_idx.size)
        if block.shape != expected:
            if block.size == expected[0] * expected[1]:
                block = block.reshape(expected, order="F")
            else:
                raise MatlabRuntimeError(
                    "subscripted assignment dimension mismatch")
        base[np.ix_(r_idx, c_idx)] = block
    return simplify(base)


# --------------------------------------------------------------------------
# display
# --------------------------------------------------------------------------


def format_value(value: Value) -> str:
    """Canonical text form, shared by interpreter and compiled output."""
    if isinstance(value, str):
        return value
    arr = as_matrix(value)
    if arr.size == 0:
        return "     []"
    rows = []
    for r in range(arr.shape[0]):
        cells = [_format_element(arr[r, c]) for c in range(arr.shape[1])]
        rows.append("  " + "  ".join(cells))
    return "\n".join(rows)


def _format_element(x) -> str:
    if np.iscomplexobj(np.asarray(x)):
        z = complex(x)
        if z.imag == 0:
            return _format_element(z.real)
        sign = "+" if z.imag >= 0 else "-"
        return (f"{_format_element(z.real).strip()} {sign} "
                f"{_format_element(abs(z.imag)).strip()}i")
    v = float(x)
    if v != v:  # NaN
        return "NaN".rjust(10)
    if np.isinf(v):
        return ("Inf" if v > 0 else "-Inf").rjust(10)
    if v == int(v) and abs(v) < 1e10:
        return f"{int(v)}".rjust(10)
    return f"{v:.4f}".rjust(10)


def display(name: str, value: Value) -> str:
    """The ``x = ...`` block MATLAB prints for an unsuppressed statement."""
    return f"{name} =\n{format_value(value)}\n"
