"""Tree-walking reference interpreter for the MATLAB subset.

Plays two roles in the reproduction:

1. the *correctness oracle* — compiled programs must produce the same
   numerical results and printed output;
2. the performance stand-in for The MathWorks interpreter (the paper's
   baseline), via the cost meter in :mod:`repro.interp.costmodel`.

It interprets *resolved* ASTs (pass 2 output) so that variable/function
disambiguation matches the compiler exactly; unresolved scripts are
resolved on the fly for convenience.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..errors import MatlabRuntimeError
from ..frontend import ast_nodes as A
from ..frontend.mfile import EMPTY_PROVIDER, MFileProvider
from ..frontend.parser import parse_script
from .builtins import TABLE as BUILTINS
from .costmodel import NULL_METER
from .values import (
    COLON,
    Value,
    as_matrix,
    colon_range,
    display,
    index_assign,
    index_read,
    is_scalar,
    numel,
    shape_of,
    simplify,
    truthy,
)


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    pass


class Interpreter:
    """Execute a resolved program.

    Parameters
    ----------
    program:
        A :class:`~repro.analysis.resolve.ResolvedProgram`.
    out:
        Callable receiving output text (default: collect into ``self.output``).
    meter:
        Cost meter (see :mod:`repro.interp.costmodel`); defaults to a no-op.
    seed:
        Seed for the MATLAB ``rand``/``randn`` stream — fixed so the
        interpreter and compiled runs see identical data.
    """

    def __init__(self, program, out: Optional[Callable[[str], None]] = None,
                 meter=None, seed: int = 0, profiler=None):
        from ..analysis.resolve import ResolvedProgram  # cycle-free import

        assert isinstance(program, ResolvedProgram)
        self.program = program
        self.provider: MFileProvider = program.provider
        self.meter = meter if meter is not None else NULL_METER
        self.output: list[str] = []
        self._out = out if out is not None else self.output.append
        self.workspace: dict[str, Value] = {}
        self.globals: dict[str, Value] = {}
        self._frame_globals: list[set[str]] = [set()]
        self.saved: dict[str, object] = {}
        self._seed = seed
        self.rng = np.random.default_rng(seed)
        self.tic_time = 0.0
        self.profiler = profiler

    # ------------------------------------------------------------------ #

    def write(self, text: str) -> None:
        self._out(text)

    def reseed(self, seed: int) -> None:
        self.rng = np.random.default_rng(seed)

    def run(self) -> dict[str, Value]:
        """Execute the script; returns the final workspace."""
        self._frame_globals = [set()]
        self._exec_body(self.program.script.body, self.workspace,
                        global_names=self._frame_globals[-1])
        return self.workspace

    # ------------------------------------------------------------------ #
    # statements
    # ------------------------------------------------------------------ #

    def _exec_body(self, body: list[A.Stmt], env: dict[str, Value],
                   global_names: set[str]) -> None:
        for stmt in body:
            self._exec_stmt(stmt, env, global_names)

    def _exec_stmt(self, stmt: A.Stmt, env: dict[str, Value],
                   global_names: set[str]) -> None:
        if self.profiler is not None:
            # Exclusive attribution: a compound statement (loop, if) is
            # charged its own dispatch/condition cost only — nested
            # statements recorded during its body are subtracted — so
            # per-line times sum exactly to the meter total.
            start = self.meter.time
            nested_before = self.profiler.total_time()
            try:
                self._exec_stmt_inner(stmt, env, global_names)
            finally:
                nested = self.profiler.total_time() - nested_before
                dt = self.meter.time - start - nested
                self.profiler.record(stmt.loc.filename, stmt.loc.line, dt)
            return
        self._exec_stmt_inner(stmt, env, global_names)

    def _exec_stmt_inner(self, stmt: A.Stmt, env: dict[str, Value],
                         global_names: set[str]) -> None:
        self.meter.charge_stmt()
        if isinstance(stmt, A.Assign):
            value = self._eval(stmt.value, env)
            if value is None:
                raise MatlabRuntimeError(
                    "cannot assign the result of a void function")
            self._store(stmt.target, value, env, global_names)
            if stmt.display:
                self.write(display(stmt.target.name,
                                   self._load(stmt.target.name, env,
                                              global_names)))
        elif isinstance(stmt, A.MultiAssign):
            results = self._eval_call(stmt.call, env,
                                      nargout=len(stmt.targets))
            if not isinstance(results, tuple):
                results = (results,)
            if len(results) < len(stmt.targets):
                raise MatlabRuntimeError(
                    f"{stmt.call.name}: too few output arguments")
            for target, value in zip(stmt.targets, results):
                self._store(target, value, env, global_names)
            if stmt.display:
                for target in stmt.targets:
                    self.write(display(target.name,
                                       self._load(target.name, env,
                                                  global_names)))
        elif isinstance(stmt, A.ExprStmt):
            value = self._eval(stmt.value, env)
            if value is not None:
                env["ans"] = value
                if stmt.display:
                    self.write(display("ans", value))
        elif isinstance(stmt, A.If):
            for cond, branch in stmt.branches:
                if truthy(self._eval_strict(cond, env)):
                    self._exec_body(branch, env, global_names)
                    return
            self._exec_body(stmt.orelse, env, global_names)
        elif isinstance(stmt, A.While):
            while truthy(self._eval_strict(stmt.cond, env)):
                try:
                    self._exec_body(stmt.body, env, global_names)
                except _Break:
                    break
                except _Continue:
                    continue
        elif isinstance(stmt, A.For):
            self._exec_for(stmt, env, global_names)
        elif isinstance(stmt, A.Switch):
            self._exec_switch(stmt, env, global_names)
        elif isinstance(stmt, A.Break):
            raise _Break()
        elif isinstance(stmt, A.Continue):
            raise _Continue()
        elif isinstance(stmt, A.Return):
            raise _Return()
        elif isinstance(stmt, A.Global):
            for name in stmt.names:
                global_names.add(name)
                if name not in self.globals:
                    self.globals[name] = np.zeros((0, 0))
        else:
            raise MatlabRuntimeError(
                f"cannot execute {type(stmt).__name__}")

    def _exec_for(self, stmt: A.For, env: dict[str, Value],
                  global_names: set[str]) -> None:
        iterable = self._eval_strict(stmt.iterable, env)
        if isinstance(iterable, str):
            raise MatlabRuntimeError("for: cannot iterate a string")
        arr = as_matrix(iterable)
        if arr.shape[0] == 1:
            columns = (simplify(arr[0, c]) for c in range(arr.shape[1]))
        else:
            columns = (simplify(arr[:, c:c + 1]) for c in range(arr.shape[1]))
        for column in columns:
            env[stmt.var] = column
            try:
                self._exec_body(stmt.body, env, global_names)
            except _Break:
                break
            except _Continue:
                continue

    def _exec_switch(self, stmt: A.Switch, env: dict[str, Value],
                     global_names: set[str]) -> None:
        subject = self._eval_strict(stmt.subject, env)
        for values, branch in stmt.cases:
            for candidate in values:
                if self._switch_match(subject,
                                      self._eval_strict(candidate, env)):
                    self._exec_body(branch, env, global_names)
                    return
        self._exec_body(stmt.otherwise, env, global_names)

    @staticmethod
    def _switch_match(subject: Value, candidate: Value) -> bool:
        if isinstance(subject, str) or isinstance(candidate, str):
            return isinstance(subject, str) and isinstance(candidate, str) \
                and subject == candidate
        return bool(np.all(as_matrix(subject) == as_matrix(candidate)))

    # ------------------------------------------------------------------ #
    # variable access
    # ------------------------------------------------------------------ #

    def _load(self, name: str, env: dict[str, Value],
              global_names: set[str]) -> Value:
        if name in global_names:
            return self.globals[name]
        if name not in env:
            raise MatlabRuntimeError(f"undefined variable {name!r}")
        return env[name]

    def _store(self, target: A.LValue, value: Value, env: dict[str, Value],
               global_names: set[str]) -> None:
        store = self.globals if target.name in global_names else env
        if isinstance(target, A.NameLValue):
            store[target.name] = value
            return
        assert isinstance(target, A.IndexLValue)
        subs = [self._eval_subscript(arg, env) for arg in target.args]
        old = store.get(target.name)
        if old is not None:
            self.meter.charge_copy(numel(old))
        self.meter.charge_index()
        store[target.name] = index_assign(old, subs, value)

    # ------------------------------------------------------------------ #
    # expressions
    # ------------------------------------------------------------------ #

    def _eval_strict(self, expr: A.Expr, env: dict[str, Value]) -> Value:
        value = self._eval(expr, env)
        if value is None:
            raise MatlabRuntimeError("expression produced no value")
        return value

    def _eval(self, expr: A.Expr, env: dict[str, Value]) -> Optional[Value]:
        if isinstance(expr, A.Num):
            return float(expr.value)
        if isinstance(expr, A.ImagNum):
            return complex(0.0, expr.value)
        if isinstance(expr, A.Str):
            return expr.value
        if isinstance(expr, A.Ident):
            return self._load(expr.name, env, self._globals_in(env))
        if isinstance(expr, A.EndRef):
            return self._eval_end(expr, env)
        if isinstance(expr, A.UnaryOp):
            return self._eval_unary(expr, env)
        if isinstance(expr, A.BinOp):
            return self._eval_binop(expr, env)
        if isinstance(expr, A.Transpose):
            operand = as_matrix(self._eval_strict(expr.operand, env))
            self.meter.charge_copy(operand.size)
            result = operand.conj().T if expr.conjugate else operand.T
            return simplify(np.ascontiguousarray(result))
        if isinstance(expr, A.Range):
            return self._eval_range(expr, env)
        if isinstance(expr, A.MatrixLit):
            return self._eval_matrix_lit(expr, env)
        if isinstance(expr, A.Apply):
            return self._eval_apply(expr, env)
        if isinstance(expr, A.Colon):
            raise MatlabRuntimeError("':' is only valid inside a subscript")
        raise MatlabRuntimeError(f"cannot evaluate {type(expr).__name__}")

    def _globals_in(self, env: dict[str, Value]) -> set[str]:
        """Names declared global in the *current* call frame."""
        return self._frame_globals[-1]

    def _eval_end(self, expr: A.EndRef, env: dict[str, Value]) -> float:
        value = self._load(expr.var, env, self._globals_in(env))
        r, c = shape_of(value)
        if expr.nargs <= 1:
            return float(r * c)
        return float(r if expr.axis == 0 else c)

    def _eval_unary(self, expr: A.UnaryOp, env: dict[str, Value]) -> Value:
        operand = self._eval_strict(expr.operand, env)
        arr = as_matrix(operand)
        self.meter.charge_elementwise(arr.size)
        if expr.op == "-":
            return simplify(-arr)
        if expr.op == "+":
            return simplify(+arr)
        if expr.op == "~":
            return simplify((arr == 0).astype(float))
        raise MatlabRuntimeError(f"unknown unary operator {expr.op!r}")

    def _eval_range(self, expr: A.Range, env: dict[str, Value]) -> Value:
        start = float(as_matrix(
            self._eval_strict(expr.start, env)).reshape(-1)[0].real)
        stop = float(as_matrix(
            self._eval_strict(expr.stop, env)).reshape(-1)[0].real)
        step = 1.0
        if expr.step is not None:
            step = float(as_matrix(
                self._eval_strict(expr.step, env)).reshape(-1)[0].real)
        result = colon_range(start, step, stop)
        self.meter.charge_alloc(result.size)
        return simplify(result)

    def _eval_matrix_lit(self, expr: A.MatrixLit,
                         env: dict[str, Value]) -> Value:
        if not expr.rows:
            return np.zeros((0, 0))
        row_blocks = []
        for row in expr.rows:
            cells = [as_matrix(self._eval_strict(e, env)) for e in row]
            heights = {c.shape[0] for c in cells if c.size}
            if len(heights) > 1:
                raise MatlabRuntimeError(
                    "matrix literal: inconsistent row heights")
            cells = [c for c in cells if c.size] or [np.zeros((0, 0))]
            row_blocks.append(np.hstack(cells))
        widths = {b.shape[1] for b in row_blocks if b.size}
        if len(widths) > 1:
            raise MatlabRuntimeError("matrix literal: inconsistent widths")
        blocks = [b for b in row_blocks if b.size]
        if not blocks:
            return np.zeros((0, 0))
        result = np.vstack(blocks)
        self.meter.charge_alloc(result.size)
        return simplify(result)

    # ------------------------------------------------------------------ #
    # operators
    # ------------------------------------------------------------------ #

    def _eval_binop(self, expr: A.BinOp, env: dict[str, Value]) -> Value:
        op = expr.op
        if op in ("&&", "||"):
            lhs = truthy(self._eval_strict(expr.lhs, env))
            if op == "&&":
                if not lhs:
                    return 0.0
                return 1.0 if truthy(self._eval_strict(expr.rhs, env)) else 0.0
            if lhs:
                return 1.0
            return 1.0 if truthy(self._eval_strict(expr.rhs, env)) else 0.0
        lhs = self._eval_strict(expr.lhs, env)
        rhs = self._eval_strict(expr.rhs, env)
        return apply_binop(op, lhs, rhs, self.meter)

    # ------------------------------------------------------------------ #
    # calls and indexing
    # ------------------------------------------------------------------ #

    def _eval_subscript(self, arg: A.Expr, env: dict[str, Value]):
        if isinstance(arg, A.Colon):
            return COLON
        return self._eval_strict(arg, env)

    def _eval_apply(self, expr: A.Apply,
                    env: dict[str, Value]) -> Optional[Value]:
        if expr.resolved == "index":
            subject = self._load(expr.name, env, self._globals_in(env))
            subs = [self._eval_subscript(a, env) for a in expr.args]
            self.meter.charge_index()
            return index_read(subject, subs)
        return self._eval_call(expr, env, nargout=1)

    def _eval_call(self, call: A.Apply, env: dict[str, Value],
                   nargout: int) -> Optional[Value]:
        args = [self._eval_strict(a, env) for a in call.args]
        if call.resolved == "builtin":
            impl = BUILTINS.get(call.name)
            if impl is None:
                raise MatlabRuntimeError(
                    f"builtin {call.name!r} is not implemented")
            return impl(self, args, nargout)
        if call.resolved == "call":
            return self._call_function(call.name, args, nargout, call)
        raise MatlabRuntimeError(f"unresolved call to {call.name!r}")

    def _call_function(self, name: str, args: list[Value], nargout: int,
                       call: A.Apply) -> Optional[Value]:
        unit = self.program.functions.get(name)
        if unit is None:
            raise MatlabRuntimeError(f"undefined function {name!r}")
        func = unit.node
        assert isinstance(func, A.FunctionDef)
        if len(args) > len(func.params):
            raise MatlabRuntimeError(f"{name}: too many input arguments")
        local: dict[str, Value] = {}
        for param, value in zip(func.params, args):
            local[param] = value
        self.meter.charge_stmt()  # call overhead
        self._frame_globals.append(set())
        try:
            self._exec_body(func.body, local,
                            global_names=self._frame_globals[-1])
        except _Return:
            pass
        finally:
            self._frame_globals.pop()
        outs: list[Value] = []
        for i, ret in enumerate(func.returns[:max(nargout, 1)]):
            if ret not in local:
                if i == 0 and nargout <= 1:
                    raise MatlabRuntimeError(
                        f"{name}: output argument {ret!r} not assigned")
                break
            outs.append(local[ret])
        if not func.returns:
            return None
        if nargout <= 1:
            return outs[0] if outs else None
        return tuple(outs)


# --------------------------------------------------------------------------
# operator semantics (shared with the run-time library's local kernels)
# --------------------------------------------------------------------------


def apply_binop(op: str, lhs: Value, rhs: Value, meter=NULL_METER) -> Value:
    """Apply a MATLAB binary operator to two values."""
    a, b = as_matrix(lhs), as_matrix(rhs)

    def check_shapes() -> int:
        if a.size != 1 and b.size != 1 and a.shape != b.shape:
            raise MatlabRuntimeError(
                f"matrix dimensions must agree ({a.shape} vs {b.shape})")
        return max(a.size, b.size)

    if op == "+":
        meter.charge_elementwise(check_shapes())
        return simplify(a + b)
    if op == "-":
        meter.charge_elementwise(check_shapes())
        return simplify(a - b)
    if op == ".*":
        meter.charge_elementwise(check_shapes())
        return simplify(a * b)
    if op == "./":
        meter.charge_elementwise(check_shapes())
        with np.errstate(divide="ignore", invalid="ignore"):
            return simplify(a / b)
    if op == ".\\":
        meter.charge_elementwise(check_shapes())
        with np.errstate(divide="ignore", invalid="ignore"):
            return simplify(b / a)
    if op == ".^":
        meter.charge_elementwise(check_shapes(), 3)
        base = a
        if not np.iscomplexobj(a) and not np.iscomplexobj(b):
            if np.any((a < 0) & (np.asarray(b) != np.floor(b))):
                base = a.astype(complex)
        return simplify(base ** b)
    if op == "*":
        if a.size == 1 or b.size == 1:
            meter.charge_elementwise(max(a.size, b.size))
            return simplify(a * b)
        if a.shape[1] != b.shape[0]:
            raise MatlabRuntimeError(
                f"inner matrix dimensions must agree "
                f"({a.shape} * {b.shape})")
        meter.charge_flops(2 * a.shape[0] * a.shape[1] * b.shape[1])
        return simplify(a @ b)
    if op == "/":
        if b.size == 1:
            meter.charge_elementwise(a.size)
            with np.errstate(divide="ignore", invalid="ignore"):
                return simplify(a / b)
        if a.size == 1 and b.size == 1:
            return simplify(a / b)
        # X = A/B  <=>  X B = A  <=>  B' X' = A'
        meter.charge_flops(2 * b.shape[0] ** 3 // 3
                           + 2 * b.shape[0] ** 2 * a.shape[0])
        xt = _solve(b.conj().T if np.iscomplexobj(b) else b.T,
                    a.conj().T if np.iscomplexobj(a) else a.T)
        return simplify(xt.conj().T if np.iscomplexobj(xt) else xt.T)
    if op == "\\":
        if a.size == 1:
            meter.charge_elementwise(b.size)
            with np.errstate(divide="ignore", invalid="ignore"):
                return simplify(b / a)
        meter.charge_flops(2 * a.shape[0] ** 3 // 3
                           + 2 * a.shape[0] ** 2 * b.shape[1])
        return simplify(_solve(a, b))
    if op == "^":
        if a.size == 1 and b.size == 1:
            meter.charge_elementwise(1, 3)
            av = simplify(a)
            bv = simplify(b)
            if (isinstance(av, float) and isinstance(bv, float)
                    and av < 0 and bv != int(bv)):
                av = complex(av)
            return simplify(np.asarray(av ** bv).reshape(1, 1))
        if b.size == 1:
            power = float(np.real(b.reshape(-1)[0]))
            if power != int(power) or power < 0:
                raise MatlabRuntimeError(
                    "matrix powers must be nonnegative integers")
            if a.shape[0] != a.shape[1]:
                raise MatlabRuntimeError("matrix power: matrix must be square")
            n = a.shape[0]
            k = int(power)
            meter.charge_flops(2 * n ** 3 * max(k - 1, 0))
            return simplify(np.linalg.matrix_power(a, k))
        raise MatlabRuntimeError("unsupported '^' operand ranks")
    if op in ("==", "~=", "<", ">", "<=", ">="):
        meter.charge_elementwise(check_shapes())
        table = {
            "==": np.equal, "~=": np.not_equal,
            "<": np.less, ">": np.greater,
            "<=": np.less_equal, ">=": np.greater_equal,
        }
        return simplify(table[op](a.real if np.iscomplexobj(a) else a,
                                  b.real if np.iscomplexobj(b) else b)
                        .astype(float))
    if op == "&":
        meter.charge_elementwise(check_shapes())
        return simplify(((a != 0) & (b != 0)).astype(float))
    if op == "|":
        meter.charge_elementwise(check_shapes())
        return simplify(((a != 0) | (b != 0)).astype(float))
    raise MatlabRuntimeError(f"unknown operator {op!r}")


def _solve(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    if A.shape[0] == A.shape[1]:
        try:
            return np.linalg.solve(A, B)
        except np.linalg.LinAlgError:
            pass
    result, *_ = np.linalg.lstsq(A, B, rcond=None)
    return result


def run_source(source: str, provider: MFileProvider | None = None,
               meter=None, seed: int = 0) -> Interpreter:
    """Parse, resolve, and execute a script; returns the interpreter."""
    from ..analysis.resolve import resolve_program

    program = resolve_program(parse_script(source),
                              provider or EMPTY_PROVIDER)
    interp = Interpreter(program, meter=meter, seed=seed)
    interp.run()
    return interp
