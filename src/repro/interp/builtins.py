"""Interpreter implementations of every registered MATLAB builtin.

Each implementation has the signature ``fn(ctx, args, nargout)`` where
``ctx`` is the running :class:`~repro.interp.interpreter.Interpreter`
(supplying the RNG, cost meter, output sink, and M-file/data provider).
A test asserts this table covers exactly the names registered in
:mod:`repro.analysis.builtin_sigs`.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import MatlabRuntimeError
from .values import (
    np_trapz,
    Value,
    as_matrix,
    format_value,
    is_scalar,
    numel,
    shape_of,
    simplify,
)

TABLE: dict[str, object] = {}


def _register(name):
    def deco(fn):
        TABLE[name] = fn
        return fn

    return deco


def _scalar_int(value: Value, what: str) -> int:
    if not is_scalar(value):
        raise MatlabRuntimeError(f"{what}: expected a scalar")
    v = float(as_matrix(value).reshape(-1)[0].real)
    if v != int(v):
        raise MatlabRuntimeError(f"{what}: expected an integer")
    return int(v)


def _gen_dims(ctx, args) -> tuple[int, int]:
    if len(args) == 0:
        return (1, 1)
    if len(args) == 1:
        n = _scalar_int(args[0], "dimension")
        return (n, n)
    return (_scalar_int(args[0], "rows"), _scalar_int(args[1], "cols"))


# ------------------------------------------------------------------ #
# generators
# ------------------------------------------------------------------ #


@_register("zeros")
def _zeros(ctx, args, nargout):
    r, c = _gen_dims(ctx, args)
    ctx.meter.charge_alloc(r * c)
    return simplify(np.zeros((r, c)))


@_register("ones")
def _ones(ctx, args, nargout):
    r, c = _gen_dims(ctx, args)
    ctx.meter.charge_alloc(r * c)
    return simplify(np.ones((r, c)))


@_register("eye")
def _eye(ctx, args, nargout):
    r, c = _gen_dims(ctx, args)
    ctx.meter.charge_alloc(r * c)
    return simplify(np.eye(r, c))


@_register("rand")
def _rand(ctx, args, nargout):
    if args and isinstance(args[0], str):
        # era-correct reseeding: rand('seed', s)
        if args[0] != "seed" or len(args) != 2:
            raise MatlabRuntimeError("rand: unsupported string argument")
        ctx.reseed(_scalar_int(args[1], "seed"))
        return None
    r, c = _gen_dims(ctx, args)
    ctx.meter.charge_alloc(r * c)
    return simplify(ctx.rng.random((r, c)))


@_register("randn")
def _randn(ctx, args, nargout):
    if args and isinstance(args[0], str):
        if args[0] != "seed" or len(args) != 2:
            raise MatlabRuntimeError("randn: unsupported string argument")
        ctx.reseed(_scalar_int(args[1], "seed"))
        return None
    r, c = _gen_dims(ctx, args)
    ctx.meter.charge_alloc(r * c)
    return simplify(ctx.rng.standard_normal((r, c)))


@_register("linspace")
def _linspace(ctx, args, nargout):
    a = float(as_matrix(args[0]).reshape(-1)[0].real)
    b = float(as_matrix(args[1]).reshape(-1)[0].real)
    n = _scalar_int(args[2], "linspace") if len(args) > 2 else 100
    ctx.meter.charge_alloc(n)
    return simplify(np.linspace(a, b, n).reshape(1, -1))


# ------------------------------------------------------------------ #
# elementwise
# ------------------------------------------------------------------ #


def _elementwise(fn, preserves_real=True):
    def impl(ctx, args, nargout):
        arr = as_matrix(args[0])
        ctx.meter.charge_elementwise(arr.size)
        return simplify(fn(arr))

    return impl


def _sqrt(a):
    a = np.asarray(a)
    if not np.iscomplexobj(a) and np.any(a < 0):
        return np.sqrt(a.astype(complex))
    return np.sqrt(a)


def _log_fn(np_fn):
    def fn(a):
        a = np.asarray(a)
        if not np.iscomplexobj(a) and np.any(a < 0):
            return np_fn(a.astype(complex))
        with np.errstate(divide="ignore"):
            return np_fn(a)

    return fn


_EW_FUNCS = {
    "sqrt": _sqrt,
    "exp": np.exp,
    "log": _log_fn(np.log),
    "log2": _log_fn(np.log2),
    "log10": _log_fn(np.log10),
    "sin": np.sin, "cos": np.cos, "tan": np.tan,
    "asin": np.arcsin, "acos": np.arccos, "atan": np.arctan,
    "sinh": np.sinh, "cosh": np.cosh, "tanh": np.tanh,
    "abs": np.abs,
    "floor": np.floor, "ceil": np.ceil,
    "round": lambda a: np.floor(a + 0.5) if not np.iscomplexobj(a)
    else np.round(a),
    "fix": np.trunc,
    "sign": np.sign,
    "real": np.real, "imag": np.imag, "conj": np.conj,
    "angle": np.angle,
    "double": lambda a: a,
    "isnan": lambda a: np.isnan(a).astype(float),
    "isinf": lambda a: np.isinf(a).astype(float),
    "isfinite": lambda a: np.isfinite(a).astype(float),
}

for _name, _fn in _EW_FUNCS.items():
    TABLE[_name] = _elementwise(_fn)


def _ew_binary(fn):
    def impl(ctx, args, nargout):
        a, b = as_matrix(args[0]), as_matrix(args[1])
        if a.size != 1 and b.size != 1 and a.shape != b.shape:
            raise MatlabRuntimeError("matrix dimensions must agree")
        ctx.meter.charge_elementwise(max(a.size, b.size))
        return simplify(fn(a, b))

    return impl


TABLE["mod"] = _ew_binary(lambda a, b: np.mod(a, b))
TABLE["rem"] = _ew_binary(lambda a, b: np.fmod(a, b))
TABLE["atan2"] = _ew_binary(np.arctan2)
TABLE["hypot"] = _ew_binary(np.hypot)
TABLE["power"] = _ew_binary(lambda a, b: a ** b)


# ------------------------------------------------------------------ #
# reductions
# ------------------------------------------------------------------ #


def _columnwise(np_fn, takes_dim=False):
    """MATLAB reduction: vectors reduce fully, matrices per column (or per
    row with an explicit ``dim`` argument)."""

    def impl(ctx, args, nargout):
        arr = as_matrix(args[0])
        ctx.meter.charge_elementwise(arr.size)
        if arr.size == 0:
            return 0.0
        if takes_dim and len(args) == 2:
            dim = _scalar_int(args[1], "dim")
            if dim not in (1, 2):
                raise MatlabRuntimeError("dim must be 1 or 2")
            out = np.asarray(np_fn(arr, axis=dim - 1))
            return simplify(out.reshape(1, -1) if dim == 1
                            else out.reshape(-1, 1))
        if arr.shape[0] == 1 or arr.shape[1] == 1:
            return simplify(np_fn(arr.reshape(-1)))
        return simplify(np.asarray(np_fn(arr, axis=0)).reshape(1, -1))

    return impl


TABLE["sum"] = _columnwise(np.sum, takes_dim=True)
TABLE["prod"] = _columnwise(np.prod, takes_dim=True)
TABLE["mean"] = _columnwise(np.mean, takes_dim=True)
TABLE["median"] = _columnwise(np.median)
TABLE["std"] = _columnwise(lambda a, axis=None: np.std(a, axis=axis,
                                                       ddof=1))
TABLE["var"] = _columnwise(lambda a, axis=None: np.var(a, axis=axis,
                                                       ddof=1))
TABLE["all"] = _columnwise(lambda a, axis=None:
                           np.all(a != 0, axis=axis).astype(float))
TABLE["any"] = _columnwise(lambda a, axis=None:
                           np.any(a != 0, axis=axis).astype(float))


@_register("find")
def _find(ctx, args, nargout):
    """1-based linear indices of nonzeros, column-major order."""
    arr = as_matrix(args[0])
    ctx.meter.charge_elementwise(arr.size)
    flat = arr.reshape(-1, order="F")
    idx = np.flatnonzero(flat != 0).astype(float) + 1.0
    if idx.size == 0:
        return np.zeros((0, 0))
    if arr.shape[0] == 1 and arr.shape[1] > 1:
        return simplify(idx.reshape(1, -1))  # row input -> row output
    return simplify(idx.reshape(-1, 1))


def _cum(np_fn):
    def impl(ctx, args, nargout):
        arr = as_matrix(args[0])
        ctx.meter.charge_elementwise(arr.size)
        if arr.shape[0] == 1:
            return simplify(np_fn(arr, axis=1))
        return simplify(np_fn(arr, axis=0))

    return impl


TABLE["cumsum"] = _cum(np.cumsum)
TABLE["cumprod"] = _cum(np.cumprod)


def _minmax(np_red, np_arg, np_ew):
    def impl(ctx, args, nargout):
        if len(args) == 2:
            return _ew_binary(np_ew)(ctx, args, nargout)
        arr = as_matrix(args[0])
        ctx.meter.charge_elementwise(arr.size)
        if arr.shape[0] == 1 or arr.shape[1] == 1:
            flat = arr.reshape(-1)
            val = simplify(np_red(flat))
            if nargout >= 2:
                return (val, float(np_arg(flat) + 1))
            return val
        val = simplify(np_red(arr, axis=0).reshape(1, -1))
        if nargout >= 2:
            idx = simplify((np_arg(arr, axis=0) + 1).astype(float)
                           .reshape(1, -1))
            return (val, idx)
        return val

    return impl


TABLE["max"] = _minmax(np.max, np.argmax, np.maximum)
TABLE["min"] = _minmax(np.min, np.argmin, np.minimum)


@_register("norm")
def _norm(ctx, args, nargout):
    arr = as_matrix(args[0])
    ctx.meter.charge_elementwise(arr.size, 2)
    if len(args) == 2 and isinstance(args[1], str):
        if args[1] == "fro":
            return float(np.linalg.norm(arr, "fro"))
        raise MatlabRuntimeError(f"norm: unsupported mode {args[1]!r}")
    p = 2.0
    if len(args) == 2:
        p = float(as_matrix(args[1]).reshape(-1)[0].real)
    if arr.shape[0] == 1 or arr.shape[1] == 1:
        return float(np.linalg.norm(arr.reshape(-1), p))
    if p == 2.0:
        return float(np.linalg.norm(arr, 2))
    raise MatlabRuntimeError("norm: matrix norms other than 2 unsupported")


@_register("trapz")
def _trapz(ctx, args, nargout):
    if len(args) == 1:
        y = as_matrix(args[0])
        ctx.meter.charge_elementwise(y.size, 2)
        return float(np_trapz(y.reshape(-1)))
    x = as_matrix(args[0]).reshape(-1)
    y = as_matrix(args[1])
    ctx.meter.charge_elementwise(y.size, 3)
    if y.shape[0] == 1 or y.shape[1] == 1:
        return float(np_trapz(y.reshape(-1), x))
    return simplify(np_trapz(y, x, axis=0).reshape(1, -1))


@_register("trapz2")
def _trapz2(ctx, args, nargout):
    """2-D trapezoidal integration: trapz2(z[, dx, dy])."""
    z = as_matrix(args[0])
    dx = float(as_matrix(args[1]).reshape(-1)[0].real) if len(args) > 1 else 1.0
    dy = float(as_matrix(args[2]).reshape(-1)[0].real) if len(args) > 2 else 1.0
    ctx.meter.charge_elementwise(z.size, 3)
    inner = np_trapz(z, dx=dy, axis=1)
    return float(np_trapz(inner, dx=dx))


@_register("dot")
def _dot(ctx, args, nargout):
    a = as_matrix(args[0]).reshape(-1)
    b = as_matrix(args[1]).reshape(-1)
    if a.size != b.size:
        raise MatlabRuntimeError("dot: vectors must be the same length")
    ctx.meter.charge_flops(2 * a.size)
    return simplify(np.vdot(a, b))


# ------------------------------------------------------------------ #
# queries
# ------------------------------------------------------------------ #


@_register("size")
def _size(ctx, args, nargout):
    r, c = shape_of(args[0])
    if len(args) == 2:
        dim = _scalar_int(args[1], "size")
        if dim == 1:
            return float(r)
        if dim == 2:
            return float(c)
        return 1.0
    if nargout >= 2:
        return (float(r), float(c))
    return simplify(np.array([[float(r), float(c)]]))


@_register("length")
def _length(ctx, args, nargout):
    r, c = shape_of(args[0])
    return float(max(r, c)) if r * c else 0.0


@_register("numel")
def _numel(ctx, args, nargout):
    return float(numel(args[0]))


@_register("isempty")
def _isempty(ctx, args, nargout):
    return 1.0 if numel(args[0]) == 0 else 0.0


@_register("isreal")
def _isreal(ctx, args, nargout):
    if isinstance(args[0], str):
        return 1.0
    return 0.0 if np.iscomplexobj(as_matrix(args[0])) else 1.0


@_register("isscalar")
def _isscalar(ctx, args, nargout):
    return 1.0 if numel(args[0]) == 1 else 0.0


# ------------------------------------------------------------------ #
# structural
# ------------------------------------------------------------------ #


@_register("reshape")
def _reshape(ctx, args, nargout):
    arr = as_matrix(args[0])
    r = _scalar_int(args[1], "reshape")
    c = _scalar_int(args[2], "reshape")
    if r * c != arr.size:
        raise MatlabRuntimeError("reshape: element counts must match")
    ctx.meter.charge_copy(arr.size)
    return simplify(arr.reshape((r, c), order="F"))


@_register("repmat")
def _repmat(ctx, args, nargout):
    arr = as_matrix(args[0])
    m = _scalar_int(args[1], "repmat")
    n = _scalar_int(args[2], "repmat")
    ctx.meter.charge_alloc(arr.size * m * n)
    return simplify(np.tile(arr, (m, n)))


@_register("circshift")
def _circshift(ctx, args, nargout):
    arr = as_matrix(args[0])
    shift = as_matrix(args[1])
    ctx.meter.charge_copy(arr.size)
    if shift.size == 2:  # MATLAB's [rows cols] form
        kr, kc = (_scalar_int(v, "circshift") for v in shift.flat)
        return simplify(np.roll(arr, (kr, kc), axis=(0, 1)))
    k = _scalar_int(args[1], "circshift")
    if arr.shape[0] == 1:  # row vector: shift along columns
        return simplify(np.roll(arr, k, axis=1))
    return simplify(np.roll(arr, k, axis=0))


@_register("fliplr")
def _fliplr(ctx, args, nargout):
    arr = as_matrix(args[0])
    ctx.meter.charge_copy(arr.size)
    return simplify(np.fliplr(arr))


@_register("flipud")
def _flipud(ctx, args, nargout):
    arr = as_matrix(args[0])
    ctx.meter.charge_copy(arr.size)
    return simplify(np.flipud(arr))


@_register("tril")
def _tril(ctx, args, nargout):
    k = _scalar_int(args[1], "tril") if len(args) > 1 else 0
    arr = as_matrix(args[0])
    ctx.meter.charge_copy(arr.size)
    return simplify(np.tril(arr, k))


@_register("triu")
def _triu(ctx, args, nargout):
    k = _scalar_int(args[1], "triu") if len(args) > 1 else 0
    arr = as_matrix(args[0])
    ctx.meter.charge_copy(arr.size)
    return simplify(np.triu(arr, k))


@_register("diag")
def _diag(ctx, args, nargout):
    arr = as_matrix(args[0])
    ctx.meter.charge_copy(arr.size)
    if arr.shape[0] == 1 or arr.shape[1] == 1:
        return simplify(np.diag(arr.reshape(-1)))
    return simplify(np.diag(arr).reshape(-1, 1))


@_register("transpose")
def _transpose(ctx, args, nargout):
    arr = as_matrix(args[0])
    ctx.meter.charge_copy(arr.size)
    return simplify(arr.T.copy())


@_register("ctranspose")
def _ctranspose(ctx, args, nargout):
    arr = as_matrix(args[0])
    ctx.meter.charge_copy(arr.size)
    return simplify(arr.conj().T.copy())


@_register("sort")
def _sort(ctx, args, nargout):
    arr = as_matrix(args[0])
    n = arr.size
    ctx.meter.charge_elementwise(n, max(int(np.log2(n)) if n > 1 else 1, 1))
    if arr.shape[0] == 1:
        return simplify(np.sort(arr, axis=1))
    return simplify(np.sort(arr, axis=0))


# ------------------------------------------------------------------ #
# constants
# ------------------------------------------------------------------ #

_CONSTANTS = {
    "pi": math.pi,
    "eps": float(np.finfo(float).eps),
    "inf": math.inf, "Inf": math.inf,
    "nan": math.nan, "NaN": math.nan,
    "realmax": float(np.finfo(float).max),
    "realmin": float(np.finfo(float).tiny),
    "i": complex(0, 1), "j": complex(0, 1),
}

for _name, _value in _CONSTANTS.items():
    TABLE[_name] = (lambda v: (lambda ctx, args, nargout: v))(_value)


# ------------------------------------------------------------------ #
# I/O and control
# ------------------------------------------------------------------ #


@_register("disp")
def _disp(ctx, args, nargout):
    ctx.write(format_value(args[0]) + "\n")
    return None


@_register("fprintf")
def _fprintf(ctx, args, nargout):
    fmt = args[0]
    if not isinstance(fmt, str):
        raise MatlabRuntimeError("fprintf: first argument must be a format")
    values: list = []
    for a in args[1:]:
        if isinstance(a, str):
            values.append(a)
        else:
            values.extend(as_matrix(a).reshape(-1, order="F").tolist())
    ctx.write(sprintf_cycle(fmt, values))
    return None


def sprintf_cycle(fmt: str, values: list) -> str:
    """MATLAB fprintf semantics: the format is reapplied until the
    argument list is exhausted."""
    text = fmt.replace("\\n", "\n").replace("\\t", "\t")
    specs = _count_specs(text)
    if specs == 0 or not values:
        return text
    out = []
    i = 0
    while i < len(values):
        chunk = values[i:i + specs]
        if len(chunk) < specs:
            chunk = chunk + [0.0] * (specs - len(chunk))
        out.append(_apply_format(text, chunk))
        i += specs
    return "".join(out)


def _count_specs(fmt: str) -> int:
    count = 0
    i = 0
    while i < len(fmt):
        if fmt[i] == "%" and i + 1 < len(fmt):
            if fmt[i + 1] == "%":
                i += 2
                continue
            count += 1
        i += 1
    return count


def _apply_format(fmt: str, values: list) -> str:
    converted = []
    vi = 0
    i = 0
    out = []
    while i < len(fmt):
        ch = fmt[i]
        if ch != "%":
            out.append(ch)
            i += 1
            continue
        if i + 1 < len(fmt) and fmt[i + 1] == "%":
            out.append("%")
            i += 2
            continue
        j = i + 1
        while j < len(fmt) and fmt[j] not in "diufgGeEsx":
            j += 1
        if j >= len(fmt):
            out.append(fmt[i:])
            break
        spec = fmt[i:j + 1]
        conv = fmt[j]
        value = values[vi] if vi < len(values) else 0.0
        vi += 1
        if conv in "diux":
            out.append(spec.replace("u", "d") % int(round(float(
                np.real(value)))))
        elif conv == "s":
            out.append(spec % str(value))
        else:
            out.append(spec % float(np.real(value)))
        i = j + 1
    return "".join(out)


@_register("error")
def _error(ctx, args, nargout):
    msg = args[0] if isinstance(args[0], str) else format_value(args[0])
    if len(args) > 1:
        values = []
        for a in args[1:]:
            values.extend(as_matrix(a).reshape(-1, order="F").tolist())
        msg = sprintf_cycle(msg, values)
    raise MatlabRuntimeError(msg)


@_register("load")
def _load(ctx, args, nargout):
    from ..service.stores import StoreError, is_store_url

    name = args[0]
    if not isinstance(name, str):
        raise MatlabRuntimeError("load: file name must be a string")
    if is_store_url(name):
        from ..service.stores import default_manager

        try:
            data = default_manager().load_matrix(name)
        except StoreError as exc:
            raise MatlabRuntimeError(f"load: {exc}") from exc
    else:
        data = ctx.provider.load_data_file(name)
    if data is None:
        raise MatlabRuntimeError(f"load: cannot find data file {name!r}")
    arr = as_matrix(np.asarray(data, dtype=float)
                    if not np.iscomplexobj(np.asarray(data))
                    else np.asarray(data))
    ctx.meter.charge_alloc(arr.size)
    return simplify(arr.copy())


@_register("inv")
def _inv(ctx, args, nargout):
    arr = as_matrix(args[0])
    if arr.shape[0] != arr.shape[1]:
        raise MatlabRuntimeError("inv: matrix must be square")
    n = arr.shape[0]
    ctx.meter.charge_flops(2 * n ** 3)
    try:
        return simplify(np.linalg.inv(arr))
    except np.linalg.LinAlgError as exc:
        raise MatlabRuntimeError(f"inv: {exc}") from exc


@_register("det")
def _det(ctx, args, nargout):
    arr = as_matrix(args[0])
    if arr.shape[0] != arr.shape[1]:
        raise MatlabRuntimeError("det: matrix must be square")
    ctx.meter.charge_flops(2 * arr.shape[0] ** 3 // 3)
    return simplify(np.asarray(np.linalg.det(arr)).reshape(1, 1))


@_register("trace")
def _trace(ctx, args, nargout):
    arr = as_matrix(args[0])
    ctx.meter.charge_elementwise(min(arr.shape))
    return simplify(np.asarray(np.trace(arr)).reshape(1, 1))


@_register("sprintf")
def _sprintf(ctx, args, nargout):
    fmt = args[0]
    if not isinstance(fmt, str):
        raise MatlabRuntimeError("sprintf: first argument must be a format")
    values: list = []
    for a in args[1:]:
        if isinstance(a, str):
            values.append(a)
        else:
            values.extend(as_matrix(a).reshape(-1, order="F").tolist())
    return sprintf_cycle(fmt, values)


def format_number(value, precision=5) -> str:
    v = complex(value)
    if v.imag == 0:
        real = v.real
        if real == int(real) and abs(real) < 1e15:
            return str(int(real))
        return f"%.{precision}g" % real
    return f"{format_number(v.real, precision)}" \
        f"{'+' if v.imag >= 0 else '-'}{format_number(abs(v.imag), precision)}i"


@_register("num2str")
def _num2str(ctx, args, nargout):
    precision = 5
    if len(args) > 1:
        precision = _scalar_int(args[1], "num2str")
    arr = as_matrix(args[0])
    if arr.size == 1:
        return format_number(arr.reshape(-1)[0], precision)
    rows = []
    for r in range(arr.shape[0]):
        rows.append("  ".join(format_number(x, precision)
                              for x in arr[r]))
    return "\n".join(rows)


@_register("int2str")
def _int2str(ctx, args, nargout):
    arr = as_matrix(args[0])
    if arr.size == 1:
        return str(int(round(float(np.real(arr.reshape(-1)[0])))))
    rows = []
    for r in range(arr.shape[0]):
        rows.append("  ".join(str(int(round(float(np.real(x)))))
                              for x in arr[r]))
    return "\n".join(rows)


@_register("save")
def _save(ctx, args, nargout):
    name = args[0]
    if not isinstance(name, str):
        raise MatlabRuntimeError("save: file name must be a string")
    ctx.saved[name] = args[1] if len(args) > 1 else dict(ctx.workspace)
    return None


@_register("tic")
def _tic(ctx, args, nargout):
    ctx.tic_time = ctx.meter.time
    return None


@_register("toc")
def _toc(ctx, args, nargout):
    return float(ctx.meter.time - getattr(ctx, "tic_time", 0.0))
