"""Generate docs/BUILTINS.md from the builtin registry.

Run:  python -m repro.tools.builtin_table [output-path]

A test asserts the checked-in file matches the registry, so the builtin
reference can never drift from the code.
"""

from __future__ import annotations

import sys

from ..analysis.builtin_sigs import REGISTRY

_KIND_TITLES = {
    "generator": "Matrix generators",
    "elementwise": "Elementwise functions (unary)",
    "ewbinary": "Elementwise functions (binary)",
    "reduction": "Reductions",
    "linalg": "Linear algebra",
    "query": "Shape and type queries",
    "structural": "Structural operations",
    "constant": "Constants",
    "io": "Strings, I/O, and timing",
}


def _arity(sig) -> str:
    if sig.max_args < 0:
        return f"{sig.min_args}+"
    if sig.min_args == sig.max_args:
        return str(sig.min_args)
    return f"{sig.min_args}-{sig.max_args}"


def generate() -> str:
    out = ["# Builtin reference",
           "",
           "Generated from `repro/analysis/builtin_sigs.py` by "
           "`python -m repro.tools.builtin_table`; do not edit by hand "
           "(`tests/test_builtin_docs.py` enforces freshness).",
           "",
           f"{len(REGISTRY)} builtins.  Every name has an interpreter "
           "implementation and a distributed run-time implementation "
           "(enforced by `tests/test_registry_sync.py`).",
           ""]
    for kind, title in _KIND_TITLES.items():
        rows = sorted((name, sig) for name, sig in REGISTRY.items()
                      if sig.kind == kind)
        if not rows:
            continue
        out.append(f"## {title}")
        out.append("")
        out.append("| name | args | outputs | pure | notes |")
        out.append("|---|---|---|---|---|")
        for name, sig in rows:
            pure = "yes" if sig.pure else "no"
            out.append(f"| `{name}` | {_arity(sig)} | {sig.nargout} "
                       f"| {pure} | {sig.notes} |")
        out.append("")
    return "\n".join(out) + "\n"


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    target = args[0] if args else "docs/BUILTINS.md"
    text = generate()
    with open(target, "w", encoding="utf-8") as fh:
        fh.write(text)
    print(f"wrote {target} ({len(REGISTRY)} builtins)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
