"""Developer tools (documentation generators, maintenance scripts)."""
