"""Content-addressed compile cache: the compile-once half of the service.

A :class:`CompileCache` keys compiled programs by sha256 of every input
that can change the compiled artifact or the requested run
configuration:

* the **canonical source** — the parsed script unparsed back to a
  normal form, so whitespace/comment-only edits hash identically;
* the **provider fingerprint** — in-memory M-file mappings hash their
  sources, directory providers hash their search paths (plus a per-use
  dependency validator, below);
* the **plan** (full :class:`repro.tuning.Plan` content hash), the
  **machine model** fingerprint, **nprocs**, **backend**, and the
  **native** kernel mode.

Two tiers:

``memory``
    An in-process LRU (``max_entries``) with optional idle TTL driven by
    an injectable ``clock`` — tests evict deterministically with a fake
    clock.  Concurrent requests for the same key are single-flighted:
    exactly one thread compiles, the rest wait and receive the cached
    program (the concurrency stress test pins ``compiles`` == unique
    keys).

``disk``
    Opt-in: one ``p_<key>.json`` per program under the cache root
    (``$REPRO_COMPILE_CACHE=<dir>``; unset keeps it off), published
    atomically with the same pid-suffixed-temp + ``os.replace`` pattern
    as :mod:`repro.native.cache`, so racing processes both succeed.  A
    disk hit rehydrates a runnable :class:`~repro.compiler
    .CompiledProgram` from the emitted Python without running any
    compiler pass; M-file dependencies are validated against the
    current provider (stale deps force a recompile).

Cache *hits* report ``passes == []`` — the acceptance criterion that a
warm ``run`` performs zero compiler passes is asserted straight off the
:class:`CacheOutcome`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

from ..compiler import CompiledProgram, compile_source
from ..frontend.mfile import (
    ChainProvider,
    DictProvider,
    DirectoryProvider,
    EMPTY_PROVIDER,
)

ENV_COMPILE_CACHE = "REPRO_COMPILE_CACHE"

#: bump when the cached-payload layout or the emitted-code ABI changes —
#: stale major versions on disk are simply never looked up
PAYLOAD_VERSION = 1

_OFF_VALUES = ("0", "off", "none", "disabled")


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def plan_from_dict(payload: Optional[dict]):
    """Rebuild a :class:`repro.tuning.Plan` from its ``as_dict`` form
    (JSON round-trip turns the tuple fields into lists)."""
    if payload is None:
        return None
    from ..tuning.plan import Plan

    kwargs = {}
    for key, value in payload.items():
        if key == "dist":
            kwargs[key] = tuple(tuple(pair) for pair in value)
        elif key == "fusion":
            kwargs[key] = tuple(value)
        else:
            kwargs[key] = value
    return Plan(**kwargs)


def canonical_source(source: str) -> str:
    """Whitespace/comment-insensitive normal form of a MATLAB script.

    Parses and unparses, so two sources differing only in layout or
    comments canonicalize identically; a source that does not parse is
    returned verbatim (the compile will raise the real diagnostic, and
    failures are never cached).
    """
    from ..frontend.parser import parse_script
    from ..frontend.unparse import unparse_script

    try:
        return unparse_script(parse_script(source, "canon"))
    except Exception:
        return source


def machine_fingerprint(machine: Any) -> str:
    """Stable identity of a machine model (or a registry name)."""
    if machine is None:
        return "-"
    if isinstance(machine, str):
        from ..mpi.machine import get_machine

        machine = get_machine(machine)
    return json.dumps(dataclasses.asdict(machine), sort_keys=True,
                      default=str)


def provider_fingerprint(provider) -> tuple[str, bool]:
    """``(key_component, disk_ok)`` for an M-file provider.

    Content-addressable providers (in-memory mappings, directory search
    paths) may publish to the shared disk tier; opaque providers key by
    object identity and stay process-local.
    """
    if provider is None or provider is EMPTY_PROVIDER:
        return "builtin", True
    if isinstance(provider, DictProvider):
        blob = json.dumps(sorted((name, src)
                                 for name, src in provider.sources.items()))
        return f"dict:{_sha(blob)}", True
    if isinstance(provider, DirectoryProvider):
        return f"dirs:{json.dumps(list(provider.paths))}", True
    if isinstance(provider, ChainProvider):
        parts, ok = [], True
        for child in provider.providers:
            fp, child_ok = provider_fingerprint(child)
            parts.append(fp)
            ok = ok and child_ok
        return "chain:[" + ",".join(parts) + "]", ok
    return f"object:{id(provider)}", False


def _function_hash(provider, name: str) -> Optional[str]:
    """Canonical content hash of one provider-resolved M-file function."""
    from ..frontend.unparse import unparse_function

    try:
        funcs = provider.lookup(name) if provider is not None else None
    except Exception:
        return None
    if not funcs:
        return None
    return _sha("\n".join(unparse_function(f) for f in funcs))


def resolve_disk_root() -> Optional[Path]:
    """The on-disk tier is *opt-in*: ``$REPRO_COMPILE_CACHE=<dir>``
    enables it there; unset (or ``0``/``off``) keeps the cache
    in-process only, so default runs never write outside the repo."""
    env = os.environ.get(ENV_COMPILE_CACHE)
    if not env or env.strip().lower() in _OFF_VALUES:
        return None
    return Path(env).expanduser()


@dataclass
class CacheOutcome:
    """What one :meth:`CompileCache.get_or_compile` request did."""

    program: CompiledProgram
    key: str
    hit: bool                      # the request key was already cached
    tier: Optional[str]            # "memory" | "disk" | None (fresh miss)
    #: compiler passes executed *for this request* — ``[]`` on any hit
    #: (and on a miss that shared another key's compilation)
    passes: list[tuple[str, float]] = field(default_factory=list)
    #: True when a miss reused a compilation shared through the
    #: compile-projection memo instead of running the passes again
    shared: bool = False

    @property
    def compile_seconds(self) -> float:
        return sum(seconds for _name, seconds in self.passes)

    def describe(self) -> str:
        if self.hit:
            return f"hit ({self.tier} tier) key={self.key[:12]}"
        if self.shared:
            return f"miss (shared compilation) key={self.key[:12]}"
        return (f"miss (compiled in {self.compile_seconds * 1e3:.1f} ms) "
                f"key={self.key[:12]}")


@dataclass
class _Entry:
    program: CompiledProgram
    stamp: float                   # last-access clock() reading
    tier: str                      # tier that satisfied the insert


class CompileCache:
    """Two-tier content-addressed compile cache (thread-safe)."""

    def __init__(self, max_entries: int = 256,
                 disk_root: Any = None,
                 ttl: Optional[float] = None,
                 clock=time.monotonic):
        """``disk_root``: a path enables the disk tier there; ``None``
        resolves ``$REPRO_COMPILE_CACHE`` (a path, or unset/``0``/``off``
        to keep the cache in-process only); ``False``
        disables the tier outright.  ``ttl`` evicts memory entries idle
        for longer than that many ``clock()`` units (``None``: never);
        the clock is injectable so tests drive eviction deterministically.
        """
        self.max_entries = max(1, int(max_entries))
        if disk_root is False:
            self.disk_root: Optional[Path] = None
        elif disk_root is None:
            self.disk_root = resolve_disk_root()
        else:
            self.disk_root = Path(disk_root).expanduser()
        self.ttl = ttl
        self.clock = clock
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._inflight: dict[str, threading.Event] = {}
        # object-sharing memo over the *compile-affecting* projection:
        # request keys differing only in run configuration (nprocs,
        # machine, backend, native, runtime plan knobs) reuse one
        # CompiledProgram instead of re-running the passes
        self._programs: dict[str, CompiledProgram] = {}
        self._canon_memo: dict[str, str] = {}
        self._disk_ready = False
        self._stats = {"hits": 0, "misses": 0, "disk_hits": 0,
                       "compiles": 0, "shared": 0,
                       "evictions_lru": 0, "evictions_ttl": 0}

    # ------------------------------------------------------------------ #
    # keys
    # ------------------------------------------------------------------ #

    def _canonical(self, source: str) -> str:
        raw_sha = _sha(source)
        hit = self._canon_memo.get(raw_sha)
        if hit is not None:
            return hit
        canon = canonical_source(source)
        if len(self._canon_memo) >= 4 * self.max_entries:
            self._canon_memo.clear()
        self._canon_memo[raw_sha] = canon
        return canon

    @staticmethod
    def _plan_component(plan, key_plan) -> str:
        if key_plan is not None:
            return f"proj:{key_plan!r}"
        if plan is None:
            return "-"
        return plan.key()

    def key(self, source: str, *, name: str = "script", provider=None,
            plan=None, nprocs: Optional[int] = None, machine=None,
            backend: Optional[str] = None, native: Optional[str] = None,
            key_plan=None) -> str:
        """The request key: sha256 over every cache-relevant component."""
        canon = self._canonical(source)
        provider_fp, _disk_ok = provider_fingerprint(provider)
        blob = json.dumps({
            "version": PAYLOAD_VERSION,
            "source": canon,
            "name": name,
            "provider": provider_fp,
            "plan": self._plan_component(plan, key_plan),
            "nprocs": nprocs,
            "machine": machine_fingerprint(machine),
            "backend": backend or "-",
            "native": native or "-",
        }, sort_keys=True)
        return _sha(blob)

    def _projection_key(self, canon: str, name: str, provider_fp: str,
                        plan) -> str:
        proj = None if plan is None else plan.compile_key()
        return _sha(json.dumps([PAYLOAD_VERSION, canon, name, provider_fp,
                                repr(proj)]))

    # ------------------------------------------------------------------ #
    # the front door
    # ------------------------------------------------------------------ #

    def get_or_compile(self, source: str, *, name: str = "script",
                       provider=None, plan=None,
                       nprocs: Optional[int] = None, machine=None,
                       backend: Optional[str] = None,
                       native: Optional[str] = None,
                       key_plan=None, disk: bool = True) -> CacheOutcome:
        """Return the compiled program for this request, compiling at
        most once per key across all concurrent callers.  ``disk=False``
        keeps this request out of the on-disk tier both ways (the
        autotuner's candidate sweep wants in-process memo semantics)."""
        key = self.key(source, name=name, provider=provider, plan=plan,
                       nprocs=nprocs, machine=machine, backend=backend,
                       native=native, key_plan=key_plan)
        while True:
            with self._lock:
                self._purge_expired_locked()
                entry = self._entries.get(key)
                if entry is not None:
                    entry.stamp = self.clock()
                    self._entries.move_to_end(key)
                    self._stats["hits"] += 1
                    return CacheOutcome(program=entry.program, key=key,
                                        hit=True, tier=entry.tier)
                waiter = self._inflight.get(key)
                if waiter is None:
                    self._inflight[key] = threading.Event()
                    break
            waiter.wait()
        try:
            outcome = self._build(key, source, name=name, provider=provider,
                                  plan=plan, disk=disk)
        finally:
            with self._lock:
                event = self._inflight.pop(key, None)
            if event is not None:
                event.set()
        return outcome

    def _build(self, key: str, source: str, *, name: str, provider,
               plan, disk: bool = True) -> CacheOutcome:
        canon = self._canonical(source)
        provider_fp, disk_ok = provider_fingerprint(provider)
        disk_ok = disk_ok and disk
        program = self._disk_lookup(key, provider) if disk_ok else None
        if program is not None:
            with self._lock:
                self._stats["hits"] += 1
                self._stats["disk_hits"] += 1
                self._insert_locked(key, program, tier="disk")
            return CacheOutcome(program=program, key=key, hit=True,
                                tier="disk")

        proj = self._projection_key(canon, name, provider_fp, plan)
        with self._lock:
            shared = self._programs.get(proj)
        if shared is not None:
            with self._lock:
                self._stats["misses"] += 1
                self._stats["shared"] += 1
                self._insert_locked(key, shared, tier="memory")
            return CacheOutcome(program=shared, key=key, hit=False,
                                tier=None, shared=True)

        program = compile_source(source, provider, name=name, plan=plan)
        with self._lock:
            self._stats["misses"] += 1
            self._stats["compiles"] += 1
            self._programs[proj] = program
            if len(self._programs) > 4 * self.max_entries:
                self._programs.pop(next(iter(self._programs)))
            self._insert_locked(key, program, tier="memory")
        if disk_ok:
            self._disk_publish(key, source, canon, program, provider)
        return CacheOutcome(program=program, key=key, hit=False, tier=None,
                            passes=list(program.pass_timings))

    # ------------------------------------------------------------------ #
    # memory tier bookkeeping (call with the lock held)
    # ------------------------------------------------------------------ #

    def _insert_locked(self, key: str, program: CompiledProgram,
                       tier: str) -> None:
        self._entries[key] = _Entry(program=program, stamp=self.clock(),
                                    tier=tier)
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self._stats["evictions_lru"] += 1

    def _purge_expired_locked(self) -> None:
        if self.ttl is None:
            return
        now = self.clock()
        stale = [k for k, e in self._entries.items()
                 if now - e.stamp > self.ttl]
        for k in stale:
            del self._entries[k]
            self._stats["evictions_ttl"] += 1

    # ------------------------------------------------------------------ #
    # disk tier
    # ------------------------------------------------------------------ #

    def _disk_path(self, key: str) -> Optional[Path]:
        return None if self.disk_root is None \
            else self.disk_root / f"p_{key}.json"

    def _disk_lookup(self, key: str, provider) -> Optional[CompiledProgram]:
        path = self._disk_path(key)
        if path is None or not path.exists():
            return None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if payload.get("version") != PAYLOAD_VERSION:
            return None
        for fname, expected in (payload.get("deps") or {}).items():
            if _function_hash(provider, fname) != expected:
                return None           # provider content drifted: stale
        try:
            return self._rehydrate(payload, provider)
        except Exception:
            return None

    def _rehydrate(self, payload: dict, provider) -> CompiledProgram:
        from ..ir.licm import LicmStats
        from ..ir.peephole import PeepholeStats

        plan = plan_from_dict(payload.get("plan"))
        return CompiledProgram(
            name=payload["name"],
            resolved=None,
            types=None,
            ir=None,
            python_source=payload["python_source"],
            peephole_stats=PeepholeStats(**payload["peephole"]),
            licm_stats=LicmStats(**payload["licm"]),
            provider=provider if provider is not None else EMPTY_PROVIDER,
            pass_timings=[],
            plan=plan,
            source=payload["source"],
        )

    def _disk_publish(self, key: str, source: str, canon: str,
                      program: CompiledProgram, provider) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        deps: dict[str, str] = {}
        if program.resolved is not None and provider is not None:
            for fname in program.resolved.functions:
                digest = _function_hash(provider, fname)
                if digest is None:
                    return            # unhashable dep: skip publication
                deps[fname] = digest
        payload = {
            "version": PAYLOAD_VERSION,
            "key": key,
            "name": program.name,
            "source": source,
            "canonical": canon,
            "python_source": program.python_source,
            "peephole": dataclasses.asdict(program.peephole_stats),
            "licm": dataclasses.asdict(program.licm_stats),
            "plan": None if program.plan is None else program.plan.as_dict(),
            "deps": deps,
            "created": time.time(),
        }
        try:
            if not self._disk_ready:
                self.disk_root.mkdir(parents=True, exist_ok=True)
                self._disk_ready = True
            tmp = self.disk_root / f"p_{key}.{os.getpid()}.tmp"
            tmp.write_text(json.dumps(payload), encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            pass                      # disk tier is best-effort

    # ------------------------------------------------------------------ #
    # introspection / maintenance
    # ------------------------------------------------------------------ #

    def stats(self) -> dict:
        with self._lock:
            return dict(self._stats, size=len(self._entries),
                        maxsize=self.max_entries,
                        disk_root=str(self.disk_root)
                        if self.disk_root else None)

    def contains(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def purge(self) -> None:
        """Force a TTL sweep of the memory tier."""
        with self._lock:
            self._purge_expired_locked()

    def clear(self, disk: bool = False) -> None:
        with self._lock:
            self._entries.clear()
            self._programs.clear()
            self._canon_memo.clear()
            for stat in self._stats:
                self._stats[stat] = 0
        if disk and self.disk_root is not None and self.disk_root.exists():
            for path in self.disk_root.glob("p_*.json"):
                try:
                    path.unlink()
                except OSError:
                    pass


# -------------------------------------------------------------------------- #
# the process-wide cache every layer (CLI, REPL, autotuner, server)
# shares by default
# -------------------------------------------------------------------------- #

_default_cache: Optional[CompileCache] = None
_default_lock = threading.Lock()


def get_compile_cache() -> CompileCache:
    global _default_cache
    with _default_lock:
        if _default_cache is None:
            _default_cache = CompileCache()
        return _default_cache


def set_compile_cache(cache: Optional[CompileCache]) -> Optional[CompileCache]:
    """Swap the process-wide cache (tests inject tmp-dir/fake-clock
    instances); returns the previous one."""
    global _default_cache
    with _default_lock:
        previous, _default_cache = _default_cache, cache
        return previous
