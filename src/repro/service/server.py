"""The compile/run service: a threaded socket server over the shared
:class:`~repro.service.cache.CompileCache`.

``python -m repro.serve`` (or ``python -m repro serve``) starts one;
each accepted connection is a *session* served by its own thread.
Sessions multiplex over the shared compile cache — N sessions
requesting the same program pay exactly one compile — while every run
gets a fresh, isolated :class:`~repro.runtime.context.RuntimeContext`
(own workspace, own seeded RNG, own memory tracker), so sessions can
never observe each other's state.  Hosted data *is* deliberately
shared: ``mem://``/``file://``/``s3://`` URLs resolve through one
:class:`~repro.service.stores.StoreManager`.

Protocol (newline-delimited JSON; see docs/SERVICE.md):

``{"op": "ping"}``
    Liveness + session id.
``{"op": "compile", "source": ..., [name, nprocs, machine, backend,
   native, plan, mfiles]}``
    Compile (or fetch) the program; reports the cache key, hit/tier,
    and the compiler passes executed *for this request* (``[]`` warm).
``{"op": "run", ... compile fields ..., [seed, scheme, cache_gathers,
   watchdog, trace]}``
    Compile-or-fetch then execute; streams back output, modeled
    elapsed/per-rank clocks, communication counters, the JSON-encoded
    final workspace, and (``trace: true``) the canonical trace SHA.
``{"op": "trace", ...}``
    ``run`` with tracing forced on, plus the rendered per-source-line
    profile and pass report.
``{"op": "stats"}``
    Cache statistics and server counters.
``{"op": "shutdown"}``
    Stop accepting sessions and unblock ``serve_forever``.

Every request is answered — errors come back structured
(``{"ok": false, "error": <type>, "message": ...}``) and the session
survives them; a per-request ``watchdog`` aborts only that session's
run.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Optional

import numpy as np

from ..errors import OtterError
from .cache import CompileCache, plan_from_dict
from .stores import StoreManager, default_manager
from .transport import LoopbackTransport, SocketTransport, Transport, \
    TransportClosed

PROTOCOL_VERSION = 1

_COMPILE_FIELDS = ("source", "name", "nprocs", "machine", "backend",
                   "native", "plan", "mfiles")
_RUN_FIELDS = _COMPILE_FIELDS + ("seed", "scheme", "cache_gathers",
                                 "watchdog", "trace")


def _jsonify_value(value: Any) -> Any:
    """Workspace value → JSON (floats stay full-precision via repr-less
    float; matrices carry shape + nested lists; complex splits re/im)."""
    if isinstance(value, str):
        return {"type": "char", "data": value}
    if isinstance(value, complex):
        return {"type": "complex", "re": value.real, "im": value.imag}
    if isinstance(value, (int, float, np.floating, np.integer)):
        return {"type": "double", "data": float(value)}
    arr = np.asarray(value)
    if np.iscomplexobj(arr):
        return {"type": "complex_matrix", "shape": list(arr.shape),
                "re": np.real(arr).tolist(), "im": np.imag(arr).tolist()}
    return {"type": "matrix", "shape": list(arr.shape),
            "data": arr.tolist()}


def _jsonify_workspace(workspace: dict) -> dict:
    return {name: _jsonify_value(value)
            for name, value in sorted(workspace.items())}


class ServiceServer:
    """Threaded compile/run server multiplexing one shared cache."""

    def __init__(self, cache: Optional[CompileCache] = None,
                 stores: Optional[StoreManager] = None,
                 host: str = "127.0.0.1", port: int = 0):
        self.cache = cache if cache is not None else CompileCache()
        self.stores = stores if stores is not None else default_manager()
        self.host = host
        self.port = port
        self.address: Optional[tuple[str, int]] = None
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._stopped = threading.Event()
        self._lock = threading.Lock()
        self._session_threads: set[threading.Thread] = set()
        self._session_seq = 0
        self.counters = {"sessions": 0, "requests": 0, "errors": 0,
                        "runs": 0, "compiles_requested": 0}

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> tuple[str, int]:
        """Bind, start accepting sessions, return ``(host, port)``."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(64)
        self._listener = listener
        self.address = listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True)
        self._accept_thread.start()
        return self.address

    def serve_forever(self) -> None:
        """Start (if needed) and block until ``shutdown``/``stop``."""
        if self._listener is None:
            self.start()
        self._stopped.wait()

    def stop(self) -> None:
        self._stopped.set()
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass

    @property
    def stopped(self) -> bool:
        return self._stopped.is_set()

    def join_sessions(self, timeout: float = 2.0) -> None:
        """Wait (bounded) for live session threads to finish their final
        sends — ``stop()`` unblocks ``serve_forever`` *before* the
        shutdown acknowledgement goes out, so a process exiting right
        after it must drain sessions or race the last response."""
        deadline = time.monotonic() + timeout
        with self._lock:
            threads = list(self._session_threads)
        for thread in threads:
            if thread is threading.current_thread():
                continue
            thread.join(timeout=max(0.0, deadline - time.monotonic()))

    def _accept_loop(self) -> None:
        while not self._stopped.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return                  # listener closed by stop()
            transport = SocketTransport(conn)
            threading.Thread(target=self.serve_session, args=(transport,),
                             name="repro-serve-session", daemon=True).start()

    def loopback(self):
        """An in-process client whose requests run through the very
        same session loop as TCP clients (the tests' transport)."""
        from .client import ServiceClient

        client_end, server_end = LoopbackTransport.pair()
        threading.Thread(target=self.serve_session, args=(server_end,),
                         name="repro-serve-loopback", daemon=True).start()
        return ServiceClient(client_end)

    # ------------------------------------------------------------------ #
    # session loop
    # ------------------------------------------------------------------ #

    def serve_session(self, transport: Transport) -> None:
        with self._lock:
            self._session_seq += 1
            session_id = self._session_seq
            self.counters["sessions"] += 1
            self._session_threads.add(threading.current_thread())
        try:
            while not self._stopped.is_set():
                request = transport.recv()
                if request is None:
                    return
                try:
                    response = self._dispatch(request, session_id)
                except TransportClosed:
                    raise
                except OtterError as exc:
                    response = self._error(request, exc)
                except Exception as exc:  # noqa: BLE001 — session survives
                    response = self._error(request, exc)
                # stop *before* answering a shutdown, so the flag is
                # already set when the client reads the acknowledgement
                closing = request.get("op") == "shutdown" \
                    and response.get("ok", False)
                if closing:
                    self.stop()
                try:
                    transport.send(response)
                except TransportClosed:
                    return
                if closing:
                    return
        finally:
            transport.close()
            with self._lock:
                self._session_threads.discard(threading.current_thread())

    def _error(self, request: dict, exc: Exception) -> dict:
        with self._lock:
            self.counters["errors"] += 1
        return {"ok": False, "op": request.get("op"),
                "error": type(exc).__name__, "message": str(exc)}

    def _dispatch(self, request: dict, session_id: int) -> dict:
        with self._lock:
            self.counters["requests"] += 1
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "op": "ping", "pong": True,
                    "session": session_id, "protocol": PROTOCOL_VERSION}
        if op == "compile":
            return self._op_compile(request, session_id)
        if op == "run":
            return self._op_run(request, session_id, force_trace=False)
        if op == "trace":
            return self._op_run(request, session_id, force_trace=True)
        if op == "stats":
            return self._op_stats(session_id)
        if op == "shutdown":
            return {"ok": True, "op": "shutdown", "session": session_id}
        raise OtterError(f"unknown op {op!r} (expected ping/compile/run/"
                         f"trace/stats/shutdown)")

    # ------------------------------------------------------------------ #
    # ops
    # ------------------------------------------------------------------ #

    def _compile_config(self, request: dict) -> dict:
        if not isinstance(request.get("source"), str):
            raise OtterError("compile/run needs a 'source' string")
        nprocs = request.get("nprocs", 1)
        if not isinstance(nprocs, int) or nprocs < 1:
            raise OtterError(f"nprocs must be a positive int "
                             f"(got {nprocs!r})")
        provider = None
        mfiles = request.get("mfiles")
        if mfiles:
            from ..frontend.mfile import DictProvider

            provider = DictProvider(dict(mfiles))
        machine_name = request.get("machine") or "meiko"
        from ..mpi.machine import get_machine

        return {
            "source": request["source"],
            "name": request.get("name") or "script",
            "provider": provider,
            "plan": plan_from_dict(request.get("plan")),
            "nprocs": nprocs,
            "machine": get_machine(machine_name),
            "backend": request.get("backend"),
            "native": request.get("native"),
        }

    def _op_compile(self, request: dict, session_id: int) -> dict:
        response, _cfg, _outcome = self._compile_common(request, session_id)
        return response

    def _compile_common(self, request: dict, session_id: int):
        with self._lock:
            self.counters["compiles_requested"] += 1
        cfg = self._compile_config(request)
        outcome = self.cache.get_or_compile(
            cfg["source"], name=cfg["name"], provider=cfg["provider"],
            plan=cfg["plan"], nprocs=cfg["nprocs"], machine=cfg["machine"],
            backend=cfg["backend"], native=cfg["native"])
        program = outcome.program
        return {
            "ok": True, "op": "compile", "session": session_id,
            "key": outcome.key, "cached": outcome.hit,
            "tier": outcome.tier, "shared": outcome.shared,
            "passes": [[name, seconds] for name, seconds in outcome.passes],
            "peephole": {"transpose_fused":
                         program.peephole_stats.transpose_fused,
                         "cse_removed": program.peephole_stats.cse_removed},
            "licm_hoisted": program.licm_stats.hoisted,
        }, cfg, outcome

    def _op_run(self, request: dict, session_id: int,
                force_trace: bool) -> dict:
        compile_response, cfg, outcome = \
            self._compile_common(request, session_id)
        trace = bool(request.get("trace")) or force_trace
        result = outcome.program.run(
            nprocs=cfg["nprocs"], machine=cfg["machine"],
            seed=int(request.get("seed", 0)),
            scheme=request.get("scheme", "block"),
            cache_gathers=bool(request.get("cache_gathers", False)),
            backend=cfg["backend"],
            watchdog=request.get("watchdog"),
            trace=trace or None,
            native=cfg["native"],
            stores=self.stores)
        with self._lock:
            self.counters["runs"] += 1
        response = dict(compile_response)
        response["op"] = "trace" if force_trace else "run"
        response.update({
            "output": result.output,
            "elapsed": result.elapsed,
            "rank_times": list(result.spmd.times),
            "messages": result.spmd.messages_sent,
            "bytes": result.spmd.bytes_sent,
            "collectives": result.spmd.collectives,
            "backend": result.spmd.backend,
            "workspace": _jsonify_workspace(result.workspace),
        })
        if result.trace is not None:
            import hashlib

            from ..trace import canonical_events, render_source_profile

            canonical = canonical_events(result.trace)
            sha = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
            summary = {"sha": sha,
                       "events": sum(len(r.events)
                                     for r in result.trace.recorders)}
            if force_trace:
                from ..trace import pass_report

                summary["profile"] = render_source_profile(
                    result.trace.line_profile(), cfg["source"],
                    filename=cfg["name"], elapsed=result.elapsed)
                summary["pass_report"] = pass_report(
                    outcome.passes, native=result.native,
                    cache=outcome.describe())
            response["trace"] = summary
        return response

    def _op_stats(self, session_id: int) -> dict:
        from ..runtime.memory import current_tracker

        with self._lock:
            counters = dict(self.counters)
        return {"ok": True, "op": "stats", "session": session_id,
                "cache": self.cache.stats(), "counters": counters,
                # regression probe: a failed run must never leave its
                # thread-local memory tracker installed on the session
                # thread (the PR 4 inline-run leak, service edition)
                "tracker_installed": current_tracker() is not None,
                "store_schemes": self.stores.schemes()}
