"""Client for the compile/run service.

One :class:`ServiceClient` is one session.  Convenience methods wrap
the wire ops and raise :class:`ServiceError` on structured failures, so
callers get Python exceptions with the server-side error type attached
instead of fishing through response dicts::

    client = ServiceClient.connect("127.0.0.1", 7477)
    reply = client.run("disp(sum(ones(4,4)));", nprocs=4)
    print(reply["output"], reply["cached"])
"""

from __future__ import annotations

import socket
from typing import Any, Optional

from ..errors import OtterError
from .transport import SocketTransport, Transport, TransportClosed


class ServiceError(OtterError):
    """A structured error response from the service."""

    def __init__(self, message: str, kind: str = "OtterError",
                 response: Optional[dict] = None):
        super().__init__(message)
        self.kind = kind
        self.response = response or {}


class ServiceClient:
    """One session against a :class:`~repro.service.server.ServiceServer`."""

    def __init__(self, transport: Transport):
        self._transport = transport

    @classmethod
    def connect(cls, host: str, port: int,
                timeout: Optional[float] = None) -> "ServiceClient":
        sock = socket.create_connection((host, port), timeout=timeout)
        return cls(SocketTransport(sock))

    # ------------------------------------------------------------------ #

    def request(self, op: str, **fields: Any) -> dict:
        """Send one op and return the raw response dict (no raising on
        ``ok: false`` — callers who want exceptions use the wrappers)."""
        message = {"op": op}
        message.update({k: v for k, v in fields.items() if v is not None})
        self._transport.send(message)
        response = self._transport.recv()
        if response is None:
            raise TransportClosed(f"server closed the session during {op!r}")
        return response

    def _checked(self, op: str, **fields: Any) -> dict:
        response = self.request(op, **fields)
        if not response.get("ok"):
            raise ServiceError(response.get("message", "service error"),
                               kind=response.get("error", "OtterError"),
                               response=response)
        return response

    # ------------------------------------------------------------------ #

    def ping(self) -> dict:
        return self._checked("ping")

    def compile(self, source: str, **cfg: Any) -> dict:
        return self._checked("compile", source=source, **cfg)

    def run(self, source: str, **cfg: Any) -> dict:
        return self._checked("run", source=source, **cfg)

    def trace(self, source: str, **cfg: Any) -> dict:
        return self._checked("trace", source=source, **cfg)

    def stats(self) -> dict:
        return self._checked("stats")

    def shutdown(self) -> dict:
        return self._checked("shutdown")

    def close(self) -> None:
        self._transport.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
