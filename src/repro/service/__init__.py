"""Compile-as-a-service: the long-lived production shape of the compiler.

The paper's premise is compile-once-run-parallel, but a fresh process
pays all seven compiler passes on every ``run``.  This package turns the
compiler into a service:

* :class:`~repro.service.cache.CompileCache` — a content-addressed
  compile cache (in-process LRU tier + shared on-disk tier) keyed by
  sha256 of the *canonical* source plus every run-affecting knob, so a
  warm ``run`` performs zero compiler passes.
* :class:`~repro.service.stores.StoreManager` — a registry of
  URL-schema datastores (``file://``, ``mem://``, and an ``s3://``
  stub) that ``load``/``save`` resolve through, so the same script runs
  against hosted data.
* :class:`~repro.service.server.ServiceServer` /
  :class:`~repro.service.client.ServiceClient` — a threaded socket
  server (``python -m repro.serve``) multiplexing concurrent sessions
  over the shared cache, streaming back run results and trace summaries
  per request.

See docs/SERVICE.md for the cache key contract and the wire protocol.
"""

from .cache import (
    ENV_COMPILE_CACHE,
    CacheOutcome,
    CompileCache,
    canonical_source,
    get_compile_cache,
    set_compile_cache,
)
from .client import ServiceClient, ServiceError
from .server import ServiceServer
from .stores import (
    DataStore,
    FileStore,
    MemStore,
    S3Store,
    StoreManager,
    StoreUnavailableError,
    default_manager,
)

__all__ = [
    "ENV_COMPILE_CACHE",
    "CacheOutcome",
    "CompileCache",
    "canonical_source",
    "get_compile_cache",
    "set_compile_cache",
    "DataStore",
    "FileStore",
    "MemStore",
    "S3Store",
    "StoreManager",
    "StoreUnavailableError",
    "default_manager",
    "ServiceServer",
    "ServiceClient",
    "ServiceError",
]
