"""Message transports for the compile service.

The wire format is deliberately boring: one JSON object per line,
UTF-8, newline-terminated.  Two transports speak it:

:class:`SocketTransport`
    A connected TCP socket (the real server).

:class:`LoopbackTransport`
    A pair of in-process queues.  The service tests run every request
    through the *same* session dispatch loop as TCP clients without
    binding a port, so protocol behavior (including error paths) is
    covered deterministically and without firewall/sandbox surprises.
"""

from __future__ import annotations

import json
import queue
import socket
from typing import Optional


class TransportClosed(Exception):
    """The peer went away mid-conversation."""


class Transport:
    def send(self, message: dict) -> None:
        raise NotImplementedError

    def recv(self) -> Optional[dict]:
        """Next message, or ``None`` on orderly close."""
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class SocketTransport(Transport):
    """Newline-delimited JSON over a connected socket."""

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._rfile = sock.makefile("rb")

    def send(self, message: dict) -> None:
        data = json.dumps(message, separators=(",", ":")).encode("utf-8")
        try:
            self._sock.sendall(data + b"\n")
        except OSError as exc:
            raise TransportClosed(str(exc)) from exc

    def recv(self) -> Optional[dict]:
        try:
            line = self._rfile.readline()
        except OSError:
            return None
        if not line:
            return None
        return json.loads(line.decode("utf-8"))

    def close(self) -> None:
        try:
            self._rfile.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass


class LoopbackTransport(Transport):
    """One end of an in-process queue pair."""

    _CLOSE = object()

    def __init__(self, inbox: "queue.Queue", outbox: "queue.Queue"):
        self._inbox = inbox
        self._outbox = outbox
        self._closed = False

    @classmethod
    def pair(cls) -> tuple["LoopbackTransport", "LoopbackTransport"]:
        a_to_b: "queue.Queue" = queue.Queue()
        b_to_a: "queue.Queue" = queue.Queue()
        return cls(b_to_a, a_to_b), cls(a_to_b, b_to_a)

    def send(self, message: dict) -> None:
        if self._closed:
            raise TransportClosed("loopback transport closed")
        # round-trip through JSON so loopback tests exercise the same
        # serializability constraints as the socket path
        self._outbox.put(json.loads(json.dumps(message)))

    def recv(self) -> Optional[dict]:
        item = self._inbox.get()
        if item is self._CLOSE:
            return None
        return item

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._outbox.put(self._CLOSE)
