"""Pluggable URL-schema datastores for ``load``/``save``.

The paper's run-time library coordinates all I/O through one processor;
its only data source was local sample files.  Production scripts want
the *same* source text to run against hosted data, so ``load``/``save``
resolve any ``scheme://...`` target through a :class:`StoreManager` —
a registry mapping URL schemes to :class:`DataStore` implementations
(the mlrun ``datastore.py`` shape: ``schema_to_store``):

``file://<path>``
    The local filesystem (absolute paths: ``file:///tmp/x.dat``).
``mem://<key>``
    An in-process key→bytes mapping shared by every session of the
    process — the "hosted" store the service tests and demos use.
``s3://<bucket>/<key>``
    A stub behind the same interface: it parses bucket/key and speaks
    to any object with ``get_object``/``put_object``/``head_object``
    (injectable for tests); without an injected client it requires
    ``boto3``, and where that is absent plain use raises
    :class:`StoreUnavailableError` with a clear message instead of an
    ImportError deep in a run.

Matrices travel as MATLAB-friendly whitespace text (``numpy.loadtxt``
compatible), so a ``mem://`` round trip is bit-comparable to the
``DictProvider`` data-file path.
"""

from __future__ import annotations

import io
import os
import threading
from typing import Callable, Optional
from urllib.parse import urlparse

import numpy as np

from ..errors import OtterError


class StoreError(OtterError):
    """A datastore operation failed (missing object, bad URL, ...)."""


class StoreUnavailableError(StoreError):
    """The scheme is registered but its backing driver is absent."""


def parse_url(url: str) -> tuple[str, str]:
    """``(scheme, path)`` of a store URL; raises on a scheme-less one."""
    parsed = urlparse(url)
    if not parsed.scheme:
        raise StoreError(f"not a store URL (no scheme): {url!r}")
    path = parsed.netloc + parsed.path
    return parsed.scheme.lower(), path


def is_store_url(name: str) -> bool:
    return "://" in name


class DataStore:
    """One scheme's byte-addressed object interface."""

    scheme = "abstract"

    def get(self, path: str) -> bytes:
        raise NotImplementedError

    def put(self, path: str, data: bytes) -> None:
        raise NotImplementedError

    def exists(self, path: str) -> bool:
        raise NotImplementedError

    def delete(self, path: str) -> None:
        raise NotImplementedError

    def listdir(self, path: str = "") -> list[str]:
        raise NotImplementedError

    # -- text/matrix conveniences (shared by every scheme) -------------- #

    def get_text(self, path: str) -> str:
        return self.get(path).decode("utf-8")

    def put_text(self, path: str, text: str) -> None:
        self.put(path, text.encode("utf-8"))

    def load_matrix(self, path: str) -> np.ndarray:
        return np.loadtxt(io.StringIO(self.get_text(path)))

    def save_matrix(self, path: str, array: np.ndarray) -> None:
        buf = io.StringIO()
        np.savetxt(buf, np.atleast_2d(np.asarray(array)), fmt="%.17g")
        self.put_text(path, buf.getvalue())


class FileStore(DataStore):
    """``file://`` — the local filesystem."""

    scheme = "file"

    def _resolve(self, path: str) -> str:
        return os.path.expanduser(path if path.startswith("/")
                                  else "/" + path)

    def get(self, path: str) -> bytes:
        full = self._resolve(path)
        try:
            with open(full, "rb") as fh:
                return fh.read()
        except OSError as exc:
            raise StoreError(f"file://{path}: {exc}") from exc

    def put(self, path: str, data: bytes) -> None:
        full = self._resolve(path)
        os.makedirs(os.path.dirname(full) or "/", exist_ok=True)
        tmp = f"{full}.{os.getpid()}.tmp"
        with open(tmp, "wb") as fh:
            fh.write(data)
        os.replace(tmp, full)

    def exists(self, path: str) -> bool:
        return os.path.isfile(self._resolve(path))

    def delete(self, path: str) -> None:
        try:
            os.unlink(self._resolve(path))
        except OSError as exc:
            raise StoreError(f"file://{path}: {exc}") from exc

    def listdir(self, path: str = "") -> list[str]:
        try:
            return sorted(os.listdir(self._resolve(path)))
        except OSError as exc:
            raise StoreError(f"file://{path}: {exc}") from exc


class MemStore(DataStore):
    """``mem://`` — an in-process object map (the hosted-data stand-in)."""

    scheme = "mem"

    def __init__(self):
        self._objects: dict[str, bytes] = {}
        self._lock = threading.Lock()

    def get(self, path: str) -> bytes:
        with self._lock:
            try:
                return self._objects[path]
            except KeyError:
                raise StoreError(f"mem://{path}: no such object") from None

    def put(self, path: str, data: bytes) -> None:
        with self._lock:
            self._objects[path] = bytes(data)

    def exists(self, path: str) -> bool:
        with self._lock:
            return path in self._objects

    def delete(self, path: str) -> None:
        with self._lock:
            if self._objects.pop(path, None) is None:
                raise StoreError(f"mem://{path}: no such object")

    def listdir(self, path: str = "") -> list[str]:
        prefix = path.rstrip("/") + "/" if path else ""
        with self._lock:
            return sorted(k for k in self._objects if k.startswith(prefix))


class S3Store(DataStore):
    """``s3://bucket/key`` — stub over an injectable object client.

    ``client`` needs ``get_object(Bucket=, Key=)`` →
    ``{"Body": file-like}``, ``put_object(Bucket=, Key=, Body=)``, and
    ``head_object(Bucket=, Key=)`` (raising on absence) — the boto3
    surface.  Without an injected client, construction defers and first
    use tries ``boto3``; where that is missing, plain use degrades to a
    clear :class:`StoreUnavailableError`.
    """

    scheme = "s3"

    def __init__(self, client=None):
        self._client = client

    def _require_client(self):
        if self._client is None:
            try:
                import boto3  # type: ignore

                self._client = boto3.client("s3")
            except ImportError:
                raise StoreUnavailableError(
                    "s3:// store needs boto3 (not installed in this "
                    "environment) or an injected client — "
                    "StoreManager.register('s3', lambda: S3Store(client))"
                ) from None
        return self._client

    @staticmethod
    def _split(path: str) -> tuple[str, str]:
        bucket, _, key = path.partition("/")
        if not bucket or not key:
            raise StoreError(f"s3://{path}: need s3://bucket/key")
        return bucket, key

    def get(self, path: str) -> bytes:
        bucket, key = self._split(path)
        client = self._require_client()
        try:
            return client.get_object(Bucket=bucket, Key=key)["Body"].read()
        except StoreError:
            raise
        except Exception as exc:
            raise StoreError(f"s3://{path}: {exc}") from exc

    def put(self, path: str, data: bytes) -> None:
        bucket, key = self._split(path)
        client = self._require_client()
        try:
            client.put_object(Bucket=bucket, Key=key, Body=bytes(data))
        except Exception as exc:
            raise StoreError(f"s3://{path}: {exc}") from exc

    def exists(self, path: str) -> bool:
        bucket, key = self._split(path)
        client = self._require_client()
        try:
            client.head_object(Bucket=bucket, Key=key)
            return True
        except StoreUnavailableError:
            raise
        except Exception:
            return False

    def delete(self, path: str) -> None:
        bucket, key = self._split(path)
        client = self._require_client()
        try:
            client.delete_object(Bucket=bucket, Key=key)
        except Exception as exc:
            raise StoreError(f"s3://{path}: {exc}") from exc

    def listdir(self, path: str = "") -> list[str]:
        raise StoreUnavailableError("s3:// listing is not implemented "
                                    "by the stub")


class StoreManager:
    """Scheme → store registry; resolves URLs to ``(store, path)``.

    Stores are constructed lazily (one instance per scheme per manager)
    so registering the ``s3://`` stub costs nothing until a script
    actually names an ``s3://`` URL.
    """

    def __init__(self):
        self._factories: dict[str, Callable[[], DataStore]] = {}
        self._instances: dict[str, DataStore] = {}
        self._lock = threading.Lock()
        self.register("file", FileStore)
        self.register("mem", MemStore)
        self.register("s3", S3Store)

    def register(self, scheme: str,
                 factory: Callable[[], DataStore]) -> None:
        """Register (or replace) the factory for a URL scheme."""
        with self._lock:
            self._factories[scheme.lower()] = factory
            self._instances.pop(scheme.lower(), None)

    def schemes(self) -> list[str]:
        with self._lock:
            return sorted(self._factories)

    def store_for(self, scheme: str) -> DataStore:
        scheme = scheme.lower()
        with self._lock:
            store = self._instances.get(scheme)
            if store is None:
                factory = self._factories.get(scheme)
                if factory is None:
                    known = ", ".join(sorted(self._factories))
                    raise StoreError(f"no datastore registered for "
                                     f"{scheme}:// (known: {known})")
                store = self._instances[scheme] = factory()
        return store

    def resolve(self, url: str) -> tuple[DataStore, str]:
        scheme, path = parse_url(url)
        return self.store_for(scheme), path

    # -- URL-level conveniences ----------------------------------------- #

    def get(self, url: str) -> bytes:
        store, path = self.resolve(url)
        return store.get(path)

    def put(self, url: str, data: bytes) -> None:
        store, path = self.resolve(url)
        store.put(path, data)

    def exists(self, url: str) -> bool:
        store, path = self.resolve(url)
        return store.exists(path)

    def load_matrix(self, url: str) -> np.ndarray:
        store, path = self.resolve(url)
        return store.load_matrix(path)

    def save_matrix(self, url: str, array: np.ndarray) -> None:
        store, path = self.resolve(url)
        store.save_matrix(path, array)

    def put_text(self, url: str, text: str) -> None:
        store, path = self.resolve(url)
        store.put_text(path, text)

    def get_text(self, url: str) -> str:
        store, path = self.resolve(url)
        return store.get_text(path)


_default_manager: Optional[StoreManager] = None
_default_lock = threading.Lock()


def default_manager() -> StoreManager:
    """The process-wide manager ``load``/``save`` use when the run was
    not given an explicit one (its ``mem://`` store is what makes
    hosted data visible across sessions of one server)."""
    global _default_manager
    with _default_lock:
        if _default_manager is None:
            _default_manager = StoreManager()
        return _default_manager


def set_default_manager(manager: Optional[StoreManager]) \
        -> Optional[StoreManager]:
    """Swap the process-wide manager (tests); returns the previous one."""
    global _default_manager
    with _default_lock:
        previous, _default_manager = _default_manager, manager
        return previous
