"""MATCOM-like sequential compiled baseline (Figure 2's third system).

MATCOM (MathTools) translated MATLAB to C++ over a matrix class library
and ran on a single CPU.  Semantically it is the interpreter (identical
results); what differs is the cost model:

* no per-statement interpretation: compiled dispatch is nearly free;
* library-call overhead per *operation* is small (a C++ method call);
* **no loop fusion**: like the interpreter, every elementwise operator
  materializes a temporary (the class-library style), so elementwise
  chains pay memory traffic per operator — this is where Otter's fused
  owner-computes loops win (ocean engineering, n-body);
* clean sequential kernels with no distribution bookkeeping: dense
  matrix kernels run slightly *faster* than Otter's distributed
  run-time on one CPU — this is where MATCOM wins (conjugate gradient,
  transitive closure), reproducing Figure 2's 2-2 split.

The paper benchmarked "version 2 of MathTools' MATCOM compiler (without
BLAS calls)"; the ``flop_factor`` below reflects plain compiled loops.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..frontend.mfile import MFileProvider
from ..interp.costmodel import CostMeter, InterpCostParams
from ..interp.interpreter import Interpreter
from ..mpi.machine import MachineModel


@dataclass(frozen=True)
class MatcomModel:
    """Degradation/improvement factors relative to the machine's CPU."""

    stmt_dispatch: float = 3.0e-7   # compiled statement: negligible
    op_overhead: float = 2.5e-6     # C++ matrix-library call
    elem_factor: float = 1.0        # compiled elementwise loops
    flop_factor: float = 0.85       # sequential kernels, no distribution
    #                                 bookkeeping (beats Otter's runtime)
    mem_factor: float = 1.0         # one temporary per operator (unfused)
    index_time: float = 4.0e-7

    def params(self, machine: MachineModel) -> InterpCostParams:
        cpu = machine.cpu
        return InterpCostParams(
            stmt_dispatch=self.stmt_dispatch,
            op_overhead=self.op_overhead,
            elem_time=cpu.elem_time * self.elem_factor,
            flop_time=cpu.flop_time * self.flop_factor,
            mem_time=cpu.mem_time * self.mem_factor,
            index_time=self.index_time,
        )


DEFAULT_MATCOM = MatcomModel()


def run_matcom(program, machine: MachineModel,
               model: MatcomModel = DEFAULT_MATCOM,
               seed: int = 0) -> tuple[Interpreter, float]:
    """Execute a resolved program under the MATCOM cost model.

    Returns the interpreter (for results/output) and the modeled
    single-CPU execution time in seconds.
    """
    meter = CostMeter(model.params(machine))
    interp = Interpreter(program, meter=meter, seed=seed)
    interp.run()
    return interp, meter.time


def matcom_time(source: str, machine: MachineModel,
                provider: MFileProvider | None = None,
                model: MatcomModel = DEFAULT_MATCOM,
                seed: int = 0) -> float:
    """Modeled MATCOM execution time of a script."""
    from ..analysis.resolve import resolve_program
    from ..frontend.parser import parse_script

    program = resolve_program(parse_script(source), provider)
    _, elapsed = run_matcom(program, machine, model, seed)
    return elapsed
