"""Baseline systems the paper compares against."""

from .matcom import DEFAULT_MATCOM, MatcomModel, matcom_time, run_matcom

__all__ = ["DEFAULT_MATCOM", "MatcomModel", "matcom_time", "run_matcom"]
