"""Pass 5 — guarding scalar element stores.

"Statements manipulating individual elements of matrices ... must be
surrounded by a conditional, so that only the processor owning the matrix
element referenced on the left-hand side of the statement actually
performs the operations on the right-hand side and assigns the result."

The lowering produced generic :class:`IndexAssign` statements; this pass
rewrites the qualifying ones (scalar subscripts, scalar right-hand side)
into the guarded :class:`SetElement` form that both backends emit as an
``ML_owner`` conditional.  Stores that might grow the matrix need no
special treatment here — the run-time store falls back dynamically.
"""

from __future__ import annotations

from ..analysis.lattice import Rank, VarType
from .nodes import (
    ColonSub,
    Const,
    IndexAssign,
    IRFor,
    IRIf,
    IRProgram,
    IRWhile,
    SetElement,
    Var,
)


class _UnitGuard:
    def __init__(self, var_types: dict[str, VarType]):
        self.var_types = var_types
        self.temp_scalar: dict[object, bool] = {}

    def _is_scalar(self, op) -> bool:
        if isinstance(op, Const):
            return True
        if isinstance(op, ColonSub):
            return False
        if isinstance(op, Var):
            vtype = self.var_types.get(op.name)
            return vtype is not None and vtype.rank is Rank.SCALAR
        return self.temp_scalar.get(op, False)

    def run(self, block: list) -> None:
        for i, stmt in enumerate(block):
            dest = getattr(stmt, "dest", None)
            vtype = getattr(stmt, "vtype", None)
            if dest is not None and vtype is not None:
                self.temp_scalar[dest] = vtype.rank is Rank.SCALAR
            if isinstance(stmt, IndexAssign):
                subs_ok = (len(stmt.subs) in (1, 2)
                           and all(self._is_scalar(s) for s in stmt.subs))
                if subs_ok and self._is_scalar(stmt.rhs):
                    guarded = SetElement(var=stmt.var, subs=stmt.subs,
                                         rhs=stmt.rhs, guarded=True)
                    guarded.line = stmt.line
                    block[i] = guarded
            elif isinstance(stmt, IRIf):
                for cond_stmts, _cond, branch in stmt.branches:
                    self.run(cond_stmts)
                    self.run(branch)
                self.run(stmt.orelse)
            elif isinstance(stmt, IRFor):
                self.run(stmt.iter_stmts)
                self.run(stmt.body)
            elif isinstance(stmt, IRWhile):
                self.run(stmt.cond_stmts)
                self.run(stmt.body)


#: recognized guard placements (an autotuner plan knob)
PLACEMENTS = ("owner", "replicated")


def guard_program(ir: IRProgram, placement: str = "owner") -> IRProgram:
    """Run pass 5 in place (and return the program for chaining).

    ``placement="owner"`` (default) rewrites qualifying stores into the
    paper's owner-computes ``SetElement`` guard.  ``"replicated"`` skips
    the rewrite entirely: element stores stay :class:`IndexAssign` and
    execute through the run-time's gather-based replicated path — the
    pre-pass-5 compiler, exposed so the autotuner can measure the guard's
    value instead of trusting it."""
    if placement not in PLACEMENTS:
        raise ValueError(f"unknown guard placement {placement!r}; "
                         f"choose from {PLACEMENTS}")
    if placement == "replicated":
        return ir
    _UnitGuard(ir.var_types).run(ir.body)
    for func in ir.functions.values():
        _UnitGuard(func.var_types).run(func.body)
    return ir
