"""Statement-level IR and the compiler middle-end passes 4-6."""

from .guard import guard_program
from .lower import Lowerer, lower_program
from .nodes import (
    CallUser,
    ColonSub,
    Const,
    Copy,
    Display,
    Elementwise,
    EwExpr,
    EwNode,
    IndexAssign,
    IRBreak,
    IRContinue,
    IRFor,
    IRFunction,
    IRGlobal,
    IRIf,
    IRProgram,
    IRReturn,
    IRStmt,
    IRWhile,
    Operand,
    RTCall,
    SetElement,
    StrConst,
    Temp,
    Var,
    ew_op_count,
    ew_operands,
)
from .licm import LicmStats, licm_program
from .peephole import PeepholeStats, peephole_program
from .pretty import pretty_ir

__all__ = [
    "guard_program", "Lowerer", "lower_program",
    "CallUser", "ColonSub", "Const", "Copy", "Display", "Elementwise",
    "EwExpr", "EwNode", "IndexAssign", "IRBreak", "IRContinue", "IRFor",
    "IRFunction", "IRGlobal", "IRIf", "IRProgram", "IRReturn", "IRStmt",
    "IRWhile", "Operand", "RTCall", "SetElement", "StrConst", "Temp",
    "Var", "ew_op_count", "ew_operands",
    "LicmStats", "licm_program",
    "PeepholeStats", "peephole_program", "pretty_ir",
]
