"""Human-readable IR dump (for tests, debugging, and `--dump-ir`)."""

from __future__ import annotations

from .nodes import (
    CallUser,
    Copy,
    Display,
    Elementwise,
    IndexAssign,
    IRBreak,
    IRContinue,
    IRFor,
    IRGlobal,
    IRIf,
    IRProgram,
    IRReturn,
    IRStmt,
    IRWhile,
    RTCall,
    SetElement,
)


def _fmt_stmt(stmt: IRStmt, indent: int, out: list[str]) -> None:
    pad = "  " * indent
    if isinstance(stmt, IRIf):
        for k, (cond_stmts, cond, branch) in enumerate(stmt.branches):
            for s in cond_stmts:
                _fmt_stmt(s, indent, out)
            head = "if" if k == 0 else "elseif"
            out.append(f"{pad}{head} {cond!r}:")
            for s in branch:
                _fmt_stmt(s, indent + 1, out)
        if stmt.orelse:
            out.append(f"{pad}else:")
            for s in stmt.orelse:
                _fmt_stmt(s, indent + 1, out)
        out.append(f"{pad}end")
    elif isinstance(stmt, IRFor):
        for s in stmt.iter_stmts:
            _fmt_stmt(s, indent, out)
        if stmt.range_triple:
            start, step, stop = stmt.range_triple
            out.append(f"{pad}for {stmt.var!r} = "
                       f"{start!r}:{step!r}:{stop!r}:")
        else:
            out.append(f"{pad}for {stmt.var!r} in {stmt.iter_operand!r}:")
        for s in stmt.body:
            _fmt_stmt(s, indent + 1, out)
        out.append(f"{pad}end")
    elif isinstance(stmt, IRWhile):
        out.append(f"{pad}while:")
        for s in stmt.cond_stmts:
            _fmt_stmt(s, indent + 1, out)
        out.append(f"{pad}  cond {stmt.cond!r}")
        for s in stmt.body:
            _fmt_stmt(s, indent + 1, out)
        out.append(f"{pad}end")
    elif isinstance(stmt, IRBreak):
        out.append(f"{pad}break")
    elif isinstance(stmt, IRContinue):
        out.append(f"{pad}continue")
    elif isinstance(stmt, IRReturn):
        out.append(f"{pad}return")
    elif isinstance(stmt, IRGlobal):
        out.append(f"{pad}global {', '.join(stmt.names)}")
    elif isinstance(stmt, Display):
        out.append(f"{pad}display {stmt.name}")
    elif isinstance(stmt, (RTCall, Elementwise, Copy, SetElement,
                           IndexAssign, CallUser)):
        out.append(f"{pad}{stmt!r}")
    else:
        out.append(f"{pad}<{type(stmt).__name__}>")


def pretty_ir(ir: IRProgram) -> str:
    out: list[str] = [f"program {ir.script_name}:"]
    for stmt in ir.body:
        _fmt_stmt(stmt, 1, out)
    for func in ir.functions.values():
        rets = ", ".join(func.returns)
        params = ", ".join(func.params)
        out.append(f"function [{rets}] = {func.name}({params}):")
        for stmt in func.body:
            _fmt_stmt(stmt, 1, out)
    return "\n".join(out)
