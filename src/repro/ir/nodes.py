"""Statement-level intermediate representation (output of pass 4).

Pass 4 ("expression rewriting") hoists every subexpression that may
involve interprocessor communication to the statement level, where it
becomes a run-time-library call (:class:`RTCall`).  What remains of each
statement is a purely elementwise expression tree (:class:`Elementwise`) —
the paper's generated ``for`` loop over each processor's local elements.

Control flow stays structured (:class:`IRIf`/:class:`IRFor`/:class:`IRWhile`)
so both backends can emit natural code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..analysis.lattice import UNKNOWN, VarType

# --------------------------------------------------------------------------
# operands
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Operand:
    pass


@dataclass(frozen=True)
class Var(Operand):
    """A user variable."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Temp(Operand):
    """A compiler temporary (the paper's ``ML_tmp<k>``)."""

    index: int

    @property
    def name(self) -> str:
        return f"ML_tmp{self.index}"

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Operand):
    """A numeric constant (complex for imaginary literals)."""

    value: complex

    def __repr__(self) -> str:
        v = self.value
        if isinstance(v, complex) and v.imag == 0:
            v = v.real
        return repr(v)


@dataclass(frozen=True)
class StrConst(Operand):
    value: str

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class ColonSub(Operand):
    """A ':' whole-dimension subscript."""

    def __repr__(self) -> str:
        return ":"


# --------------------------------------------------------------------------
# elementwise expression trees
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class EwNode:
    """Interior node of a fused elementwise tree.

    ``op`` is a MATLAB operator (``+``, ``.*``, ``<=``, ...), a unary op
    (``u-``, ``u+``, ``u~``), a short-circuit op (``&&``/``||``, scalar
    context only), or an elementwise builtin (``fn:sqrt``).
    """

    op: str
    args: tuple["EwExpr", ...]
    #: result of this node is a replicated scalar: it contributes no
    #: per-element work to the fused loop (any real compiler hoists
    #: loop-invariant scalar subexpressions out of the loop)
    scalar: bool = False

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.op}({inner})"


EwExpr = Union[EwNode, Operand]


def ew_op_count(expr: EwExpr) -> int:
    """Number of *per-element* arithmetic operations in a fused tree (for
    the cost model's fused-loop charge).  Scalar-result subtrees are
    loop-invariant and count as zero."""
    if isinstance(expr, EwNode):
        own = 0 if expr.scalar else 1
        return own + sum(ew_op_count(a) for a in expr.args)
    return 0


def ew_operands(expr: EwExpr) -> list[Operand]:
    if isinstance(expr, EwNode):
        out: list[Operand] = []
        for a in expr.args:
            out.extend(ew_operands(a))
        return out
    return [expr]


# --------------------------------------------------------------------------
# statements
# --------------------------------------------------------------------------


@dataclass
class IRStmt:
    #: originating MATLAB source line (1-based; 0 = unknown), stamped by
    #: pass 4 from the AST locations and threaded through to the emitted
    #: code so the trace layer can attribute communication to statements.
    #: A plain class attribute, not a dataclass field: a defaulted field
    #: here would force defaults onto every subclass's leading fields.
    line = 0


@dataclass
class RTCall(IRStmt):
    """``dest = ML_<op>(args...)`` — a run-time library call.

    ``op`` values: matmul, matmul_t (peephole-fused a' * b), dot, transpose,
    transpose_nc, solve_left, solve_right, matrix_power, broadcast_element,
    index_read, range, literal, dim, builtin:<name>.
    """

    dest: Optional[Operand]
    op: str
    args: list = field(default_factory=list)  # Operands / sub-lists for rows
    vtype: VarType = UNKNOWN
    nargout: int = 1
    extra_dests: list[Operand] = field(default_factory=list)

    def __repr__(self) -> str:
        lhs = f"{self.dest!r} = " if self.dest is not None else ""
        if self.extra_dests:
            outs = ", ".join(repr(d) for d in [self.dest, *self.extra_dests])
            lhs = f"[{outs}] = "
        return f"{lhs}ML_{self.op}({self.args!r})"


@dataclass
class Elementwise(IRStmt):
    """``dest = <fused elementwise tree>`` — the owner-computes loop."""

    dest: Operand
    expr: EwExpr
    vtype: VarType = UNKNOWN

    def __repr__(self) -> str:
        return f"{self.dest!r} = ew {self.expr!r}"


@dataclass
class Copy(IRStmt):
    dest: Operand
    src: Operand
    vtype: VarType = UNKNOWN

    def __repr__(self) -> str:
        return f"{self.dest!r} = {self.src!r}"


@dataclass
class SetElement(IRStmt):
    """Guarded scalar store (pass 5): only the owner executes the write."""

    var: Var
    subs: list[Operand]
    rhs: Operand
    guarded: bool = True

    def __repr__(self) -> str:
        subs = ", ".join(repr(s) for s in self.subs)
        return f"{self.var!r}({subs}) = {self.rhs!r} [guarded]"


@dataclass
class IndexAssign(IRStmt):
    """General (possibly redistributing) indexed store."""

    var: Var
    subs: list[Operand]
    rhs: Operand

    def __repr__(self) -> str:
        subs = ", ".join(repr(s) for s in self.subs)
        return f"{self.var!r}({subs}) = {self.rhs!r}"


@dataclass
class CallUser(IRStmt):
    """dests = <user function>(args) — functions are not inlined."""

    dests: list[Operand]
    func: str
    args: list[Operand] = field(default_factory=list)

    def __repr__(self) -> str:
        outs = ", ".join(repr(d) for d in self.dests)
        return f"[{outs}] = {self.func}({self.args!r})"


@dataclass
class Display(IRStmt):
    """Unsuppressed statement output (``x = ...`` echo)."""

    name: str
    value: Operand


@dataclass
class IRIf(IRStmt):
    """Structured if/elseif/else.  Each branch carries the statements that
    compute its condition (hoisted RT calls) plus the condition operand."""

    branches: list[tuple[list[IRStmt], Operand, list[IRStmt]]] = \
        field(default_factory=list)
    orelse: list[IRStmt] = field(default_factory=list)


@dataclass
class IRFor(IRStmt):
    var: Var = None  # type: ignore[assignment]
    # Fast path: a range iterable (start, step, stop) of scalar operands.
    range_triple: Optional[tuple[Operand, Operand, Operand]] = None
    # General path: statements computing the iterable + its operand.
    iter_stmts: list[IRStmt] = field(default_factory=list)
    iter_operand: Optional[Operand] = None
    body: list[IRStmt] = field(default_factory=list)


@dataclass
class IRWhile(IRStmt):
    cond_stmts: list[IRStmt] = field(default_factory=list)
    cond: Operand = None  # type: ignore[assignment]
    body: list[IRStmt] = field(default_factory=list)


@dataclass
class IRBreak(IRStmt):
    pass


@dataclass
class IRContinue(IRStmt):
    pass


@dataclass
class IRReturn(IRStmt):
    pass


@dataclass
class IRGlobal(IRStmt):
    names: list[str] = field(default_factory=list)


# --------------------------------------------------------------------------
# program units
# --------------------------------------------------------------------------


@dataclass
class IRFunction:
    name: str
    params: list[str] = field(default_factory=list)
    returns: list[str] = field(default_factory=list)
    body: list[IRStmt] = field(default_factory=list)
    var_types: dict[str, VarType] = field(default_factory=dict)


@dataclass
class IRProgram:
    script_name: str
    body: list[IRStmt] = field(default_factory=list)
    functions: dict[str, IRFunction] = field(default_factory=dict)
    var_types: dict[str, VarType] = field(default_factory=dict)

    def walk(self):
        """Iterate every statement list in the program (for passes)."""
        stack = [self.body] + [f.body for f in self.functions.values()]
        while stack:
            block = stack.pop()
            yield block
            for stmt in block:
                if isinstance(stmt, IRIf):
                    for cond_stmts, _cond, branch in stmt.branches:
                        stack.append(cond_stmts)
                        stack.append(branch)
                    stack.append(stmt.orelse)
                elif isinstance(stmt, IRFor):
                    stack.append(stmt.iter_stmts)
                    stack.append(stmt.body)
                elif isinstance(stmt, IRWhile):
                    stack.append(stmt.cond_stmts)
                    stack.append(stmt.body)
