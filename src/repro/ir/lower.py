"""Pass 4 — expression rewriting.

"The compiler is able to determine which terms and subexpressions may
involve interprocessor communication.  The compiler must modify the AST to
bring these terms and subexpressions to the statement level, where they
can be translated into calls to the run-time library.  After this has been
done, some element-wise matrix operations may remain [and become] for
loops" (paper, Section 3).

Concretely: the lowering walks each typed expression and classifies every
node.

* *fusable* nodes — elementwise operators, comparisons, unary ops,
  elementwise builtins, and any operator whose matrix operands reduce to
  elementwise semantics because the other side is a scalar — stay in one
  :class:`~repro.ir.nodes.Elementwise` tree (the single generated loop).
* everything else — matrix products, transposes, solves, reductions,
  generators, indexing, ranges, literals, user-function calls — is hoisted
  into an :class:`~repro.ir.nodes.RTCall` defining a fresh ``ML_tmp``.

The decisions use pass 3's types; wherever rank is unknown the lowering is
conservative (hoists), which is always correct because the run-time
library dispatches on actual shapes.
"""

from __future__ import annotations

from ..analysis.infer import ProgramTypes, UnitTypes
from ..analysis.lattice import BaseType, Rank, UNKNOWN, VarType, scalar
from ..analysis.resolve import ResolvedProgram
from ..analysis.builtin_sigs import get_sig
from ..errors import LoweringError
from ..frontend import ast_nodes as A
from .nodes import (
    CallUser,
    ColonSub,
    Const,
    Copy,
    Display,
    Elementwise,
    EwExpr,
    EwNode,
    IndexAssign,
    IRBreak,
    IRContinue,
    IRFor,
    IRFunction,
    IRGlobal,
    IRIf,
    IRProgram,
    IRReturn,
    IRStmt,
    IRWhile,
    Operand,
    RTCall,
    StrConst,
    Temp,
    Var,
)

#: operators that are always elementwise
_EW_BINOPS = {"+", "-", ".*", "./", ".\\", ".^",
              "==", "~=", "<", ">", "<=", ">=", "&", "|"}
#: builtins fusable into the elementwise loop (pure, shape-preserving)
_EW_BUILTINS = {
    "sqrt", "exp", "log", "log2", "log10", "sin", "cos", "tan",
    "asin", "acos", "atan", "sinh", "cosh", "tanh", "abs",
    "floor", "ceil", "round", "fix", "sign", "real", "imag", "conj",
    "angle", "double", "isnan", "isinf", "isfinite",
    "mod", "rem", "atan2", "hypot", "power",
}


def _stamp_block(stmts: list[IRStmt], line: int) -> None:
    """Attribute every not-yet-stamped statement (recursively) to a
    source line.  Statements lowered from nested AST blocks were already
    stamped with their own lines and keep them; hoisted helpers (RT
    calls computing a condition or iterable) inherit the enclosing
    statement's line."""
    for s in stmts:
        if s.line == 0:
            s.line = line
        if isinstance(s, IRIf):
            for cond_stmts, _cond, branch in s.branches:
                _stamp_block(cond_stmts, s.line)
                _stamp_block(branch, s.line)
            _stamp_block(s.orelse, s.line)
        elif isinstance(s, IRFor):
            _stamp_block(s.iter_stmts, s.line)
            _stamp_block(s.body, s.line)
        elif isinstance(s, IRWhile):
            _stamp_block(s.cond_stmts, s.line)
            _stamp_block(s.body, s.line)


class Lowerer:
    def __init__(self, program: ResolvedProgram, types: ProgramTypes):
        self.program = program
        self.types = types
        self._temp_counter = 0

    # ------------------------------------------------------------------ #

    def lower(self) -> IRProgram:
        script = self.program.script
        ir = IRProgram(script_name=script.name)
        ir.var_types = dict(self.types.script.var_types)
        ir.body = self._lower_body(script.body, self.types.script)
        for name, unit in self.program.functions.items():
            func = unit.node
            assert isinstance(func, A.FunctionDef)
            ut = self.types.functions[name]
            ir.functions[name] = IRFunction(
                name=name,
                params=list(func.params),
                returns=list(func.returns),
                body=self._lower_body(func.body, ut),
                var_types=dict(ut.var_types),
            )
        return ir

    def _temp(self) -> Temp:
        self._temp_counter += 1
        return Temp(self._temp_counter)

    # ------------------------------------------------------------------ #
    # types
    # ------------------------------------------------------------------ #

    def _etype(self, ut: UnitTypes, expr: A.Expr) -> VarType:
        return ut.expr_types.get(id(expr), UNKNOWN)

    def _is_scalar(self, ut: UnitTypes, expr: A.Expr) -> bool:
        return self._etype(ut, expr).rank is Rank.SCALAR

    # ------------------------------------------------------------------ #
    # statements
    # ------------------------------------------------------------------ #

    def _lower_body(self, body: list[A.Stmt], ut: UnitTypes) -> list[IRStmt]:
        out: list[IRStmt] = []
        for stmt in body:
            start = len(out)
            self._lower_stmt(stmt, ut, out)
            line = stmt.loc.line
            if line:
                _stamp_block(out[start:], line)
        return out

    def _lower_stmt(self, stmt: A.Stmt, ut: UnitTypes,
                    out: list[IRStmt]) -> None:
        if isinstance(stmt, A.Assign):
            self._lower_assign(stmt, ut, out)
        elif isinstance(stmt, A.MultiAssign):
            self._lower_multi_assign(stmt, ut, out)
        elif isinstance(stmt, A.ExprStmt):
            self._lower_expr_stmt(stmt, ut, out)
        elif isinstance(stmt, A.If):
            branches = []
            for cond, body in stmt.branches:
                cond_stmts: list[IRStmt] = []
                cond_op = self._as_operand(cond, ut, cond_stmts)
                # elseif conditions live on their own source lines
                _stamp_block(cond_stmts, cond.loc.line or stmt.loc.line)
                branches.append((cond_stmts, cond_op,
                                 self._lower_body(body, ut)))
            out.append(IRIf(branches=branches,
                            orelse=self._lower_body(stmt.orelse, ut)))
        elif isinstance(stmt, A.For):
            out.append(self._lower_for(stmt, ut))
        elif isinstance(stmt, A.While):
            cond_stmts: list[IRStmt] = []
            cond_op = self._as_operand(stmt.cond, ut, cond_stmts)
            _stamp_block(cond_stmts, stmt.cond.loc.line or stmt.loc.line)
            out.append(IRWhile(cond_stmts=cond_stmts, cond=cond_op,
                               body=self._lower_body(stmt.body, ut)))
        elif isinstance(stmt, A.Switch):
            self._lower_switch(stmt, ut, out)
        elif isinstance(stmt, A.Break):
            out.append(IRBreak())
        elif isinstance(stmt, A.Continue):
            out.append(IRContinue())
        elif isinstance(stmt, A.Return):
            out.append(IRReturn())
        elif isinstance(stmt, A.Global):
            out.append(IRGlobal(names=list(stmt.names)))
        else:
            raise LoweringError(f"cannot lower {type(stmt).__name__}",
                                stmt.loc)

    def _lower_assign(self, stmt: A.Assign, ut: UnitTypes,
                      out: list[IRStmt]) -> None:
        if isinstance(stmt.target, A.NameLValue):
            dest = Var(stmt.target.name)
            self._lower_value_into(stmt.value, ut, dest, out)
        else:
            target = stmt.target
            assert isinstance(target, A.IndexLValue)
            subs = [self._lower_subscript(arg, ut, out)
                    for arg in target.args]
            rhs = self._as_operand(stmt.value, ut, out)
            out.append(IndexAssign(var=Var(target.name), subs=subs, rhs=rhs))
        if stmt.display:
            out.append(Display(name=stmt.target.name,
                               value=Var(stmt.target.name)))

    def _lower_multi_assign(self, stmt: A.MultiAssign, ut: UnitTypes,
                            out: list[IRStmt]) -> None:
        call = stmt.call
        nargout = len(stmt.targets)
        # compute results into temporaries first
        result_ops: list[Operand] = []
        if call.resolved == "builtin":
            args = [self._as_operand(a, ut, out) for a in call.args]
            dests = [self._temp() for _ in range(nargout)]
            out.append(RTCall(dest=dests[0], op=f"builtin:{call.name}",
                              args=args, nargout=nargout,
                              extra_dests=list(dests[1:])))
            result_ops = list(dests)
        else:
            args = [self._as_operand(a, ut, out) for a in call.args]
            dests = [self._temp() for _ in range(nargout)]
            out.append(CallUser(dests=list(dests), func=call.name, args=args))
            result_ops = list(dests)
        for target, op in zip(stmt.targets, result_ops):
            if isinstance(target, A.NameLValue):
                out.append(Copy(dest=Var(target.name), src=op))
            else:
                assert isinstance(target, A.IndexLValue)
                subs = [self._lower_subscript(a, ut, out)
                        for a in target.args]
                out.append(IndexAssign(var=Var(target.name), subs=subs,
                                       rhs=op))
        if stmt.display:
            for target in stmt.targets:
                out.append(Display(name=target.name, value=Var(target.name)))

    def _lower_expr_stmt(self, stmt: A.ExprStmt, ut: UnitTypes,
                         out: list[IRStmt]) -> None:
        value = stmt.value
        # void builtin calls (disp, fprintf, ...) have no result
        if isinstance(value, A.Apply) and value.resolved == "builtin":
            sig = get_sig(value.name)
            if sig is not None and sig.nargout == 0:
                args = [self._as_operand(a, ut, out) for a in value.args]
                out.append(RTCall(dest=None, op=f"builtin:{value.name}",
                                  args=args, nargout=0))
                return
        # user functions with no return values are statements, not values
        if isinstance(value, A.Apply) and value.resolved == "call":
            unit_ = self.program.functions.get(value.name)
            if unit_ is not None and not unit_.node.returns:
                args = [self._as_operand(a, ut, out) for a in value.args]
                out.append(CallUser(dests=[], func=value.name, args=args))
                return
        dest = Var("ans")
        self._lower_value_into(value, ut, dest, out)
        if stmt.display:
            out.append(Display(name="ans", value=Var("ans")))

    def _lower_for(self, stmt: A.For, ut: UnitTypes) -> IRFor:
        var = Var(stmt.var)
        body: list[IRStmt] = []
        if isinstance(stmt.iterable, A.Range):
            pre: list[IRStmt] = []
            rng = stmt.iterable
            start = self._as_operand(rng.start, ut, pre)
            step = self._as_operand(rng.step, ut, pre) \
                if rng.step is not None else Const(1.0)
            stop = self._as_operand(rng.stop, ut, pre)
            body = self._lower_body(stmt.body, ut)
            return IRFor(var=var, range_triple=(start, step, stop),
                         iter_stmts=pre, body=body)
        pre = []
        iter_op = self._as_operand(stmt.iterable, ut, pre)
        body = self._lower_body(stmt.body, ut)
        return IRFor(var=var, range_triple=None, iter_stmts=pre,
                     iter_operand=iter_op, body=body)

    def _lower_switch(self, stmt: A.Switch, ut: UnitTypes,
                      out: list[IRStmt]) -> None:
        """Desugar switch into an if/elseif chain on equality tests."""
        subject_op = self._as_operand(stmt.subject, ut, out)
        branches = []
        for values, body in stmt.cases:
            cond_stmts: list[IRStmt] = []
            cond_ops = []
            for value in values:
                vop = self._as_operand(value, ut, cond_stmts)
                t = self._temp()
                cond_stmts.append(RTCall(dest=t, op="switch_match",
                                         args=[subject_op, vop],
                                         vtype=scalar(BaseType.INTEGER)))
                cond_ops.append(t)
            cond = cond_ops[0]
            for other in cond_ops[1:]:
                t = self._temp()
                cond_stmts.append(Elementwise(
                    dest=t, expr=EwNode("|", (cond, other)),
                    vtype=scalar(BaseType.INTEGER)))
                cond = t
            branches.append((cond_stmts, cond, self._lower_body(body, ut)))
        out.append(IRIf(branches=branches,
                        orelse=self._lower_body(stmt.otherwise, ut)))

    # ------------------------------------------------------------------ #
    # expressions
    # ------------------------------------------------------------------ #

    def _lower_value_into(self, expr: A.Expr, ut: UnitTypes, dest: Operand,
                          out: list[IRStmt]) -> None:
        """Lower ``dest = expr`` choosing the best statement form."""
        tree = self._lower_expr(expr, ut, out)
        vtype = self._etype(ut, expr)
        if isinstance(tree, Operand):
            # a bare operand: retarget the defining call when possible
            if (out and isinstance(out[-1], (RTCall, Elementwise))
                    and getattr(out[-1], "dest", None) == tree
                    and isinstance(tree, Temp)):
                out[-1].dest = dest
                if isinstance(out[-1], (RTCall, Elementwise)):
                    out[-1].vtype = vtype
            else:
                out.append(Copy(dest=dest, src=tree, vtype=vtype))
        else:
            out.append(Elementwise(dest=dest, expr=tree, vtype=vtype))

    def _as_operand(self, expr: A.Expr, ut: UnitTypes,
                    out: list[IRStmt]) -> Operand:
        tree = self._lower_expr(expr, ut, out)
        if isinstance(tree, Operand):
            return tree
        temp = self._temp()
        out.append(Elementwise(dest=temp, expr=tree,
                               vtype=self._etype(ut, expr)))
        return temp

    def _lower_subscript(self, arg: A.Expr, ut: UnitTypes,
                         out: list[IRStmt]) -> Operand:
        if isinstance(arg, A.Colon):
            return ColonSub()
        return self._as_operand(arg, ut, out)

    def _lower_expr(self, expr: A.Expr, ut: UnitTypes,
                    out: list[IRStmt]) -> EwExpr:
        """Lower an expression, returning either an Operand or a fused
        elementwise tree whose leaves are Operands."""
        if isinstance(expr, A.Num):
            return Const(complex(expr.value))
        if isinstance(expr, A.ImagNum):
            return Const(complex(0.0, expr.value))
        if isinstance(expr, A.Str):
            return StrConst(expr.value)
        if isinstance(expr, A.Ident):
            return Var(expr.name)
        if isinstance(expr, A.EndRef):
            temp = self._temp()
            out.append(RTCall(dest=temp, op="dim",
                              args=[Var(expr.var), Const(expr.axis),
                                    Const(expr.nargs)],
                              vtype=scalar(BaseType.INTEGER)))
            return temp
        if isinstance(expr, A.UnaryOp):
            inner = self._lower_expr(expr.operand, ut, out)
            op = {"-": "u-", "+": "u+", "~": "u~"}[expr.op]
            return EwNode(op, (inner,), scalar=self._is_scalar(ut, expr))
        if isinstance(expr, A.BinOp):
            return self._lower_binop(expr, ut, out)
        if isinstance(expr, A.Transpose):
            return self._lower_transpose(expr, ut, out)
        if isinstance(expr, A.Range):
            start = self._as_operand(expr.start, ut, out)
            step = self._as_operand(expr.step, ut, out) \
                if expr.step is not None else Const(1.0)
            stop = self._as_operand(expr.stop, ut, out)
            temp = self._temp()
            out.append(RTCall(dest=temp, op="range",
                              args=[start, step, stop],
                              vtype=self._etype(ut, expr)))
            return temp
        if isinstance(expr, A.MatrixLit):
            rows = [[self._as_operand(e, ut, out) for e in row]
                    for row in expr.rows]
            temp = self._temp()
            out.append(RTCall(dest=temp, op="literal", args=rows,
                              vtype=self._etype(ut, expr)))
            return temp
        if isinstance(expr, A.Apply):
            return self._lower_apply(expr, ut, out)
        if isinstance(expr, A.Colon):
            raise LoweringError("':' outside a subscript", expr.loc)
        raise LoweringError(f"cannot lower {type(expr).__name__}", expr.loc)

    def _lower_binop(self, expr: A.BinOp, ut: UnitTypes,
                     out: list[IRStmt]) -> EwExpr:
        op = expr.op
        lt = self._etype(ut, expr.lhs)
        rt = self._etype(ut, expr.rhs)
        l_scalar = lt.rank is Rank.SCALAR
        r_scalar = rt.rank is Rank.SCALAR

        if op in _EW_BINOPS:
            return EwNode(op, (self._lower_expr(expr.lhs, ut, out),
                               self._lower_expr(expr.rhs, ut, out)),
                          scalar=self._is_scalar(ut, expr))
        if op in ("&&", "||"):
            # short-circuit, scalar-only: both sides must be operands so
            # the backend can emit lazy evaluation; hoisting the RHS is a
            # (sound) eagerness the paper's compiler shares.
            lhs = self._lower_expr(expr.lhs, ut, out)
            rhs = self._lower_expr(expr.rhs, ut, out)
            return EwNode(op, (lhs, rhs), scalar=True)
        if op == "*":
            if l_scalar or r_scalar:
                return EwNode(".*", (self._lower_expr(expr.lhs, ut, out),
                                     self._lower_expr(expr.rhs, ut, out)),
                              scalar=self._is_scalar(ut, expr))
            lhs = self._as_operand(expr.lhs, ut, out)
            rhs = self._as_operand(expr.rhs, ut, out)
            temp = self._temp()
            out.append(RTCall(dest=temp, op="matmul", args=[lhs, rhs],
                              vtype=self._etype(ut, expr)))
            return temp
        if op == "/":
            if r_scalar:
                return EwNode("./", (self._lower_expr(expr.lhs, ut, out),
                                     self._lower_expr(expr.rhs, ut, out)),
                              scalar=self._is_scalar(ut, expr))
            lhs = self._as_operand(expr.lhs, ut, out)
            rhs = self._as_operand(expr.rhs, ut, out)
            temp = self._temp()
            out.append(RTCall(dest=temp, op="solve_right", args=[lhs, rhs],
                              vtype=self._etype(ut, expr)))
            return temp
        if op == "\\":
            if l_scalar:
                return EwNode(".\\", (self._lower_expr(expr.lhs, ut, out),
                                      self._lower_expr(expr.rhs, ut, out)),
                              scalar=self._is_scalar(ut, expr))
            lhs = self._as_operand(expr.lhs, ut, out)
            rhs = self._as_operand(expr.rhs, ut, out)
            temp = self._temp()
            out.append(RTCall(dest=temp, op="solve_left", args=[lhs, rhs],
                              vtype=self._etype(ut, expr)))
            return temp
        if op == "^":
            if l_scalar and r_scalar:
                return EwNode(".^", (self._lower_expr(expr.lhs, ut, out),
                                     self._lower_expr(expr.rhs, ut, out)),
                              scalar=True)
            lhs = self._as_operand(expr.lhs, ut, out)
            rhs = self._as_operand(expr.rhs, ut, out)
            temp = self._temp()
            out.append(RTCall(dest=temp, op="matrix_power",
                              args=[lhs, rhs],
                              vtype=self._etype(ut, expr)))
            return temp
        raise LoweringError(f"unknown operator {op!r}", expr.loc)

    def _lower_transpose(self, expr: A.Transpose, ut: UnitTypes,
                         out: list[IRStmt]) -> EwExpr:
        otype = self._etype(ut, expr.operand)
        if otype.rank is Rank.SCALAR:
            inner = self._lower_expr(expr.operand, ut, out)
            if otype.base is BaseType.COMPLEX and expr.conjugate:
                return EwNode("fn:conj", (inner,), scalar=True)
            return inner
        operand = self._as_operand(expr.operand, ut, out)
        temp = self._temp()
        op = "transpose" if expr.conjugate else "transpose_nc"
        out.append(RTCall(dest=temp, op=op, args=[operand],
                          vtype=self._etype(ut, expr)))
        return temp

    def _lower_apply(self, expr: A.Apply, ut: UnitTypes,
                     out: list[IRStmt]) -> EwExpr:
        if expr.resolved == "index":
            subs = [self._lower_subscript(a, ut, out) for a in expr.args]
            temp = self._temp()
            vtype = self._etype(ut, expr)
            # A statically-scalar result of scalar subscripts becomes the
            # paper's ML_broadcast; everything else goes through the
            # general indexed read (which still fast-paths scalars found
            # only at run time).
            op = "broadcast_element" if (
                vtype.rank is Rank.SCALAR and len(subs) in (1, 2)
                and not any(isinstance(s, ColonSub) for s in subs)) \
                else "index_read"
            out.append(RTCall(dest=temp, op=op,
                              args=[Var(expr.name), *subs], vtype=vtype))
            return temp
        if expr.resolved == "builtin":
            if expr.name in _EW_BUILTINS:
                args = tuple(self._lower_expr(a, ut, out) for a in expr.args)
                return EwNode(f"fn:{expr.name}", args,
                              scalar=self._is_scalar(ut, expr))
            args = [self._as_operand(a, ut, out) for a in expr.args]
            temp = self._temp()
            out.append(RTCall(dest=temp, op=f"builtin:{expr.name}",
                              args=args, vtype=self._etype(ut, expr)))
            return temp
        if expr.resolved == "call":
            args = [self._as_operand(a, ut, out) for a in expr.args]
            temp = self._temp()
            out.append(CallUser(dests=[temp], func=expr.name, args=args))
            return temp
        raise LoweringError(f"unresolved apply {expr.name!r}", expr.loc)

def lower_program(program: ResolvedProgram, types: ProgramTypes,
                  ew_split: bool = False) -> IRProgram:
    """Run pass 4.

    ``ew_split=True`` re-splits the fused elementwise trees into
    single-operator statements (one temp, one run-time call per operator)
    — the pre-fusion compiler the paper improves on, exposed as an
    autotuner ablation knob."""
    ir = Lowerer(program, types).lower()
    if ew_split:
        _split_elementwise(ir)
    return ir


# -------------------------------------------------------------------------- #
# elementwise-tree splitting (the ew_split plan knob)
# -------------------------------------------------------------------------- #


def _max_temp_index(ir: IRProgram) -> int:
    top = 0

    def scan(op):
        nonlocal top
        if isinstance(op, Temp):
            top = max(top, op.index)
        elif isinstance(op, EwNode):
            for arg in op.args:
                scan(arg)
        elif isinstance(op, list):
            for item in op:
                scan(item)

    for block in ir.walk():
        for stmt in block:
            scan(getattr(stmt, "dest", None))
            for extra in getattr(stmt, "extra_dests", []) or []:
                scan(extra)
            for dest in getattr(stmt, "dests", []) or []:
                scan(dest)
            scan(getattr(stmt, "expr", None))
            for attr in ("args", "subs"):
                scan(getattr(stmt, attr, None))
            scan(getattr(stmt, "rhs", None))
    return top


def _split_tree(node: EwExpr, counter: list[int], line: int,
                pre: list[IRStmt]):
    """Flatten ``node`` bottom-up: nested EwNodes become their own
    single-operator Elementwise statements writing fresh temps."""
    if not isinstance(node, EwNode):
        return node
    flat_args = []
    for arg in node.args:
        if isinstance(arg, EwNode):
            inner = _split_tree(arg, counter, line, pre)
            counter[0] += 1
            temp = Temp(counter[0])
            vtype = scalar(BaseType.REAL) if arg.scalar else UNKNOWN
            stmt = Elementwise(dest=temp, expr=inner, vtype=vtype)
            stmt.line = line
            pre.append(stmt)
            flat_args.append(temp)
        else:
            flat_args.append(arg)
    return EwNode(op=node.op, args=tuple(flat_args), scalar=node.scalar)


def _split_elementwise(ir: IRProgram) -> None:
    counter = [_max_temp_index(ir)]
    for block in ir.walk():
        i = 0
        while i < len(block):
            stmt = block[i]
            if (isinstance(stmt, Elementwise)
                    and isinstance(stmt.expr, EwNode)
                    and any(isinstance(a, EwNode) for a in stmt.expr.args)):
                pre: list[IRStmt] = []
                top = _split_tree(stmt.expr, counter, stmt.line, pre)
                final = Elementwise(dest=stmt.dest, expr=top,
                                    vtype=stmt.vtype)
                final.line = stmt.line
                block[i:i + 1] = pre + [final]
                i += len(pre)
            i += 1
