"""Pass 6 — peephole optimization of run-time-call sequences.

"The sixth pass of the compiler performs peephole optimizations, looking
for ways in which a sequence of run-time library calls can be replaced by
a single call."  Two rewrites are implemented (both flag-controlled so the
ablation benchmark can measure their effect):

1. **transpose+multiply fusion** — ``t = transpose(a); c = matmul(t, b)``
   with ``t`` dead afterwards becomes ``c = matmul_t(a, b)``.  For the
   ubiquitous ``r' * r`` this turns two library calls (a transpose copy
   plus a product) into the single ML_dot the paper's run-time provides.
2. **local CSE** of pure run-time calls — repeated ``ML_broadcast`` of the
   same element (or repeated ``dim`` queries) within a straight-line block
   reuse the first temporary instead of re-communicating.
"""

from __future__ import annotations

from dataclasses import dataclass

from .nodes import (
    Copy,
    Elementwise,
    IndexAssign,
    IRFor,
    IRIf,
    IRProgram,
    IRWhile,
    RTCall,
    SetElement,
    Temp,
    Var,
    ew_operands,
)

#: RT ops that are pure and cheap to CSE within a block
_CSE_OPS = {"broadcast_element", "dim"}
#: ops after which a variable's value may change (kills CSE entries)
_FUSABLE_AFTER_TRANSPOSE = {"matmul"}


@dataclass
class PeepholeStats:
    transpose_fused: int = 0
    cse_removed: int = 0


#: the default rewrite schedule (order matters: fusing first exposes the
#: CSE pass to the post-rewrite call sequence)
REWRITES = ("transpose_matmul", "cse")


def peephole_program(ir: IRProgram, enabled: bool = True,
                     schedule: tuple[str, ...] | None = None) -> PeepholeStats:
    """Run pass 6 in place; returns rewrite statistics.

    ``schedule`` is an ordered subset of :data:`REWRITES` (an autotuner
    plan knob); ``None`` means the full default order, ``()`` disables
    the pass just like ``enabled=False``."""
    stats = PeepholeStats()
    if not enabled:
        return stats
    schedule = REWRITES if schedule is None else tuple(schedule)
    for rewrite in schedule:
        if rewrite not in REWRITES:
            raise ValueError(f"unknown peephole rewrite {rewrite!r}; "
                             f"choose from {REWRITES}")
    for block in ir.walk():
        for rewrite in schedule:
            if rewrite == "transpose_matmul":
                _fuse_transpose_matmul(block, stats)
            else:
                _local_cse(block, stats)
    return stats


# -------------------------------------------------------------------------- #
# transpose + matmul fusion
# -------------------------------------------------------------------------- #


def _operands_of(stmt) -> list:
    if isinstance(stmt, RTCall):
        flat = []
        for arg in stmt.args:
            if isinstance(arg, list):
                for row in arg:
                    flat.extend(row if isinstance(row, list) else [row])
            else:
                flat.append(arg)
        return flat
    if isinstance(stmt, Elementwise):
        return ew_operands(stmt.expr)
    if isinstance(stmt, Copy):
        return [stmt.src]
    if isinstance(stmt, (SetElement, IndexAssign)):
        return [*stmt.subs, stmt.rhs, stmt.var]
    return []


def _uses_in_block(block: list, temp: Temp, start: int) -> int:
    count = 0
    for stmt in block[start:]:
        count += sum(1 for op in _operands_of(stmt) if op == temp)
        for nested in _nested_blocks(stmt):
            count += _uses_anywhere(nested, temp)
    return count


def _uses_anywhere(block: list, temp: Temp) -> int:
    count = 0
    for stmt in block:
        count += sum(1 for op in _operands_of(stmt) if op == temp)
        for nested in _nested_blocks(stmt):
            count += _uses_anywhere(nested, temp)
    return count


def _nested_blocks(stmt):
    if isinstance(stmt, IRIf):
        for cond_stmts, _cond, branch in stmt.branches:
            yield cond_stmts
            yield branch
        yield stmt.orelse
    elif isinstance(stmt, IRFor):
        yield stmt.iter_stmts
        yield stmt.body
    elif isinstance(stmt, IRWhile):
        yield stmt.cond_stmts
        yield stmt.body


def _fuse_transpose_matmul(block: list, stats: PeepholeStats) -> None:
    i = 0
    while i < len(block) - 1:
        first, second = block[i], block[i + 1]
        if (isinstance(first, RTCall)
                and first.op in ("transpose", "transpose_nc")
                and isinstance(first.dest, Temp)
                and isinstance(second, RTCall) and second.op == "matmul"
                and second.args and second.args[0] == first.dest
                and second.args[1] != first.dest
                and _uses_in_block(block, first.dest, i + 2) == 0):
            conj = first.op == "transpose"
            fused = RTCall(
                dest=second.dest,
                op="matmul_t" if conj else "matmul_tnc",
                args=[first.args[0], second.args[1]],
                vtype=second.vtype,
                extra_dests=second.extra_dests,
            )
            fused.line = second.line
            block[i:i + 2] = [fused]
            stats.transpose_fused += 1
            continue
        i += 1


# -------------------------------------------------------------------------- #
# local CSE of pure RT calls
# -------------------------------------------------------------------------- #


def _defined_name(stmt):
    dest = getattr(stmt, "dest", None)
    if isinstance(dest, Var):
        return dest.name
    if isinstance(stmt, (SetElement, IndexAssign)):
        return stmt.var.name
    if hasattr(stmt, "dests"):
        return None  # handled by caller
    return None


def _local_cse(block: list, stats: PeepholeStats) -> None:
    available: dict[tuple, Temp] = {}
    i = 0
    while i < len(block):
        stmt = block[i]
        if isinstance(stmt, (IRIf, IRFor, IRWhile)):
            available.clear()  # control flow: keep it strictly local
            i += 1
            continue
        if (isinstance(stmt, RTCall) and stmt.op in _CSE_OPS
                and isinstance(stmt.dest, Temp)):
            key = (stmt.op, tuple(stmt.args))
            hit = available.get(key)
            if hit is not None:
                copy = Copy(dest=stmt.dest, src=hit, vtype=stmt.vtype)
                copy.line = stmt.line
                block[i] = copy
                stats.cse_removed += 1
                i += 1
                continue
            available[key] = stmt.dest
        # kill entries whose variable operands were just redefined
        names = set()
        name = _defined_name(stmt)
        if name:
            names.add(name)
        for dest in getattr(stmt, "dests", []) or []:
            if isinstance(dest, Var):
                names.add(dest.name)
        if names:
            for key in [k for k in available
                        if any(isinstance(op, Var) and op.name in names
                               for op in k[1])]:
                del available[key]
        i += 1
