"""Pass 6b — loop-invariant code motion for run-time-library calls.

An extension beyond the paper's six passes: a broadcast, metadata query,
or matrix product whose operands do not change across loop iterations is
computed once before the loop.  Hoisting communication out of loops is
the single biggest lever the statement-level rewriting leaves on the
table — e.g.::

    for s = 1:steps
        f = c * base + d(1, 2);     % d(1,2) broadcast every iteration
        ...
    end

hoists the ``ML_broadcast`` (and, if ``base`` is invariant, the product)
above the loop, removing O(steps) collectives.

Safety rules:

* only :class:`RTCall` statements at the *top level* of a loop body
  whose destination (a compiler :class:`Temp` or a user variable) is
  defined exactly once in the loop and never read before that
  definition — so first-iteration semantics cannot change;
* every operand is a constant or a name not defined anywhere in the loop
  (including nested blocks, the loop variable, and indexed stores);
* the op is pure and deterministic (``rand``/``randn``, I/O, and user
  calls never move);
* ops that can raise (indexing, products) are only hoisted when the loop
  *provably executes at least once* — a constant-range ``for`` with a
  positive trip count — so a zero-trip loop can never start observing
  errors it previously skipped.  Metadata queries (``dim``) hoist
  unconditionally.
"""

from __future__ import annotations

from dataclasses import dataclass

from .nodes import (
    CallUser,
    ColonSub,
    Const,
    Copy,
    Elementwise,
    IndexAssign,
    IRFor,
    IRIf,
    IRProgram,
    IRStmt,
    IRWhile,
    RTCall,
    SetElement,
    Temp,
    Var,
    ew_operands,
)

#: always-safe ops (cannot raise for operands that were live anyway)
_ALWAYS_SAFE = {"dim"}
#: pure ops safe to hoist when the loop runs at least once
_SPECULATIVE = {
    "broadcast_element", "index_read", "range", "literal", "transpose",
    "transpose_nc", "matmul", "matmul_t", "matmul_tnc", "solve_left",
    "solve_right", "matrix_power", "switch_match",
}
#: pure builtins safe to hoist (never RNG, I/O, or clock)
_HOISTABLE_BUILTINS = {
    "zeros", "ones", "eye", "linspace", "size", "length", "numel",
    "isempty", "isreal", "isscalar", "sum", "prod", "mean", "std", "var",
    "median", "max", "min", "all", "any", "norm", "trapz", "trapz2",
    "cumsum", "cumprod", "dot", "find", "reshape", "repmat", "circshift",
    "fliplr", "flipud", "tril", "triu", "diag", "transpose", "ctranspose",
    "sort", "double",
}


@dataclass
class LicmStats:
    hoisted: int = 0


#: recognized hoisting policies (an autotuner plan knob)
POLICIES = ("off", "safe", "aggressive")


def licm_program(ir: IRProgram, enabled: bool = True,
                 policy: str = "aggressive") -> LicmStats:
    """Run pass 6b in place; returns hoist statistics.

    ``policy``: ``off`` disables the pass, ``safe`` hoists only the
    always-safe metadata ops, ``aggressive`` (default) additionally
    hoists speculative ops out of loops that provably execute."""
    if policy not in POLICIES:
        raise ValueError(f"unknown licm policy {policy!r}; "
                         f"choose from {POLICIES}")
    stats = LicmStats()
    if not enabled or policy == "off":
        return stats
    _walk_block(ir.body, stats, policy)
    for func in ir.functions.values():
        _walk_block(func.body, stats, policy)
    return stats


# -------------------------------------------------------------------------- #


def _walk_block(block: list[IRStmt], stats: LicmStats, policy: str) -> None:
    i = 0
    while i < len(block):
        stmt = block[i]
        if isinstance(stmt, IRIf):
            for cond_stmts, _c, branch in stmt.branches:
                _walk_block(cond_stmts, stats, policy)
                _walk_block(branch, stats, policy)
            _walk_block(stmt.orelse, stats, policy)
        elif isinstance(stmt, IRWhile):
            _walk_block(stmt.cond_stmts, stats, policy)
            _walk_block(stmt.body, stats, policy)
            hoisted = _hoist_from_loop(stmt.body, loop_defs=_defs_of_block(
                stmt.body) | _defs_of_block(stmt.cond_stmts),
                must_execute=False, policy=policy)
            block[i:i] = hoisted
            i += len(hoisted)
            stats.hoisted += len(hoisted)
        elif isinstance(stmt, IRFor):
            _walk_block(stmt.iter_stmts, stats, policy)
            _walk_block(stmt.body, stats, policy)
            defs = _defs_of_block(stmt.body) | {stmt.var.name}
            hoisted = _hoist_from_loop(
                stmt.body, loop_defs=defs,
                must_execute=_trip_count_positive(stmt), policy=policy)
            block[i:i] = hoisted
            i += len(hoisted)
            stats.hoisted += len(hoisted)
        i += 1


def _trip_count_positive(stmt: IRFor) -> bool:
    if stmt.range_triple is None:
        return False
    start, step, stop = stmt.range_triple
    if not all(isinstance(op, Const) for op in (start, step, stop)):
        return False
    s, p, e = (float(start.value.real), float(step.value.real),
               float(stop.value.real))
    if p == 0:
        return False
    return (e - s) / p >= 0


def _defs_of_block(block: list[IRStmt]) -> set[str]:
    """Every name (Var or Temp) defined anywhere in the block."""
    defs: set[str] = set()
    for stmt in block:
        dest = getattr(stmt, "dest", None)
        if isinstance(dest, (Var, Temp)):
            defs.add(_name(dest))
        for extra in getattr(stmt, "extra_dests", []) or []:
            defs.add(_name(extra))
        if isinstance(stmt, (SetElement, IndexAssign)):
            defs.add(stmt.var.name)
        if isinstance(stmt, CallUser):
            for d in stmt.dests:
                defs.add(_name(d))
        if isinstance(stmt, IRIf):
            for cond_stmts, _c, branch in stmt.branches:
                defs |= _defs_of_block(cond_stmts)
                defs |= _defs_of_block(branch)
            defs |= _defs_of_block(stmt.orelse)
        elif isinstance(stmt, IRFor):
            defs.add(stmt.var.name)
            defs |= _defs_of_block(stmt.iter_stmts)
            defs |= _defs_of_block(stmt.body)
        elif isinstance(stmt, IRWhile):
            defs |= _defs_of_block(stmt.cond_stmts)
            defs |= _defs_of_block(stmt.body)
    return defs


def _name(op) -> str:
    return op.name if isinstance(op, (Var, Temp)) else repr(op)


def _operand_names(stmt: RTCall) -> set[str]:
    names: set[str] = set()
    for arg in stmt.args:
        items = arg if isinstance(arg, list) else [arg]
        for item in items:
            subs = item if isinstance(item, list) else [item]
            for sub in subs:
                if isinstance(sub, (Var, Temp)):
                    names.add(_name(sub))
                elif isinstance(sub, ColonSub):
                    pass
    return names


def _is_hoistable(stmt: IRStmt, loop_defs: set[str],
                  must_execute: bool, policy: str = "aggressive") -> bool:
    if not isinstance(stmt, RTCall) \
            or not isinstance(stmt.dest, (Temp, Var)):
        return False
    if stmt.extra_dests:
        return False
    op = stmt.op
    speculate = policy == "aggressive"
    if op in _ALWAYS_SAFE:
        allowed = True
    elif op in _SPECULATIVE:
        allowed = must_execute and speculate
    elif op.startswith("builtin:"):
        allowed = (must_execute and speculate
                   and op[len("builtin:"):] in _HOISTABLE_BUILTINS)
    else:
        return False
    if not allowed:
        return False
    # operands must be invariant; the dest must be defined exactly here
    operands = _operand_names(stmt)
    if operands & loop_defs:
        return False
    return True


def _hoist_from_loop(body: list[IRStmt], loop_defs: set[str],
                     must_execute: bool,
                     policy: str = "aggressive") -> list[IRStmt]:
    """Remove hoistable statements from the top level of ``body`` and
    return them (in order) for insertion before the loop."""
    hoisted: list[IRStmt] = []
    defined_by_hoisted: set[str] = set()
    remaining_defs = set(loop_defs)
    i = 0
    while i < len(body):
        stmt = body[i]
        if (_is_hoistable(stmt, remaining_defs - defined_by_hoisted,
                          must_execute, policy)
                and _defined_once(body, stmt.dest)
                and not _used_before(body, i, _name(stmt.dest))):
            hoisted.append(stmt)
            defined_by_hoisted.add(_name(stmt.dest))
            del body[i]
            continue
        i += 1
    return hoisted


def _uses_of(stmt) -> set[str]:
    names: set[str] = set()
    if isinstance(stmt, RTCall):
        names |= _operand_names(stmt)
    elif isinstance(stmt, Elementwise):
        for op in ew_operands(stmt.expr):
            if isinstance(op, (Var, Temp)):
                names.add(_name(op))
    elif isinstance(stmt, Copy):
        if isinstance(stmt.src, (Var, Temp)):
            names.add(_name(stmt.src))
    elif isinstance(stmt, (SetElement, IndexAssign)):
        names.add(stmt.var.name)
        for op in [*stmt.subs, stmt.rhs]:
            if isinstance(op, (Var, Temp)):
                names.add(_name(op))
    elif isinstance(stmt, CallUser):
        for op in stmt.args:
            if isinstance(op, (Var, Temp)):
                names.add(_name(op))
    elif isinstance(stmt, IRIf):
        for cond_stmts, cond, branch in stmt.branches:
            for sub in [*cond_stmts, *branch]:
                names |= _uses_of(sub)
            if isinstance(cond, (Var, Temp)):
                names.add(_name(cond))
        for sub in stmt.orelse:
            names |= _uses_of(sub)
    elif isinstance(stmt, IRFor):
        for sub in [*stmt.iter_stmts, *stmt.body]:
            names |= _uses_of(sub)
        for op in stmt.range_triple or ():
            if isinstance(op, (Var, Temp)):
                names.add(_name(op))
        if isinstance(stmt.iter_operand, (Var, Temp)):
            names.add(_name(stmt.iter_operand))
    elif isinstance(stmt, IRWhile):
        for sub in [*stmt.cond_stmts, *stmt.body]:
            names |= _uses_of(sub)
        if isinstance(stmt.cond, (Var, Temp)):
            names.add(_name(stmt.cond))
    else:
        # display / control statements referencing values
        value = getattr(stmt, "value", None)
        if isinstance(value, (Var, Temp)):
            names.add(_name(value))
    return names


def _used_before(body: list[IRStmt], idx: int, name: str) -> bool:
    """Is ``name`` read by any statement before position ``idx``?"""
    for stmt in body[:idx]:
        if name in _uses_of(stmt):
            return True
    return False


def _defined_once(body: list[IRStmt], dest) -> bool:
    count = 0
    target = _name(dest)
    for stmt in body:
        d = getattr(stmt, "dest", None)
        if isinstance(d, (Var, Temp)) and _name(d) == target:
            count += 1
        if isinstance(stmt, (IRIf, IRFor, IRWhile)):
            if target in _defs_of_block([stmt]):
                count += 2  # nested definition: refuse
    return count == 1
