"""Semantic analysis: resolution (pass 2), SSA, type inference (pass 3)."""

from .builtin_sigs import REGISTRY, BuiltinSig, builtin_names, get_sig, is_builtin
from .cfg import CFG, build_cfg
from .dominance import DominatorInfo, compute_dominance
from .infer import (
    InferenceEngine,
    ProgramTypes,
    UnitTypes,
    binop_result_type,
    infer_types,
)
from .lattice import (
    BOTTOM,
    BaseType,
    Rank,
    Shape,
    UNKNOWN,
    UNKNOWN_SHAPE,
    SCALAR_SHAPE,
    VarType,
    matrix,
    scalar,
)
from .resolve import ResolvedProgram, ResolvedUnit, Resolver, resolve_program
from .ssa import Phi, SSAInfo, SSAValue, build_ssa
from .symtab import Symbol, SymbolTable

__all__ = [
    "REGISTRY", "BuiltinSig", "builtin_names", "get_sig", "is_builtin",
    "CFG", "build_cfg",
    "DominatorInfo", "compute_dominance",
    "InferenceEngine", "ProgramTypes", "UnitTypes", "binop_result_type",
    "infer_types",
    "BOTTOM", "BaseType", "Rank", "Shape", "UNKNOWN", "UNKNOWN_SHAPE",
    "SCALAR_SHAPE", "VarType", "matrix", "scalar",
    "ResolvedProgram", "ResolvedUnit", "Resolver", "resolve_program",
    "Phi", "SSAInfo", "SSAValue", "build_ssa",
    "Symbol", "SymbolTable",
]
