"""Sample-data-file type inference for ``load``.

The paper: "If the user's program initializes a variable through external
file input, a sample data file must be present, so that the compiler can
determine the type of the variable as well as its rank."  Shape is *not*
frozen from the sample (the real run may use bigger data); only base type
and rank are taken, with the shape left to run-time propagation.
"""

from __future__ import annotations

import numpy as np

from ..errors import InferenceError
from ..frontend import ast_nodes as A
from ..frontend.mfile import MFileProvider
from .lattice import (
    BaseType,
    Shape,
    UNKNOWN_SHAPE,
    VarType,
    matrix,
    scalar,
)


def classify_array(data: np.ndarray) -> VarType:
    """Map a sample array to the paper's type/rank attributes."""
    arr = np.asarray(data)
    if np.iscomplexobj(arr):
        base = BaseType.COMPLEX
    elif arr.dtype.kind in ("i", "u", "b"):
        base = BaseType.INTEGER
    elif arr.size and np.all(np.asarray(arr) == np.floor(arr)):
        base = BaseType.INTEGER
    else:
        base = BaseType.REAL
    if arr.ndim == 0 or arr.size == 1:
        return scalar(base)
    if arr.ndim == 1:
        return matrix(base, Shape(None, 1))
    return matrix(base, UNKNOWN_SHAPE)


def infer_load_type(call: A.Apply, arg_consts: list[object],
                    provider: MFileProvider) -> VarType:
    """Type a ``load('file')`` call from its sample data file."""
    if not call.args or not isinstance(arg_consts[0], str):
        raise InferenceError(
            "load requires a literal file name so the compiler can find "
            "a sample data file", call.loc)
    name = arg_consts[0]
    sample = _load_sample(name, provider)
    if sample is None:
        raise InferenceError(
            f"no sample data file for load({name!r}); the compiler needs "
            "one to determine the variable's type and rank", call.loc)
    return classify_array(np.asarray(sample))


def _load_sample(name: str, provider: MFileProvider):
    """Resolve a load target: URL-schema datastores (``mem://``,
    ``file://``, ``s3://`` — the hosted data is its own sample) first,
    then the provider's sample files."""
    from ..service.stores import StoreError, is_store_url

    if is_store_url(name):
        from ..service.stores import default_manager

        try:
            return default_manager().load_matrix(name)
        except StoreError:
            return None
    return provider.load_data_file(name)
