"""Symbol tables.

One :class:`SymbolTable` per program unit (the script, and each user
M-file function).  Pass 2 populates the binding kinds; pass 3 fills in the
inferred :class:`VarType` and any compile-time constant value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .lattice import BOTTOM, VarType


@dataclass
class Symbol:
    name: str
    kind: str  # variable | param | retval | loopvar | function | builtin | global
    vtype: VarType = BOTTOM
    const: Optional[object] = None  # compile-time constant scalar value

    def __repr__(self) -> str:
        extra = f" = {self.const!r}" if self.const is not None else ""
        return f"Symbol({self.name}: {self.kind} {self.vtype!r}{extra})"


@dataclass
class SymbolTable:
    unit_name: str
    symbols: dict[str, Symbol] = field(default_factory=dict)

    def define(self, name: str, kind: str) -> Symbol:
        existing = self.symbols.get(name)
        if existing is not None:
            # A name may be defined several ways (e.g. loop var later
            # reassigned); parameter/return kinds take precedence.
            priority = {"param": 3, "retval": 3, "global": 2,
                        "loopvar": 1, "variable": 1}
            if priority.get(kind, 0) > priority.get(existing.kind, 0):
                existing.kind = kind
            return existing
        sym = Symbol(name, kind)
        self.symbols[name] = sym
        return sym

    def lookup(self, name: str) -> Optional[Symbol]:
        return self.symbols.get(name)

    def is_variable(self, name: str) -> bool:
        sym = self.symbols.get(name)
        return sym is not None and sym.kind in (
            "variable", "param", "retval", "loopvar", "global"
        )

    def variables(self) -> list[Symbol]:
        return [s for s in self.symbols.values()
                if s.kind in ("variable", "param", "retval", "loopvar", "global")]

    def __contains__(self, name: str) -> bool:
        return name in self.symbols

    def __iter__(self):
        return iter(self.symbols.values())
