"""Registry of MATLAB builtin functions and their inference signatures.

This is the single source of truth for *which* builtins exist; the
interpreter (:mod:`repro.interp.builtins`) and the distributed run-time
library (:mod:`repro.runtime.builtins`) each provide an implementation for
every name registered here, and a test asserts the three stay in sync.

Each entry carries a *type rule*: a function from the argument
:class:`VarType` triples (plus compile-time constant values, when known) to
the result type(s).  Rules are deliberately conservative — returning
``UNKNOWN`` components is always sound and merely shifts work to run time,
exactly as the paper describes ("shape information can be collected and
propagated at run time").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from .lattice import (
    BaseType,
    Rank,
    Shape,
    UNKNOWN_SHAPE,
    SCALAR_SHAPE,
    VarType,
    literal,
    matrix,
    scalar,
)

Consts = Sequence[object]
TypeRule = Callable[[Sequence[VarType], Consts], "VarType | tuple[VarType, ...]"]


@dataclass(frozen=True)
class BuiltinSig:
    name: str
    min_args: int
    max_args: int  # -1 means variadic
    nargout: int  # maximum number of outputs
    kind: str  # generator | elementwise | ewbinary | reduction | query |
    #            structural | constant | io | linalg | control
    rule: TypeRule
    pure: bool = True  # False for I/O and RNG-state effects
    notes: str = ""

    def accepts(self, nargs: int) -> bool:
        if nargs < self.min_args:
            return False
        return self.max_args < 0 or nargs <= self.max_args


REGISTRY: dict[str, BuiltinSig] = {}


def _register(name: str, min_args: int, max_args: int, nargout: int, kind: str,
              rule: TypeRule, pure: bool = True, notes: str = "") -> None:
    REGISTRY[name] = BuiltinSig(name, min_args, max_args, nargout, kind, rule,
                                pure, notes)


def is_builtin(name: str) -> bool:
    return name in REGISTRY


def get_sig(name: str) -> Optional[BuiltinSig]:
    return REGISTRY.get(name)


# --------------------------------------------------------------------------
# rule helpers
# --------------------------------------------------------------------------


def _int_const(value: object) -> Optional[int]:
    if isinstance(value, (int, float)) and float(value) == int(value):
        return int(value)
    return None


def _gen_shape(args: Sequence[VarType], consts: Consts) -> Shape:
    """Shape rule shared by zeros/ones/rand/randn/eye."""
    if len(args) == 0:
        return SCALAR_SHAPE
    if len(args) == 1:
        n = _int_const(consts[0]) if consts else None
        return Shape(n, n)
    r = _int_const(consts[0]) if len(consts) > 0 else None
    c = _int_const(consts[1]) if len(consts) > 1 else None
    return Shape(r, c)


def _gen_rank(shape: Shape) -> Rank:
    if shape == SCALAR_SHAPE:
        return Rank.SCALAR
    return Rank.MATRIX


def _generator(base: BaseType) -> TypeRule:
    def rule(args: Sequence[VarType], consts: Consts):
        shape = _gen_shape(args, consts)
        if len(args) == 0:
            return scalar(base)
        return VarType(base, _gen_rank(shape), shape)

    return rule


def _elementwise(result_base: Optional[BaseType] = None,
                 real_in_real_out: bool = True) -> TypeRule:
    """Unary elementwise: result has argument's rank/shape.

    ``result_base=None`` keeps the argument's base type (widened to REAL for
    integer inputs, since e.g. sqrt(2) is not an integer).
    """

    def rule(args: Sequence[VarType], consts: Consts) -> VarType:
        a = args[0]
        base = result_base
        if base is None:
            base = a.base
            if base is BaseType.INTEGER:
                base = BaseType.REAL
        return VarType(base, a.rank, a.shape)

    return rule


def _ew_same_base() -> TypeRule:
    """Unary elementwise preserving base exactly (abs, floor, real...)."""

    def rule(args: Sequence[VarType], consts: Consts) -> VarType:
        a = args[0]
        return VarType(a.base, a.rank, a.shape)

    return rule


def _ew_binary() -> TypeRule:
    def rule(args: Sequence[VarType], consts: Consts) -> VarType:
        a, b = args[0], args[1]
        base = a.base.join(b.base)
        if base is BaseType.INTEGER:
            base = BaseType.REAL
        if a.rank is Rank.SCALAR:
            return VarType(base, b.rank, b.shape)
        if b.rank is Rank.SCALAR:
            return VarType(base, a.rank, a.shape)
        return VarType(base, a.rank.join(b.rank), a.shape.join(b.shape))

    return rule


def _reduction() -> TypeRule:
    """MATLAB reduction: matrix -> row vector of column reductions (or a
    column vector with an explicit ``dim=2``); vector -> scalar."""

    def rule(args: Sequence[VarType], consts: Consts) -> VarType:
        a = args[0]
        base = a.base if a.base.is_numeric else BaseType.UNKNOWN
        if base is BaseType.INTEGER:
            base = BaseType.REAL
        dim = _int_const(consts[1]) if len(consts) > 1 else None
        if a.rank is Rank.SCALAR:
            return scalar(base)
        if dim is None and (a.shape.rows == 1 or a.shape.cols == 1):
            return scalar(base)
        if dim == 1:
            return matrix(base, Shape(1, a.shape.cols))
        if dim == 2:
            return matrix(base, Shape(a.shape.rows, 1))
        if dim is None and a.shape.rows is not None and a.shape.rows > 1:
            return matrix(base, Shape(1, a.shape.cols))
        # rank/orientation unknown: could be scalar or row vector
        return VarType(base, Rank.UNKNOWN, UNKNOWN_SHAPE)

    return rule


def _scalar_result(base: BaseType = BaseType.REAL) -> TypeRule:
    def rule(args: Sequence[VarType], consts: Consts) -> VarType:
        return scalar(base)

    return rule


def _size_rule(args: Sequence[VarType], consts: Consts):
    if len(args) == 2:  # size(a, dim) -> scalar
        return scalar(BaseType.INTEGER)
    # nargout decides: 1 -> 1x2 row vector, 2 -> two scalars.  We return the
    # tuple form; inference picks what it needs.
    return (
        matrix(BaseType.INTEGER, Shape(1, 2)),
        scalar(BaseType.INTEGER),
        scalar(BaseType.INTEGER),
    )


def _same_as_arg(index: int = 0) -> TypeRule:
    def rule(args: Sequence[VarType], consts: Consts) -> VarType:
        a = args[index]
        return VarType(a.base, a.rank, a.shape)

    return rule


def _transpose_rule(args: Sequence[VarType], consts: Consts) -> VarType:
    a = args[0]
    return VarType(a.base, a.rank, a.shape.transposed())


def _reshape_rule(args: Sequence[VarType], consts: Consts) -> VarType:
    a = args[0]
    r = _int_const(consts[1]) if len(consts) > 1 else None
    c = _int_const(consts[2]) if len(consts) > 2 else None
    return VarType(a.base, Rank.MATRIX, Shape(r, c))


def _repmat_rule(args: Sequence[VarType], consts: Consts) -> VarType:
    a = args[0]
    m = _int_const(consts[1]) if len(consts) > 1 else None
    n = _int_const(consts[2]) if len(consts) > 2 else None
    rows = a.shape.rows * m if (a.shape.rows is not None and m) else None
    cols = a.shape.cols * n if (a.shape.cols is not None and n) else None
    return VarType(a.base, Rank.MATRIX, Shape(rows, cols))


def _linspace_rule(args: Sequence[VarType], consts: Consts) -> VarType:
    n = _int_const(consts[2]) if len(consts) > 2 else 100
    return matrix(BaseType.REAL, Shape(1, n))


def _diag_rule(args: Sequence[VarType], consts: Consts) -> VarType:
    a = args[0]
    if a.shape.rows == 1 or a.shape.cols == 1:
        n = a.shape.numel()
        return matrix(a.base, Shape(n, n))
    if a.shape.is_static:
        n = min(a.shape.rows, a.shape.cols)  # type: ignore[type-var]
        return matrix(a.base, Shape(n, 1))
    return matrix(a.base, UNKNOWN_SHAPE)


def _minmax_rule(args: Sequence[VarType], consts: Consts):
    if len(args) == 2:  # elementwise two-argument form
        return _ew_binary()(args, consts)
    red = _reduction()(args, consts)
    # With two outputs the second is the index (integer, same shape as first)
    idx = VarType(BaseType.INTEGER, red.rank, red.shape)
    return (red, idx)


def _trapz_rule(args: Sequence[VarType], consts: Consts) -> VarType:
    return scalar(BaseType.REAL)


def _dot_rule(args: Sequence[VarType], consts: Consts) -> VarType:
    base = args[0].base.join(args[1].base)
    if not base.is_numeric:
        base = BaseType.REAL
    if base is BaseType.INTEGER:
        base = BaseType.REAL
    return scalar(base)


def _load_rule(args: Sequence[VarType], consts: Consts) -> VarType:
    # Refined by the sample-data-file mechanism in analysis.datafile.
    return matrix(BaseType.UNKNOWN, UNKNOWN_SHAPE)


def _void_rule(args: Sequence[VarType], consts: Consts) -> VarType:
    return VarType()  # bottom: produces no value


def _logical_ew() -> TypeRule:
    def rule(args: Sequence[VarType], consts: Consts) -> VarType:
        a = args[0]
        return VarType(BaseType.INTEGER, a.rank, a.shape)

    return rule


# --------------------------------------------------------------------------
# the registry
# --------------------------------------------------------------------------

# generators
_register("zeros", 0, 2, 1, "generator", _generator(BaseType.REAL))
_register("ones", 0, 2, 1, "generator", _generator(BaseType.REAL))
_register("eye", 0, 2, 1, "generator", _generator(BaseType.REAL))
_register("rand", 0, 2, 1, "generator", _generator(BaseType.REAL), pure=False,
          notes="rand('seed', s) reseeds the generator")
_register("randn", 0, 2, 1, "generator", _generator(BaseType.REAL), pure=False)
_register("linspace", 2, 3, 1, "generator", _linspace_rule)

# unary elementwise
for _name in ("sqrt", "exp", "log", "log2", "log10", "sin", "cos", "tan",
              "asin", "acos", "atan", "sinh", "cosh", "tanh"):
    _register(_name, 1, 1, 1, "elementwise", _elementwise())
for _name in ("floor", "ceil", "round", "fix", "sign"):
    _register(_name, 1, 1, 1, "elementwise", _ew_same_base())
_register("abs", 1, 1, 1, "elementwise", _elementwise(None))
_register("real", 1, 1, 1, "elementwise", _elementwise(BaseType.REAL))
_register("imag", 1, 1, 1, "elementwise", _elementwise(BaseType.REAL))
_register("conj", 1, 1, 1, "elementwise", _ew_same_base())
_register("angle", 1, 1, 1, "elementwise", _elementwise(BaseType.REAL))
_register("double", 1, 1, 1, "elementwise", _ew_same_base())
_register("isnan", 1, 1, 1, "elementwise", _logical_ew())
_register("isinf", 1, 1, 1, "elementwise", _logical_ew())
_register("isfinite", 1, 1, 1, "elementwise", _logical_ew())

# binary elementwise
for _name in ("mod", "rem", "atan2", "hypot", "power"):
    _register(_name, 2, 2, 1, "ewbinary", _ew_binary())

# reductions
for _name in ("sum", "prod", "mean"):
    _register(_name, 1, 2, 1, "reduction", _reduction(),
              notes="optional dim argument: 1 = columns, 2 = rows")
for _name in ("cumsum", "cumprod"):
    _register(_name, 1, 1, 1, "reduction", _same_as_arg())
for _name in ("std", "var"):
    _register(_name, 1, 1, 1, "reduction", _reduction())
_register("median", 1, 1, 1, "reduction", _reduction())
_register("max", 1, 2, 2, "reduction", _minmax_rule)
_register("min", 1, 2, 2, "reduction", _minmax_rule)
_register("all", 1, 1, 1, "reduction", _reduction())
_register("any", 1, 1, 1, "reduction", _reduction())
_register("norm", 1, 2, 1, "reduction", _scalar_result(BaseType.REAL))
_register("trapz", 1, 2, 1, "reduction", _trapz_rule,
          notes="trapz(y) unit spacing; trapz(x, y)")
_register("trapz2", 1, 3, 1, "reduction", _trapz_rule,
          notes="2-D trapezoidal integration, used by the ocean script")
_register("dot", 2, 2, 1, "linalg", _dot_rule)


def _find_rule(args: Sequence[VarType], consts: Consts) -> VarType:
    # dynamic-size result: a column of 1-based linear indices (row for
    # row-vector inputs); size known only at run time
    return matrix(BaseType.INTEGER, UNKNOWN_SHAPE)


_register("find", 1, 1, 1, "query", _find_rule,
          notes="1-based linear indices of nonzeros (column-major)")


def _square_same(args: Sequence[VarType], consts: Consts) -> VarType:
    a = args[0]
    base = a.base if a.base.is_numeric else BaseType.REAL
    if base is BaseType.INTEGER:
        base = BaseType.REAL
    return VarType(base, a.rank, a.shape)


def _literal_out(args: Sequence[VarType], consts: Consts) -> VarType:
    return literal()


_register("inv", 1, 1, 1, "linalg", _square_same)
_register("det", 1, 1, 1, "linalg", _scalar_result(BaseType.REAL))
_register("trace", 1, 1, 1, "linalg", _scalar_result(BaseType.REAL))
_register("sprintf", 1, -1, 1, "io", _literal_out)
_register("num2str", 1, 2, 1, "io", _literal_out)
_register("int2str", 1, 1, 1, "io", _literal_out)

# queries
_register("size", 1, 2, 3, "query", _size_rule)
_register("length", 1, 1, 1, "query", _scalar_result(BaseType.INTEGER))
_register("numel", 1, 1, 1, "query", _scalar_result(BaseType.INTEGER))
_register("isempty", 1, 1, 1, "query", _scalar_result(BaseType.INTEGER))
_register("isreal", 1, 1, 1, "query", _scalar_result(BaseType.INTEGER))
_register("isscalar", 1, 1, 1, "query", _scalar_result(BaseType.INTEGER))

# structural
_register("reshape", 3, 3, 1, "structural", _reshape_rule)
_register("repmat", 3, 3, 1, "structural", _repmat_rule)
_register("circshift", 2, 2, 1, "structural", _same_as_arg(),
          notes="shift is a scalar or MATLAB's [rows cols] pair; "
                "column shifts are rank-local under the row "
                "distribution")
_register("fliplr", 1, 1, 1, "structural", _same_as_arg())
_register("flipud", 1, 1, 1, "structural", _same_as_arg())
_register("tril", 1, 2, 1, "structural", _same_as_arg())
_register("triu", 1, 2, 1, "structural", _same_as_arg())
_register("diag", 1, 1, 1, "structural", _diag_rule)
_register("transpose", 1, 1, 1, "structural", _transpose_rule)
_register("ctranspose", 1, 1, 1, "structural", _transpose_rule)
_register("sort", 1, 1, 1, "structural", _same_as_arg(),
          notes="parallel sample sort in the run-time library")

# constants
_register("pi", 0, 0, 1, "constant", _scalar_result(BaseType.REAL))
_register("eps", 0, 0, 1, "constant", _scalar_result(BaseType.REAL))
_register("inf", 0, 0, 1, "constant", _scalar_result(BaseType.REAL))
_register("Inf", 0, 0, 1, "constant", _scalar_result(BaseType.REAL))
_register("nan", 0, 0, 1, "constant", _scalar_result(BaseType.REAL))
_register("NaN", 0, 0, 1, "constant", _scalar_result(BaseType.REAL))
_register("realmax", 0, 0, 1, "constant", _scalar_result(BaseType.REAL))
_register("realmin", 0, 0, 1, "constant", _scalar_result(BaseType.REAL))
_register("i", 0, 0, 1, "constant", _scalar_result(BaseType.COMPLEX))
_register("j", 0, 0, 1, "constant", _scalar_result(BaseType.COMPLEX))

# I/O and control
_register("disp", 1, 1, 0, "io", _void_rule, pure=False)
_register("fprintf", 1, -1, 0, "io", _void_rule, pure=False)
_register("error", 1, -1, 0, "io", _void_rule, pure=False)
_register("load", 1, 1, 1, "io", _load_rule, pure=False,
          notes="typed from a sample data file at compile time")
_register("save", 1, -1, 0, "io", _void_rule, pure=False)
_register("tic", 0, 0, 0, "io", _void_rule, pure=False)
_register("toc", 0, 0, 1, "io", _scalar_result(BaseType.REAL), pure=False)


def builtin_names() -> frozenset[str]:
    return frozenset(REGISTRY)
