"""Pass 2 — identifier resolution.

Beginning with the original script, determine which identifiers are
variables and which are functions.  User M-file functions discovered here
are scanned, parsed, and resolved in turn, and every reachable function is
attached to the resulting :class:`Program` (we do *not* inline them,
matching the paper).

MATLAB's grammar leaves ``x(e)`` ambiguous between indexing and a call;
the rule applied here (the standard static approximation, also used by
FALCON) is: a name assigned anywhere in the unit — including as a loop
variable, parameter, or return value — is a *variable*; otherwise it must
name a user M-file function or a builtin.

This pass also binds every ``end`` subscript to the variable and axis it
measures.
"""

from __future__ import annotations

from ..errors import ResolutionError
from ..frontend import ast_nodes as A
from ..frontend.mfile import EMPTY_PROVIDER, MFileProvider
from .builtin_sigs import get_sig, is_builtin
from .symtab import SymbolTable


class ResolvedUnit:
    """A program unit (script or function) with its symbol table."""

    def __init__(self, name: str, node: A.Script | A.FunctionDef,
                 symtab: SymbolTable):
        self.name = name
        self.node = node
        self.symtab = symtab

    @property
    def body(self) -> list[A.Stmt]:
        return self.node.body


class ResolvedProgram:
    """Output of pass 2: the script unit, all function units, symbol tables."""

    def __init__(self, script: ResolvedUnit, provider: MFileProvider):
        self.script = script
        self.functions: dict[str, ResolvedUnit] = {}
        self.provider = provider

    def unit(self, name: str) -> ResolvedUnit:
        if name == self.script.name:
            return self.script
        return self.functions[name]

    def all_units(self) -> list[ResolvedUnit]:
        return [self.script, *self.functions.values()]


class Resolver:
    def __init__(self, provider: MFileProvider | None = None,
                 predefined: set[str] | None = None):
        self.provider = provider or EMPTY_PROVIDER
        self.predefined = set(predefined or ())
        self._in_progress: set[str] = set()

    # ------------------------------------------------------------------ #

    def resolve(self, script: A.Script) -> ResolvedProgram:
        symtab = SymbolTable(script.name)
        for name in sorted(self.predefined):
            symtab.define(name, "variable")  # e.g. a REPL workspace
        self._collect_assigned(script.body, symtab)
        program = ResolvedProgram(ResolvedUnit(script.name, script, symtab),
                                  self.provider)
        self._resolve_body(script.body, symtab, program, siblings={})
        return program

    # ------------------------------------------------------------------ #
    # collecting variable bindings
    # ------------------------------------------------------------------ #

    def _collect_assigned(self, body: list[A.Stmt], symtab: SymbolTable) -> None:
        for stmt in body:
            if isinstance(stmt, A.Assign):
                symtab.define(stmt.target.name, "variable")
            elif isinstance(stmt, A.MultiAssign):
                for target in stmt.targets:
                    symtab.define(target.name, "variable")
            elif isinstance(stmt, A.ExprStmt):
                if stmt.display:
                    symtab.define("ans", "variable")
            elif isinstance(stmt, A.For):
                symtab.define(stmt.var, "loopvar")
                self._collect_assigned(stmt.body, symtab)
            elif isinstance(stmt, A.While):
                self._collect_assigned(stmt.body, symtab)
            elif isinstance(stmt, A.If):
                for _cond, branch in stmt.branches:
                    self._collect_assigned(branch, symtab)
                self._collect_assigned(stmt.orelse, symtab)
            elif isinstance(stmt, A.Switch):
                for _values, branch in stmt.cases:
                    self._collect_assigned(branch, symtab)
                self._collect_assigned(stmt.otherwise, symtab)
            elif isinstance(stmt, A.Global):
                for name in stmt.names:
                    symtab.define(name, "global")

    # ------------------------------------------------------------------ #
    # resolving references
    # ------------------------------------------------------------------ #

    def _resolve_body(self, body: list[A.Stmt], symtab: SymbolTable,
                      program: ResolvedProgram,
                      siblings: dict[str, A.FunctionDef]) -> None:
        for stmt in body:
            self._resolve_stmt(stmt, symtab, program, siblings)

    def _resolve_stmt(self, stmt: A.Stmt, symtab: SymbolTable,
                      program: ResolvedProgram,
                      siblings: dict[str, A.FunctionDef]) -> None:
        rw = lambda e: self._resolve_expr(e, symtab, program, siblings)  # noqa: E731
        if isinstance(stmt, A.Assign):
            stmt.value = rw(stmt.value)
            if isinstance(stmt.target, A.IndexLValue):
                stmt.target.args = [rw(a) for a in stmt.target.args]
                self._bind_end_refs(stmt.target.name, stmt.target.args)
        elif isinstance(stmt, A.MultiAssign):
            call = self._resolve_expr(stmt.call, symtab, program, siblings)
            if not (isinstance(call, A.Apply)
                    and call.resolved in ("call", "builtin")):
                raise ResolutionError(
                    "[..] = requires a function call on the right-hand side",
                    stmt.loc)
            stmt.call = call
            for target in stmt.targets:
                if isinstance(target, A.IndexLValue):
                    target.args = [rw(a) for a in target.args]
                    self._bind_end_refs(target.name, target.args)
        elif isinstance(stmt, A.ExprStmt):
            stmt.value = rw(stmt.value)
        elif isinstance(stmt, A.If):
            stmt.branches = [
                (rw(cond), branch) for cond, branch in stmt.branches
            ]
            for _cond, branch in stmt.branches:
                self._resolve_body(branch, symtab, program, siblings)
            self._resolve_body(stmt.orelse, symtab, program, siblings)
        elif isinstance(stmt, A.For):
            stmt.iterable = rw(stmt.iterable)
            self._resolve_body(stmt.body, symtab, program, siblings)
        elif isinstance(stmt, A.While):
            stmt.cond = rw(stmt.cond)
            self._resolve_body(stmt.body, symtab, program, siblings)
        elif isinstance(stmt, A.Switch):
            stmt.subject = rw(stmt.subject)
            stmt.cases = [([rw(v) for v in values], branch)
                          for values, branch in stmt.cases]
            for _values, branch in stmt.cases:
                self._resolve_body(branch, symtab, program, siblings)
            self._resolve_body(stmt.otherwise, symtab, program, siblings)
        # Break/Continue/Return/Global carry no expressions.

    def _resolve_expr(self, expr: A.Expr, symtab: SymbolTable,
                      program: ResolvedProgram,
                      siblings: dict[str, A.FunctionDef]) -> A.Expr:
        rw = lambda e: self._resolve_expr(e, symtab, program, siblings)  # noqa: E731
        if isinstance(expr, A.Ident):
            name = expr.name
            if symtab.is_variable(name):
                return expr
            if self._find_function(name, program, siblings):
                return A.Apply(loc=expr.loc, name=name, args=[], resolved="call")
            if is_builtin(name):
                return A.Apply(loc=expr.loc, name=name, args=[], resolved="builtin")
            raise ResolutionError(f"undefined identifier {name!r}", expr.loc)
        if isinstance(expr, A.Apply):
            expr.args = [rw(a) for a in expr.args]
            name = expr.name
            if symtab.is_variable(name):
                expr.resolved = "index"
                self._bind_end_refs(name, expr.args)
            elif self._find_function(name, program, siblings):
                expr.resolved = "call"
                self._check_no_colon(expr)
            elif is_builtin(name):
                expr.resolved = "builtin"
                sig = get_sig(name)
                assert sig is not None
                if not sig.accepts(len(expr.args)):
                    raise ResolutionError(
                        f"builtin {name!r} does not accept {len(expr.args)} "
                        "argument(s)", expr.loc)
                self._check_no_colon(expr)
            else:
                raise ResolutionError(
                    f"undefined function or variable {name!r}", expr.loc)
            return expr
        if isinstance(expr, A.BinOp):
            expr.lhs = rw(expr.lhs)
            expr.rhs = rw(expr.rhs)
            return expr
        if isinstance(expr, A.UnaryOp):
            expr.operand = rw(expr.operand)
            return expr
        if isinstance(expr, A.Transpose):
            expr.operand = rw(expr.operand)
            return expr
        if isinstance(expr, A.Range):
            expr.start = rw(expr.start)
            expr.stop = rw(expr.stop)
            if expr.step is not None:
                expr.step = rw(expr.step)
            return expr
        if isinstance(expr, A.MatrixLit):
            expr.rows = [[rw(e) for e in row] for row in expr.rows]
            return expr
        if isinstance(expr, (A.Num, A.ImagNum, A.Str, A.Colon, A.EndRef)):
            return expr
        raise ResolutionError(f"cannot resolve node {type(expr).__name__}",
                              expr.loc)

    def _check_no_colon(self, call: A.Apply) -> None:
        for arg in call.args:
            if isinstance(arg, A.Colon):
                raise ResolutionError(
                    f"':' subscript passed to function {call.name!r}", call.loc)

    # ------------------------------------------------------------------ #
    # `end` binding
    # ------------------------------------------------------------------ #

    def _bind_end_refs(self, var: str, args: list[A.Expr]) -> None:
        nargs = len(args)
        for axis, arg in enumerate(args):
            for node in A.walk(arg):
                if isinstance(node, A.EndRef) and not node.var:
                    node.var = var
                    node.axis = axis
                    node.nargs = nargs

    # ------------------------------------------------------------------ #
    # user functions
    # ------------------------------------------------------------------ #

    def _find_function(self, name: str, program: ResolvedProgram,
                       siblings: dict[str, A.FunctionDef]) -> bool:
        if name in program.functions or name in self._in_progress:
            return True
        func = siblings.get(name)
        file_funcs: list[A.FunctionDef] | None = None
        if func is None:
            file_funcs = self.provider.lookup(name)
            if file_funcs is None:
                return False
            by_name = {f.name: f for f in file_funcs}
            func = by_name.get(name, file_funcs[0])
        self._resolve_function(func, program,
                               {f.name: f for f in (file_funcs or [])})
        return True

    def _resolve_function(self, func: A.FunctionDef, program: ResolvedProgram,
                          siblings: dict[str, A.FunctionDef]) -> None:
        if func.name in program.functions or func.name in self._in_progress:
            return
        self._in_progress.add(func.name)
        try:
            symtab = SymbolTable(func.name)
            for param in func.params:
                symtab.define(param, "param")
            for ret in func.returns:
                symtab.define(ret, "retval")
            self._collect_assigned(func.body, symtab)
            unit = ResolvedUnit(func.name, func, symtab)
            program.functions[func.name] = unit
            self._resolve_body(func.body, symtab, program, siblings)
        finally:
            self._in_progress.discard(func.name)


def resolve_program(script: A.Script,
                    provider: MFileProvider | None = None,
                    predefined: set[str] | None = None) -> ResolvedProgram:
    """Run pass 2 on a parsed script.

    ``predefined`` names resolve as variables even without an assignment
    in the script — used by the REPL, whose workspace persists across
    inputs.
    """
    return Resolver(provider, predefined).resolve(script)
