"""Control-flow graph over a program unit's statement list.

The CFG is the substrate for SSA construction (pass 3).  Blocks hold
*events* rather than raw AST statements so that control-flow constructs can
contribute their variable effects at the right program point:

* :class:`StmtEvent` — a simple statement (assignment, call, ...)
* :class:`CondEvent` — evaluation of a branch/loop condition (uses only)
* :class:`LoopIndexEvent` — the ``for`` header, defining the loop variable
  from the iterable each trip

Every event reports the variables it *uses* (as AST nodes, so SSA renaming
can annotate each use site) and the variables it *defines*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..frontend import ast_nodes as A


def _expr_uses(expr: A.Expr | None) -> list[A.Node]:
    """Collect variable-use sites in an expression: Ident reads, EndRef."""
    if expr is None:
        return []
    uses: list[A.Node] = []
    for node in A.walk(expr):
        if isinstance(node, (A.Ident, A.EndRef)):
            uses.append(node)
    return uses


def _use_name(node: A.Node) -> str:
    if isinstance(node, A.Ident):
        return node.name
    if isinstance(node, A.EndRef):
        return node.var
    raise TypeError(type(node).__name__)


class Event:
    """One def/use point inside a basic block."""

    def uses(self) -> list[A.Node]:
        raise NotImplementedError

    def implicit_uses(self) -> list[str]:
        """Variables read without a dedicated AST node (e.g. the target of
        an indexed assignment, which is a read-modify-write)."""
        return []

    def defs(self) -> list[str]:
        raise NotImplementedError


@dataclass
class StmtEvent(Event):
    stmt: A.Stmt

    def uses(self) -> list[A.Node]:
        s = self.stmt
        if isinstance(s, A.Assign):
            nodes = _expr_uses(s.value)
            if isinstance(s.target, A.IndexLValue):
                for arg in s.target.args:
                    nodes.extend(_expr_uses(arg))
            return nodes
        if isinstance(s, A.MultiAssign):
            nodes = _expr_uses(s.call)
            for target in s.targets:
                if isinstance(target, A.IndexLValue):
                    for arg in target.args:
                        nodes.extend(_expr_uses(arg))
            return nodes
        if isinstance(s, A.ExprStmt):
            return _expr_uses(s.value)
        if isinstance(s, A.Global):
            return []
        raise TypeError(f"not a simple statement: {type(s).__name__}")

    def implicit_uses(self) -> list[str]:
        s = self.stmt
        names: list[str] = []
        if isinstance(s, A.Assign) and isinstance(s.target, A.IndexLValue):
            names.append(s.target.name)
        if isinstance(s, A.MultiAssign):
            for target in s.targets:
                if isinstance(target, A.IndexLValue):
                    names.append(target.name)
        return names

    def defs(self) -> list[str]:
        s = self.stmt
        if isinstance(s, A.Assign):
            return [s.target.name]
        if isinstance(s, A.MultiAssign):
            return [t.name for t in s.targets]
        if isinstance(s, A.ExprStmt):
            if _produces_value(s.value):
                return ["ans"]
            return []
        if isinstance(s, A.Global):
            return list(s.names)
        raise TypeError(f"not a simple statement: {type(s).__name__}")


@dataclass
class CondEvent(Event):
    expr: A.Expr

    def uses(self) -> list[A.Node]:
        return _expr_uses(self.expr)

    def defs(self) -> list[str]:
        return []


@dataclass
class LoopIndexEvent(Event):
    stmt: A.For

    def uses(self) -> list[A.Node]:
        return _expr_uses(self.stmt.iterable)

    def defs(self) -> list[str]:
        return [self.stmt.var]


def _produces_value(expr: A.Expr) -> bool:
    """False for calls to void builtins (disp, fprintf, ...)."""
    if isinstance(expr, A.Apply) and expr.resolved == "builtin":
        from .builtin_sigs import get_sig

        sig = get_sig(expr.name)
        return sig is None or sig.nargout > 0
    return True


@dataclass
class BasicBlock:
    id: int
    events: list[Event] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)

    def __repr__(self) -> str:
        return (f"B{self.id}(events={len(self.events)}, "
                f"succs={self.succs})")


class CFG:
    """A control-flow graph with a unique entry and a unique exit block."""

    def __init__(self) -> None:
        self.blocks: list[BasicBlock] = []
        self.entry = self._new_block().id
        self.exit: int = -1  # set by the builder

    def _new_block(self) -> BasicBlock:
        block = BasicBlock(len(self.blocks))
        self.blocks.append(block)
        return block

    def add_edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].succs:
            self.blocks[src].succs.append(dst)
        if src not in self.blocks[dst].preds:
            self.blocks[dst].preds.append(src)

    def reachable_order(self) -> list[int]:
        """Reverse postorder from the entry block (reachable blocks only)."""
        seen: set[int] = set()
        post: list[int] = []

        def dfs(b: int) -> None:
            stack = [(b, iter(self.blocks[b].succs))]
            seen.add(b)
            while stack:
                node, it = stack[-1]
                advanced = False
                for succ in it:
                    if succ not in seen:
                        seen.add(succ)
                        stack.append((succ, iter(self.blocks[succ].succs)))
                        advanced = True
                        break
                if not advanced:
                    post.append(node)
                    stack.pop()

        dfs(self.entry)
        return list(reversed(post))

    def all_events(self) -> list[tuple[int, Event]]:
        out = []
        for block in self.blocks:
            for event in block.events:
                out.append((block.id, event))
        return out


class _LoopCtx:
    def __init__(self, continue_target: int):
        self.continue_target = continue_target
        self.break_sources: list[int] = []


class CFGBuilder:
    """Translate structured control flow into a CFG."""

    def __init__(self) -> None:
        self.cfg = CFG()
        self.current: int | None = self.cfg.entry
        self._loops: list[_LoopCtx] = []
        self._return_sources: list[int] = []

    def build(self, body: list[A.Stmt]) -> CFG:
        self._body(body)
        exit_block = self.cfg._new_block()
        self.cfg.exit = exit_block.id
        if self.current is not None:
            self.cfg.add_edge(self.current, exit_block.id)
        for src in self._return_sources:
            self.cfg.add_edge(src, exit_block.id)
        return self.cfg

    # -- helpers --------------------------------------------------------- #

    def _emit(self, event: Event) -> None:
        if self.current is None:  # unreachable code after break/return
            self.current = self.cfg._new_block().id
        self.cfg.blocks[self.current].events.append(event)

    def _fresh_after(self, *preds: int | None) -> int:
        block = self.cfg._new_block()
        for pred in preds:
            if pred is not None:
                self.cfg.add_edge(pred, block.id)
        return block.id

    # -- statement dispatch ----------------------------------------------- #

    def _body(self, body: list[A.Stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: A.Stmt) -> None:
        if isinstance(stmt, (A.Assign, A.MultiAssign, A.ExprStmt, A.Global)):
            self._emit(StmtEvent(stmt))
        elif isinstance(stmt, A.If):
            self._if(stmt)
        elif isinstance(stmt, A.For):
            self._for(stmt)
        elif isinstance(stmt, A.While):
            self._while(stmt)
        elif isinstance(stmt, A.Switch):
            self._switch(stmt)
        elif isinstance(stmt, A.Break):
            if self._loops and self.current is not None:
                self._loops[-1].break_sources.append(self.current)
            self.current = None
        elif isinstance(stmt, A.Continue):
            if self._loops and self.current is not None:
                self.cfg.add_edge(self.current, self._loops[-1].continue_target)
            self.current = None
        elif isinstance(stmt, A.Return):
            if self.current is not None:
                self._return_sources.append(self.current)
            self.current = None
        else:
            raise TypeError(f"unhandled statement {type(stmt).__name__}")

    def _if(self, stmt: A.If) -> None:
        join_sources: list[int] = []
        for cond, branch in stmt.branches:
            self._emit(CondEvent(cond))
            cond_block = self.current
            assert cond_block is not None
            # then-branch
            self.current = self._fresh_after(cond_block)
            self._body(branch)
            if self.current is not None:
                join_sources.append(self.current)
            # else continues from the condition block
            self.current = self._fresh_after(cond_block)
        self._body(stmt.orelse)
        if self.current is not None:
            join_sources.append(self.current)
        if join_sources:
            join = self.cfg._new_block().id
            for src in join_sources:
                self.cfg.add_edge(src, join)
            self.current = join
        else:
            self.current = None

    def _for(self, stmt: A.For) -> None:
        pre = self.current
        header = self.cfg._new_block().id
        if pre is not None:
            self.cfg.add_edge(pre, header)
        self.cfg.blocks[header].events.append(LoopIndexEvent(stmt))
        ctx = _LoopCtx(continue_target=header)
        self._loops.append(ctx)
        self.current = self._fresh_after(header)  # loop body
        self._body(stmt.body)
        if self.current is not None:
            self.cfg.add_edge(self.current, header)
        self._loops.pop()
        after = self._fresh_after(header)
        for src in ctx.break_sources:
            self.cfg.add_edge(src, after)
        self.current = after

    def _while(self, stmt: A.While) -> None:
        pre = self.current
        header = self.cfg._new_block().id
        if pre is not None:
            self.cfg.add_edge(pre, header)
        self.cfg.blocks[header].events.append(CondEvent(stmt.cond))
        ctx = _LoopCtx(continue_target=header)
        self._loops.append(ctx)
        self.current = self._fresh_after(header)
        self._body(stmt.body)
        if self.current is not None:
            self.cfg.add_edge(self.current, header)
        self._loops.pop()
        after = self._fresh_after(header)
        for src in ctx.break_sources:
            self.cfg.add_edge(src, after)
        self.current = after

    def _switch(self, stmt: A.Switch) -> None:
        self._emit(CondEvent(stmt.subject))
        subject_block = self.current
        assert subject_block is not None
        join_sources: list[int] = []
        for values, branch in stmt.cases:
            self.current = self._fresh_after(subject_block)
            for value in values:
                self._emit(CondEvent(value))
            self._body(branch)
            if self.current is not None:
                join_sources.append(self.current)
        self.current = self._fresh_after(subject_block)
        self._body(stmt.otherwise)
        if self.current is not None:
            join_sources.append(self.current)
        if join_sources:
            join = self.cfg._new_block().id
            for src in join_sources:
                self.cfg.add_edge(src, join)
            self.current = join
        else:
            self.current = None


def build_cfg(body: list[A.Stmt]) -> CFG:
    """Build the CFG of a statement list."""
    return CFGBuilder().build(body)
