"""Pass 3 — type, rank, and shape inference.

Runs on the SSA annotation layer: every SSA value receives a
:class:`VarType` (base type x rank x shape) and, when statically evident, a
compile-time constant.  The static inference mechanism extracts information
from constants, operators, builtin signatures, user-function bodies
(interprocedurally, to a fixpoint), and sample data files for ``load`` —
the same sources the paper lists.

The analysis is a forward dataflow problem on a finite-height lattice:
each local pass re-evaluates every event in reverse postorder and joins
into the value table; the engine iterates until nothing changes.  Function
calls are handled by accumulating, per callee, the join of the argument
types seen at every call site, and iterating the *set of units* to a global
fixpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..errors import InferenceError
from ..frontend import ast_nodes as A
from .builtin_sigs import get_sig
from .cfg import CondEvent, LoopIndexEvent, StmtEvent
from .datafile import infer_load_type
from .lattice import (
    BOTTOM,
    BaseType,
    Rank,
    SCALAR_SHAPE,
    Shape,
    UNKNOWN,
    UNKNOWN_SHAPE,
    VarType,
    matrix,
    scalar,
)
from .resolve import ResolvedProgram, ResolvedUnit
from .ssa import SSAInfo, SSAValue, build_ssa

_CONSTANT_VALUES = {
    "pi": 3.141592653589793,
    "eps": 2.220446049250313e-16,
    "inf": float("inf"),
    "Inf": float("inf"),
    "nan": float("nan"),
    "NaN": float("nan"),
    "realmax": 1.7976931348623157e308,
    "realmin": 2.2250738585072014e-308,
}

_FOLDABLE = {
    "sqrt": lambda x: x ** 0.5,
    "abs": abs,
    "floor": lambda x: float(__import__("math").floor(x)),
    "ceil": lambda x: float(__import__("math").ceil(x)),
    "round": lambda x: float(round(x)),
    "exp": lambda x: __import__("math").exp(x),
    "log": lambda x: __import__("math").log(x),
    "log2": lambda x: __import__("math").log2(x),
}


def _num_type(value: float) -> VarType:
    base = BaseType.INTEGER if float(value).is_integer() else BaseType.REAL
    return scalar(base)


@dataclass
class UnitTypes:
    """Inference results for one program unit."""

    name: str
    ssa: SSAInfo
    types: dict[int, VarType] = field(default_factory=dict)  # vid -> type
    consts: dict[int, object] = field(default_factory=dict)  # vid -> value
    var_types: dict[str, VarType] = field(default_factory=dict)
    var_consts: dict[str, object] = field(default_factory=dict)
    # id(expr node) -> inferred type of that (sub)expression, for codegen
    expr_types: dict[int, VarType] = field(default_factory=dict)

    def type_of_value(self, value: SSAValue) -> VarType:
        return self.types.get(value.vid, BOTTOM)

    def type_of_use(self, node: A.Node) -> VarType:
        value = self.ssa.use_of.get(id(node))
        if value is None:
            return UNKNOWN
        return self.type_of_value(value)


@dataclass
class ProgramTypes:
    """Inference results for the whole program."""

    script: UnitTypes
    functions: dict[str, UnitTypes] = field(default_factory=dict)
    # per-function: parameter types (join over call sites) and return types
    param_types: dict[str, list[VarType]] = field(default_factory=dict)
    return_types: dict[str, list[VarType]] = field(default_factory=dict)

    def unit(self, name: str) -> UnitTypes:
        if name == self.script.name:
            return self.script
        return self.functions[name]

    def all_units(self) -> list[UnitTypes]:
        return [self.script, *self.functions.values()]


class InferenceEngine:
    def __init__(self, program: ResolvedProgram):
        self.program = program
        self.result: ProgramTypes | None = None
        self._unit_types: dict[str, UnitTypes] = {}
        # accumulated call-site argument types per function
        self._param_types: dict[str, list[VarType]] = {}
        self._param_consts: dict[str, list[object]] = {}
        self._return_types: dict[str, list[VarType]] = {}
        self._changed = False

    # ------------------------------------------------------------------ #
    # driver
    # ------------------------------------------------------------------ #

    def run(self) -> ProgramTypes:
        script_unit = self.program.script
        self._unit_types[script_unit.name] = self._make_unit_types(script_unit)
        for name, unit in self.program.functions.items():
            self._unit_types[name] = self._make_unit_types(unit)
            func = unit.node
            assert isinstance(func, A.FunctionDef)
            self._param_types.setdefault(name, [BOTTOM] * len(func.params))
            self._param_consts.setdefault(name, [None] * len(func.params))
            self._return_types.setdefault(name, [BOTTOM] * max(len(func.returns), 1))

        # global fixpoint over all units
        for _round in range(64):
            self._changed = False
            self._infer_unit(script_unit)
            for name, unit in self.program.functions.items():
                self._infer_unit(unit)
            if not self._changed:
                break
        else:  # pragma: no cover - lattice height bounds iterations
            raise InferenceError("type inference did not converge")

        self._finalize()
        result = ProgramTypes(
            script=self._unit_types[script_unit.name],
            functions={n: self._unit_types[n]
                       for n in self.program.functions},
            param_types=dict(self._param_types),
            return_types=dict(self._return_types),
        )
        self.result = result
        return result

    def _make_unit_types(self, unit: ResolvedUnit) -> UnitTypes:
        params: list[str] = []
        if isinstance(unit.node, A.FunctionDef):
            params = unit.node.params
        ssa = build_ssa(unit.body, params)
        return UnitTypes(unit.name, ssa)

    def _finalize(self) -> None:
        """Fold per-version types into per-variable types in the symtabs."""
        for unit in [self.program.script, *self.program.functions.values()]:
            ut = self._unit_types[unit.name]
            per_var: dict[str, VarType] = {}
            per_var_consts: dict[str, list[object]] = {}
            for value in ut.ssa.values:
                vtype = ut.types.get(value.vid, BOTTOM)
                if vtype == BOTTOM:
                    continue  # never-defined entry versions
                per_var[value.var] = per_var.get(value.var, BOTTOM).join(vtype)
                per_var_consts.setdefault(value.var, []).append(
                    ut.consts.get(value.vid))
            for name, vtype in per_var.items():
                # Rank unknown means "could be scalar or matrix"; storage
                # must assume matrix (the general case).
                if vtype.rank is Rank.UNKNOWN:
                    vtype = VarType(vtype.base, Rank.MATRIX, vtype.shape)
                if vtype.base in (BaseType.BOTTOM, BaseType.UNKNOWN):
                    vtype = VarType(BaseType.REAL, vtype.rank, vtype.shape)
                ut.var_types[name] = vtype
                consts = per_var_consts.get(name, [])
                if consts and all(c is not None and c == consts[0]
                                  for c in consts):
                    ut.var_consts[name] = consts[0]
                sym = unit.symtab.lookup(name)
                if sym is not None:
                    sym.vtype = vtype
                    sym.const = ut.var_consts.get(name)

    # ------------------------------------------------------------------ #
    # per-unit local fixpoint
    # ------------------------------------------------------------------ #

    def _infer_unit(self, unit: ResolvedUnit) -> None:
        ut = self._unit_types[unit.name]
        ssa = ut.ssa

        # seed parameter types
        if isinstance(unit.node, A.FunctionDef):
            ptypes = self._param_types[unit.name]
            pconsts = self._param_consts[unit.name]
            for i, pname in enumerate(unit.node.params):
                value = ssa.param_values.get(pname)
                if value is not None:
                    self._set_type(ut, value, ptypes[i])
                    if pconsts[i] is not None:
                        ut.consts.setdefault(value.vid, pconsts[i])

        for _round in range(64):
            before = self._changed
            self._changed = False
            self._one_pass(unit, ut)
            local_changed = self._changed
            self._changed = before or local_changed
            if not local_changed:
                break
        else:  # pragma: no cover
            raise InferenceError(f"inference diverged in unit {unit.name!r}")

        # publish this function's return types
        if isinstance(unit.node, A.FunctionDef):
            rets = self._return_types[unit.name]
            for i, rname in enumerate(unit.node.returns):
                joined = BOTTOM
                for value in ssa.versions_of(rname):
                    joined = joined.join(ut.types.get(value.vid, BOTTOM))
                if joined != rets[i]:
                    rets[i] = rets[i].join(joined)
                    self._changed = True

    def _one_pass(self, unit: ResolvedUnit, ut: UnitTypes) -> None:
        ssa = ut.ssa
        for block_id in ssa.dom.rpo:
            for phi in ssa.phis.get(block_id, []):
                joined = BOTTOM
                const_candidates: list[object] = []
                for value in phi.args.values():
                    t = ut.types.get(value.vid, BOTTOM)
                    joined = joined.join(t)
                    if t != BOTTOM:
                        const_candidates.append(ut.consts.get(value.vid))
                self._set_type(ut, phi.result, joined)
                if (const_candidates
                        and all(c is not None and c == const_candidates[0]
                                for c in const_candidates)):
                    self._set_const(ut, phi.result, const_candidates[0])
                else:
                    self._set_const(ut, phi.result, None)
            for event in ssa.cfg.blocks[block_id].events:
                self._infer_event(unit, ut, event)

    def _set_type(self, ut: UnitTypes, value: SSAValue, vtype: VarType) -> None:
        """Replace-at-def semantics: each pass recomputes every definition
        from its current inputs (phis join their arguments explicitly).
        This lets precision *improve* as constants become known — a join
        here would lock in the pessimistic first-pass answer."""
        old = ut.types.get(value.vid, BOTTOM)
        if vtype != old:
            ut.types[value.vid] = vtype
            self._changed = True

    def _set_const(self, ut: UnitTypes, value: SSAValue, const: object) -> None:
        old = ut.consts.get(value.vid)
        if const is None:
            if value.vid in ut.consts:
                del ut.consts[value.vid]
                self._changed = True
        elif old != const:
            ut.consts[value.vid] = const
            self._changed = True

    # ------------------------------------------------------------------ #
    # events
    # ------------------------------------------------------------------ #

    def _infer_event(self, unit: ResolvedUnit, ut: UnitTypes, event) -> None:
        if isinstance(event, CondEvent):
            self._type_expr(unit, ut, event.expr)
            return
        if isinstance(event, LoopIndexEvent):
            it_type, _ = self._type_expr(unit, ut, event.stmt.iterable)
            loop_type = self._loop_var_type(it_type)
            defs = ut.ssa.defs_of.get(id(event), [])
            if defs:
                self._set_type(ut, defs[0], loop_type)
            return
        assert isinstance(event, StmtEvent)
        stmt = event.stmt
        if isinstance(stmt, A.Assign):
            rhs_type, rhs_const = self._type_expr(unit, ut, stmt.value)
            defs = ut.ssa.defs_of.get(id(event), [])
            if not defs:
                return
            if isinstance(stmt.target, A.NameLValue):
                self._set_type(ut, defs[0], rhs_type)
                self._set_const(ut, defs[0], rhs_const)
            else:
                target = stmt.target
                assert isinstance(target, A.IndexLValue)
                arg_info = [self._type_expr(unit, ut, a) for a in target.args]
                old = ut.ssa.implicit_use_of.get((id(event), target.name))
                old_type = ut.types.get(old.vid, BOTTOM) if old else BOTTOM
                new_type = self._indexed_assign_type(
                    old_type, rhs_type, target.args, arg_info)
                self._set_type(ut, defs[0], new_type)
        elif isinstance(stmt, A.MultiAssign):
            out_types = self._call_types(unit, ut, stmt.call,
                                         nargout=len(stmt.targets))
            defs = ut.ssa.defs_of.get(id(event), [])
            for i, value in enumerate(defs):
                produced = out_types[i] if i < len(out_types) else UNKNOWN
                target = stmt.targets[i]
                if isinstance(target, A.IndexLValue):
                    arg_info = [self._type_expr(unit, ut, a)
                                for a in target.args]
                    old = ut.ssa.implicit_use_of.get((id(event), target.name))
                    old_type = ut.types.get(old.vid, BOTTOM) if old else BOTTOM
                    produced = self._indexed_assign_type(
                        old_type, produced, target.args, arg_info)
                self._set_type(ut, value, produced)
        elif isinstance(stmt, A.ExprStmt):
            etype, econst = self._type_expr(unit, ut, stmt.value)
            defs = ut.ssa.defs_of.get(id(event), [])
            if defs:  # the implicit `ans`
                self._set_type(ut, defs[0], etype)
                self._set_const(ut, defs[0], econst)
        elif isinstance(stmt, A.Global):
            for value in ut.ssa.defs_of.get(id(event), []):
                self._set_type(ut, value, UNKNOWN)

    @staticmethod
    def _loop_var_type(it_type: VarType) -> VarType:
        """Type of a for-loop variable: one column of the iterable."""
        if it_type.is_scalar:
            return it_type
        base = it_type.base
        if base in (BaseType.BOTTOM, BaseType.UNKNOWN):
            base = BaseType.REAL
        if it_type.shape.rows == 1:
            return scalar(base)  # iterating a row vector yields scalars
        if it_type.shape.rows is not None:
            shape = Shape(it_type.shape.rows, 1)
            if shape == SCALAR_SHAPE:
                return scalar(base)
            return VarType(base, Rank.MATRIX, shape)
        return VarType(base, Rank.UNKNOWN, UNKNOWN_SHAPE)

    @staticmethod
    def _indexed_assign_type(old: VarType, rhs: VarType,
                             args: list[A.Expr],
                             arg_info: list[tuple[VarType, object]]) -> VarType:
        """Effect of ``a(i, j) = rhs`` on a's type.

        MATLAB may grow the array, so the static shape survives only when
        the subscripts provably stay within it; otherwise the dimensions
        degrade to run-time-tracked (None).
        """
        base = old.base.join(rhs.base)
        if base in (BaseType.BOTTOM,):
            base = rhs.base
        dims: list[Optional[int]] = [old.shape.rows, old.shape.cols]
        if old == BOTTOM:
            dims = [None, None]
        if len(args) == 2:
            for axis, (arg, (atype, aconst)) in enumerate(zip(args, arg_info)):
                if isinstance(arg, A.Colon):
                    continue  # ':' cannot grow the dimension
                if isinstance(arg, A.EndRef):
                    continue  # a(end) stays in bounds
                if (aconst is not None and isinstance(aconst, (int, float))
                        and dims[axis] is not None
                        and 1 <= aconst <= dims[axis]):
                    continue  # constant in-bounds subscript
                dims[axis] = None
        else:
            dims = [None, None] if old == BOTTOM else dims
            if not (len(args) == 1 and isinstance(args[0], (A.Colon, A.EndRef))):
                # linear indexed store may grow a vector
                arg, (atype, aconst) = args[0], arg_info[0]
                in_bounds = (
                    aconst is not None and isinstance(aconst, (int, float))
                    and old.shape.numel() is not None
                    and 1 <= aconst <= old.shape.numel()  # type: ignore[operator]
                )
                if not in_bounds:
                    dims = [dims[0], None] if dims[0] == 1 else [None, dims[1]] \
                        if dims[1] == 1 else [None, None]
        shape = Shape(dims[0], dims[1])
        rank = Rank.MATRIX if not (shape == SCALAR_SHAPE) else Rank.SCALAR
        if old.rank is Rank.SCALAR and shape == SCALAR_SHAPE:
            rank = Rank.SCALAR
        return VarType(base, rank, shape)

    # ------------------------------------------------------------------ #
    # expressions
    # ------------------------------------------------------------------ #

    def _type_expr(self, unit: ResolvedUnit, ut: UnitTypes,
                   expr: A.Expr) -> tuple[VarType, object]:
        """Return (type, constant-or-None) and record into expr_types."""
        vtype, const = self._type_expr_inner(unit, ut, expr)
        ut.expr_types[id(expr)] = vtype
        return vtype, const

    def _type_expr_inner(self, unit: ResolvedUnit, ut: UnitTypes,
                         expr: A.Expr) -> tuple[VarType, object]:
        if isinstance(expr, A.Num):
            return _num_type(expr.value), expr.value
        if isinstance(expr, A.ImagNum):
            return scalar(BaseType.COMPLEX), complex(0.0, expr.value)
        if isinstance(expr, A.Str):
            return VarType(BaseType.LITERAL, Rank.MATRIX,
                           Shape(1, len(expr.value))), expr.value
        if isinstance(expr, A.Ident):
            value = ut.ssa.use_of.get(id(expr))
            if value is None:
                return UNKNOWN, None
            return ut.types.get(value.vid, BOTTOM), ut.consts.get(value.vid)
        if isinstance(expr, A.EndRef):
            value = ut.ssa.use_of.get(id(expr))
            vtype = ut.types.get(value.vid, BOTTOM) if value else BOTTOM
            const = self._end_const(expr, vtype)
            return scalar(BaseType.INTEGER), const
        if isinstance(expr, A.Colon):
            return scalar(BaseType.INTEGER), None
        if isinstance(expr, A.UnaryOp):
            otype, oconst = self._type_expr(unit, ut, expr.operand)
            if expr.op == "~":
                return VarType(BaseType.INTEGER, otype.rank, otype.shape), None
            const = None
            if oconst is not None and isinstance(oconst, (int, float, complex)):
                const = -oconst if expr.op == "-" else +oconst
            return otype, const
        if isinstance(expr, A.Transpose):
            otype, _ = self._type_expr(unit, ut, expr.operand)
            return VarType(otype.base, otype.rank,
                           otype.shape.transposed()), None
        if isinstance(expr, A.Range):
            return self._range_type(unit, ut, expr)
        if isinstance(expr, A.MatrixLit):
            return self._matrix_lit_type(unit, ut, expr)
        if isinstance(expr, A.BinOp):
            return self._binop_type(unit, ut, expr)
        if isinstance(expr, A.Apply):
            if expr.resolved == "index":
                return self._index_type(unit, ut, expr)
            types = self._call_types(unit, ut, expr, nargout=1)
            const = self._call_const(unit, ut, expr)
            return types[0], const
        raise InferenceError(f"cannot type node {type(expr).__name__}",
                             expr.loc)

    def _end_const(self, ref: A.EndRef, vtype: VarType) -> Optional[float]:
        shape = vtype.shape
        if ref.nargs <= 1:
            n = shape.numel()
            return float(n) if n is not None else None
        dim = shape.rows if ref.axis == 0 else shape.cols
        return float(dim) if dim is not None else None

    def _range_type(self, unit: ResolvedUnit, ut: UnitTypes,
                    expr: A.Range) -> tuple[VarType, object]:
        st, sc = self._type_expr(unit, ut, expr.start)
        et, ec = self._type_expr(unit, ut, expr.stop)
        step_const: object = 1.0
        step_base = BaseType.INTEGER
        if expr.step is not None:
            pt, pc = self._type_expr(unit, ut, expr.step)
            step_const = pc
            step_base = pt.base
        base = st.base.join(et.base).join(step_base)
        if not base.is_numeric:
            base = BaseType.REAL
        length: Optional[int] = None
        if (isinstance(sc, (int, float)) and isinstance(ec, (int, float))
                and isinstance(step_const, (int, float)) and step_const != 0):
            raw = int((float(ec) - float(sc)) / float(step_const) + 1e-10) + 1
            length = max(raw, 0)
        shape = Shape(1, length)
        if length == 1:
            return scalar(base), sc if length == 1 else None
        return VarType(base, Rank.MATRIX, shape), None

    def _matrix_lit_type(self, unit: ResolvedUnit, ut: UnitTypes,
                         expr: A.MatrixLit) -> tuple[VarType, object]:
        if not expr.rows:
            return VarType(BaseType.REAL, Rank.MATRIX, Shape(0, 0)), None
        base = BaseType.BOTTOM
        row_heights: list[Optional[int]] = []
        width: Optional[int] = 0
        width_known = True
        for row in expr.rows:
            row_width: Optional[int] = 0
            height: Optional[int] = 1
            for element in row:
                etype, _ = self._type_expr(unit, ut, element)
                base = base.join(etype.base)
                if etype.is_scalar:
                    if row_width is not None:
                        row_width += 1
                else:
                    if etype.shape.cols is not None and row_width is not None:
                        row_width += etype.shape.cols
                    else:
                        row_width = None
                    height = etype.shape.rows if etype.shape.rows is not None \
                        else None
            row_heights.append(height)
            if row_width is None:
                width_known = False
            elif width_known:
                width = row_width if width == 0 or width == row_width else None
                if width is None:
                    width_known = False
        rows_total: Optional[int] = 0
        for h in row_heights:
            if h is None or rows_total is None:
                rows_total = None
            else:
                rows_total += h
        shape = Shape(rows_total, width if width_known else None)
        if not base.is_numeric and base is not BaseType.LITERAL:
            base = BaseType.REAL if base is BaseType.BOTTOM else BaseType.UNKNOWN
        if shape == SCALAR_SHAPE and len(expr.rows) == 1 and len(expr.rows[0]) == 1:
            return VarType(base, Rank.SCALAR, SCALAR_SHAPE), None
        return VarType(base, Rank.MATRIX, shape), None

    # -- operators --------------------------------------------------------

    def _binop_type(self, unit: ResolvedUnit, ut: UnitTypes,
                    expr: A.BinOp) -> tuple[VarType, object]:
        lt, lc = self._type_expr(unit, ut, expr.lhs)
        rt, rc = self._type_expr(unit, ut, expr.rhs)
        op = expr.op
        const = _fold_binop(op, lc, rc)
        return binop_result_type(op, lt, rt, expr.loc), const

    def _index_type(self, unit: ResolvedUnit, ut: UnitTypes,
                    expr: A.Apply) -> tuple[VarType, object]:
        # The Apply node's name has no Ident node of its own, so use the
        # join of the variable's versions (per-version tracking of the
        # indexing subject is not required for correctness).
        joined = BOTTOM
        for v in ut.ssa.versions_of(expr.name):
            joined = joined.join(ut.types.get(v.vid, BOTTOM))
        base_type = joined if joined != BOTTOM else UNKNOWN
        arg_info = [self._type_expr(unit, ut, a) for a in expr.args]
        base = base_type.base
        if base in (BaseType.BOTTOM,):
            base = BaseType.UNKNOWN
        extents: list[Optional[int]] = []
        for axis, (arg, (atype, aconst)) in enumerate(zip(expr.args, arg_info)):
            if isinstance(arg, A.Colon):
                if len(expr.args) == 1:
                    n = base_type.shape.numel()
                    extents.append(n)
                else:
                    dim = base_type.shape.rows if axis == 0 \
                        else base_type.shape.cols
                    extents.append(dim)
            elif atype.is_scalar:
                extents.append(1)
            else:
                extents.append(atype.shape.numel())
        if len(expr.args) == 1:
            ext = extents[0]
            arg = expr.args[0]
            atype = arg_info[0][0]
            if ext == 1:
                return VarType(base, Rank.SCALAR, SCALAR_SHAPE), None
            if isinstance(arg, A.Colon):
                return VarType(base, Rank.MATRIX, Shape(ext, 1)), None
            if atype.is_matrix:
                # result takes the subscript's orientation
                return VarType(base, Rank.MATRIX, atype.shape), None
            return VarType(base, Rank.UNKNOWN, UNKNOWN_SHAPE), None
        rows, cols = extents[0], extents[1]
        if rows == 1 and cols == 1:
            return VarType(base, Rank.SCALAR, SCALAR_SHAPE), None
        return VarType(base, Rank.MATRIX, Shape(rows, cols)), None

    # -- calls --------------------------------------------------------------

    def _call_types(self, unit: ResolvedUnit, ut: UnitTypes, call: A.Apply,
                    nargout: int) -> list[VarType]:
        arg_results = [self._type_expr(unit, ut, a) for a in call.args]
        arg_types = [r[0] for r in arg_results]
        arg_consts = [r[1] for r in arg_results]
        if call.resolved == "builtin" and any(t == BOTTOM for t in arg_types):
            return [BOTTOM] * max(nargout, 1)  # optimistic: refine later
        if call.resolved == "builtin":
            sig = get_sig(call.name)
            assert sig is not None
            if call.name in _CONSTANT_VALUES:
                return [scalar(BaseType.REAL)]
            if call.name in ("i", "j"):
                return [scalar(BaseType.COMPLEX)]
            if call.name == "load":
                vtype = infer_load_type(call, arg_consts,
                                        self.program.provider)
                return [vtype]
            out = sig.rule(arg_types, arg_consts)
            if isinstance(out, tuple):
                if nargout <= 1:
                    return [out[0]]
                return list(out[1:1 + nargout]) if call.name == "size" \
                    else list(out[:nargout])
            return [out] * max(nargout, 1)
        if call.resolved == "call":
            return self._user_call_types(call, arg_types, arg_consts, nargout)
        raise InferenceError(f"unresolved call {call.name!r}", call.loc)

    def _user_call_types(self, call: A.Apply, arg_types: list[VarType],
                         arg_consts: list[object],
                         nargout: int) -> list[VarType]:
        name = call.name
        func_unit = self.program.functions.get(name)
        if func_unit is None:
            return [UNKNOWN] * max(nargout, 1)
        func = func_unit.node
        assert isinstance(func, A.FunctionDef)
        params = self._param_types[name]
        pconsts = self._param_consts[name]
        for i in range(min(len(arg_types), len(params))):
            joined = params[i].join(arg_types[i])
            if joined != params[i]:
                params[i] = joined
                self._changed = True
            if params[i] == arg_types[i] and arg_consts[i] is not None:
                if pconsts[i] is None:
                    pconsts[i] = arg_consts[i]
                    self._changed = True
                elif pconsts[i] != arg_consts[i]:
                    pass  # conflicting constants: keep first, types still join
        rets = self._return_types[name]
        out: list[VarType] = []
        for i in range(max(nargout, 1)):
            if i < len(rets) and rets[i] != BOTTOM:
                out.append(rets[i])
            else:
                out.append(BOTTOM)
        return out

    def _call_const(self, unit: ResolvedUnit, ut: UnitTypes,
                    call: A.Apply) -> object:
        if call.resolved != "builtin":
            return None
        if call.name in _CONSTANT_VALUES and not call.args:
            return _CONSTANT_VALUES[call.name]
        if call.name in ("i", "j") and not call.args:
            return complex(0, 1)
        fold = _FOLDABLE.get(call.name)
        if fold is not None and len(call.args) == 1:
            _, const = self._type_expr(unit, ut, call.args[0])
            if isinstance(const, (int, float)):
                try:
                    result = fold(float(const))
                except (ValueError, OverflowError):
                    return None
                if isinstance(result, complex):
                    return result  # e.g. sqrt of a negative constant
                return float(result)
        return None


# --------------------------------------------------------------------------
# operator typing rules (shared with the IR lowering pass)
# --------------------------------------------------------------------------


def binop_result_type(op: str, lt: VarType, rt: VarType, loc=None) -> VarType:
    """Result type of a MATLAB binary operator application."""
    # Optimistic BOTTOM propagation: an operand with no information yet
    # (e.g. a recursive call's return before its first fixpoint round)
    # yields no information, to be refined on the next pass.
    if lt == BOTTOM or rt == BOTTOM:
        return BOTTOM
    base = lt.base.join(rt.base)
    if not base.is_numeric:
        base = BaseType.UNKNOWN if base is BaseType.UNKNOWN else BaseType.REAL

    def shaped(shape: Shape, forced_base: Optional[BaseType] = None) -> VarType:
        b = forced_base if forced_base is not None else base
        if shape == SCALAR_SHAPE:
            return VarType(b, Rank.SCALAR, SCALAR_SHAPE)
        rank = Rank.MATRIX if shape != UNKNOWN_SHAPE else Rank.UNKNOWN
        if lt.is_matrix or rt.is_matrix:
            rank = Rank.MATRIX
        return VarType(b, rank, shape)

    if op in ("==", "~=", "<", ">", "<=", ">=", "&", "|"):
        shape = _broadcast_shape(lt, rt, loc)
        return shaped(shape, BaseType.INTEGER)
    if op in ("&&", "||"):
        return scalar(BaseType.INTEGER)
    if op in ("+", "-", ".*", "./", ".\\", ".^"):
        if op in ("./", ".\\", ".^") and base is BaseType.INTEGER:
            base = BaseType.REAL
        shape = _broadcast_shape(lt, rt, loc)
        return shaped(shape)
    if op == "*":
        if lt.is_scalar and rt.is_scalar:
            return shaped(SCALAR_SHAPE)
        if lt.is_scalar:
            return shaped(rt.shape)
        if rt.is_scalar:
            return shaped(lt.shape)
        if lt.rank is Rank.UNKNOWN or rt.rank is Rank.UNKNOWN:
            return shaped(UNKNOWN_SHAPE)
        if (lt.shape.cols is not None and rt.shape.rows is not None
                and lt.shape.cols != rt.shape.rows):
            raise InferenceError(
                f"inner matrix dimensions must agree "
                f"({lt.shape} * {rt.shape})", loc)
        return shaped(Shape(lt.shape.rows, rt.shape.cols))
    if op == "/":
        if base is BaseType.INTEGER:
            base = BaseType.REAL
        if rt.is_scalar:
            return shaped(lt.shape if not lt.is_scalar else SCALAR_SHAPE)
        if lt.is_scalar and rt.is_scalar:
            return shaped(SCALAR_SHAPE)
        # X = A / B solves X*B = A: X is (rows(A), rows(B))
        return shaped(Shape(lt.shape.rows, rt.shape.rows))
    if op == "\\":
        if base is BaseType.INTEGER:
            base = BaseType.REAL
        if lt.is_scalar:
            return shaped(rt.shape if not rt.is_scalar else SCALAR_SHAPE)
        # X = A \ B solves A*X = B: X is (cols(A), cols(B))
        return shaped(Shape(lt.shape.cols, rt.shape.cols))
    if op == "^":
        if lt.is_scalar and rt.is_scalar:
            if base is BaseType.INTEGER:
                base = BaseType.REAL
            return shaped(SCALAR_SHAPE)
        if lt.is_matrix:
            return shaped(lt.shape)  # matrix power: square
        return shaped(UNKNOWN_SHAPE)
    raise InferenceError(f"unknown operator {op!r}", loc)


def _broadcast_shape(lt: VarType, rt: VarType, loc=None) -> Shape:
    if lt.is_scalar and rt.is_scalar:
        return SCALAR_SHAPE
    if lt.is_scalar:
        return rt.shape
    if rt.is_scalar:
        return lt.shape
    if (lt.shape.is_static and rt.shape.is_static
            and lt.shape != rt.shape):
        raise InferenceError(
            f"matrix dimensions must agree ({lt.shape} vs {rt.shape})", loc)
    return lt.shape.join(rt.shape) if lt.shape == rt.shape else Shape(
        lt.shape.rows if lt.shape.rows is not None else rt.shape.rows,
        lt.shape.cols if lt.shape.cols is not None else rt.shape.cols,
    )


def _fold_binop(op: str, lc: object, rc: object) -> object:
    if not isinstance(lc, (int, float, complex)) or \
            not isinstance(rc, (int, float, complex)):
        return None
    try:
        if op == "+":
            return lc + rc
        if op == "-":
            return lc - rc
        if op in ("*", ".*"):
            return lc * rc
        if op in ("/", "./"):
            return lc / rc
        if op in ("\\", ".\\"):
            return rc / lc
        if op in ("^", ".^"):
            return lc ** rc
    except (ZeroDivisionError, OverflowError, ValueError):
        return None
    return None


def infer_types(program: ResolvedProgram) -> ProgramTypes:
    """Run pass 3 over a resolved program."""
    return InferenceEngine(program).run()
