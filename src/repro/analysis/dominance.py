"""Dominator tree and dominance frontiers.

Implements the Cooper–Harvey–Kennedy iterative dominator algorithm and the
Cytron et al. dominance-frontier computation — the frontier drives phi
placement in :mod:`repro.analysis.ssa`, exactly as the paper's citation [1]
(Cytron et al. 1991) prescribes.
"""

from __future__ import annotations

from .cfg import CFG


class DominatorInfo:
    """Immediate dominators, dominator-tree children, dominance frontiers."""

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        self.rpo = cfg.reachable_order()
        self._rpo_index = {b: i for i, b in enumerate(self.rpo)}
        self.idom: dict[int, int] = {}
        self._compute_idoms()
        self.children: dict[int, list[int]] = {b: [] for b in self.rpo}
        for block, parent in self.idom.items():
            if block != self.cfg.entry:
                self.children[parent].append(block)
        self.frontier: dict[int, set[int]] = {b: set() for b in self.rpo}
        self._compute_frontiers()

    # ------------------------------------------------------------------ #

    def _compute_idoms(self) -> None:
        entry = self.cfg.entry
        idom: dict[int, int | None] = {b: None for b in self.rpo}
        idom[entry] = entry

        def intersect(a: int, b: int) -> int:
            while a != b:
                while self._rpo_index[a] > self._rpo_index[b]:
                    a = idom[a]  # type: ignore[assignment]
                while self._rpo_index[b] > self._rpo_index[a]:
                    b = idom[b]  # type: ignore[assignment]
            return a

        changed = True
        while changed:
            changed = False
            for block in self.rpo:
                if block == entry:
                    continue
                preds = [p for p in self.cfg.blocks[block].preds
                         if idom.get(p) is not None]
                if not preds:
                    continue
                new_idom = preds[0]
                for pred in preds[1:]:
                    new_idom = intersect(pred, new_idom)
                if idom[block] != new_idom:
                    idom[block] = new_idom
                    changed = True
        self.idom = {b: d for b, d in idom.items() if d is not None}

    def _compute_frontiers(self) -> None:
        for block in self.rpo:
            preds = [p for p in self.cfg.blocks[block].preds if p in self.idom]
            if len(preds) < 2:
                continue
            for pred in preds:
                runner = pred
                while runner != self.idom[block]:
                    self.frontier[runner].add(block)
                    runner = self.idom[runner]

    # ------------------------------------------------------------------ #

    def dominates(self, a: int, b: int) -> bool:
        """True iff block ``a`` dominates block ``b``."""
        runner = b
        while True:
            if runner == a:
                return True
            parent = self.idom.get(runner)
            if parent is None or parent == runner:
                return a == runner
            runner = parent

    def dom_tree_preorder(self) -> list[int]:
        order: list[int] = []
        stack = [self.cfg.entry]
        while stack:
            block = stack.pop()
            order.append(block)
            # reversed so children are visited in ascending id order
            stack.extend(sorted(self.children.get(block, []), reverse=True))
        return order


def compute_dominance(cfg: CFG) -> DominatorInfo:
    return DominatorInfo(cfg)
