"""Type / rank / shape lattice for inference (pass 3).

The paper's attribute system, exactly: a variable has one of four *types*
(``literal``, ``integer``, ``real``, ``complex``), a *rank* (``scalar`` or
``matrix``), and — for matrices — a *shape* (rows x cols), determined
statically when possible and propagated at run time otherwise.

We model each attribute as a small lattice and the combined
:class:`VarType` as their product.  ``BOTTOM`` means "no information yet"
(used as the dataflow initial value); ``UNKNOWN`` is the lattice top,
meaning the attribute must be tracked at run time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class BaseType(enum.IntEnum):
    """Element type; the numeric members form a chain INTEGER<REAL<COMPLEX."""

    BOTTOM = 0
    LITERAL = 1  # string literal
    INTEGER = 2
    REAL = 3
    COMPLEX = 4
    UNKNOWN = 5  # top: resolved at run time

    def join(self, other: "BaseType") -> "BaseType":
        if self == other:
            return self
        if self is BaseType.BOTTOM:
            return other
        if other is BaseType.BOTTOM:
            return self
        numeric = {BaseType.INTEGER, BaseType.REAL, BaseType.COMPLEX}
        if self in numeric and other in numeric:
            return BaseType(max(self, other))
        return BaseType.UNKNOWN

    @property
    def is_numeric(self) -> bool:
        return self in (BaseType.INTEGER, BaseType.REAL, BaseType.COMPLEX)


class Rank(enum.Enum):
    BOTTOM = "bottom"
    SCALAR = "scalar"
    MATRIX = "matrix"
    UNKNOWN = "unknown"

    def join(self, other: "Rank") -> "Rank":
        if self == other:
            return self
        if self is Rank.BOTTOM:
            return other
        if other is Rank.BOTTOM:
            return self
        return Rank.UNKNOWN


@dataclass(frozen=True)
class Shape:
    """Static matrix extents; ``None`` marks a dimension known only at run
    time.  Scalars conventionally carry ``Shape(1, 1)``."""

    rows: Optional[int] = None
    cols: Optional[int] = None

    def join(self, other: "Shape") -> "Shape":
        return Shape(
            self.rows if self.rows == other.rows else None,
            self.cols if self.cols == other.cols else None,
        )

    @property
    def is_static(self) -> bool:
        return self.rows is not None and self.cols is not None

    @property
    def is_vector(self) -> bool:
        """True when statically known to have a unit dimension."""
        return self.rows == 1 or self.cols == 1

    def numel(self) -> Optional[int]:
        if self.is_static:
            return self.rows * self.cols  # type: ignore[operator]
        return None

    def transposed(self) -> "Shape":
        return Shape(self.cols, self.rows)

    def __repr__(self) -> str:
        fmt = lambda d: "?" if d is None else str(d)  # noqa: E731
        return f"{fmt(self.rows)}x{fmt(self.cols)}"


UNKNOWN_SHAPE = Shape(None, None)
SCALAR_SHAPE = Shape(1, 1)


@dataclass(frozen=True)
class VarType:
    """The full inferred attribute triple for one SSA value."""

    base: BaseType = BaseType.BOTTOM
    rank: Rank = Rank.BOTTOM
    shape: Shape = UNKNOWN_SHAPE

    @property
    def is_bottom(self) -> bool:
        """Undefined-on-this-path marker.  Invariant: such values always
        carry UNKNOWN_SHAPE (the engine never builds a bottom with a
        partial shape)."""
        return self.base is BaseType.BOTTOM and self.rank is Rank.BOTTOM

    def join(self, other: "VarType") -> "VarType":
        # A fully-bottom value means "undefined on this path" and is the
        # identity of join — its placeholder shape must not poison the
        # other side's static shape.
        if self.is_bottom and other.is_bottom:
            return BOTTOM
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        return VarType(
            self.base.join(other.base),
            self.rank.join(other.rank),
            self.shape.join(other.shape),
        )

    @property
    def is_scalar(self) -> bool:
        return self.rank is Rank.SCALAR

    @property
    def is_matrix(self) -> bool:
        return self.rank is Rank.MATRIX

    def __repr__(self) -> str:
        if self.rank is Rank.SCALAR:
            return f"<{self.base.name.lower()} scalar>"
        if self.rank is Rank.MATRIX:
            return f"<{self.base.name.lower()} matrix {self.shape}>"
        return f"<{self.base.name.lower()} {self.rank.value}>"


BOTTOM = VarType()
UNKNOWN = VarType(BaseType.UNKNOWN, Rank.UNKNOWN, UNKNOWN_SHAPE)


def scalar(base: BaseType = BaseType.REAL) -> VarType:
    return VarType(base, Rank.SCALAR, SCALAR_SHAPE)


def matrix(base: BaseType = BaseType.REAL, shape: Shape = UNKNOWN_SHAPE) -> VarType:
    return VarType(base, Rank.MATRIX, shape)


def literal() -> VarType:
    return VarType(BaseType.LITERAL, Rank.MATRIX, UNKNOWN_SHAPE)


INT_SCALAR = scalar(BaseType.INTEGER)
REAL_SCALAR = scalar(BaseType.REAL)
COMPLEX_SCALAR = scalar(BaseType.COMPLEX)
