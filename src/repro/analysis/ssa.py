"""Static single assignment construction (pass 3 substrate).

MATLAB lets a variable's type, rank, and shape change mid-program; the
paper solves this by transforming each unit into SSA form (citing Cytron
et al.) so that every *SSA value* has exactly one defining site, giving the
inference engine a sound place to hang one type per value.

We do not rewrite the AST.  Instead, SSA is computed as an *annotation
layer*: every use site (an ``Ident``/``EndRef`` node) maps to the
:class:`SSAValue` it reads, every event maps to the values it defines, and
phi nodes live in :class:`SSAInfo.phis`.  The original Otter emits code
from the (typed) AST the same way; SSA exists to make inference precise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..frontend import ast_nodes as A
from .cfg import CFG, Event, build_cfg, _use_name
from .dominance import DominatorInfo, compute_dominance


@dataclass(frozen=True)
class SSAValue:
    """One SSA version of a program variable."""

    var: str
    index: int
    vid: int  # globally unique, dense — handy as an array index

    def __repr__(self) -> str:
        return f"{self.var}_{self.index}"


@dataclass
class Phi:
    """A phi node at the head of ``block`` merging one value per pred."""

    block: int
    var: str
    result: SSAValue
    args: dict[int, SSAValue] = field(default_factory=dict)  # pred block -> value

    def __repr__(self) -> str:
        joined = ", ".join(f"B{b}:{v!r}" for b, v in sorted(self.args.items()))
        return f"{self.result!r} = phi({joined})"


class SSAInfo:
    """The full SSA annotation for one program unit."""

    def __init__(self, cfg: CFG, dom: DominatorInfo):
        self.cfg = cfg
        self.dom = dom
        self.values: list[SSAValue] = []
        # id(ast node) -> value read there
        self.use_of: dict[int, SSAValue] = {}
        # (id(event), var) -> value of the *previous* version read implicitly
        # (indexed-assignment targets)
        self.implicit_use_of: dict[tuple[int, str], SSAValue] = {}
        # id(event) -> values defined by the event, in event.defs() order
        self.defs_of: dict[int, list[SSAValue]] = {}
        self.phis: dict[int, list[Phi]] = {}  # block id -> phis
        # entry versions (version 0): variables with no definition yet;
        # for functions, parameters are *defined* at entry.
        self.entry_values: dict[str, SSAValue] = {}
        self.param_values: dict[str, SSAValue] = {}

    def new_value(self, var: str, index: int) -> SSAValue:
        value = SSAValue(var, index, len(self.values))
        self.values.append(value)
        return value

    def all_phis(self) -> list[Phi]:
        return [phi for phis in self.phis.values() for phi in phis]

    def versions_of(self, var: str) -> list[SSAValue]:
        return [v for v in self.values if v.var == var]


class SSABuilder:
    def __init__(self, body: list[A.Stmt], params: list[str] | None = None):
        self.cfg = build_cfg(body)
        self.dom = compute_dominance(self.cfg)
        self.info = SSAInfo(self.cfg, self.dom)
        self.params = list(params or [])
        self._counters: dict[str, int] = {}
        self._stacks: dict[str, list[SSAValue]] = {}

    # ------------------------------------------------------------------ #

    def build(self) -> SSAInfo:
        variables = self._all_variables()
        def_blocks = self._definition_blocks(variables)
        self._place_phis(variables, def_blocks)
        # Version 0 for every variable at entry (the "maybe undefined"
        # value); parameters are genuinely defined at entry.
        for var in sorted(variables):
            value = self._fresh(var)
            self.info.entry_values[var] = value
            if var in self.params:
                self.info.param_values[var] = value
            self._stacks[var] = [value]
        self._rename(self.cfg.entry)
        return self.info

    # ------------------------------------------------------------------ #

    def _all_variables(self) -> set[str]:
        names: set[str] = set(self.params)
        for _bid, event in self.cfg.all_events():
            names.update(event.defs())
            names.update(event.implicit_uses())
            for node in event.uses():
                names.add(_use_name(node))
        return names

    def _definition_blocks(self, variables: set[str]) -> dict[str, set[int]]:
        blocks: dict[str, set[int]] = {v: set() for v in variables}
        for bid, event in self.cfg.all_events():
            for var in event.defs():
                blocks[var].add(bid)
        for var in self.params:
            blocks[var].add(self.cfg.entry)
        return blocks

    def _place_phis(self, variables: set[str],
                    def_blocks: dict[str, set[int]]) -> None:
        reachable = set(self.dom.rpo)
        for var in sorted(variables):
            work = sorted(b for b in def_blocks[var] if b in reachable)
            placed: set[int] = set()
            queue = list(work)
            while queue:
                block = queue.pop()
                for front in self.dom.frontier.get(block, ()):
                    if front in placed:
                        continue
                    placed.add(front)
                    phi = Phi(front, var, self._fresh(var))
                    self.info.phis.setdefault(front, []).append(phi)
                    # a phi is itself a definition
                    if front not in def_blocks[var]:
                        def_blocks[var].add(front)
                        queue.append(front)

    def _fresh(self, var: str) -> SSAValue:
        index = self._counters.get(var, 0)
        self._counters[var] = index + 1
        return self.info.new_value(var, index)

    # ------------------------------------------------------------------ #
    # renaming (iterative dominator-tree walk)
    # ------------------------------------------------------------------ #

    def _rename(self, entry: int) -> None:
        # Each stack frame: (block, phase) where phase 0 = on entry,
        # phase 1 = after children (pop pushed names).
        pushed: dict[int, list[str]] = {}
        stack: list[tuple[int, int]] = [(entry, 0)]
        while stack:
            block, phase = stack.pop()
            if phase == 1:
                for var in reversed(pushed.pop(block, [])):
                    self._stacks[var].pop()
                continue
            pushed[block] = self._rename_block(block)
            stack.append((block, 1))
            for child in sorted(self.dom.children.get(block, []), reverse=True):
                stack.append((child, 0))

    def _rename_block(self, block: int) -> list[str]:
        pushed: list[str] = []
        # phi results become current at block head
        for phi in self.info.phis.get(block, []):
            self._stacks[phi.var].append(phi.result)
            pushed.append(phi.var)
        for event in self.cfg.blocks[block].events:
            for node in event.uses():
                var = _use_name(node)
                self.info.use_of[id(node)] = self._stacks[var][-1]
            for var in event.implicit_uses():
                self.info.implicit_use_of[(id(event), var)] = self._stacks[var][-1]
            defined: list[SSAValue] = []
            for var in event.defs():
                value = self._fresh(var)
                self._stacks[var].append(value)
                pushed.append(var)
                defined.append(value)
            if defined:
                self.info.defs_of[id(event)] = defined
        # fill phi args in successors
        for succ in self.cfg.blocks[block].succs:
            for phi in self.info.phis.get(succ, []):
                phi.args[block] = self._stacks[phi.var][-1]
        return pushed


def build_ssa(body: list[A.Stmt], params: list[str] | None = None) -> SSAInfo:
    """Build SSA annotations for a unit body."""
    return SSABuilder(body, params).build()
