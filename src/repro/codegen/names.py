"""Name mangling shared by the backends.

User variables are prefixed (``v_x``) so they can never collide with
Python keywords, runtime names (``rt``), or compiler temporaries
(``ML_tmp<k>``, kept verbatim from the paper).
"""

from __future__ import annotations

from ..ir.nodes import Const, Operand, StrConst, Temp, Var


def var_name(name: str) -> str:
    return f"v_{name}"


def temp_name(temp: Temp) -> str:
    return temp.name  # "ML_tmp<k>"


def func_name(name: str) -> str:
    return f"fn_{name}"


def py_const(value: complex) -> str:
    if isinstance(value, complex):
        if value.imag == 0:
            return repr(float(value.real))
        return repr(value)
    return repr(float(value))


def operand_py(op: Operand, globals_: set[str] | None = None) -> str:
    """Python expression reading an operand."""
    if isinstance(op, Var):
        if globals_ and op.name in globals_:
            return f"rt.globals[{op.name!r}]"
        return var_name(op.name)
    if isinstance(op, Temp):
        return temp_name(op)
    if isinstance(op, Const):
        return py_const(op.value)
    if isinstance(op, StrConst):
        return repr(op.value)
    raise TypeError(f"cannot emit operand {op!r}")
