"""Code emission backends (pass 7): executable SPMD Python and SPMD C."""

from .py_emitter import PyEmitter, emit_python

__all__ = ["PyEmitter", "emit_python"]
