/*
 * otter_runtime.h — the run-time library interface of the Otter parallel
 * MATLAB compiler (reproduction of Quinn et al., IPPS 1998).
 *
 * Generated SPMD C programs (#include "otter_runtime.h") drive all
 * distributed-matrix operations through the ML_* functions declared here.
 * The descriptor mirrors the paper's Section 4: "Every matrix and vector
 * is represented on each processor by a C structure named MATRIX which
 * contains global information about its type, rank, and shape [plus]
 * processor-dependent information, such as the total number of matrix
 * elements stored on a particular processor and the address in that
 * processor's local memory of its first matrix element."
 *
 * In this reproduction the executable back end is the SPMD Python
 * emitter (see DESIGN.md); this header exists so that the C backend's
 * output is a complete, self-consistent compilation unit, and a test
 * (tests/codegen/test_c_header.py) verifies that every ML_* identifier
 * the emitter can produce is declared here.
 */

#ifndef OTTER_RUNTIME_H
#define OTTER_RUNTIME_H

#include <stddef.h>

/* ---------------------------------------------------------------------
 * types
 * ------------------------------------------------------------------- */

typedef enum {
    ML_TYPE_INTEGER,
    ML_TYPE_REAL,
    ML_TYPE_COMPLEX,
    ML_TYPE_LITERAL
} ML_TYPE;

typedef struct {
    double re;
    double im;
} ML_COMPLEX;

typedef struct MATRIX {
    /* global information: type, rank, shape */
    ML_TYPE type;
    int rows;
    int cols;
    /* distribution (row-contiguous block for matrices, element blocks
     * for vectors; scalars are never MATRIX — they are replicated) */
    int first_row;        /* first global row/element stored locally   */
    int local_els;        /* number of elements in this rank's block   */
    /* processor-dependent information */
    double *realbase;     /* local elements, row-major                 */
    double *imagbase;     /* NULL unless type == ML_TYPE_COMPLEX       */
} MATRIX;

/* a ':' subscript in ML_index_read / ML_index_assign argument lists */
#define ML_COLON (-2147483647)

/* ---------------------------------------------------------------------
 * runtime setup / teardown
 * ------------------------------------------------------------------- */

void ML_init_runtime(int *argc, char ***argv);
void ML_finalize_runtime(void);

/* allocation: result descriptor shaped/distributed like a template */
void ML_init_like(MATRIX **out, MATRIX *like);
void ML_copy(MATRIX *src, MATRIX **out);

/* local-block geometry used by the generated elementwise for loops */
int ML_local_els(MATRIX *m);
int ML_rows(MATRIX *m);
int ML_cols(MATRIX *m);
int ML_numel(MATRIX *m);

/* ---------------------------------------------------------------------
 * ownership and element access (paper Section 3/4)
 * ------------------------------------------------------------------- */

/* 1 iff the calling rank stores the element (0-based subscripts) */
int ML_owner(MATRIX *m, int i, ...);
/* address of a local element for guarded stores */
double *ML_realaddr1(MATRIX *m, int i);
double *ML_realaddr2(MATRIX *m, int i, int j);
/* the owner broadcasts element (i[,j]) to every rank */
void ML_broadcast(double *out, MATRIX *m, int i, ...);

/* general (possibly redistributing) indexed read / write;
 * nsubs subscripts follow, each an int expression or ML_COLON */
void ML_index_read(MATRIX *m, MATRIX **out, int nsubs, ...);
void ML_index_assign(MATRIX **m, double rhs, int nsubs, ...);

/* ---------------------------------------------------------------------
 * communication-requiring operations (hoisted by pass 4)
 * ------------------------------------------------------------------- */

void ML_matrix_multiply(MATRIX *a, MATRIX *b, MATRIX **out);
/* pass 6 fusion of transpose+multiply: out = a' * b */
void ML_matrix_multiply_at(MATRIX *a, MATRIX *b, MATRIX **out);
double ML_dot(MATRIX *a, MATRIX *b);
void ML_matrix_vector_multiply(MATRIX *a, MATRIX *x, MATRIX **out);
void ML_transpose(MATRIX *a, MATRIX **out);
void ML_solve(MATRIX *a, MATRIX *b, MATRIX **out);        /* a \ b */
void ML_solve_right(MATRIX *a, MATRIX *b, MATRIX **out);  /* a / b */
void ML_matrix_power(MATRIX *a, int k, MATRIX **out);
void ML_range(double start, double step, double stop, MATRIX **out);
void ML_literal(MATRIX **out, int rows, int cols, ...);

/* for-loops over matrix columns */
void ML_loop_begin(MATRIX *m, MATRIX **col);
int ML_loop_next(MATRIX **col);

/* truthiness of a distributed value (if/while conditions) */
int ML_truthy(MATRIX *m);
/* switch-statement matching */
double ML_switch_match(double subject, double candidate);

/* ---------------------------------------------------------------------
 * builtins (ML_<name>(inputs..., &outputs...))
 * ------------------------------------------------------------------- */

/* generators */
void ML_zeros(int r, int c, MATRIX **out);
void ML_ones(int r, int c, MATRIX **out);
void ML_eye(int r, int c, MATRIX **out);
void ML_rand(int r, int c, MATRIX **out);
void ML_randn(int r, int c, MATRIX **out);
void ML_linspace(double a, double b, int n, MATRIX **out);

/* elementwise kernels used inside generated loops */
double ML_round(double x);
double ML_sign(double x);
double ML_real(double x);
double ML_imag(double x);
double ML_conj(double x);
double ML_angle(double x);
double ML_mod(double a, double b);
double ML_isnan(double x);
double ML_isinf(double x);
double ML_isfinite(double x);
ML_COMPLEX ML_complex(double re, double im);

/* reductions (vector -> scalar; matrix -> row vector; optional dim) */
void ML_sum(MATRIX *a, ...);
void ML_prod(MATRIX *a, ...);
void ML_mean(MATRIX *a, ...);
void ML_std(MATRIX *a, ...);
void ML_var(MATRIX *a, ...);
void ML_median(MATRIX *a, ...);
void ML_max(MATRIX *a, ...);
void ML_min(MATRIX *a, ...);
void ML_all(MATRIX *a, ...);
void ML_any(MATRIX *a, ...);
void ML_norm(MATRIX *a, ...);
void ML_trapz(MATRIX *a, ...);
void ML_trapz2(MATRIX *a, ...);
void ML_cumsum(MATRIX *a, MATRIX **out);
void ML_cumprod(MATRIX *a, MATRIX **out);
void ML_find(MATRIX *a, MATRIX **out);

/* queries */
void ML_size(MATRIX *a, ...);
void ML_length(MATRIX *a, double *out);
void ML_numel_fn(MATRIX *a, double *out);
void ML_isempty(MATRIX *a, double *out);
void ML_isreal(MATRIX *a, double *out);
void ML_isscalar(MATRIX *a, double *out);

/* structural */
void ML_reshape(MATRIX *a, int r, int c, MATRIX **out);
void ML_repmat(MATRIX *a, int m, int n, MATRIX **out);
void ML_circshift(MATRIX *a, ...);  /* int k | MATRIX *[rows cols], then MATRIX **out */
void ML_fliplr(MATRIX *a, MATRIX **out);
void ML_flipud(MATRIX *a, MATRIX **out);
void ML_tril(MATRIX *a, ...);
void ML_triu(MATRIX *a, ...);
void ML_diag(MATRIX *a, MATRIX **out);
void ML_sort(MATRIX *a, MATRIX **out);
void ML_double(MATRIX *a, MATRIX **out);

/* I/O — one rank coordinates all I/O operations */
void ML_print_matrix(const char *name, MATRIX *m);
void ML_print_scalar(const char *name, double v);
void ML_disp(MATRIX *m);
void ML_fprintf(const char *fmt, ...);
void ML_error(const char *fmt, ...);
void ML_load(const char *file, MATRIX **out);
void ML_save(const char *file, ...);
void ML_tic(void);
void ML_toc(double *out);

#endif /* OTTER_RUNTIME_H */
