"""Elementwise kernels referenced by generated Python code.

Generated fused loops are ``rt.ew(lambda _v0, _v1: K.add(...), ...)``;
every function here is polymorphic over numpy arrays *and* Python scalars
(the replicated-scalar case) and reproduces MATLAB numeric semantics:
division by zero yields Inf, negative bases with fractional exponents go
complex, comparisons and logicals produce 0.0/1.0 doubles.
"""

from __future__ import annotations

import numpy as np

from ..interp.builtins import _EW_FUNCS


def _num(x):
    return np.asarray(x)


def add(a, b):
    return a + b


def sub(a, b):
    return a - b


def mul(a, b):
    return a * b


def div(a, b):
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.divide(a, b)


def ldiv(a, b):
    """a .\\ b (left elementwise division)."""
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.divide(b, a)


def _pow_needs_complex(aa, bb):
    """Does real ``aa ** bb`` need complex promotion (negative base,
    fractional exponent)?  Fast paths first: ``x .^ <integral scalar>``
    — the overwhelmingly common case — answers without touching the
    arrays at all, and a scalar on either side scans only the other
    operand, not the broadcast product of both."""
    if bb.ndim == 0:
        b0 = float(bb)
        # NaN exponents fall through (NaN != floor(NaN), so the legacy
        # predicate treated them as fractional); +/-Inf are integral
        if b0 == np.floor(b0):
            return False
        if aa.ndim == 0:
            return float(aa) < 0
        return bool(np.any(aa < 0))
    if aa.ndim == 0:
        if not float(aa) < 0:  # non-negative or NaN base never promotes
            return False
        return bool(np.any(bb != np.floor(bb)))
    return bool(np.any((aa < 0) & (bb != np.floor(bb))))


def pow_(a, b):
    aa, bb = _num(a), _num(b)
    if (not np.iscomplexobj(aa) and not np.iscomplexobj(bb)
            and _pow_needs_complex(aa, bb)):
        aa = aa.astype(complex)
    with np.errstate(divide="ignore", invalid="ignore"):
        return aa ** bb


def neg(a):
    return -a


def pos(a):
    return +a


def _realpart(x):
    return np.real(x) if np.iscomplexobj(_num(x)) else x


def eq(a, b):
    return np.equal(a, b) * 1.0


def ne(a, b):
    return np.not_equal(a, b) * 1.0


def lt(a, b):
    return np.less(_realpart(a), _realpart(b)) * 1.0


def gt(a, b):
    return np.greater(_realpart(a), _realpart(b)) * 1.0


def le(a, b):
    return np.less_equal(_realpart(a), _realpart(b)) * 1.0


def ge(a, b):
    return np.greater_equal(_realpart(a), _realpart(b)) * 1.0


def land(a, b):
    return (np.not_equal(a, 0) & np.not_equal(b, 0)) * 1.0


def lor(a, b):
    return (np.not_equal(a, 0) | np.not_equal(b, 0)) * 1.0


def lnot(a):
    return np.equal(a, 0) * 1.0


def idx(value) -> int:
    """Convert a 1-based MATLAB subscript value to a Python int."""
    v = np.real(np.asarray(value)).reshape(-1)
    if v.size != 1:
        raise ValueError("subscript must be a scalar")
    f = float(v[0])
    r = round(f)
    if abs(f - r) > 1e-9:
        raise ValueError("subscripts must be integers")
    return int(r)


#: unary/binary named kernels (sqrt, sin, mod, ...) reused from the
#: interpreter so compiled and interpreted results agree exactly
FUNCS = dict(_EW_FUNCS)
FUNCS.update({
    "mod": lambda a, b: np.mod(a, b),
    "rem": lambda a, b: np.fmod(a, b),
    "atan2": np.arctan2,
    "hypot": np.hypot,
    "power": pow_,
})


def fn(name: str):
    return FUNCS[name]
