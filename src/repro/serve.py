"""``python -m repro.serve`` — stand up the compile/run service.

The long-lived production shape: compile once, execute many.  Options
pick the bind address and the compile-cache geometry; the on-disk cache
tier follows ``--cache-dir`` / ``$REPRO_COMPILE_CACHE`` (unset keeps
the cache in-process only).  See docs/SERVICE.md for the protocol.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.serve",
        description="Compile-as-a-service for the Otter reproduction "
                    "(content-addressed compile cache, concurrent "
                    "sessions; docs/SERVICE.md)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=7477,
                        help="bind port (default 7477; 0 picks a free one)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="on-disk compile-cache tier (default "
                             "$REPRO_COMPILE_CACHE; unset: memory only)")
    parser.add_argument("--max-entries", type=int, default=256,
                        help="in-process LRU capacity (default 256)")
    parser.add_argument("--ttl", type=float, default=None, metavar="S",
                        help="evict memory-tier entries idle for S "
                             "seconds (default: never)")
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    from .service.cache import CompileCache
    from .service.server import ServiceServer

    cache = CompileCache(max_entries=args.max_entries,
                         disk_root=args.cache_dir, ttl=args.ttl)
    server = ServiceServer(cache=cache, host=args.host, port=args.port)
    host, port = server.start()
    disk = cache.disk_root or "(memory only)"
    print(f"[serve] listening on {host}:{port} "
          f"(cache: {args.max_entries} entries, disk tier: {disk})",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        # the shutdown acknowledgement is sent *after* serve_forever
        # unblocks; drain sessions so it isn't lost to process exit
        server.join_sessions()
    print("[serve] stopped", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
