"""MATLAB frontend: scanner, parser, AST, and M-file lookup (pass 1)."""

from . import ast_nodes
from .ast_nodes import Program, Script, FunctionDef, walk
from .lexer import Lexer, tokenize
from .mfile import ChainProvider, DictProvider, DirectoryProvider, MFileProvider
from .parser import Parser, parse_expression, parse_function_file, parse_script
from .tokens import Token, TokenKind

__all__ = [
    "ast_nodes",
    "Program",
    "Script",
    "FunctionDef",
    "walk",
    "Lexer",
    "tokenize",
    "Parser",
    "parse_expression",
    "parse_function_file",
    "parse_script",
    "Token",
    "TokenKind",
    "MFileProvider",
    "DictProvider",
    "DirectoryProvider",
    "ChainProvider",
]
