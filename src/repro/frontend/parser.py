"""Recursive-descent parser for the MATLAB subset (pass 1).

The original Otter used ``yacc``; this is an equivalent hand-written parser
producing the AST in :mod:`repro.frontend.ast_nodes`.  Notable behaviour,
matching the paper:

* List elements (matrix-literal entries, argument lists) must be separated
  by commas — white-space delimiting is rejected (Section 3 of the paper).
* ``x(e)`` parses to an :class:`Apply` node; whether it is indexing or a
  function call is decided by identifier resolution (pass 2).
* Newlines terminate statements at the top level, separate matrix rows
  inside ``[ ]``, and are insignificant inside ``( )``.

Operator precedence (loosest to tightest), as in MATLAB:
``||``  <  ``&&``  <  ``|``  <  ``&``  <  comparisons  <  ``:``  <
``+ -``  <  ``* / \\ .* ./ .\\``  <  unary ``+ - ~``  <  ``^ .^``  <
transpose.
"""

from __future__ import annotations

from ..errors import ParseError, SourceLocation
from . import ast_nodes as A
from .lexer import tokenize
from .tokens import Token, TokenKind as T

_CMP_OPS = {T.EQ, T.NE, T.LT, T.GT, T.LE, T.GE}
_ADD_OPS = {T.PLUS, T.MINUS}
_MUL_OPS = {T.STAR, T.SLASH, T.BACKSLASH, T.DOTSTAR, T.DOTSLASH, T.DOTBACKSLASH}
_POW_OPS = {T.CARET, T.DOTCARET}

_STMT_TERMINATORS = {T.SEMI, T.COMMA, T.NEWLINE, T.EOF}
_BLOCK_ENDERS = {T.END, T.ELSE, T.ELSEIF, T.CASE, T.OTHERWISE, T.FUNCTION, T.EOF}


class Parser:
    def __init__(self, tokens: list[Token], filename: str = "<script>"):
        self.toks = tokens
        self.i = 0
        self.filename = filename
        # Grouping stack: newlines are skipped inside '(' but are row
        # separators inside '['.
        self._groups: list[str] = []

    # ------------------------------------------------------------------ #
    # token-stream helpers
    # ------------------------------------------------------------------ #

    def _skip_invisible_newlines(self) -> None:
        while (
            self._groups
            and self._groups[-1] == "paren"
            and self.toks[self.i].kind is T.NEWLINE
        ):
            self.i += 1

    def peek(self, ahead: int = 0) -> Token:
        self._skip_invisible_newlines()
        j = self.i + ahead
        return self.toks[min(j, len(self.toks) - 1)]

    def at(self, *kinds: T) -> bool:
        return self.peek().kind in kinds

    def advance(self) -> Token:
        tok = self.peek()
        if tok.kind is not T.EOF:
            self.i += 1
        return tok

    def accept(self, kind: T) -> Token | None:
        if self.at(kind):
            return self.advance()
        return None

    def expect(self, kind: T, what: str = "") -> Token:
        tok = self.peek()
        if tok.kind is not kind:
            wanted = what or kind.value
            raise ParseError(f"expected {wanted!r}, found {tok.text!r}", tok.loc)
        return self.advance()

    def error(self, message: str, loc: SourceLocation | None = None) -> ParseError:
        return ParseError(message, loc or self.peek().loc)

    # ------------------------------------------------------------------ #
    # program units
    # ------------------------------------------------------------------ #

    def parse_script(self, name: str = "script") -> A.Script:
        """Parse a script M-file: a statement list with no function defs."""
        if self._file_is_function():
            raise self.error("expected a script, found a function M-file")
        body = self._stmt_list(stop={T.EOF})
        self.expect(T.EOF)
        return A.Script(name=name, body=body)

    def parse_function_file(self) -> list[A.FunctionDef]:
        """Parse a function M-file: a primary function plus subfunctions."""
        self._skip_separators()
        funcs: list[A.FunctionDef] = []
        while self.at(T.FUNCTION):
            funcs.append(self._function_def())
            self._skip_separators()
        if not funcs:
            raise self.error("expected 'function'")
        self.expect(T.EOF)
        return funcs

    def parse_unit(self, name: str) -> A.Script | list[A.FunctionDef]:
        """Parse either kind of M-file, dispatching on the first token."""
        if self._file_is_function():
            return self.parse_function_file()
        return self.parse_script(name)

    def _file_is_function(self) -> bool:
        j = self.i
        while j < len(self.toks) and self.toks[j].kind in (T.NEWLINE, T.SEMI):
            j += 1
        return j < len(self.toks) and self.toks[j].kind is T.FUNCTION

    def _function_def(self) -> A.FunctionDef:
        loc = self.expect(T.FUNCTION).loc
        returns: list[str] = []
        # Three header forms:  function name(...)
        #                      function out = name(...)
        #                      function [o1, o2] = name(...)
        if self.at(T.LBRACKET):
            self.advance()
            while not self.at(T.RBRACKET):
                returns.append(self.expect(T.IDENT).text)
                if not self.accept(T.COMMA):
                    break
            self.expect(T.RBRACKET)
            self.expect(T.ASSIGN)
            name = self.expect(T.IDENT).text
        else:
            first = self.expect(T.IDENT).text
            if self.accept(T.ASSIGN):
                returns = [first]
                name = self.expect(T.IDENT).text
            else:
                name = first
        params: list[str] = []
        if self.accept(T.LPAREN):
            self._groups.append("paren")
            while not self.at(T.RPAREN):
                params.append(self.expect(T.IDENT).text)
                if not self.accept(T.COMMA):
                    break
            self._groups.pop()
            self.expect(T.RPAREN)
        body = self._stmt_list(stop={T.FUNCTION, T.EOF})
        return A.FunctionDef(loc=loc, name=name, params=params, returns=returns, body=body)

    # ------------------------------------------------------------------ #
    # statements
    # ------------------------------------------------------------------ #

    def _skip_separators(self) -> None:
        while self.at(T.NEWLINE, T.SEMI, T.COMMA):
            self.advance()

    def _stmt_list(self, stop: set[T]) -> list[A.Stmt]:
        body: list[A.Stmt] = []
        self._skip_separators()
        while not self.at(*stop):
            body.append(self._statement())
            self._skip_separators()
        return body

    def _terminator(self) -> bool:
        """Consume a statement terminator; return True if output suppressed."""
        tok = self.peek()
        if tok.kind is T.SEMI:
            self.advance()
            return True
        if tok.kind in (T.COMMA, T.NEWLINE):
            self.advance()
            return False
        if tok.kind in _BLOCK_ENDERS:
            return False
        raise self.error(f"expected end of statement, found {tok.text!r}")

    def _statement(self) -> A.Stmt:
        tok = self.peek()
        if tok.kind is T.IF:
            return self._if_stmt()
        if tok.kind is T.FOR:
            return self._for_stmt()
        if tok.kind is T.WHILE:
            return self._while_stmt()
        if tok.kind is T.SWITCH:
            return self._switch_stmt()
        if tok.kind is T.BREAK:
            self.advance()
            self._terminator()
            return A.Break(loc=tok.loc)
        if tok.kind is T.CONTINUE:
            self.advance()
            self._terminator()
            return A.Continue(loc=tok.loc)
        if tok.kind is T.RETURN:
            self.advance()
            self._terminator()
            return A.Return(loc=tok.loc)
        if tok.kind is T.GLOBAL:
            self.advance()
            names = [self.expect(T.IDENT).text]
            # `global a, b` declares both, but `global a, b = 1` is a
            # global statement followed by an assignment.
            while (self.at(T.COMMA) and self.peek(1).kind is T.IDENT
                   and self.peek(2).kind is not T.ASSIGN
                   and self.peek(2).kind is not T.LPAREN):
                self.advance()
                names.append(self.expect(T.IDENT).text)
            self._terminator()
            return A.Global(loc=tok.loc, names=names)
        if tok.kind is T.LBRACKET:
            multi = self._try_multi_assign()
            if multi is not None:
                return multi
        return self._simple_stmt()

    def _try_multi_assign(self) -> A.MultiAssign | None:
        """Attempt ``[a, b(i)] = f(...)``; backtrack on failure."""
        save = self.i
        loc = self.peek().loc
        try:
            self.advance()  # '['
            targets: list[A.LValue] = []
            while True:
                targets.append(self._lvalue())
                if not self.accept(T.COMMA):
                    break
            self.expect(T.RBRACKET)
            self.expect(T.ASSIGN)
        except ParseError:
            self.i = save
            return None
        rhs = self._expression()
        if not isinstance(rhs, A.Apply):
            raise self.error("right-hand side of [..] = must be a function call", loc)
        suppressed = self._terminator()
        return A.MultiAssign(loc=loc, targets=targets, call=rhs, display=not suppressed)

    def _lvalue(self) -> A.LValue:
        tok = self.expect(T.IDENT)
        if self.at(T.LPAREN):
            args = self._apply_args()
            return A.IndexLValue(loc=tok.loc, name=tok.text, args=args)
        return A.NameLValue(loc=tok.loc, name=tok.text)

    def _simple_stmt(self) -> A.Stmt:
        loc = self.peek().loc
        expr = self._expression()
        if self.at(T.ASSIGN):
            self.advance()
            target = self._expr_to_lvalue(expr)
            value = self._expression()
            suppressed = self._terminator()
            return A.Assign(loc=loc, target=target, value=value, display=not suppressed)
        suppressed = self._terminator()
        return A.ExprStmt(loc=loc, value=expr, display=not suppressed)

    def _expr_to_lvalue(self, expr: A.Expr) -> A.LValue:
        if isinstance(expr, A.Ident):
            return A.NameLValue(loc=expr.loc, name=expr.name)
        if isinstance(expr, A.Apply):
            return A.IndexLValue(loc=expr.loc, name=expr.name, args=expr.args)
        raise self.error("invalid assignment target", expr.loc)

    def _if_stmt(self) -> A.If:
        loc = self.expect(T.IF).loc
        branches: list[tuple[A.Expr, list[A.Stmt]]] = []
        cond = self._expression()
        body = self._stmt_list(stop=_BLOCK_ENDERS)
        branches.append((cond, body))
        orelse: list[A.Stmt] = []
        while self.at(T.ELSEIF):
            self.advance()
            cond = self._expression()
            body = self._stmt_list(stop=_BLOCK_ENDERS)
            branches.append((cond, body))
        if self.accept(T.ELSE):
            orelse = self._stmt_list(stop=_BLOCK_ENDERS)
        self.expect(T.END)
        return A.If(loc=loc, branches=branches, orelse=orelse)

    def _for_stmt(self) -> A.For:
        loc = self.expect(T.FOR).loc
        var = self.expect(T.IDENT).text
        self.expect(T.ASSIGN)
        iterable = self._expression()
        body = self._stmt_list(stop=_BLOCK_ENDERS)
        self.expect(T.END)
        return A.For(loc=loc, var=var, iterable=iterable, body=body)

    def _while_stmt(self) -> A.While:
        loc = self.expect(T.WHILE).loc
        cond = self._expression()
        body = self._stmt_list(stop=_BLOCK_ENDERS)
        self.expect(T.END)
        return A.While(loc=loc, cond=cond, body=body)

    def _switch_stmt(self) -> A.Switch:
        loc = self.expect(T.SWITCH).loc
        subject = self._expression()
        self._skip_separators()
        cases: list[tuple[list[A.Expr], list[A.Stmt]]] = []
        otherwise: list[A.Stmt] = []
        while self.at(T.CASE):
            self.advance()
            values: list[A.Expr]
            if self.at(T.LBRACE):
                self.advance()
                self._groups.append("paren")
                values = [self._expression()]
                while self.accept(T.COMMA):
                    values.append(self._expression())
                self._groups.pop()
                self.expect(T.RBRACE)
            else:
                values = [self._expression()]
            body = self._stmt_list(stop=_BLOCK_ENDERS)
            cases.append((values, body))
        if self.accept(T.OTHERWISE):
            otherwise = self._stmt_list(stop=_BLOCK_ENDERS)
        self.expect(T.END)
        return A.Switch(loc=loc, subject=subject, cases=cases, otherwise=otherwise)

    # ------------------------------------------------------------------ #
    # expressions
    # ------------------------------------------------------------------ #

    def _expression(self) -> A.Expr:
        return self._oror()

    def _binop_chain(self, sub, ops: set[T]) -> A.Expr:
        lhs = sub()
        while self.at(*ops):
            op = self.advance()
            rhs = sub()
            lhs = A.BinOp(loc=op.loc, op=op.text, lhs=lhs, rhs=rhs)
        return lhs

    def _oror(self) -> A.Expr:
        return self._binop_chain(self._andand, {T.OROR})

    def _andand(self) -> A.Expr:
        return self._binop_chain(self._elem_or, {T.ANDAND})

    def _elem_or(self) -> A.Expr:
        return self._binop_chain(self._elem_and, {T.OR})

    def _elem_and(self) -> A.Expr:
        return self._binop_chain(self._comparison, {T.AND})

    def _comparison(self) -> A.Expr:
        return self._binop_chain(self._range, _CMP_OPS)

    def _range(self) -> A.Expr:
        start = self._additive()
        if not self.at(T.COLON):
            return start
        loc = self.advance().loc
        second = self._additive()
        if self.at(T.COLON):
            self.advance()
            stop = self._additive()
            return A.Range(loc=loc, start=start, stop=stop, step=second)
        return A.Range(loc=loc, start=start, stop=second, step=None)

    def _additive(self) -> A.Expr:
        return self._binop_chain(self._multiplicative, _ADD_OPS)

    def _multiplicative(self) -> A.Expr:
        return self._binop_chain(self._unary, _MUL_OPS)

    def _unary(self) -> A.Expr:
        tok = self.peek()
        if tok.kind in (T.MINUS, T.PLUS, T.NOT):
            self.advance()
            operand = self._unary()
            return A.UnaryOp(loc=tok.loc, op=tok.text, operand=operand)
        return self._power()

    def _power(self) -> A.Expr:
        base = self._postfix()
        if self.at(*_POW_OPS):
            op = self.advance()
            # Exponent may carry a unary sign: 2^-3.  MATLAB's ^ is left-
            # associative, but chained ^ is rare; we parse it as in MATLAB
            # by looping.
            exponent = self._power_operand()
            expr = A.BinOp(loc=op.loc, op=op.text, lhs=base, rhs=exponent)
            while self.at(*_POW_OPS):
                op = self.advance()
                exponent = self._power_operand()
                expr = A.BinOp(loc=op.loc, op=op.text, lhs=expr, rhs=exponent)
            return expr
        return base

    def _power_operand(self) -> A.Expr:
        tok = self.peek()
        if tok.kind in (T.MINUS, T.PLUS, T.NOT):
            self.advance()
            return A.UnaryOp(loc=tok.loc, op=tok.text, operand=self._power_operand())
        return self._postfix()

    def _postfix(self) -> A.Expr:
        expr = self._primary()
        while self.at(T.TRANSPOSE, T.DOTTRANSPOSE):
            tok = self.advance()
            expr = A.Transpose(
                loc=tok.loc, operand=expr, conjugate=(tok.kind is T.TRANSPOSE)
            )
        return expr

    def _primary(self) -> A.Expr:
        tok = self.peek()
        if tok.kind is T.NUMBER:
            self.advance()
            return A.Num(loc=tok.loc, value=float(tok.value))
        if tok.kind is T.IMAG_NUMBER:
            self.advance()
            return A.ImagNum(loc=tok.loc, value=float(tok.value))
        if tok.kind is T.STRING:
            self.advance()
            return A.Str(loc=tok.loc, value=str(tok.value))
        if tok.kind is T.IDENT:
            self.advance()
            if self.at(T.LPAREN):
                args = self._apply_args()
                return A.Apply(loc=tok.loc, name=tok.text, args=args)
            return A.Ident(loc=tok.loc, name=tok.text)
        if tok.kind is T.END:
            # Only meaningful inside a subscript; resolution validates that.
            self.advance()
            return A.EndRef(loc=tok.loc)
        if tok.kind is T.LPAREN:
            self.advance()
            self._groups.append("paren")
            inner = self._expression()
            self._groups.pop()
            self.expect(T.RPAREN)
            return inner
        if tok.kind is T.LBRACKET:
            return self._matrix_literal()
        raise self.error(f"unexpected token {tok.text!r} in expression")

    def _apply_args(self) -> list[A.Expr]:
        self.expect(T.LPAREN)
        self._groups.append("paren")
        args: list[A.Expr] = []
        if not self.at(T.RPAREN):
            while True:
                args.append(self._subscript_expr())
                if not self.accept(T.COMMA):
                    break
        self._groups.pop()
        self.expect(T.RPAREN)
        return args

    def _subscript_expr(self) -> A.Expr:
        # A bare ':' (whole dimension) is only legal directly as an argument.
        if self.at(T.COLON) and self.peek(1).kind in (T.COMMA, T.RPAREN):
            tok = self.advance()
            return A.Colon(loc=tok.loc)
        return self._expression()

    def _matrix_literal(self) -> A.MatrixLit:
        loc = self.expect(T.LBRACKET).loc
        self._groups.append("bracket")
        rows: list[list[A.Expr]] = []
        current: list[A.Expr] = []
        # skip leading newlines: `[<newline> 1, 2]`
        while self.at(T.NEWLINE):
            self.advance()
        while not self.at(T.RBRACKET):
            current.append(self._expression())
            if self.accept(T.COMMA):
                continue
            if self.at(T.SEMI, T.NEWLINE):
                while self.at(T.SEMI, T.NEWLINE):
                    self.advance()
                if current:
                    rows.append(current)
                    current = []
                continue
            if self.at(T.RBRACKET):
                break
            # Anything else is the unsupported white-space delimiter form.
            raise self.error(
                "list elements must be comma-delimited "
                "(white-space delimiting is not supported)"
            )
        if current:
            rows.append(current)
        self._groups.pop()
        self.expect(T.RBRACKET)
        return A.MatrixLit(loc=loc, rows=rows)


# ---------------------------------------------------------------------- #
# public helpers
# ---------------------------------------------------------------------- #


def parse_script(source: str, name: str = "script") -> A.Script:
    """Parse MATLAB script source text into a :class:`Script`."""
    return Parser(tokenize(source, name), name).parse_script(name)


def parse_function_file(source: str, name: str = "<mfile>") -> list[A.FunctionDef]:
    """Parse a function M-file into its function definitions."""
    return Parser(tokenize(source, name), name).parse_function_file()


def parse_expression(source: str) -> A.Expr:
    """Parse a single expression (used heavily by tests)."""
    parser = Parser(tokenize(source, "<expr>"), "<expr>")
    expr = parser._expression()
    parser._skip_separators()
    parser.expect(T.EOF)
    return expr
