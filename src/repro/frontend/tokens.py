"""Token kinds for the MATLAB scanner.

The token set covers the MATLAB subset the paper's compiler accepts.  As in
the paper, list elements must be comma-delimited: the scanner never treats
white space as an element separator inside ``[ ]`` (Section 3: "we do not
support the use of white space to delimit list elements").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import SourceLocation


class TokenKind(enum.Enum):
    # literals / identifiers
    NUMBER = "number"            # 3, 3.5, 1e-3  (value: float)
    IMAG_NUMBER = "imag_number"  # 3i, 2.5j      (value: float, imaginary part)
    STRING = "string"            # 'hello'       (value: str)
    IDENT = "ident"

    # keywords
    IF = "if"
    ELSEIF = "elseif"
    ELSE = "else"
    END = "end"
    FOR = "for"
    WHILE = "while"
    BREAK = "break"
    CONTINUE = "continue"
    RETURN = "return"
    FUNCTION = "function"
    SWITCH = "switch"
    CASE = "case"
    OTHERWISE = "otherwise"
    GLOBAL = "global"

    # punctuation
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    LBRACE = "{"
    RBRACE = "}"
    COMMA = ","
    SEMI = ";"
    NEWLINE = "\\n"
    ASSIGN = "="
    COLON = ":"
    AT = "@"

    # operators
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    BACKSLASH = "\\"
    CARET = "^"
    DOTSTAR = ".*"
    DOTSLASH = "./"
    DOTBACKSLASH = ".\\"
    DOTCARET = ".^"
    TRANSPOSE = "'"    # complex-conjugate transpose
    DOTTRANSPOSE = ".'"
    EQ = "=="
    NE = "~="
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    AND = "&"
    OR = "|"
    ANDAND = "&&"
    OROR = "||"
    NOT = "~"
    DOT = "."

    EOF = "eof"


KEYWORDS = {
    "if": TokenKind.IF,
    "elseif": TokenKind.ELSEIF,
    "else": TokenKind.ELSE,
    "end": TokenKind.END,
    "for": TokenKind.FOR,
    "while": TokenKind.WHILE,
    "break": TokenKind.BREAK,
    "continue": TokenKind.CONTINUE,
    "return": TokenKind.RETURN,
    "function": TokenKind.FUNCTION,
    "switch": TokenKind.SWITCH,
    "case": TokenKind.CASE,
    "otherwise": TokenKind.OTHERWISE,
    "global": TokenKind.GLOBAL,
}


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    loc: SourceLocation = field(compare=False, default_factory=SourceLocation)
    value: object = None  # numeric value for NUMBER / IMAG_NUMBER, str for STRING

    def __repr__(self) -> str:
        if self.value is not None and self.kind is not TokenKind.IDENT:
            return f"Token({self.kind.name}, {self.value!r})"
        return f"Token({self.kind.name}, {self.text!r})"
