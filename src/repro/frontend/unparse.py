"""AST -> MATLAB source (the inverse of the parser).

Used by the round-trip property tests (``parse(unparse(ast)) == ast``) and
by tooling that wants to echo normalized MATLAB (the CLI's
``--emit matlab``).  Output is fully parenthesized where precedence could
bite, and always comma-delimited — the subset's canonical form.
"""

from __future__ import annotations

from . import ast_nodes as A

#: operator precedence (higher binds tighter), mirroring the parser
_PREC = {
    "||": 1, "&&": 2, "|": 3, "&": 4,
    "==": 5, "~=": 5, "<": 5, ">": 5, "<=": 5, ">=": 5,
    # ranges sit at 6
    "+": 7, "-": 7,
    "*": 8, "/": 8, "\\": 8, ".*": 8, "./": 8, ".\\": 8,
    # unary 9
    "^": 10, ".^": 10,
}


def _num(value: float) -> str:
    if value == int(value) and abs(value) < 1e16:
        return str(int(value))
    return repr(value)


def unparse_expr(expr: A.Expr, parent_prec: int = 0) -> str:
    """Render one expression, parenthesizing against ``parent_prec``."""
    text, prec = _expr(expr)
    if prec < parent_prec:
        return f"({text})"
    return text


def _expr(expr: A.Expr) -> tuple[str, int]:
    if isinstance(expr, A.Num):
        return _num(expr.value), 11
    if isinstance(expr, A.ImagNum):
        return f"{_num(expr.value)}i", 11
    if isinstance(expr, A.Str):
        escaped = expr.value.replace("'", "''")
        return f"'{escaped}'", 11
    if isinstance(expr, A.Ident):
        return expr.name, 11
    if isinstance(expr, A.Colon):
        return ":", 11
    if isinstance(expr, A.EndRef):
        return "end", 11
    if isinstance(expr, A.BinOp):
        prec = _PREC[expr.op]
        lhs = unparse_expr(expr.lhs, prec)
        # left-assoc: right operand needs one notch more
        rhs = unparse_expr(expr.rhs, prec + 1)
        return f"{lhs} {expr.op} {rhs}", prec
    if isinstance(expr, A.UnaryOp):
        inner = unparse_expr(expr.operand, 9)
        return f"{expr.op}{inner}", 9
    if isinstance(expr, A.Transpose):
        inner = unparse_expr(expr.operand, 11)
        mark = "'" if expr.conjugate else ".'"
        return f"{inner}{mark}", 11
    if isinstance(expr, A.Range):
        start = unparse_expr(expr.start, 7)
        stop = unparse_expr(expr.stop, 7)
        if expr.step is not None:
            step = unparse_expr(expr.step, 7)
            return f"{start}:{step}:{stop}", 6
        return f"{start}:{stop}", 6
    if isinstance(expr, A.MatrixLit):
        rows = "; ".join(
            ", ".join(unparse_expr(e) for e in row) for row in expr.rows)
        return f"[{rows}]", 11
    if isinstance(expr, A.Apply):
        args = ", ".join(unparse_expr(a) for a in expr.args)
        return f"{expr.name}({args})", 11
    raise TypeError(f"cannot unparse {type(expr).__name__}")


def _lvalue(target: A.LValue) -> str:
    if isinstance(target, A.IndexLValue):
        args = ", ".join(unparse_expr(a) for a in target.args)
        return f"{target.name}({args})"
    return target.name


def _stmt(stmt: A.Stmt, indent: int, out: list[str]) -> None:
    pad = "    " * indent

    def terminated(text: str, display: bool) -> str:
        return f"{pad}{text}" if display else f"{pad}{text};"

    if isinstance(stmt, A.Assign):
        out.append(terminated(
            f"{_lvalue(stmt.target)} = {unparse_expr(stmt.value)}",
            stmt.display))
    elif isinstance(stmt, A.MultiAssign):
        targets = ", ".join(_lvalue(t) for t in stmt.targets)
        out.append(terminated(
            f"[{targets}] = {unparse_expr(stmt.call)}", stmt.display))
    elif isinstance(stmt, A.ExprStmt):
        out.append(terminated(unparse_expr(stmt.value), stmt.display))
    elif isinstance(stmt, A.If):
        for k, (cond, body) in enumerate(stmt.branches):
            head = "if" if k == 0 else "elseif"
            out.append(f"{pad}{head} {unparse_expr(cond)}")
            for s in body:
                _stmt(s, indent + 1, out)
        if stmt.orelse:
            out.append(f"{pad}else")
            for s in stmt.orelse:
                _stmt(s, indent + 1, out)
        out.append(f"{pad}end")
    elif isinstance(stmt, A.For):
        out.append(f"{pad}for {stmt.var} = {unparse_expr(stmt.iterable)}")
        for s in stmt.body:
            _stmt(s, indent + 1, out)
        out.append(f"{pad}end")
    elif isinstance(stmt, A.While):
        out.append(f"{pad}while {unparse_expr(stmt.cond)}")
        for s in stmt.body:
            _stmt(s, indent + 1, out)
        out.append(f"{pad}end")
    elif isinstance(stmt, A.Switch):
        out.append(f"{pad}switch {unparse_expr(stmt.subject)}")
        for values, body in stmt.cases:
            if len(values) == 1:
                out.append(f"{pad}case {unparse_expr(values[0])}")
            else:
                inner = ", ".join(unparse_expr(v) for v in values)
                out.append(f"{pad}case {{{inner}}}")
            for s in body:
                _stmt(s, indent + 1, out)
        if stmt.otherwise:
            out.append(f"{pad}otherwise")
            for s in stmt.otherwise:
                _stmt(s, indent + 1, out)
        out.append(f"{pad}end")
    elif isinstance(stmt, A.Break):
        out.append(f"{pad}break")
    elif isinstance(stmt, A.Continue):
        out.append(f"{pad}continue")
    elif isinstance(stmt, A.Return):
        out.append(f"{pad}return")
    elif isinstance(stmt, A.Global):
        out.append(f"{pad}global {', '.join(stmt.names)}")
    else:
        raise TypeError(f"cannot unparse {type(stmt).__name__}")


def unparse_script(script: A.Script) -> str:
    out: list[str] = []
    for stmt in script.body:
        _stmt(stmt, 0, out)
    return "\n".join(out) + "\n"


def unparse_function(func: A.FunctionDef) -> str:
    out: list[str] = []
    if len(func.returns) == 1:
        head = f"function {func.returns[0]} = {func.name}"
    elif func.returns:
        head = f"function [{', '.join(func.returns)}] = {func.name}"
    else:
        head = f"function {func.name}"
    if func.params:
        head += f"({', '.join(func.params)})"
    out.append(head)
    for stmt in func.body:
        _stmt(stmt, 0, out)
    return "\n".join(out) + "\n"


def unparse(unit: A.Script | A.FunctionDef | list[A.FunctionDef]) -> str:
    """Render a script, one function, or a whole function M-file."""
    if isinstance(unit, A.Script):
        return unparse_script(unit)
    if isinstance(unit, A.FunctionDef):
        return unparse_function(unit)
    return "\n".join(unparse_function(f) for f in unit)
