"""M-file lookup.

A MATLAB *program* is a script plus every user M-file function reachable
from it.  Identifier resolution (pass 2) asks an :class:`MFileProvider` for
the source of a candidate function name; providers can serve from an
in-memory mapping (tests, generated workloads) or from ``.m`` files on disk.
"""

from __future__ import annotations

import os
from typing import Mapping

from . import ast_nodes as A
from .parser import parse_function_file


class MFileProvider:
    """Resolve a function name to parsed :class:`FunctionDef` objects."""

    def lookup(self, name: str) -> list[A.FunctionDef] | None:
        raise NotImplementedError

    def load_data_file(self, name: str):  # pragma: no cover - interface
        """Return the contents of a data file (for `load`), or None."""
        return None


class DictProvider(MFileProvider):
    """Serve M-files from an in-memory ``{name: source}`` mapping."""

    def __init__(self, sources: Mapping[str, str] | None = None,
                 data_files: Mapping[str, object] | None = None):
        self.sources = dict(sources or {})
        self.data_files = dict(data_files or {})
        self._cache: dict[str, list[A.FunctionDef]] = {}

    def lookup(self, name: str) -> list[A.FunctionDef] | None:
        if name in self._cache:
            return self._cache[name]
        src = self.sources.get(name)
        if src is None:
            return None
        funcs = parse_function_file(src, f"{name}.m")
        self._cache[name] = funcs
        return funcs

    def load_data_file(self, name: str):
        return self.data_files.get(name)


class DirectoryProvider(MFileProvider):
    """Serve ``name.m`` files from one or more directories, first hit wins."""

    def __init__(self, paths: list[str]):
        self.paths = list(paths)
        self._cache: dict[str, list[A.FunctionDef] | None] = {}

    def lookup(self, name: str) -> list[A.FunctionDef] | None:
        if name in self._cache:
            return self._cache[name]
        result = None
        for directory in self.paths:
            candidate = os.path.join(directory, f"{name}.m")
            if os.path.isfile(candidate):
                with open(candidate, "r", encoding="utf-8") as fh:
                    result = parse_function_file(fh.read(), candidate)
                break
        self._cache[name] = result
        return result

    def load_data_file(self, name: str):
        import numpy as np

        for directory in self.paths:
            for candidate in (
                os.path.join(directory, name),
                os.path.join(directory, f"{name}.dat"),
            ):
                if os.path.isfile(candidate):
                    return np.loadtxt(candidate)
        return None


class ChainProvider(MFileProvider):
    """Try a sequence of providers in order."""

    def __init__(self, providers: list[MFileProvider]):
        self.providers = list(providers)

    def lookup(self, name: str) -> list[A.FunctionDef] | None:
        for provider in self.providers:
            hit = provider.lookup(name)
            if hit is not None:
                return hit
        return None

    def load_data_file(self, name: str):
        for provider in self.providers:
            hit = provider.load_data_file(name)
            if hit is not None:
                return hit
        return None


EMPTY_PROVIDER = DictProvider({})
