"""Hand-written MATLAB scanner.

The original Otter used ``lex``; we implement the equivalent scanner from
scratch.  The classic MATLAB lexing subtleties handled here:

* ``'`` is *transpose* when it immediately follows a value-producing token
  (identifier, number, ``)``, ``]``, ``}`` or another transpose) and a
  *string delimiter* otherwise.  Inside strings, ``''`` is an escaped quote.
* ``%`` starts a comment running to end of line.
* ``...`` is a line continuation: the rest of the line (a comment, usually)
  and the newline are discarded.
* Numbers accept ``3``, ``3.``, ``.5``, ``3.5e-2`` and an ``i``/``j`` suffix
  marking an imaginary literal.
* Newlines are significant (they terminate statements) and are emitted as
  :data:`TokenKind.NEWLINE` tokens.
"""

from __future__ import annotations

from ..errors import LexError, SourceLocation
from .tokens import KEYWORDS, Token, TokenKind

# Tokens after which a quote means transpose rather than a string literal.
_TRANSPOSE_CONTEXT = {
    TokenKind.IDENT,
    TokenKind.NUMBER,
    TokenKind.IMAG_NUMBER,
    TokenKind.RPAREN,
    TokenKind.RBRACKET,
    TokenKind.RBRACE,
    TokenKind.TRANSPOSE,
    TokenKind.DOTTRANSPOSE,
    TokenKind.STRING,
    TokenKind.END,  # `end` used as an index: a(end)' is a transpose
}

_TWO_CHAR_OPS = {
    "==": TokenKind.EQ,
    "~=": TokenKind.NE,
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "&&": TokenKind.ANDAND,
    "||": TokenKind.OROR,
    ".*": TokenKind.DOTSTAR,
    "./": TokenKind.DOTSLASH,
    ".\\": TokenKind.DOTBACKSLASH,
    ".^": TokenKind.DOTCARET,
    ".'": TokenKind.DOTTRANSPOSE,
}

_ONE_CHAR_OPS = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMI,
    "=": TokenKind.ASSIGN,
    ":": TokenKind.COLON,
    "@": TokenKind.AT,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "\\": TokenKind.BACKSLASH,
    "^": TokenKind.CARET,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "&": TokenKind.AND,
    "|": TokenKind.OR,
    "~": TokenKind.NOT,
    ".": TokenKind.DOT,
}


class Lexer:
    """Tokenize MATLAB source text.

    Use :func:`tokenize` for the common case; instantiate :class:`Lexer`
    directly to tokenize incrementally.
    """

    def __init__(self, source: str, filename: str = "<script>"):
        self.src = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.col = 1
        self._prev_kind: TokenKind | None = None

    # -- low-level helpers -------------------------------------------------

    def _loc(self) -> SourceLocation:
        return SourceLocation(self.filename, self.line, self.col)

    def _peek(self, ahead: int = 0) -> str:
        i = self.pos + ahead
        return self.src[i] if i < len(self.src) else ""

    def _advance(self, n: int = 1) -> str:
        text = self.src[self.pos : self.pos + n]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
        self.pos += n
        return text

    # -- scanning ----------------------------------------------------------

    def tokens(self) -> list[Token]:
        """Scan the whole input and return the token list (ending in EOF)."""
        out: list[Token] = []
        while True:
            tok = self.next_token()
            out.append(tok)
            if tok.kind is TokenKind.EOF:
                return out

    def next_token(self) -> Token:
        self._skip_insignificant()
        loc = self._loc()
        ch = self._peek()

        if ch == "":
            tok = Token(TokenKind.EOF, "", loc)
        elif ch == "\n":
            self._advance()
            tok = Token(TokenKind.NEWLINE, "\n", loc)
        elif ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            tok = self._scan_number(loc)
        elif ch.isalpha() or ch == "_":
            tok = self._scan_ident(loc)
        elif ch == "'":
            if self._prev_kind in _TRANSPOSE_CONTEXT:
                self._advance()
                tok = Token(TokenKind.TRANSPOSE, "'", loc)
            else:
                tok = self._scan_string(loc)
        else:
            tok = self._scan_operator(loc)

        self._prev_kind = tok.kind
        return tok

    def _skip_insignificant(self) -> None:
        """Skip spaces, tabs, comments, and `...` continuations."""
        while True:
            ch = self._peek()
            if ch in (" ", "\t", "\r"):
                self._advance()
            elif ch == "%":
                while self._peek() not in ("", "\n"):
                    self._advance()
            elif ch == "." and self._peek(1) == "." and self._peek(2) == ".":
                # Continuation: discard through (and including) the newline.
                while self._peek() not in ("", "\n"):
                    self._advance()
                if self._peek() == "\n":
                    self._advance()
            else:
                return

    def _scan_number(self, loc: SourceLocation) -> Token:
        start = self.pos
        while self._peek().isdigit():
            self._advance()
        if self._peek() == ".":
            # Careful: `1.^2` and `2.'` keep the dot with the operator, and
            # `1..5` never occurs (ranges use `:`), so a dot followed by an
            # operator char belongs to the operator.
            nxt = self._peek(1)
            if nxt not in ("*", "/", "\\", "^", "'"):
                self._advance()
                while self._peek().isdigit():
                    self._advance()
        if self._peek() in ("e", "E"):
            save = self.pos
            self._advance()
            if self._peek() in ("+", "-"):
                self._advance()
            if self._peek().isdigit():
                while self._peek().isdigit():
                    self._advance()
            else:
                # Not an exponent after all (e.g. `2end` is impossible but
                # `2e` followed by junk is an error in MATLAB too).
                raise LexError("malformed exponent in numeric literal", loc)
        text = self.src[start : self.pos]
        if self._peek() in ("i", "j") and not (
            self._peek(1).isalnum() or self._peek(1) == "_"
        ):
            self._advance()
            return Token(TokenKind.IMAG_NUMBER, text, loc, value=float(text))
        return Token(TokenKind.NUMBER, text, loc, value=float(text))

    def _scan_ident(self, loc: SourceLocation) -> Token:
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.src[start : self.pos]
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        return Token(kind, text, loc)

    def _scan_string(self, loc: SourceLocation) -> Token:
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            ch = self._peek()
            if ch in ("", "\n"):
                raise LexError("unterminated string literal", loc)
            if ch == "'":
                if self._peek(1) == "'":  # escaped quote
                    chars.append("'")
                    self._advance(2)
                    continue
                self._advance()
                break
            chars.append(ch)
            self._advance()
        value = "".join(chars)
        return Token(TokenKind.STRING, f"'{value}'", loc, value=value)

    def _scan_operator(self, loc: SourceLocation) -> Token:
        two = self._peek() + self._peek(1)
        if two in _TWO_CHAR_OPS:
            self._advance(2)
            return Token(_TWO_CHAR_OPS[two], two, loc)
        one = self._peek()
        if one in _ONE_CHAR_OPS:
            self._advance()
            return Token(_ONE_CHAR_OPS[one], one, loc)
        raise LexError(f"unexpected character {one!r}", loc)


def tokenize(source: str, filename: str = "<script>") -> list[Token]:
    """Tokenize ``source`` and return the full token list ending in EOF."""
    return Lexer(source, filename).tokens()
