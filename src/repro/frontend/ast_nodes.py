"""Abstract syntax tree for the MATLAB subset.

Nodes are plain dataclasses carrying a :class:`SourceLocation`.  One design
point mirrors the paper directly: MATLAB's grammar cannot distinguish
``x(3)`` as *indexing* from ``x(3)`` as a *function call* — that is the job
of the identifier-resolution pass (pass 2).  We therefore parse both into a
single :class:`Apply` node whose ``resolved`` field is filled in later with
``"index"``, ``"call"`` or ``"builtin"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..errors import SourceLocation


@dataclass
class Node:
    loc: SourceLocation = field(default_factory=SourceLocation, repr=False, compare=False)

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes (used by generic tree walks)."""
        for name in self.__dataclass_fields__:
            if name == "loc":
                continue
            value = getattr(self, name)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Node):
                        yield item
                    elif isinstance(item, (list, tuple)):
                        for sub in item:
                            if isinstance(sub, Node):
                                yield sub


def walk(node: Node) -> Iterator[Node]:
    """Pre-order traversal of ``node`` and all descendants."""
    yield node
    for child in node.children():
        yield from walk(child)


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Expr(Node):
    pass


@dataclass
class Num(Expr):
    value: float = 0.0


@dataclass
class ImagNum(Expr):
    value: float = 0.0  # the imaginary part: `3i` -> ImagNum(3.0)


@dataclass
class Str(Expr):
    value: str = ""


@dataclass
class Ident(Expr):
    name: str = ""


@dataclass
class BinOp(Expr):
    op: str = "+"
    lhs: Expr = None  # type: ignore[assignment]
    rhs: Expr = None  # type: ignore[assignment]


@dataclass
class UnaryOp(Expr):
    op: str = "-"
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class Transpose(Expr):
    operand: Expr = None  # type: ignore[assignment]
    conjugate: bool = True  # `'` conjugates, `.'` does not


@dataclass
class Range(Expr):
    start: Expr = None  # type: ignore[assignment]
    stop: Expr = None  # type: ignore[assignment]
    step: Optional[Expr] = None  # None means step 1


@dataclass
class Colon(Expr):
    """A bare ``:`` used as a whole-dimension subscript."""


@dataclass
class EndRef(Expr):
    """``end`` used inside a subscript; resolves to the dimension extent.

    Identifier resolution fills in which variable and axis it refers to:
    ``var`` is the indexed variable's name, ``axis`` the 0-based subscript
    position, and ``nargs`` the total subscript count (1 for linear
    indexing, where ``end`` means ``numel(var)``).
    """

    var: str = ""
    axis: int = 0
    nargs: int = 0


@dataclass
class MatrixLit(Expr):
    rows: list[list[Expr]] = field(default_factory=list)


@dataclass
class Apply(Expr):
    """``name(arg, ...)`` — indexing or call, disambiguated in pass 2.

    ``resolved`` is one of ``None`` (not yet resolved), ``"index"``,
    ``"call"`` (user M-file function) or ``"builtin"``.
    """

    name: str = ""
    args: list[Expr] = field(default_factory=list)
    resolved: Optional[str] = None


# --------------------------------------------------------------------------
# L-values
# --------------------------------------------------------------------------


@dataclass
class LValue(Node):
    name: str = ""


@dataclass
class NameLValue(LValue):
    pass


@dataclass
class IndexLValue(LValue):
    args: list[Expr] = field(default_factory=list)


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class Assign(Stmt):
    target: LValue = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]
    display: bool = False  # true when *not* suppressed by `;`


@dataclass
class MultiAssign(Stmt):
    """``[a, b] = f(...)`` — multiple return values from one call."""

    targets: list[LValue] = field(default_factory=list)
    call: Apply = None  # type: ignore[assignment]
    display: bool = False


@dataclass
class ExprStmt(Stmt):
    value: Expr = None  # type: ignore[assignment]
    display: bool = False


@dataclass
class If(Stmt):
    # branches[i] = (condition, body); `else` body in orelse (may be empty)
    branches: list[tuple[Expr, list[Stmt]]] = field(default_factory=list)
    orelse: list[Stmt] = field(default_factory=list)

    def children(self) -> Iterator[Node]:
        for cond, body in self.branches:
            yield cond
            yield from body
        yield from self.orelse


@dataclass
class For(Stmt):
    var: str = ""
    iterable: Expr = None  # type: ignore[assignment]
    body: list[Stmt] = field(default_factory=list)


@dataclass
class While(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: list[Stmt] = field(default_factory=list)


@dataclass
class Switch(Stmt):
    subject: Expr = None  # type: ignore[assignment]
    # cases[i] = (list of match expressions, body)
    cases: list[tuple[list[Expr], list[Stmt]]] = field(default_factory=list)
    otherwise: list[Stmt] = field(default_factory=list)

    def children(self) -> Iterator[Node]:
        yield self.subject
        for values, body in self.cases:
            yield from values
            yield from body
        yield from self.otherwise


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Return(Stmt):
    pass


@dataclass
class Global(Stmt):
    names: list[str] = field(default_factory=list)


# --------------------------------------------------------------------------
# Program units
# --------------------------------------------------------------------------


@dataclass
class FunctionDef(Node):
    """One ``function`` definition from an M-file."""

    name: str = ""
    params: list[str] = field(default_factory=list)
    returns: list[str] = field(default_factory=list)
    body: list[Stmt] = field(default_factory=list)


@dataclass
class Script(Node):
    """A script M-file: statements with no parameters or return values."""

    name: str = "script"
    body: list[Stmt] = field(default_factory=list)


@dataclass
class Program(Node):
    """A whole MATLAB program: the initial script plus every user M-file
    function reachable from it (attached by identifier resolution)."""

    script: Script = None  # type: ignore[assignment]
    functions: dict[str, FunctionDef] = field(default_factory=dict)

    def children(self) -> Iterator[Node]:
        yield self.script
        yield from self.functions.values()
