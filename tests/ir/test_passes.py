"""Middle-end tests: lowering (pass 4), guarding (pass 5), peephole (6)."""

import pytest

from repro.analysis.infer import infer_types
from repro.analysis.resolve import resolve_program
from repro.frontend.parser import parse_script
from repro.ir.guard import guard_program
from repro.ir.lower import lower_program
from repro.ir.nodes import (
    Copy,
    Elementwise,
    IndexAssign,
    IRFor,
    IRIf,
    IRWhile,
    RTCall,
    SetElement,
    ew_op_count,
)
from repro.ir.peephole import peephole_program


def lower(src, guard=True, peephole=False):
    prog = resolve_program(parse_script(src))
    ir = lower_program(prog, infer_types(prog))
    if guard:
        guard_program(ir)
    stats = peephole_program(ir, enabled=peephole)
    return ir, stats


def flat(block):
    out = []
    for stmt in block:
        out.append(stmt)
        if isinstance(stmt, IRIf):
            for cond_stmts, _c, branch in stmt.branches:
                out.extend(flat(cond_stmts))
                out.extend(flat(branch))
            out.extend(flat(stmt.orelse))
        elif isinstance(stmt, IRFor):
            out.extend(flat(stmt.iter_stmts))
            out.extend(flat(stmt.body))
        elif isinstance(stmt, IRWhile):
            out.extend(flat(stmt.cond_stmts))
            out.extend(flat(stmt.body))
    return out


def rt_ops(ir):
    return [s.op for s in flat(ir.body) if isinstance(s, RTCall)]


class TestLowering:
    def test_matmul_hoisted(self):
        ir, _ = lower("a = ones(3, 3);\nb = ones(3, 3);\nc = a * b + a;")
        ops = rt_ops(ir)
        assert "matmul" in ops
        ews = [s for s in flat(ir.body) if isinstance(s, Elementwise)]
        assert any(ew_op_count(s.expr) == 1 for s in ews)  # the fused add

    def test_elementwise_chain_fused_into_one(self):
        ir, _ = lower(
            "a = ones(4, 4);\nb = ones(4, 4);\n"
            "c = sqrt(a) + b .* a - 2 .* abs(b);")
        ews = [s for s in flat(ir.body) if isinstance(s, Elementwise)
               and getattr(s.dest, "name", "") == "c"]
        assert len(ews) == 1
        # sqrt, +, .*, -, .* and abs all in one loop; the 2 .* b scalar
        # multiply still counts (one operand is a matrix)
        assert ew_op_count(ews[0].expr) >= 5

    def test_scalar_times_matrix_fused(self):
        ir, _ = lower("a = ones(3, 3);\nc = 2 * a;")
        assert "matmul" not in rt_ops(ir)

    def test_matrix_divide_hoisted(self):
        ir, _ = lower("a = ones(3, 3);\nb = ones(3, 3);\nc = a / b;")
        assert "solve_right" in rt_ops(ir)

    def test_scalar_divide_fused(self):
        ir, _ = lower("a = ones(3, 3);\nc = a / 2;")
        assert "solve_right" not in rt_ops(ir)

    def test_scalar_element_read_is_broadcast(self):
        ir, _ = lower("d = ones(4, 4);\ni = 2;\nj = 3;\nx = d(i, j);")
        assert "broadcast_element" in rt_ops(ir)

    def test_slice_read_is_index_read(self):
        ir, _ = lower("d = ones(4, 4);\nx = d(:, 2);")
        assert "index_read" in rt_ops(ir)

    def test_reduction_is_builtin_call(self):
        ir, _ = lower("v = ones(5, 1);\ns = sum(v);")
        assert "builtin:sum" in rt_ops(ir)

    def test_elementwise_builtin_fused_not_called(self):
        ir, _ = lower("v = ones(5, 1);\nw = sqrt(v) + 1;")
        assert "builtin:sqrt" not in rt_ops(ir)

    def test_range_for_loop_not_materialized(self):
        ir, _ = lower("s = 0;\nfor i = 1:100\n s = s + i;\nend")
        fors = [s for s in flat(ir.body) if isinstance(s, IRFor)]
        assert fors[0].range_triple is not None
        assert "range" not in rt_ops(ir)

    def test_range_value_materialized(self):
        ir, _ = lower("v = 1:10;")
        assert "range" in rt_ops(ir)

    def test_paper_example_statement_order(self):
        # a = b * c + d(i,j): multiply, broadcast, then the fused add
        ir, _ = lower("""
b = ones(4, 4); c = ones(4, 4); d = ones(4, 4);
i = 2; j = 3;
a = b * c + d(i,j);
""")
        stmts = [s for s in flat(ir.body)
                 if isinstance(s, (RTCall, Elementwise))]
        kinds = [s.op if isinstance(s, RTCall) else "ew" for s in stmts]
        pos_mm = kinds.index("matmul")
        pos_bc = kinds.index("broadcast_element")
        pos_ew = len(kinds) - 1 - kinds[::-1].index("ew")
        assert pos_mm < pos_ew and pos_bc < pos_ew

    def test_while_condition_stmts_captured(self):
        ir, _ = lower("""
x = ones(4, 1);
while sum(x) < 100
    x = x * 2;
end
""")
        whiles = [s for s in flat(ir.body) if isinstance(s, IRWhile)]
        assert whiles and any(isinstance(s, RTCall)
                              for s in whiles[0].cond_stmts)

    def test_switch_desugars_to_if(self):
        ir, _ = lower("""
m = 2;
switch m
case 1
    x = 1;
otherwise
    x = 0;
end
""")
        assert any(isinstance(s, IRIf) for s in flat(ir.body))
        assert "switch_match" in rt_ops(ir)


class TestGuarding:
    def test_scalar_store_guarded(self):
        ir, _ = lower("a = zeros(4, 4);\ni = 2;\na(i, 3) = 5;")
        stores = [s for s in flat(ir.body)
                  if isinstance(s, (SetElement, IndexAssign))]
        assert len(stores) == 1
        assert isinstance(stores[0], SetElement)

    def test_slice_store_not_guarded(self):
        ir, _ = lower("a = zeros(4, 4);\na(:, 2) = ones(4, 1);")
        stores = [s for s in flat(ir.body)
                  if isinstance(s, (SetElement, IndexAssign))]
        assert isinstance(stores[0], IndexAssign)

    def test_matrix_rhs_not_guarded(self):
        ir, _ = lower("a = zeros(4, 4);\nb = ones(1, 4);\na(2, :) = b;")
        stores = [s for s in flat(ir.body)
                  if isinstance(s, (SetElement, IndexAssign))]
        assert isinstance(stores[0], IndexAssign)

    def test_guard_inside_loop(self):
        ir, _ = lower("""
t = zeros(1, 10);
for s = 1:10
    t(s) = s * 2;
end
""")
        fors = [s for s in flat(ir.body) if isinstance(s, IRFor)]
        inner = [s for s in flat(fors[0].body) if isinstance(s, SetElement)]
        assert inner


class TestPeephole:
    def test_transpose_matmul_fused(self):
        ir, stats = lower("r = ones(8, 1);\ns = r' * r;", peephole=True)
        assert stats.transpose_fused == 1
        assert "matmul_t" in rt_ops(ir)
        assert "transpose" not in rt_ops(ir)

    def test_fusion_disabled(self):
        ir, stats = lower("r = ones(8, 1);\ns = r' * r;", peephole=False)
        assert stats.transpose_fused == 0
        assert "transpose" in rt_ops(ir)

    def test_no_fuse_when_transpose_reused(self):
        ir, stats = lower("""
r = ones(8, 1);
t = r';
s = t * r;
u = t + t;
""", peephole=True)
        assert stats.transpose_fused == 0

    def test_broadcast_cse(self):
        ir, stats = lower("""
d = ones(4, 4);
i = 2; j = 3;
x = d(i, j) + d(i, j);
""", peephole=True)
        assert stats.cse_removed == 1

    def test_cse_killed_by_redefinition(self):
        ir, stats = lower("""
d = ones(4, 4);
i = 2; j = 3;
x = d(i, j);
d(1, 1) = 99;
y = d(i, j);
""", peephole=True)
        assert stats.cse_removed == 0

    def test_cg_iteration_fuses_both_dots(self):
        ir, stats = lower("""
A = ones(8, 8);
p = ones(8, 1);
r = ones(8, 1);
rsold = r' * r;
Ap = A * p;
alpha = rsold / (p' * Ap);
""", peephole=True)
        assert stats.transpose_fused == 2


def test_pretty_ir_is_textual():
    ir, _ = lower("a = ones(2, 2);\nb = a * a;")
    from repro.ir.pretty import pretty_ir

    text = pretty_ir(ir)
    assert "ML_matmul" in text or "matmul" in text
