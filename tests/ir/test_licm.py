"""Loop-invariant code motion (pass 6b) tests."""

import numpy as np
import pytest

from repro.compiler import compile_source
from repro.ir.nodes import IRFor, IRWhile, RTCall


def hoist_count(src, **kw):
    return compile_source(src, **kw).licm_stats.hoisted


def loop_body_ops(prog):
    """RT ops remaining inside the first for loop of the script."""
    for stmt in prog.ir.body:
        if isinstance(stmt, IRFor):
            return [s.op for s in stmt.body if isinstance(s, RTCall)]
    return []


class TestHoisting:
    def test_invariant_broadcast_hoisted(self):
        src = """
d = rand(4, 4);
t = 0;
for s = 1:10
    t = t + d(1, 2);
end
"""
        prog = compile_source(src)
        assert prog.licm_stats.hoisted == 1
        assert "broadcast_element" not in loop_body_ops(prog)

    def test_variant_broadcast_stays(self):
        src = """
d = rand(4, 4);
t = 0;
for s = 1:4
    t = t + d(s, 2);
end
"""
        prog = compile_source(src)
        assert prog.licm_stats.hoisted == 0
        assert "broadcast_element" in loop_body_ops(prog)

    def test_redefined_subject_blocks_hoist(self):
        src = """
d = rand(4, 4);
t = 0;
for s = 1:4
    t = t + d(1, 2);
    d = rand(4, 4);
end
"""
        assert hoist_count(src) == 0

    def test_invariant_matmul_hoisted(self):
        src = """
a = rand(8, 8);
b = rand(8, 8);
t = zeros(8, 8);
for s = 1:10
    t = t + a * b;
end
"""
        prog = compile_source(src)
        assert prog.licm_stats.hoisted >= 1
        assert "matmul" not in loop_body_ops(prog)

    def test_chain_of_invariants_hoists_together(self):
        src = """
a = rand(8, 8);
v = ones(8, 1);
t = zeros(8, 1);
for s = 1:10
    t = t + a' * (a * v);
end
"""
        prog = compile_source(src)
        assert prog.licm_stats.hoisted >= 2

    def test_rng_never_hoisted(self):
        src = """
t = 0;
for s = 1:5
    t = t + sum(rand(4, 1));
end
"""
        prog = compile_source(src)
        assert "builtin:rand" in loop_body_ops(prog)

    def test_io_never_hoisted(self):
        src = "for s = 1:3\n disp('hello');\nend"
        prog = compile_source(src)
        assert "builtin:disp" in loop_body_ops(prog)

    def test_zero_trip_loop_blocks_speculation(self):
        # n is not a compile-time constant range: 1:k with variable k
        src = """
d = rand(4, 4);
k = 0;
t = 0;
for s = 1:k
    t = t + d(9, 9);
end
"""
        # the read is out of bounds, but the loop never runs: the program
        # must still succeed, so the broadcast must NOT be hoisted
        prog = compile_source(src)
        assert prog.licm_stats.hoisted == 0
        result = prog.run(nprocs=2)
        assert result.workspace["t"] == 0.0

    def test_dim_hoisted_even_from_while(self):
        src = """
v = ones(7, 1);
i = 1;
t = 0;
while i < 3
    t = t + v(end);
    i = i + 1;
end
"""
        prog = compile_source(src)
        assert prog.licm_stats.hoisted >= 1  # the `end` extent query

    def test_disabled_flag(self):
        src = "d = rand(4, 4);\nt = 0;\nfor s = 1:10\n t = t + d(1, 2);\nend"
        assert hoist_count(src, licm=False) == 0


class TestSemanticsPreserved:
    @pytest.mark.parametrize("licm", [True, False])
    def test_identical_results(self, licm):
        src = """
rand('seed', 3);
a = rand(16, 16);
v = ones(16, 1);
acc = zeros(16, 1);
d = rand(4, 4);
for s = 1:20
    acc = acc + a * v + d(2, 2);
    v = v / norm(v);
end
m = sum(acc);
"""
        result = compile_source(src, licm=licm).run(nprocs=4)
        # pin the value so both variants are compared to the same number
        assert result.workspace["m"] == pytest.approx(
            compile_source(src, licm=not licm).run(
                nprocs=4).workspace["m"], rel=1e-12)

    def test_collectives_reduced(self):
        src = """
d = rand(8, 8);
t = 0;
for s = 1:50
    t = t + d(1, 2);
end
"""
        with_licm = compile_source(src, licm=True).run(nprocs=4)
        without = compile_source(src, licm=False).run(nprocs=4)
        assert (with_licm.spmd.collective_counts.get("bcast", 0)
                < without.spmd.collective_counts.get("bcast", 0))
        assert with_licm.elapsed < without.elapsed
