"""Tests for the extension builtins (dim reductions, std/var/median/find)
in all three systems via the differential fixture."""

import numpy as np
import pytest


class TestDimReductions:
    def test_sum_dim1_vs_dim2(self, assert_matches_oracle):
        ws = assert_matches_oracle("""
a = [1, 2, 3; 4, 5, 6];
s1 = sum(a, 1);
s2 = sum(a, 2);
m1 = mean(a, 1);
m2 = mean(a, 2);
p2 = prod(a, 2);
""", nprocs=(1, 2, 3))
        np.testing.assert_array_equal(np.asarray(ws["s1"]), [[5, 7, 9]])
        np.testing.assert_array_equal(np.asarray(ws["s2"]),
                                      [[6], [15]])
        np.testing.assert_array_equal(np.asarray(ws["m2"]),
                                      [[2], [5]])
        np.testing.assert_array_equal(np.asarray(ws["p2"]),
                                      [[6], [120]])

    def test_dim_on_vector_singleton_identity(self, assert_matches_oracle):
        ws = assert_matches_oracle("""
v = [1, 2, 3, 4];
a = sum(v, 1);
b = sum(v, 2);
""", nprocs=(1, 2))
        np.testing.assert_array_equal(np.asarray(ws["a"]), [[1, 2, 3, 4]])
        assert ws["b"] == 10.0

    def test_row_reduce_is_local_no_extra_collectives(self):
        """dim=2 on a row-distributed matrix needs no communication."""
        from repro.compiler import compile_source

        prog = compile_source(
            "rand('seed', 1);\na = rand(64, 64);\nr = sum(a, 2);"
            "\ns = sum(r);")
        base = compile_source(
            "rand('seed', 1);\na = rand(64, 64);\nr = sum(a, 1);"
            "\ns = sum(r');")
        row_colls = prog.run(nprocs=8).spmd.collectives
        col_colls = base.run(nprocs=8).spmd.collectives
        assert row_colls < col_colls


class TestStatBuiltins:
    def test_std_var_vector(self, assert_matches_oracle):
        ws = assert_matches_oracle("""
rand('seed', 2);
v = rand(40, 1) * 10;
s = std(v);
w = var(v);
""", nprocs=(1, 3))
        v = np.asarray(ws["v"]).reshape(-1)
        assert ws["s"] == pytest.approx(np.std(v, ddof=1), rel=1e-9)
        assert ws["w"] == pytest.approx(np.var(v, ddof=1), rel=1e-9)

    def test_std_matrix_columnwise(self, assert_matches_oracle):
        ws = assert_matches_oracle("""
rand('seed', 3);
a = rand(9, 4);
s = std(a);
""", nprocs=(1, 4))
        a = np.asarray(ws["a"])
        np.testing.assert_allclose(np.asarray(ws["s"]).reshape(-1),
                                   np.std(a, axis=0, ddof=1), rtol=1e-9)

    def test_median_odd_even(self, assert_matches_oracle):
        ws = assert_matches_oracle("""
a = median([3, 1, 2]);
b = median([4, 1, 3, 2]);
""", nprocs=(1, 2))
        assert ws["a"] == 2.0 and ws["b"] == 2.5

    def test_median_matrix(self, assert_matches_oracle):
        assert_matches_oracle("""
rand('seed', 5);
m = median(rand(7, 3));
""", nprocs=(1, 3))


class TestFind:
    def test_find_column_major_order(self, assert_matches_oracle):
        ws = assert_matches_oracle("""
a = [0, 2; 3, 0];
idx = find(a);
""", nprocs=(1, 2))
        np.testing.assert_array_equal(np.asarray(ws["idx"]).reshape(-1),
                                      [2, 3])

    def test_find_row_vector_keeps_orientation(self, assert_matches_oracle):
        ws = assert_matches_oracle("""
v = [0, 5, 0, 7, 1];
idx = find(v);
""", nprocs=(1, 3))
        np.testing.assert_array_equal(np.asarray(ws["idx"]), [[2, 4, 5]])

    def test_find_then_index(self, assert_matches_oracle):
        """The classic pattern: select elements by found indices."""
        ws = assert_matches_oracle("""
rand('seed', 4);
v = rand(1, 30) - 0.5;
pos = find(v > 0);
chosen = v(pos);
total = sum(chosen);
""", nprocs=(1, 4))
        v = np.asarray(ws["v"]).reshape(-1)
        assert ws["total"] == pytest.approx(v[v > 0].sum(), rel=1e-9)

    def test_find_empty(self, run_compiled, run_interp):
        src = "idx = find(zeros(3, 3));\nn = numel(idx);"
        assert run_interp(src).workspace["n"] == 0.0
        ws, _ = run_compiled(src, nprocs=2)
        assert ws["n"] == 0.0

    def test_find_all_nonzero_distributed(self, assert_matches_oracle):
        assert_matches_oracle(
            "idx = find(ones(11, 1));\ns = sum(idx);", nprocs=(1, 4))


class TestLinalgBuiltins:
    def test_inv_roundtrip(self, assert_matches_oracle):
        ws = assert_matches_oracle("""
rand('seed', 6);
A = rand(8, 8) + 8 * eye(8);
B = inv(A);
I = A * B;
err = max(max(abs(I - eye(8))));
""", nprocs=(1, 4), rtol=1e-7, atol=1e-9)
        assert ws["err"] < 1e-9

    def test_det_of_triangular(self, assert_matches_oracle):
        ws = assert_matches_oracle("""
T = [2, 5, 1; 0, 3, 7; 0, 0, 4];
d = det(T);
""", nprocs=(1, 2))
        assert abs(ws["d"] - 24.0) < 1e-10

    def test_trace(self, assert_matches_oracle):
        ws = assert_matches_oracle(
            "A = [1, 9; 9, 5];\nt = trace(A);", nprocs=(1, 2))
        assert ws["t"] == 6.0

    def test_inv_nonsquare_rejected(self, run_compiled):
        import pytest

        from repro.errors import OtterError

        with pytest.raises(Exception):
            run_compiled("B = inv(ones(2, 3));", nprocs=2)


class TestStringBuiltins:
    def test_sprintf(self, assert_matches_oracle):
        ws = assert_matches_oracle(
            "s = sprintf('%d/%d = %.2f', 1, 3, 1/3);", nprocs=(1, 2))
        assert ws["s"] == "1/3 = 0.33"

    def test_sprintf_cycles(self, assert_matches_oracle):
        ws = assert_matches_oracle(
            "s = sprintf('%d,', [1, 2, 3]);", nprocs=(1, 3))
        assert ws["s"] == "1,2,3,"

    def test_num2str_scalar(self, assert_matches_oracle):
        ws = assert_matches_oracle("s = num2str(pi);\nt = num2str(4);",
                                   nprocs=(1, 2))
        assert ws["s"] == "3.1416"
        assert ws["t"] == "4"

    def test_int2str_rounds(self, assert_matches_oracle):
        ws = assert_matches_oracle("s = int2str(2.7);", nprocs=(1, 2))
        assert ws["s"] == "3"

    def test_strings_through_display(self, run_compiled, run_interp):
        src = "msg = sprintf('count=%d', 5);\ndisp(msg);"
        interp = run_interp(src)
        _, out = run_compiled(src, nprocs=2)
        assert out == "".join(interp.output) == "count=5\n"
