"""Edge-case semantics: empty matrices, degenerate shapes, boundary
subscripts, and numeric corner cases — interpreter and compiled."""

import numpy as np
import pytest

from repro.errors import MatlabRuntimeError, MpiError
from repro.interp.interpreter import run_source


class TestEmptyMatrices:
    def test_empty_literal(self, assert_matches_oracle):
        ws = assert_matches_oracle(
            "e = [];\nn = numel(e);\nb = isempty(e);", nprocs=(1, 2))
        assert ws["n"] == 0.0 and ws["b"] == 1.0

    def test_empty_range(self, assert_matches_oracle):
        ws = assert_matches_oracle(
            "r = 5:1;\nn = numel(r);\ns = sum(r);", nprocs=(1, 2))
        assert ws["n"] == 0.0
        assert ws["s"] == 0.0  # sum of empty is 0

    def test_empty_condition_is_false(self, assert_matches_oracle):
        ws = assert_matches_oracle("""
x = 0;
if []
    x = 1;
end
""", nprocs=(1, 2))
        assert ws["x"] == 0.0

    def test_loop_over_empty_range_skipped(self, assert_matches_oracle):
        ws = assert_matches_oracle(
            "c = 0;\nfor i = 1:0\n c = c + 1;\nend", nprocs=(1, 2))
        assert ws["c"] == 0.0


class TestDegenerateShapes:
    def test_1x1_matrix_is_scalar(self, assert_matches_oracle):
        ws = assert_matches_oracle(
            "a = [7];\nb = a * [2];\nc = isscalar(b);", nprocs=(1, 2))
        assert ws["b"] == 14.0 and ws["c"] == 1.0

    def test_1xn_times_nx1(self, assert_matches_oracle):
        ws = assert_matches_oracle(
            "x = [1, 2, 3] * [4; 5; 6];", nprocs=(1, 3))
        assert ws["x"] == 32.0

    def test_single_row_matrix_ops(self, assert_matches_oracle):
        assert_matches_oracle("""
r = ones(1, 13);
s = sum(r);
t = r';
u = t' * t;
""", nprocs=(1, 4))

    def test_tall_skinny_product(self, assert_matches_oracle):
        assert_matches_oracle("""
rand('seed', 31);
A = rand(17, 2);
G = A' * A;
d = det(G);
""", nprocs=(1, 4), rtol=1e-7)

    def test_more_ranks_than_rows(self, assert_matches_oracle):
        # 3 rows over 4 ranks: some ranks own nothing
        assert_matches_oracle("""
rand('seed', 32);
a = rand(3, 5);
s = sum(sum(a));
b = a * a';
t = trace(b);
""", nprocs=(1, 4), rtol=1e-8)


class TestBoundarySubscripts:
    def test_first_and_last_element(self, assert_matches_oracle):
        ws = assert_matches_oracle("""
v = 10:10:90;
a = v(1);
b = v(end);
v(1) = -1;
v(end) = -9;
s = sum(v);
""", nprocs=(1, 3))
        assert ws["a"] == 10.0 and ws["b"] == 90.0

    def test_full_slice_read_write(self, assert_matches_oracle):
        assert_matches_oracle("""
a = magic_fill(4);
b = a(:, :);
a(:, :) = b * 2;
s = sum(sum(a));
""", nprocs=(1, 2), provider=_magic_provider())

    def test_out_of_bounds_read_fails_everywhere(self):
        src = "a = ones(2, 2);\nx = a(3, 3);"
        with pytest.raises(MatlabRuntimeError):
            run_source(src)
        from repro.compiler import compile_source

        with pytest.raises((MatlabRuntimeError, MpiError)):
            compile_source(src).run(nprocs=2)

    def test_zero_subscript_fails(self):
        with pytest.raises(MatlabRuntimeError):
            run_source("a = ones(2, 2);\nx = a(0, 1);")


class TestNumericCorners:
    def test_inf_nan_propagation(self, assert_matches_oracle):
        ws = assert_matches_oracle("""
a = 1 / 0;
b = -1 / 0;
c = 0 / 0;
d = isnan(c);
e = isinf(a) + isinf(b);
""", nprocs=(1, 2))
        assert ws["d"] == 1.0 and ws["e"] == 2.0

    def test_integer_overflow_free(self, assert_matches_oracle):
        ws = assert_matches_oracle("x = 2^50 + 1;\ny = x - 2^50;",
                                   nprocs=(1, 2))
        assert ws["y"] == 1.0

    def test_negative_zero_comparisons(self, assert_matches_oracle):
        ws = assert_matches_oracle("a = 0 == -0;\nb = 1 / -0;",
                                   nprocs=(1, 2))
        assert ws["a"] == 1.0
        assert ws["b"] == -np.inf

    def test_complex_magnitude_ordering(self, assert_matches_oracle):
        # MATLAB's < compares real parts for complex operands
        ws = assert_matches_oracle("c = (1 + 5i) < 2;", nprocs=(1, 2))
        assert ws["c"] == 1.0

    def test_mod_signs_match_matlab(self, assert_matches_oracle):
        ws = assert_matches_oracle("""
a = mod(-7, 3);
b = rem(-7, 3);
c = mod(7, -3);
""", nprocs=(1, 2))
        assert ws["a"] == 2.0    # mod follows divisor sign
        assert ws["b"] == -1.0   # rem follows dividend sign
        assert ws["c"] == -2.0


def _magic_provider():
    from repro.frontend.mfile import DictProvider

    return DictProvider({"magic_fill": """function m = magic_fill(n)
m = zeros(n, n);
for i = 1:n
    for j = 1:n
        m(i, j) = (i - 1) * n + j;
    end
end
"""})


class TestAssignmentCorners:
    def test_complex_store_into_real_matrix(self, assert_matches_oracle):
        ws = assert_matches_oracle("""
a = zeros(3, 3);
a(2, 2) = 1 + 2i;
s = a(2, 2);
t = isreal(a);
""", nprocs=(1, 3))
        assert ws["s"] == 1 + 2j and ws["t"] == 0.0

    def test_indexed_target_in_multi_assign(self, assert_matches_oracle):
        ws = assert_matches_oracle("""
r = zeros(1, 2);
a = [5, 3; 2, 9];
[r(1), r(2)] = size(a);
[mx, pos(1)] = max([4, 7, 1]);
""", nprocs=(1, 2))
        import numpy as np

        np.testing.assert_array_equal(np.asarray(ws["r"]), [[2, 2]])
        assert ws["mx"] == 7.0

    def test_chained_growth_then_slice(self, assert_matches_oracle):
        assert_matches_oracle("""
m = zeros(2, 2);
m(4, 4) = 1;
row = m(4, :);
s = sum(row);
""", nprocs=(1, 3))

    def test_ans_display_through_pipeline(self, run_interp, run_compiled):
        src = "1 + 1\nans * 10"
        interp = run_interp(src)
        _, out = run_compiled(src, nprocs=2)
        assert out == "".join(interp.output)
        assert out.count("ans =") == 2

    def test_assign_string_then_number(self, assert_matches_oracle):
        # dynamic retyping of a variable (the problem SSA exists to solve)
        ws = assert_matches_oracle("""
x = 'hello';
n = length(x);
x = 3.5;
y = x * 2;
""", nprocs=(1, 2))
        assert ws["y"] == 7.0 and ws["n"] == 5.0

    def test_matrix_to_scalar_retyping(self, assert_matches_oracle):
        ws = assert_matches_oracle("""
v = ones(4, 1);
v = sum(v);
w = v + 1;
""", nprocs=(1, 2))
        assert ws["w"] == 5.0
