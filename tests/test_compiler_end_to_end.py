"""End-to-end compiler tests: pipeline behaviour, errors, performance
model sanity."""

import numpy as np
import pytest

from repro import (
    InferenceError,
    MatlabRuntimeError,
    OtterCompiler,
    ParseError,
    ResolutionError,
    compile_source,
)
from repro.mpi import MEIKO_CS2, SPARC20_CLUSTER, SUN_ENTERPRISE


class TestPipeline:
    def test_compile_produces_both_backends(self):
        prog = compile_source("x = ones(4, 4);\ny = sum(sum(x));")
        assert "def main(rt):" in prog.python_source
        assert "int main(" in prog.c_source
        assert "program script" in prog.ir_dump()

    def test_compile_errors_carry_location(self):
        with pytest.raises(ParseError) as err:
            compile_source("x = [1, 2\n")
        assert "2" in str(err.value) or "1" in str(err.value)

    def test_resolution_error(self):
        with pytest.raises(ResolutionError):
            compile_source("y = undefined_fn(1);")

    def test_inference_error_for_bad_shapes(self):
        with pytest.raises(InferenceError):
            compile_source("a = ones(2, 3);\nb = ones(3, 2);\nc = a + b;")

    def test_runtime_error_in_parallel_program(self):
        prog = compile_source("a = ones(3, 3);\nx = a(7, 1);")
        with pytest.raises(Exception) as err:
            prog.run(nprocs=2)
        assert "exceeds" in str(err.value)

    def test_module_cached_between_runs(self):
        prog = compile_source("x = 1;")
        prog.run(nprocs=1)
        module_first = prog._module
        prog.run(nprocs=2)
        assert prog._module is module_first


class TestDeterminism:
    def test_same_seed_same_results(self):
        prog = compile_source("rand('seed', 3);\na = rand(8, 8);"
                              "\ns = sum(sum(a));")
        r1 = prog.run(nprocs=4, seed=0)
        r2 = prog.run(nprocs=4, seed=0)
        assert r1.workspace["s"] == r2.workspace["s"]
        assert r1.elapsed == r2.elapsed  # virtual time is deterministic

    def test_results_independent_of_nprocs(self):
        prog = compile_source("""
rand('seed', 5);
A = rand(16, 16);
x = ones(16, 1);
for k = 1:5
    x = (A * x) / norm(A * x);
end
lam = x' * (A * x);
""")
        values = [prog.run(nprocs=p).workspace["lam"]
                  for p in (1, 2, 4, 8)]
        np.testing.assert_allclose(values, values[0], rtol=1e-9)

    def test_elapsed_independent_of_wallclock(self):
        prog = compile_source("a = ones(64, 64);\nb = a * a;")
        times = {prog.run(nprocs=4).elapsed for _ in range(3)}
        assert len(times) == 1


class TestPerformanceModel:
    def test_parallel_faster_than_serial_for_big_matmul(self):
        prog = compile_source(
            "rand('seed', 1);\na = rand(256, 256);\nb = a * a;"
            "\ns = sum(sum(b));")
        t1 = prog.run(nprocs=1).elapsed
        t8 = prog.run(nprocs=8).elapsed
        assert t8 < t1 / 3

    def test_tiny_problem_does_not_scale(self):
        prog = compile_source("a = ones(4, 4);\nb = a * a;"
                              "\ns = sum(sum(b));")
        t1 = prog.run(nprocs=1).elapsed
        t16 = prog.run(nprocs=16).elapsed
        assert t16 > t1  # communication dominates

    def test_machines_rank_plausibly(self):
        prog = compile_source("""
rand('seed', 2);
A = rand(192, 192);
B = A * A;
v = ones(192, 1);
for k = 1:10
    v = B * v;
    v = v / norm(v);
end
s = sum(v);
""")
        t_meiko = prog.run(nprocs=8, machine=MEIKO_CS2).elapsed
        t_cluster = prog.run(nprocs=8, machine=SPARC20_CLUSTER).elapsed
        assert t_cluster > t_meiko  # crossing Ethernet hurts

    def test_message_statistics_grow_with_ranks(self):
        prog = compile_source(
            "rand('seed', 1);\na = rand(32, 32);\nb = a * a;"
            "\ns = sum(sum(b));")
        c1 = prog.run(nprocs=1).spmd.collectives
        c8 = prog.run(nprocs=8).spmd.collectives
        assert c8 >= c1

    def test_enterprise_limited_to_8(self):
        prog = compile_source("x = 1;")
        with pytest.raises(Exception):
            prog.run(nprocs=16, machine=SUN_ENTERPRISE)


class TestPeepholeFlag:
    def test_disabled_compiler_flag(self):
        compiler = OtterCompiler(peephole=False)
        prog = compiler.compile("r = ones(64, 1);\ns = r' * r;")
        assert prog.peephole_stats.transpose_fused == 0

    def test_peephole_reduces_modeled_time(self):
        src = """
rand('seed', 7);
A = rand(256, 256);
v = rand(256, 1);
w = A' * v;
s = sum(w);
"""
        fast = compile_source(src, peephole=True).run(nprocs=8).elapsed
        slow = compile_source(src, peephole=False).run(nprocs=8).elapsed
        assert fast < slow  # fused a'*b avoids transpose + allgather


class TestLoadSaveEndToEnd:
    def test_load_with_sample_file(self):
        from repro.frontend.mfile import DictProvider

        data = np.arange(12.0).reshape(3, 4)
        provider = DictProvider({}, {"grid.dat": data})
        prog = OtterCompiler(provider=provider).compile(
            "d = load('grid.dat');\ns = sum(sum(d));")
        result = prog.run(nprocs=3)
        assert result.workspace["s"] == data.sum()

    def test_missing_sample_fails_at_compile_time(self):
        with pytest.raises(InferenceError):
            compile_source("d = load('nope.dat');")
