"""Smoke tests: every shipped example runs to completion (stdout captured).

The examples are documentation that executes; this keeps them honest.
"""

import importlib.util
import io
import os
import sys
from contextlib import redirect_stdout

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

FAST_EXAMPLES = [
    "quickstart.py",
    "compiler_tour.py",
    "mfile_functions.py",
    "ocean_wave_force.py",
]

SLOW_EXAMPLES = [
    "heat_diffusion.py",
    "scaling_study.py",
]


def run_example(filename):
    path = os.path.join(EXAMPLES_DIR, filename)
    spec = importlib.util.spec_from_file_location(
        f"example_{filename[:-3]}", path)
    module = importlib.util.module_from_spec(spec)
    buf = io.StringIO()
    with redirect_stdout(buf):
        spec.loader.exec_module(module)
        module.main()
    return buf.getvalue()


@pytest.mark.parametrize("filename", FAST_EXAMPLES)
def test_fast_example_runs(filename):
    out = run_example(filename)
    assert len(out) > 100  # produced a real report


def test_quickstart_reports_pi():
    out = run_example("quickstart.py")
    assert "3.1415926" in out


def test_compiler_tour_shows_all_passes():
    out = run_example("compiler_tour.py")
    for marker in ("pass 1", "pass 3", "passes 4-6", "pass 7a", "pass 7b"):
        assert marker in out


def test_ocean_example_reports_figure4_story():
    out = run_example("ocean_wave_force.py")
    assert "MATCOM" in out and "CPUs" in out


@pytest.mark.slow
@pytest.mark.parametrize("filename", SLOW_EXAMPLES)
def test_slow_example_runs(filename):
    out = run_example(filename)
    assert len(out) > 100
