"""The rank-fused backend: one pass stands in for all P ranks.

Covers the fusion contract from three angles:

* unit level — ``PerRankScalar`` collapse/poisoning and the ``FusedComm``
  facade's accounting primitives;
* fallback level — any rank-dependent observation raises
  ``FusionDivergence`` and ``run_spmd`` transparently re-runs under
  lockstep, returning the *fallback* result (never partial fused state);
* program level — compiled MATLAB runs fused with workspaces, per-rank
  virtual clocks, and message/byte/collective tallies bit-identical to
  lockstep, and the guarded-store fast path stops copying the local
  block on every scalar element store.
"""

import numpy as np
import pytest

from repro.compiler import compile_source
from repro.mpi import (
    MEIKO_CS2,
    FusedComm,
    FusionDivergence,
    PerRankScalar,
    run_spmd,
)
from repro.runtime.context import RuntimeContext


# -- PerRankScalar ------------------------------------------------------- #


class TestPerRankScalar:
    def test_collapse_to_plain_scalar_when_uniform(self):
        assert PerRankScalar([2.0, 2.0, 2.0]).collapse() == 2.0
        assert isinstance(PerRankScalar([2.0, 2.0]).collapse(), float)

    def test_stays_per_rank_when_divergent(self):
        s = PerRankScalar([1.0, 2.0]).collapse()
        assert isinstance(s, PerRankScalar)
        assert s.values == (1.0, 2.0)

    @pytest.mark.parametrize("coerce", [
        float, int, bool, complex, np.asarray,
        lambda s: [0, 1][s],                      # __index__
    ])
    def test_unguarded_coercion_diverges(self, coerce):
        s = PerRankScalar([1.0, 2.0])
        with pytest.raises(FusionDivergence):
            coerce(s)


# -- FusedComm ----------------------------------------------------------- #


class TestFusedComm:
    def test_rank_observation_diverges(self):
        comm = FusedComm(3, MEIKO_CS2)
        with pytest.raises(FusionDivergence):
            comm.rank
        with pytest.raises(FusionDivergence):
            comm.time

    def test_point_to_point_diverges(self):
        comm = FusedComm(2, MEIKO_CS2)
        with pytest.raises(FusionDivergence):
            comm.send(1.0, dest=1)
        with pytest.raises(FusionDivergence):
            comm.recv(source=0)

    def test_replicated_collectives_fold_all_ranks(self):
        comm = FusedComm(4, MEIKO_CS2)
        assert comm.allreduce(2.0) == 8.0
        assert comm.allgather(1.5) == [1.5] * 4
        assert comm.bcast(7.0, root=2) == 7.0
        counts = comm.world.collective_counts
        assert counts == {"allreduce": 1, "allgather": 1, "bcast": 1}

    def test_collectives_advance_every_clock_together(self):
        comm = FusedComm(3, MEIKO_CS2)
        comm.allreduce(1.0)
        clocks = comm.world.clocks
        assert clocks[0] > 0
        assert clocks.tolist() == [clocks[0]] * 3


# -- fallback semantics -------------------------------------------------- #


class TestFusionFallback:
    def test_rank_dependent_program_falls_back_to_lockstep(self):
        calls = []
        res = run_spmd(3, MEIKO_CS2, lambda comm: comm.rank,
                       backend="fused", on_fused_fallback=lambda: calls.append(1))
        assert res.backend == "lockstep"
        assert res.results == [0, 1, 2]
        assert calls == [1]

    def test_fallback_matches_pure_lockstep_run(self):
        def prog(comm):
            acc = float(comm.rank + 1)
            acc = comm.sendrecv(acc, dest=(comm.rank + 1) % comm.size,
                                source=(comm.rank - 1) % comm.size)
            return comm.allreduce(acc)

        fused = run_spmd(4, MEIKO_CS2, prog, backend="fused")
        lockstep = run_spmd(4, MEIKO_CS2, prog, backend="lockstep")
        assert fused.results == lockstep.results
        assert fused.times == lockstep.times
        assert fused.messages_sent == lockstep.messages_sent
        assert fused.bytes_sent == lockstep.bytes_sent
        assert fused.collective_counts == lockstep.collective_counts

    def test_rank_agnostic_program_stays_fused(self):
        res = run_spmd(3, MEIKO_CS2, lambda comm: comm.allreduce(1.0),
                       backend="fused")
        assert res.backend == "fused"
        assert res.results == [3.0] * 3

    def test_compiled_divergence_discards_partial_fused_state(self):
        """A program that prints *before* folding a rank-varying scalar
        into distributed data: the fused pass emits output, then diverges
        — the lockstep re-run must not duplicate it, and the result is
        the fallback's."""
        src = """
        disp(42);
        n = 5;
        v = ones(n, 1);
        tic;
        s = sum(v);
        t = toc;
        v = v * t;
        total = sum(v);
        """
        prog = compile_source(src)
        # n=5 over 3 ranks → uneven blocks → per-rank compute times differ
        # → toc yields a rank-varying scalar → scaling a distributed
        # vector by it cannot be fused
        fused = prog.run(nprocs=3, backend="fused")
        assert fused.spmd.backend == "lockstep"
        lockstep = prog.run(nprocs=3, backend="lockstep")
        assert fused.output == lockstep.output
        assert fused.output.count("42") == 1
        assert fused.workspace["total"] == lockstep.workspace["total"]
        assert fused.spmd.times == lockstep.spmd.times

    def test_uniform_branch_on_divergent_scalar_stays_fused(self):
        """`if t > 0` with a rank-varying (all-positive) t: the predicate
        collapses to the same truth value on every rank, so control flow
        is uniform and fusion survives."""
        src = """
        n = 5;
        v = ones(n, 1);
        tic;
        s = sum(v);
        t = toc;
        if t > 0
          v = v * 2;
        end
        total = sum(v);
        """
        res = compile_source(src).run(nprocs=3, backend="fused")
        assert res.spmd.backend == "fused"
        assert res.workspace["total"] == 10.0

    def test_compiled_uniform_toc_stays_fused(self):
        # even split → identical per-rank clocks → toc collapses
        src = "v = ones(8, 1);\ntic;\ns = sum(v);\nt = toc;\n"
        res = compile_source(src).run(nprocs=4, backend="fused")
        assert res.spmd.backend == "fused"
        assert res.workspace["t"] > 0


# -- compiled-program equivalence ---------------------------------------- #

_EXAMPLES = {
    "stencil": """
        n = 24;
        u = zeros(n, 1);
        u(1) = 1;
        for step = 1:10
          u = 0.5 * u + 0.25 * (circshift(u, 1) + circshift(u, -1));
        end
        checksum = sum(u);
        """,
    "cg_like": """
        n = 16;
        A = rand(n, n);
        A = A' * A + n * eye(n);
        b = ones(n, 1);
        x = zeros(n, 1);
        r = b - A * x;
        p = r;
        for it = 1:8
          Ap = A * p;
          alpha = (r' * r) / (p' * Ap);
          x = x + alpha * p;
          rnew = r - alpha * Ap;
          beta = (rnew' * rnew) / (r' * r);
          p = rnew + beta * p;
          r = rnew;
        end
        resid = norm(r);
        """,
    "sort_scan": """
        n = 30;
        v = rand(n, 1);
        w = sort(v);
        c = cumsum(w);
        m = median(v);
        total = sum(c) + m;
        """,
}


class TestCompiledEquivalence:
    @pytest.mark.parametrize("key", sorted(_EXAMPLES))
    @pytest.mark.parametrize("nprocs", [1, 2, 4, 7])
    def test_fused_is_bit_identical_to_lockstep(self, key, nprocs):
        prog = compile_source(_EXAMPLES[key])
        lockstep = prog.run(nprocs=nprocs, backend="lockstep")
        fused = prog.run(nprocs=nprocs, backend="fused")
        assert fused.spmd.backend == "fused"
        assert fused.output == lockstep.output
        assert fused.spmd.times == lockstep.spmd.times
        assert fused.spmd.messages_sent == lockstep.spmd.messages_sent
        assert fused.spmd.bytes_sent == lockstep.spmd.bytes_sent
        assert fused.spmd.collective_counts == lockstep.spmd.collective_counts
        assert set(fused.workspace) == set(lockstep.workspace)
        for name in lockstep.workspace:
            a = np.asarray(lockstep.workspace[name])
            b = np.asarray(fused.workspace[name])
            assert np.array_equal(a, b), name

    def test_peak_local_bytes_replicated_across_ranks(self):
        prog = compile_source("a = rand(12, 12);\ns = sum(sum(a));")
        res = prog.run(nprocs=4, backend="fused")
        assert len(res.peak_local_bytes) == 4
        assert res.peak_local_bytes[0] > 0
        assert res.peak_local_bytes == [res.peak_local_bytes[0]] * 4


# -- guarded-store fast path (satellite) --------------------------------- #


def _store_loop(comm, iterations, alias):
    """Mimic emitted code: ``v = rt.set_element(v, ..., reuse=True)``."""
    rt = RuntimeContext(comm, seed=0)
    v = rt.zeros(iterations, 1)
    keep = v if alias else None
    for i in range(iterations):
        v = rt.set_element(v, [float(i + 1)], float(i), reuse=True)
    copies = rt.set_element_copies
    if keep is not None:
        # the aliased descriptor must still see the original zeros
        rt.to_interp_value(keep)
    else:
        rt.to_interp_value(v)
    return copies


class TestSetElementFastPath:
    @pytest.mark.parametrize("backend", ["lockstep", "fused"])
    def test_unaliased_stores_never_copy(self, backend):
        res = run_spmd(3, MEIKO_CS2, _store_loop, 12, False, backend=backend)
        assert res.backend == backend
        assert all(c == 0 for c in res.results)

    @pytest.mark.parametrize("backend", ["lockstep", "fused"])
    def test_aliased_store_copies_once_then_goes_in_place(self, backend):
        # the first store sees the alias and copies; the rebound variable
        # is then uniquely owned, so the remaining 11 stores mutate in place
        res = run_spmd(3, MEIKO_CS2, _store_loop, 12, True, backend=backend)
        assert all(c == 1 for c in res.results)

    def test_compiled_alias_is_not_clobbered(self):
        """``b = a`` then a scalar store into ``a``: the in-place fast
        path must detect the alias and copy, leaving ``b`` intact."""
        src = """
        a = zeros(3, 3);
        b = a;
        a(2, 2) = 7;
        bsum = sum(sum(b));
        asum = sum(sum(a));
        """
        for backend in ("lockstep", "fused"):
            res = compile_source(src).run(nprocs=2, backend=backend)
            assert res.workspace["bsum"] == 0.0, backend
            assert res.workspace["asum"] == 7.0, backend

    def test_default_reuse_is_functional(self):
        """Without ``reuse=True`` (direct API use), set_element always
        leaves the input descriptor untouched."""
        def prog(comm):
            rt = RuntimeContext(comm, seed=0)
            v = rt.zeros(4, 1)
            w = rt.set_element(v, [1.0], 9.0)
            return (float(np.asarray(rt.to_interp_value(v))[0, 0]),
                    float(np.asarray(rt.to_interp_value(w))[0, 0]))

        res = run_spmd(2, MEIKO_CS2, prog)
        assert res.results[0] == (0.0, 9.0)
