"""Lockstep scheduler: backend selection, determinism, deadlock
detection, and the MPI_Test semantics of ``Request.test()``."""

import numpy as np
import pytest

from repro.mpi import (
    BACKEND_ENV_VAR,
    BACKENDS,
    MEIKO_CS2,
    DeadlockError,
    MpiError,
    resolve_backend,
    run_spmd,
)


class TestBackendSelection:
    def test_default_is_lockstep(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend() == "lockstep"

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "threads")
        assert resolve_backend() == "threads"
        res = run_spmd(2, MEIKO_CS2, lambda comm: comm.rank)
        assert res.backend == "threads"

    def test_argument_overrides_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "threads")
        assert resolve_backend("lockstep") == "lockstep"

    def test_unknown_backend_rejected(self):
        with pytest.raises(MpiError, match="unknown SPMD backend"):
            run_spmd(2, MEIKO_CS2, lambda comm: None, backend="fibers")

    def test_result_records_backend(self):
        for backend in BACKENDS:
            res = run_spmd(3, MEIKO_CS2, lambda comm: comm.rank,
                           backend=backend)
            # reading comm.rank is rank-dependent, so the fused backend
            # transparently falls back to lockstep and records that
            expected = "lockstep" if backend == "fused" else backend
            assert res.backend == expected
            assert res.results == [0, 1, 2]

    def test_fused_records_backend_for_rank_agnostic_program(self):
        res = run_spmd(3, MEIKO_CS2,
                       lambda comm: comm.allreduce(1.0), backend="fused")
        assert res.backend == "fused"
        assert res.results == [3.0, 3.0, 3.0]


class TestDeterminism:
    @staticmethod
    def _prog(comm):
        acc = float(comm.rank + 1)
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        for step in range(4):
            acc = comm.sendrecv(acc, dest=right, source=left, sendtag=step,
                                recvtag=step)
            comm.compute(flops=100 * (comm.rank + 1))
            acc = comm.allreduce(acc)
        return acc

    def test_repeated_lockstep_runs_identical(self):
        a = run_spmd(5, MEIKO_CS2, self._prog, backend="lockstep")
        b = run_spmd(5, MEIKO_CS2, self._prog, backend="lockstep")
        assert a.results == b.results
        assert a.times == b.times
        assert a.messages_sent == b.messages_sent
        assert a.bytes_sent == b.bytes_sent
        assert a.collective_counts == b.collective_counts


class TestDeadlockDetection:
    def test_recv_with_no_sender(self):
        def prog(comm):
            if comm.rank == 0:
                return comm.recv(source=1)
            return None  # rank 1 exits without sending

        with pytest.raises(DeadlockError) as excinfo:
            run_spmd(2, MEIKO_CS2, prog, backend="lockstep")
        message = str(excinfo.value)
        assert "no simulated rank can make progress" in message
        assert "rank 0: blocked in recv(source=1, tag=-1)" in message
        assert "rank 1: done" in message

    def test_mutual_recv_cycle(self):
        def prog(comm):
            return comm.recv(source=1 - comm.rank)

        with pytest.raises(DeadlockError) as excinfo:
            run_spmd(2, MEIKO_CS2, prog, backend="lockstep")
        message = str(excinfo.value)
        assert "rank 0: blocked in recv(source=1" in message
        assert "rank 1: blocked in recv(source=0" in message

    def test_collective_mismatch(self):
        def prog(comm):
            if comm.rank == 0:
                comm.barrier()
            else:
                comm.recv(source=0)

        with pytest.raises(DeadlockError) as excinfo:
            run_spmd(2, MEIKO_CS2, prog, backend="lockstep")
        message = str(excinfo.value)
        assert "barrier (1/2 arrived)" in message
        assert "recv(source=0" in message

    def test_single_rank_recv_never_satisfied(self):
        # p == 1 runs inline on the calling thread; the scheduler must
        # still turn "waits forever" into a report
        with pytest.raises(DeadlockError):
            run_spmd(1, MEIKO_CS2, lambda comm: comm.recv(source=0),
                     backend="lockstep")

    def test_deadlock_is_an_mpi_error(self):
        def prog(comm):
            return comm.recv(source=1 - comm.rank)

        with pytest.raises(MpiError):
            run_spmd(2, MEIKO_CS2, prog, backend="lockstep")


class TestRequestTest:
    """``Request.test()`` must *attempt* completion (MPI_Test), not just
    report whether ``wait()`` already happened."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_irecv_completes_via_test_alone(self, backend):
        def prog(comm):
            if comm.rank == 1:
                comm.send(np.arange(3.0), dest=0, tag=7)
                comm.barrier()
                return None
            request = comm.irecv(source=1, tag=7)
            comm.barrier()  # after this the message is in flight
            # regression: this used to stay False forever unless wait()
            # was called first
            assert request.test()
            return float(request.wait().sum())

        res = run_spmd(2, MEIKO_CS2, prog, backend=backend)
        assert res.results[0] == 3.0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_spin_on_test_makes_progress(self, backend):
        # rank 0 polls before rank 1 has sent: under lockstep the poll
        # must rotate the baton (yield_now) or the sender never runs
        def prog(comm):
            if comm.rank == 0:
                request = comm.irecv(source=1, tag=3)
                spins = 0
                while not request.test():
                    spins += 1
                    assert spins < 100_000, "test() loop never completed"
                return request.wait()
            comm.send("payload", dest=0, tag=3)
            return None

        res = run_spmd(2, MEIKO_CS2, prog, backend=backend)
        assert res.results[0] == "payload"

    def test_test_then_wait_returns_same_value(self):
        def prog(comm):
            if comm.rank == 1:
                comm.send(42, dest=0)
                return None
            request = comm.irecv(source=1)
            while not request.test():
                pass
            # wait() after a successful test() must not re-receive
            return (request.wait(), request.wait())

        res = run_spmd(2, MEIKO_CS2, prog, backend="lockstep")
        assert res.results[0] == (42, 42)

    def test_isend_is_complete_at_post(self):
        def prog(comm):
            if comm.rank == 0:
                request = comm.isend(1.5, dest=1)
                assert request.test()
                return request.wait()
            return comm.recv(source=0)

        res = run_spmd(2, MEIKO_CS2, prog, backend="lockstep")
        assert res.results[1] == 1.5
