"""Lockstep scheduler: backend selection, determinism, deadlock
detection, and the MPI_Test semantics of ``Request.test()``."""

import numpy as np
import pytest

from repro.mpi import (
    BACKEND_ENV_VAR,
    BACKENDS,
    MEIKO_CS2,
    DeadlockError,
    MpiError,
    resolve_backend,
    run_spmd,
)


class TestBackendSelection:
    def test_default_is_lockstep(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend() == "lockstep"

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "threads")
        assert resolve_backend() == "threads"
        res = run_spmd(2, MEIKO_CS2, lambda comm: comm.rank)
        assert res.backend == "threads"

    def test_argument_overrides_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "threads")
        assert resolve_backend("lockstep") == "lockstep"

    def test_unknown_backend_rejected(self):
        with pytest.raises(MpiError, match="unknown SPMD backend"):
            run_spmd(2, MEIKO_CS2, lambda comm: None, backend="fibers")

    def test_result_records_backend(self):
        for backend in BACKENDS:
            res = run_spmd(3, MEIKO_CS2, lambda comm: comm.rank,
                           backend=backend)
            # reading comm.rank is rank-dependent, so the fused backend
            # transparently falls back to lockstep and records that
            expected = "lockstep" if backend == "fused" else backend
            assert res.backend == expected
            assert res.results == [0, 1, 2]

    def test_fused_records_backend_for_rank_agnostic_program(self):
        res = run_spmd(3, MEIKO_CS2,
                       lambda comm: comm.allreduce(1.0), backend="fused")
        assert res.backend == "fused"
        assert res.results == [3.0, 3.0, 3.0]


class TestDeterminism:
    @staticmethod
    def _prog(comm):
        acc = float(comm.rank + 1)
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        for step in range(4):
            acc = comm.sendrecv(acc, dest=right, source=left, sendtag=step,
                                recvtag=step)
            comm.compute(flops=100 * (comm.rank + 1))
            acc = comm.allreduce(acc)
        return acc

    def test_repeated_lockstep_runs_identical(self):
        a = run_spmd(5, MEIKO_CS2, self._prog, backend="lockstep")
        b = run_spmd(5, MEIKO_CS2, self._prog, backend="lockstep")
        assert a.results == b.results
        assert a.times == b.times
        assert a.messages_sent == b.messages_sent
        assert a.bytes_sent == b.bytes_sent
        assert a.collective_counts == b.collective_counts


class TestDeadlockDetection:
    def test_recv_with_no_sender(self):
        def prog(comm):
            if comm.rank == 0:
                return comm.recv(source=1)
            return None  # rank 1 exits without sending

        with pytest.raises(DeadlockError) as excinfo:
            run_spmd(2, MEIKO_CS2, prog, backend="lockstep")
        message = str(excinfo.value)
        assert "no simulated rank can make progress" in message
        assert "rank 0: blocked in recv(source=1, tag=-1)" in message
        assert "rank 1: done" in message

    def test_mutual_recv_cycle(self):
        def prog(comm):
            return comm.recv(source=1 - comm.rank)

        with pytest.raises(DeadlockError) as excinfo:
            run_spmd(2, MEIKO_CS2, prog, backend="lockstep")
        message = str(excinfo.value)
        assert "rank 0: blocked in recv(source=1" in message
        assert "rank 1: blocked in recv(source=0" in message

    def test_collective_mismatch(self):
        def prog(comm):
            if comm.rank == 0:
                comm.barrier()
            else:
                comm.recv(source=0)

        with pytest.raises(DeadlockError) as excinfo:
            run_spmd(2, MEIKO_CS2, prog, backend="lockstep")
        message = str(excinfo.value)
        assert "barrier (1/2 arrived)" in message
        assert "recv(source=0" in message

    def test_single_rank_recv_never_satisfied(self):
        # p == 1 runs inline on the calling thread; the scheduler must
        # still turn "waits forever" into a report
        with pytest.raises(DeadlockError):
            run_spmd(1, MEIKO_CS2, lambda comm: comm.recv(source=0),
                     backend="lockstep")

    def test_deadlock_is_an_mpi_error(self):
        def prog(comm):
            return comm.recv(source=1 - comm.rank)

        with pytest.raises(MpiError):
            run_spmd(2, MEIKO_CS2, prog, backend="lockstep")


class TestRequestTest:
    """``Request.test()`` must *attempt* completion (MPI_Test), not just
    report whether ``wait()`` already happened."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_irecv_completes_via_test_alone(self, backend):
        def prog(comm):
            if comm.rank == 1:
                comm.send(np.arange(3.0), dest=0, tag=7)
                comm.barrier()
                return None
            request = comm.irecv(source=1, tag=7)
            comm.barrier()  # after this the message is in flight
            # regression: this used to stay False forever unless wait()
            # was called first
            assert request.test()
            return float(request.wait().sum())

        res = run_spmd(2, MEIKO_CS2, prog, backend=backend)
        assert res.results[0] == 3.0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_spin_on_test_makes_progress(self, backend):
        # rank 0 polls before rank 1 has sent: under lockstep the poll
        # must rotate the baton (yield_now) or the sender never runs
        def prog(comm):
            if comm.rank == 0:
                request = comm.irecv(source=1, tag=3)
                spins = 0
                while not request.test():
                    spins += 1
                    assert spins < 100_000, "test() loop never completed"
                return request.wait()
            comm.send("payload", dest=0, tag=3)
            return None

        res = run_spmd(2, MEIKO_CS2, prog, backend=backend)
        assert res.results[0] == "payload"

    def test_test_then_wait_returns_same_value(self):
        def prog(comm):
            if comm.rank == 1:
                comm.send(42, dest=0)
                return None
            request = comm.irecv(source=1)
            while not request.test():
                pass
            # wait() after a successful test() must not re-receive
            return (request.wait(), request.wait())

        res = run_spmd(2, MEIKO_CS2, prog, backend="lockstep")
        assert res.results[0] == (42, 42)

    def test_isend_is_complete_at_post(self):
        def prog(comm):
            if comm.rank == 0:
                request = comm.isend(1.5, dest=1)
                assert request.test()
                return request.wait()
            return comm.recv(source=0)

        res = run_spmd(2, MEIKO_CS2, prog, backend="lockstep")
        assert res.results[1] == 1.5


class TestWaitGraphTruncation:
    """Deadlock/watchdog reports stay readable (and cheap) at P=1024."""

    def _scheduler(self, nprocs):
        from repro.mpi.scheduler import BLOCKED, LockstepScheduler
        sched = LockstepScheduler(nprocs)
        for rank in range(nprocs):
            sched._state[rank] = BLOCKED
            # a recv chain with one genuine cycle at the front:
            # 0 <-> 1, everyone else waits on its predecessor
            source = 1 if rank == 0 else rank - 1
            sched._reason[rank] = ("recv", source, 7)
        return sched

    def test_small_world_report_is_unchanged(self):
        sched = self._scheduler(4)
        report = sched._wait_graph_locked()
        # every rank listed, no truncation markers
        for rank in range(4):
            assert f"rank {rank}: blocked in recv" in report
        assert "more blocked ranks" not in report
        assert "states:" not in report

    def test_p1024_report_is_truncated(self):
        from repro.mpi.comm import WAIT_REPORT_LIMIT

        sched = self._scheduler(1024)
        report = sched._wait_graph_locked()
        assert "recv cycle: 0 -> 1 -> 0" in report
        assert f"... and {1024 - 2 - WAIT_REPORT_LIMIT} more " \
            "blocked ranks" in report
        assert "states: blocked=1024" in report
        # bounded: cycle (2) + limit + cycle line + ellipsis + census
        assert len(report.splitlines()) <= WAIT_REPORT_LIMIT + 6
        assert "rank 1023" not in report

    def test_p1024_report_counts_non_blocked_states(self):
        from repro.mpi.scheduler import DONE
        sched = self._scheduler(1024)
        for rank in range(1000, 1024):
            sched._state[rank] = DONE
            sched._reason[rank] = None
        report = sched._wait_graph_locked()
        assert "states: blocked=1000, done=24" in report

    def test_find_wait_cycle(self):
        from repro.mpi.comm import find_wait_cycle

        assert find_wait_cycle({}) == []
        assert find_wait_cycle({0: 1, 1: 0}) == [0, 1]
        assert find_wait_cycle({0: 1, 1: 2, 2: 3}) == []  # chain, no cycle
        # cycle not containing the lowest waiter still found
        assert find_wait_cycle({0: 5, 5: 6, 6: 5}) == [5, 6]
        # self-wait is a 1-cycle
        assert find_wait_cycle({3: 3}) == [3]

    def test_world_wait_snapshot_small_is_unchanged(self):
        from repro.mpi.comm import World

        world = World(4, MEIKO_CS2)
        world._recv_waiting = {0: (1, 5), 2: (3, -1)}
        snap = world.wait_snapshot()
        assert "rank 0: blocked in recv(source=1, tag=5)" in snap
        assert "rank 2: blocked in recv(source=3, tag=-1)" in snap
        assert "more blocked ranks" not in snap

    def test_world_wait_snapshot_p1024_truncates(self):
        from repro.mpi import FATTREE_CLUSTER
        from repro.mpi.comm import WAIT_REPORT_LIMIT, World

        world = World(1024, FATTREE_CLUSTER)
        world._recv_waiting = {r: ((r + 1) % 1024, 0) for r in range(1024)}
        snap = world.wait_snapshot()
        assert "recv cycle:" in snap  # the full ring is one big cycle
        assert "more blocked ranks" not in snap or "... and" in snap
        # a ring of 1024 is all cycle: the renderer shows the cycle and
        # nothing is left over to truncate; break the ring to check the
        # waiter cap
        world._recv_waiting = {r: (1023, 0) for r in range(1023)}
        snap = world.wait_snapshot()
        shown = snap.count("blocked in recv")
        assert shown == WAIT_REPORT_LIMIT
        assert f"... and {1023 - WAIT_REPORT_LIMIT} more blocked ranks" \
            in snap

    def test_live_deadlock_at_p64_reports_cycle(self):
        def prog(comm):
            # every rank waits on its right neighbour: a 64-cycle
            return comm.recv(source=(comm.rank + 1) % comm.size)

        from repro.mpi import FATTREE_CLUSTER

        with pytest.raises(DeadlockError) as excinfo:
            run_spmd(64, FATTREE_CLUSTER, prog, backend="lockstep")
        message = str(excinfo.value)
        assert "no simulated rank can make progress" in message
        assert "recv cycle:" in message
        assert len(message.splitlines()) < 100
