"""Point-to-point wildcards, statuses, and ordering semantics."""

import numpy as np
import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, MEIKO_CS2, Status, run_spmd


class TestWildcards:
    def test_any_source_receives_from_someone(self):
        def prog(comm):
            if comm.rank == 0:
                got = {comm.recv(source=ANY_SOURCE) for _ in range(3)}
                return got
            comm.send(comm.rank * 11, dest=0)
            return None

        res = run_spmd(4, MEIKO_CS2, prog)
        assert res.results[0] == {11, 22, 33}

    def test_any_tag(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("x", dest=1, tag=42)
                return None
            return comm.recv(source=0, tag=ANY_TAG)

        assert run_spmd(2, MEIKO_CS2, prog).results[1] == "x"

    def test_status_filled(self):
        def prog(comm):
            if comm.rank == 2:
                comm.send(np.zeros(5), dest=0, tag=9)
                return None
            if comm.rank == 0:
                status = Status()
                comm.recv(source=ANY_SOURCE, tag=ANY_TAG, status=status)
                return (status.source, status.tag, status.nbytes)
            return None

        source, tag, nbytes = run_spmd(3, MEIKO_CS2, prog).results[0]
        assert (source, tag, nbytes) == (2, 9, 40)


class TestOrdering:
    def test_fifo_per_sender_per_tag(self):
        def prog(comm):
            if comm.rank == 0:
                for k in range(5):
                    comm.send(k, dest=1, tag=3)
                return None
            return [comm.recv(source=0, tag=3) for _ in range(5)]

        assert run_spmd(2, MEIKO_CS2, prog).results[1] == [0, 1, 2, 3, 4]

    def test_ring_pipeline(self):
        def prog(comm):
            token = comm.rank
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            for _ in range(comm.size):
                token = comm.sendrecv(token, dest=right, source=left)
            return token

        res = run_spmd(5, MEIKO_CS2, prog)
        # after size hops the token returns home
        assert res.results == [0, 1, 2, 3, 4]

    def test_numpy_payloads_not_aliased(self):
        def prog(comm):
            if comm.rank == 0:
                data = np.ones(4)
                comm.send(data, dest=1)
                data[:] = -1  # sender mutates after send
                comm.barrier()
                return None
            comm.barrier()
            got = comm.recv(source=0)
            return float(got.sum())

        # NOTE: in-process message passing shares the object; senders in
        # this runtime never mutate after send (values are immutable),
        # and this test documents the actual aliasing behaviour.
        res = run_spmd(2, MEIKO_CS2, prog)
        assert res.results[1] in (4.0, -4.0)


class TestScanOp:
    def test_scan_with_arrays(self):
        def prog(comm):
            return comm.scan(np.full(2, float(comm.rank + 1)))

        res = run_spmd(3, MEIKO_CS2, prog)
        np.testing.assert_array_equal(res.results[2], [6.0, 6.0])


class TestArgumentValidation:
    """Negative tags collide with the ANY_TAG/ANY_SOURCE sentinels (-1):
    a send posted with tag=-1 would match *every* wildcard recv.  All
    entry points reject them eagerly with a clear diagnostic."""

    def test_send_rejects_negative_tag(self):
        from repro.mpi import MpiError

        def prog(comm):
            comm.send(1, dest=(comm.rank + 1) % comm.size, tag=-1)

        with pytest.raises(MpiError, match="ANY_TAG sentinel"):
            run_spmd(2, MEIKO_CS2, prog)

    def test_send_rejects_non_integer_tag(self):
        from repro.mpi import MpiError

        def prog(comm):
            comm.send(1, dest=(comm.rank + 1) % comm.size, tag=1.5)

        with pytest.raises(MpiError, match="invalid tag"):
            run_spmd(2, MEIKO_CS2, prog)

    def test_recv_rejects_negative_non_sentinel_tag(self):
        from repro.mpi import MpiError

        def prog(comm):
            comm.recv(source=0, tag=-7)

        with pytest.raises(MpiError, match="invalid tag"):
            run_spmd(2, MEIKO_CS2, prog)

    def test_recv_any_tag_sentinel_still_allowed(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("ok", dest=1, tag=9)
                return None
            return comm.recv(source=0, tag=ANY_TAG)

        assert run_spmd(2, MEIKO_CS2, prog).results[1] == "ok"

    def test_irecv_validates_at_post_time(self):
        from repro.mpi import MpiError

        def prog(comm):
            comm.irecv(source=0, tag=-2)  # never waited on

        with pytest.raises(MpiError, match="invalid tag"):
            run_spmd(2, MEIKO_CS2, prog)

    def test_recv_rejects_out_of_range_source(self):
        from repro.mpi import MpiError

        def prog(comm):
            comm.recv(source=99)

        with pytest.raises(MpiError, match="invalid source"):
            run_spmd(2, MEIKO_CS2, prog)

    def test_sendrecv_validates_all_four(self):
        from repro.mpi import MpiError

        def prog(comm):
            comm.sendrecv(1, dest=comm.rank, sendtag=-3)

        with pytest.raises(MpiError, match="invalid tag"):
            run_spmd(2, MEIKO_CS2, prog)
