"""Simulated-MPI communicator tests."""

import numpy as np
import pytest

from repro.errors import MpiError
from repro.mpi import (
    MAX,
    MEIKO_CS2,
    MIN,
    PROD,
    SPARC20_CLUSTER,
    SUM,
    run_spmd,
)


def spmd(p, fn, machine=MEIKO_CS2):
    return run_spmd(p, machine, fn)


class TestPointToPoint:
    def test_send_recv(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send({"x": 42}, dest=1, tag=5)
                return None
            if comm.rank == 1:
                return comm.recv(source=0, tag=5)
            return None

        res = spmd(2, prog)
        assert res.results[1] == {"x": 42}

    def test_tag_matching(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("a", dest=1, tag=1)
                comm.send("b", dest=1, tag=2)
                return None
            first = comm.recv(source=0, tag=2)
            second = comm.recv(source=0, tag=1)
            return (first, second)

        res = spmd(2, prog)
        assert res.results[1] == ("b", "a")

    def test_recv_advances_clock_past_arrival(self):
        def prog(comm):
            if comm.rank == 0:
                comm.compute(flops=10_000_000)  # sender is busy first
                comm.send("late", dest=1)
                return comm.time
            comm.recv(source=0)
            return comm.time

        res = spmd(2, prog)
        assert res.times[1] >= res.times[0] - 1e-12

    def test_sendrecv_exchange(self):
        def prog(comm):
            other = 1 - comm.rank
            return comm.sendrecv(comm.rank * 10, dest=other, source=other)

        res = spmd(2, prog)
        assert res.results == [10, 0]

    def test_send_to_self_buffered(self):
        # MPI allows a rank to message itself: the send buffers through
        # the local queue and a later recv completes immediately
        def prog(comm):
            comm.send(comm.rank * 10 + 1, dest=comm.rank, tag=3)
            return comm.recv(source=comm.rank, tag=3)

        res = spmd(2, prog)
        assert res.results == [1, 11]
        assert res.messages_sent == 2

    def test_send_to_self_preserves_ordering(self):
        def prog(comm):
            comm.send("first", dest=comm.rank)
            comm.send("second", dest=comm.rank)
            return (comm.recv(source=comm.rank), comm.recv(source=comm.rank))

        res = spmd(1, prog)
        assert res.results[0] == ("first", "second")

    def test_invalid_destination(self):
        def prog(comm):
            comm.send(1, dest=99)

        with pytest.raises(MpiError):
            spmd(2, prog)

    def test_irecv_wait(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(7, dest=1)
                return None
            req = comm.irecv(source=0)
            return req.wait()

        assert spmd(2, prog).results[1] == 7


class TestCollectives:
    @pytest.mark.parametrize("p", [1, 2, 4, 7])
    def test_bcast(self, p):
        def prog(comm):
            payload = "hello" if comm.rank == 0 else None
            return comm.bcast(payload, root=0)

        res = spmd(p, prog)
        assert all(r == "hello" for r in res.results)

    def test_bcast_nonzero_root(self):
        def prog(comm):
            payload = comm.rank if comm.rank == 2 else None
            return comm.bcast(payload, root=2)

        assert all(r == 2 for r in spmd(4, prog).results)

    @pytest.mark.parametrize("op,expected", [
        (SUM, 0 + 1 + 2 + 3), (PROD, 0), (MAX, 3), (MIN, 0)])
    def test_allreduce_ops(self, op, expected):
        def prog(comm):
            return comm.allreduce(float(comm.rank), op=op)

        res = spmd(4, prog)
        assert all(r == expected for r in res.results)

    def test_reduce_only_root_gets_value(self):
        def prog(comm):
            return comm.reduce(1.0, op=SUM, root=0)

        res = spmd(4, prog)
        assert res.results[0] == 4.0
        assert all(r is None for r in res.results[1:])

    def test_allreduce_arrays(self):
        def prog(comm):
            return comm.allreduce(np.full(3, float(comm.rank)))

        res = spmd(4, prog)
        np.testing.assert_array_equal(res.results[0], [6.0, 6.0, 6.0])

    def test_allgather_ordered_by_rank(self):
        def prog(comm):
            return comm.allgather(comm.rank * 2)

        res = spmd(5, prog)
        assert res.results[3] == [0, 2, 4, 6, 8]

    def test_gather(self):
        def prog(comm):
            return comm.gather(chr(ord("a") + comm.rank), root=1)

        res = spmd(3, prog)
        assert res.results[1] == ["a", "b", "c"]
        assert res.results[0] is None

    def test_scatter(self):
        def prog(comm):
            items = [i * i for i in range(comm.size)] \
                if comm.rank == 0 else None
            return comm.scatter(items, root=0)

        res = spmd(4, prog)
        assert res.results == [0, 1, 4, 9]

    def test_alltoall(self):
        def prog(comm):
            return comm.alltoall(
                [f"{comm.rank}->{d}" for d in range(comm.size)])

        res = spmd(3, prog)
        assert res.results[1] == ["0->1", "1->1", "2->1"]

    def test_scan_inclusive(self):
        def prog(comm):
            return comm.scan(float(comm.rank + 1), op=SUM)

        res = spmd(4, prog)
        assert res.results == [1.0, 3.0, 6.0, 10.0]

    def test_barrier_synchronizes_clocks(self):
        def prog(comm):
            if comm.rank == 0:
                comm.compute(flops=50_000_000)
            comm.barrier()
            return comm.time

        res = spmd(4, prog)
        assert max(res.times) - min(res.times) < 1e-9

    def test_collective_ordering_multiple_rounds(self):
        def prog(comm):
            total = 0.0
            for k in range(10):
                total += comm.allreduce(float(comm.rank + k))
            return total

        res = spmd(3, prog)
        assert len(set(res.results)) == 1


class TestVirtualTime:
    def test_compute_advances_clock(self):
        res = spmd(1, lambda c: c.compute(flops=65_000_000) or c.time)
        assert abs(res.times[0] - 1.0) < 0.05  # ~65 Mflop/s model

    def test_communication_costs_scale_with_size(self):
        def prog_small(comm):
            comm.bcast(np.zeros(10) if comm.rank == 0 else None)
            return comm.time

        def prog_big(comm):
            comm.bcast(np.zeros(1_000_000) if comm.rank == 0 else None)
            return comm.time

        small = spmd(4, prog_small).elapsed
        big = spmd(4, prog_big).elapsed
        assert big > small * 5

    def test_cluster_slower_than_meiko_across_nodes(self):
        def prog(comm):
            comm.allgather(np.zeros(4096))
            return comm.time

        meiko = spmd(8, prog, MEIKO_CS2).elapsed
        cluster = spmd(8, prog, SPARC20_CLUSTER).elapsed
        assert cluster > meiko * 3

    def test_cluster_fast_within_one_node(self):
        def prog(comm):
            comm.allgather(np.zeros(4096))
            return comm.time

        within = spmd(4, prog, SPARC20_CLUSTER).elapsed
        across = spmd(8, prog, SPARC20_CLUSTER).elapsed
        assert across > within * 5

    def test_clock_cannot_go_backwards(self):
        def prog(comm):
            comm.advance(-1.0)

        with pytest.raises(MpiError):
            spmd(1, prog)


class TestFailures:
    def test_error_propagates_and_unblocks_peers(self):
        def prog(comm):
            if comm.rank == 1:
                raise RuntimeError("rank 1 died")
            comm.barrier()

        with pytest.raises(MpiError, match="rank 1"):
            spmd(4, prog)

    def test_error_while_peer_waits_in_recv(self):
        def prog(comm):
            if comm.rank == 0:
                raise ValueError("no message coming")
            comm.recv(source=0)

        with pytest.raises(MpiError):
            spmd(2, prog)

    def test_too_many_ranks_for_machine(self):
        with pytest.raises(MpiError):
            spmd(64, lambda c: None)

    def test_statistics_recorded(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(100), dest=1)
            elif comm.rank == 1:
                comm.recv(source=0)
            comm.barrier()

        res = spmd(2, prog)
        assert res.messages_sent == 1
        assert res.bytes_sent == 800
        assert res.collectives == 1
