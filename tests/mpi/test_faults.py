"""Chaos differential suite: deterministic fault injection + hardening.

Three properties anchor everything here:

1. **Zero-fault transparency** — a chaos run whose plan injects nothing
   is bit-identical to the baseline (results, virtual clocks, message
   and byte counts) on every backend.
2. **Determinism** — an identical plan+seed produces the identical
   fault schedule, and therefore the identical structured diagnostic
   (exception type *and* message), on every run and every backend.
3. **Structured failure** — every injected fault class surfaces as a
   typed diagnostic (never a hang, never a silently wrong answer).

No test here may rely on host waits longer than 30 s; the watchdog
tests use ~1 s budgets.
"""

import pytest

import numpy as np

from repro.errors import (
    MpiCorruptionError,
    MpiError,
    MpiTimeoutError,
    RankCrashedError,
    SpmdWatchdogError,
)
from repro.mpi import MEIKO_CS2, FaultPlan, load_plan, run_spmd
from repro.mpi.faults import FaultState, corrupt_payload, payload_checksum
from repro.mpi.scheduler import DeadlockError

BACKENDS = ["lockstep", "threads"]


# ------------------------------------------------------------------------- #
# reference rank programs
# ------------------------------------------------------------------------- #


def ring(comm):
    """Each rank passes a token one hop right, then allreduces."""
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    comm.send(comm.rank * 10.0, dest=right, tag=1)
    got = comm.recv(source=left, tag=1)
    total = comm.allreduce(got)
    return total


def one_message(comm):
    if comm.rank == 0:
        comm.send(np.arange(8, dtype=float), dest=1, tag=5)
        return None
    got = comm.recv(source=0, tag=5)
    return float(got.sum())


# ------------------------------------------------------------------------- #
# plan parsing
# ------------------------------------------------------------------------- #


class TestPlanParsing:
    def test_full_grammar(self):
        plan = FaultPlan.parse(
            "seed=7; timeout=0.5\n"
            "drop rank=0 dst=1 tag=3 p=0.5 count=2  # lossy wire\n"
            "delay by=0.002 after=0.001\n"
            "dup tag=9\n"
            "bitflip src=2\n"
            "crash rank=2 op=allreduce step=3\n")
        assert plan.seed == 7
        assert plan.virtual_timeout == 0.5
        kinds = [r.kind for r in plan.rules]
        assert kinds == ["drop", "delay", "duplicate", "corrupt", "crash"]
        drop = plan.rules[0]
        assert (drop.rank, drop.dest, drop.tag) == (0, 1, 3)
        assert drop.probability == 0.5 and drop.count == 2
        assert plan.rules[1].delay == 0.002
        assert plan.rules[1].t_min == 0.001
        crash = plan.rules[4]
        assert (crash.rank, crash.op, crash.step) == (2, "allreduce", 3)

    def test_timeout_only_plan_is_not_chaotic(self):
        plan = FaultPlan.parse("timeout=2.0")
        assert not plan.has_faults
        assert plan.virtual_timeout == 2.0

    def test_wildcard_values_are_unscoped(self):
        plan = FaultPlan.parse("drop rank=* tag=any")
        assert plan.rules[0].rank is None and plan.rules[0].tag is None

    @pytest.mark.parametrize("bad,match", [
        ("exploded rank=0", "unknown fault kind"),
        ("drop rank=zero", "needs an integer"),
        ("drop frobnicate=1", "unknown key"),
        ("crash op=send", "explicit rank"),
        ("delay rank=0", "by=<seconds>"),
        ("drop p=1.5", "probability"),
        ("timeout=-1", "must be positive"),
        ("retrograde=9", "unknown directive"),
    ])
    def test_rejects_malformed_plans(self, bad, match):
        with pytest.raises(MpiError, match=match):
            FaultPlan.parse(bad)

    def test_load_plan_passthrough_and_inline(self):
        assert load_plan(None) is None
        assert load_plan("") is None
        plan = FaultPlan.parse("drop tag=1")
        assert load_plan(plan) is plan
        assert load_plan("drop tag=1").rules[0].tag == 1

    def test_load_plan_from_file(self, tmp_path):
        path = tmp_path / "plan.txt"
        path.write_text("seed=3\ncrash rank=1 op=recv\n")
        for spec in (str(path), f"@{path}"):
            plan = load_plan(spec)
            assert plan.seed == 3
            assert plan.rules[0].kind == "crash"
        with pytest.raises(MpiError, match="cannot read"):
            load_plan("@/nonexistent/plan")

    def test_describe_round_trips_the_scope(self):
        plan = FaultPlan.parse("seed=5; drop rank=1 tag=2 count=3")
        text = plan.describe()
        assert "seed=5" in text and "drop" in text and "tag=2" in text


# ------------------------------------------------------------------------- #
# payload integrity primitives
# ------------------------------------------------------------------------- #


class TestIntegrityPrimitives:
    @pytest.mark.parametrize("payload", [
        1.5, 7, True, "hello", np.arange(6, dtype=float)])
    def test_corruption_changes_checksum(self, payload):
        corrupted, ok = corrupt_payload(payload, salt=13)
        assert ok
        assert payload_checksum(corrupted) != payload_checksum(payload)

    def test_opaque_payloads_left_intact(self):
        obj = object()
        same, ok = corrupt_payload(obj, salt=1)
        assert not ok and same is obj

    def test_corruption_is_deterministic(self):
        a, _ = corrupt_payload(np.arange(16, dtype=float), salt=99)
        b, _ = corrupt_payload(np.arange(16, dtype=float), salt=99)
        np.testing.assert_array_equal(a, b)

    def test_does_not_mutate_the_original(self):
        arr = np.zeros(4)
        corrupt_payload(arr, salt=3)
        np.testing.assert_array_equal(arr, np.zeros(4))


# ------------------------------------------------------------------------- #
# zero-fault transparency
# ------------------------------------------------------------------------- #


def _fingerprint(res):
    return (res.results, res.times, res.messages_sent, res.bytes_sent,
            res.collectives, res.collective_counts)


class TestZeroFaultTransparency:
    @pytest.mark.parametrize("backend", BACKENDS + ["fused"])
    def test_timeout_only_plan_is_bit_identical(self, backend):
        base = run_spmd(4, MEIKO_CS2, ring, backend=backend)
        chaos = run_spmd(4, MEIKO_CS2, ring, backend=backend,
                         fault_plan="timeout=1000")
        assert _fingerprint(base) == _fingerprint(chaos)
        assert chaos.backend == base.backend
        assert chaos.fault_events == []

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_never_matching_rules_do_not_perturb_accounting(self, backend):
        # checksums are computed (the plan is "active") but cost host
        # time only: modeled numbers cannot move
        base = run_spmd(4, MEIKO_CS2, ring, backend=backend)
        chaos = run_spmd(4, MEIKO_CS2, ring, backend=backend,
                         fault_plan="seed=9; drop tag=777")
        assert _fingerprint(base) == _fingerprint(chaos)
        assert chaos.fault_events == []


# ------------------------------------------------------------------------- #
# the fault classes, each with a deterministic structured diagnostic
# ------------------------------------------------------------------------- #


def _diagnostic(plan, prog, nprocs=2, backend="lockstep"):
    with pytest.raises(MpiError) as info:
        run_spmd(nprocs, MEIKO_CS2, prog, backend=backend, fault_plan=plan)
    return info.value


class TestDropFaults:
    def test_drop_starves_the_receiver_into_deadlock(self):
        exc = _diagnostic("drop rank=0 dst=1 tag=5", one_message)
        assert isinstance(exc, DeadlockError)
        assert "recv(source=0, tag=5)" in str(exc)

    def test_drop_with_timeout_classifies_as_timeout(self):
        exc = _diagnostic("timeout=0.5; drop rank=0 dst=1 tag=5",
                          one_message)
        assert isinstance(exc, MpiTimeoutError)
        assert exc.wait_graph is not None
        assert "recv(source=0, tag=5)" in exc.wait_graph

    def test_sender_still_charged_for_dropped_message(self):
        # the sender cannot tell the wire lost the payload: messages and
        # bytes count exactly as in the healthy run
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.arange(8, dtype=float), dest=1, tag=5)
            return None

        base = run_spmd(2, MEIKO_CS2, prog)
        # drop everything rank 0 sends; no one ever recvs, so the run
        # completes and we can compare accounting directly
        chaos = run_spmd(2, MEIKO_CS2, prog,
                         fault_plan="drop rank=0")
        assert chaos.messages_sent == base.messages_sent
        assert chaos.bytes_sent == base.bytes_sent
        assert chaos.times == base.times
        assert chaos.fault_events == ["drop rank 0->rank 1 tag=5 (64 B)"]

    def test_identical_diagnostic_on_consecutive_runs(self):
        plan = "seed=11; timeout=0.25; drop rank=0 dst=1 tag=5"
        first = _diagnostic(plan, one_message)
        second = _diagnostic(plan, one_message)
        assert type(first) is type(second)
        assert str(first) == str(second)


class TestDelayFaults:
    def test_delay_shifts_the_receiver_clock(self):
        base = run_spmd(2, MEIKO_CS2, one_message)
        chaos = run_spmd(2, MEIKO_CS2, one_message,
                         fault_plan="delay by=0.25 rank=0")
        assert chaos.results == base.results  # data intact
        assert chaos.times[1] == pytest.approx(base.times[1] + 0.25)
        assert chaos.times[0] == base.times[0]  # sender unaffected

    def test_delay_beyond_timeout_raises(self):
        exc = _diagnostic("timeout=0.1; delay by=0.5 rank=0", one_message)
        assert isinstance(exc, MpiTimeoutError)
        assert "timed out in recv(source=0, tag=5)" in str(exc)

    def test_delays_stack_across_matching_rules(self):
        chaos = run_spmd(2, MEIKO_CS2, one_message,
                         fault_plan="delay by=0.1 rank=0; "
                                    "delay by=0.2 rank=0")
        base = run_spmd(2, MEIKO_CS2, one_message)
        assert chaos.times[1] == pytest.approx(
            base.times[1] + 0.30000000000000004)


class TestDuplicateFaults:
    def test_duplicate_delivers_twice_and_counts_the_extra_wire(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(3.5, dest=1, tag=2)
                return None
            return (comm.recv(source=0, tag=2), comm.recv(source=0, tag=2))

        base_msgs = run_spmd(2, MEIKO_CS2, one_message).messages_sent
        res = run_spmd(2, MEIKO_CS2, prog, fault_plan="dup rank=0 tag=2")
        assert res.results[1] == (3.5, 3.5)
        assert res.messages_sent == base_msgs + 1
        assert res.fault_events == ["duplicate rank 0->rank 1 tag=2"]

    def test_unconsumed_duplicate_is_reported(self):
        exc = _diagnostic("dup rank=0 tag=5", one_message)
        assert "unconsumed messages after faulted run" in str(exc)
        assert "rank 0->rank 1 tag=5 x1" in str(exc)


class TestCorruptFaults:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_corruption_is_detected_not_silent(self, backend):
        exc = _diagnostic("corrupt rank=0", one_message, backend=backend)
        assert isinstance(exc, MpiCorruptionError)
        assert "failed its integrity check" in str(exc)
        assert "rank 0 to rank 1" in str(exc)

    def test_identical_diagnostic_on_consecutive_runs(self):
        first = _diagnostic("seed=4; corrupt rank=0", one_message)
        second = _diagnostic("seed=4; corrupt rank=0", one_message)
        assert type(first) is type(second)
        assert str(first) == str(second)


class TestCrashFaults:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_crash_surfaces_with_rank_and_op(self, backend):
        exc = _diagnostic("crash rank=1 op=recv", one_message,
                          backend=backend)
        assert isinstance(exc, RankCrashedError)
        assert "rank 1 crashed at recv" in str(exc)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_crash_mid_collective_unblocks_peers(self, backend):
        # 3 ranks allreduce in a loop; rank 2 dies at its 3rd allreduce.
        # Peers parked in the rendezvous must unwind, not hang.
        def prog(comm):
            total = 0.0
            for _ in range(5):
                total += comm.allreduce(1.0)
            return total

        exc = _diagnostic("crash rank=2 op=allreduce step=3", prog,
                          nprocs=3, backend=backend)
        assert isinstance(exc, RankCrashedError)
        assert "occurrence 3" in str(exc)

    def test_crash_schedule_identical_across_backends(self):
        messages = set()
        for backend in BACKENDS:
            exc = _diagnostic("seed=2; crash rank=1 op=send step=2",
                              lambda comm: [comm.sendrecv(
                                  comm.rank, dest=1 - comm.rank)
                                  for _ in range(4)],
                              backend=backend)
            messages.add((type(exc).__name__, str(exc)))
        assert len(messages) == 1

    def test_probabilistic_crash_is_seed_stable(self):
        plan = "seed=21; crash rank=0 op=send p=0.5"

        def prog(comm):
            if comm.rank == 0:
                for i in range(6):
                    comm.send(i, dest=1, tag=i)
            else:
                for i in range(6):
                    comm.recv(source=0, tag=i)

        outcomes = set()
        for _ in range(2):
            try:
                run_spmd(2, MEIKO_CS2, prog, fault_plan=plan)
                outcomes.add("completed")
            except MpiError as exc:
                outcomes.add(f"{type(exc).__name__}: {exc}")
        assert len(outcomes) == 1


# ------------------------------------------------------------------------- #
# watchdog + abort hardening
# ------------------------------------------------------------------------- #


class TestWatchdog:
    def test_threads_backend_raises_instead_of_hanging(self):
        # a cross deadlock: both ranks recv first.  The threads backend
        # cannot detect this; only the watchdog saves CI.
        def prog(comm):
            got = comm.recv(source=1 - comm.rank, tag=1)
            comm.send(comm.rank, dest=1 - comm.rank, tag=1)
            return got

        with pytest.raises(SpmdWatchdogError) as info:
            run_spmd(2, MEIKO_CS2, prog, backend="threads", watchdog=1.0)
        assert "watchdog expired after 1s" in str(info.value)
        # the post-mortem names both blocked ranks
        assert "rank 0: blocked in recv" in str(info.value)
        assert "rank 1: blocked in recv" in str(info.value)

    def test_lockstep_detects_the_same_deadlock_first(self):
        def prog(comm):
            got = comm.recv(source=1 - comm.rank, tag=1)
            comm.send(comm.rank, dest=1 - comm.rank, tag=1)
            return got

        with pytest.raises(DeadlockError):
            run_spmd(2, MEIKO_CS2, prog, backend="lockstep", watchdog=30.0)

    def test_watchdog_abandons_a_wedged_rank(self, monkeypatch):
        # a compute loop that never reaches an abort check; after the
        # teardown grace the daemon thread is abandoned and the caller
        # still gets the structured error
        import threading
        import time

        from repro.mpi import executor
        monkeypatch.setattr(executor, "_TEARDOWN_GRACE", 0.5)
        release = threading.Event()

        def prog(comm):
            if comm.rank == 0:
                while not release.is_set():  # wedged as far as MPI knows
                    time.sleep(0.01)
            return comm.recv(source=0)

        try:
            with pytest.raises(SpmdWatchdogError):
                run_spmd(2, MEIKO_CS2, prog, backend="threads",
                         watchdog=0.5)
        finally:
            release.set()  # let the abandoned daemon exit quietly

    def test_healthy_run_unaffected_by_watchdog(self):
        base = run_spmd(2, MEIKO_CS2, one_message)
        guarded = run_spmd(2, MEIKO_CS2, one_message, watchdog=30.0)
        assert _fingerprint(base) == _fingerprint(guarded)

    def test_env_var_configures_the_watchdog(self, monkeypatch):
        from repro.mpi import executor
        monkeypatch.setenv(executor.WATCHDOG_ENV_VAR, "not-a-number")
        with pytest.raises(MpiError, match="number of seconds"):
            executor.resolve_watchdog()
        monkeypatch.setenv(executor.WATCHDOG_ENV_VAR, "-3")
        with pytest.raises(MpiError, match="positive"):
            executor.resolve_watchdog()
        monkeypatch.setenv(executor.WATCHDOG_ENV_VAR, "2.5")
        assert executor.resolve_watchdog() == 2.5


class TestAbortPropagation:
    """A rank raising mid-collective must surface *its* error (with the
    original traceback chained), never the peers' ``_Abort``."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_raise_mid_barrier(self, backend):
        def prog(comm):
            if comm.rank == 1:
                raise ValueError("rank 1 exploded")
            comm.barrier()

        with pytest.raises(MpiError) as info:
            run_spmd(3, MEIKO_CS2, prog, backend=backend)
        exc = info.value
        assert "rank 1 failed: rank 1 exploded" in str(exc)
        assert "peer rank failed" not in str(exc)
        assert isinstance(exc.__cause__, ValueError)
        # the chained traceback points into the failing program frame
        tb = exc.__cause__.__traceback__
        functions = set()
        while tb is not None:
            functions.add(tb.tb_frame.f_code.co_name)
            tb = tb.tb_next
        assert "prog" in functions

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_raise_mid_allreduce(self, backend):
        def prog(comm):
            if comm.rank == 0:
                raise ZeroDivisionError("boom")
            return comm.allreduce(1.0)

        with pytest.raises(MpiError) as info:
            run_spmd(3, MEIKO_CS2, prog, backend=backend)
        assert isinstance(info.value.__cause__, ZeroDivisionError)
        assert "peer rank failed" not in str(info.value)

    def test_fused_fallback_preserves_the_originating_error(self):
        def prog(comm):
            if comm.rank == 1:  # rank read diverges the fused pass
                raise ValueError("after divergence")
            return comm.allreduce(2.0)

        with pytest.raises(MpiError) as info:
            run_spmd(2, MEIKO_CS2, prog, backend="fused")
        assert "rank 1 failed: after divergence" in str(info.value)
        assert isinstance(info.value.__cause__, ValueError)

    def test_lowest_failing_rank_wins_deterministically(self):
        def prog(comm):
            raise RuntimeError(f"rank {comm.rank} died")

        for backend in BACKENDS:
            with pytest.raises(MpiError, match="rank 0 failed"):
                run_spmd(3, MEIKO_CS2, prog, backend=backend)


# ------------------------------------------------------------------------- #
# fused backend: chaos falls back, zero-fault stays fused
# ------------------------------------------------------------------------- #


class TestFusedChaos:
    def test_chaos_plan_falls_back_to_lockstep(self):
        def prog(comm):
            return comm.allreduce(1.0)  # rank-agnostic: fusable

        res = run_spmd(4, MEIKO_CS2, prog, backend="fused",
                       fault_plan="seed=1; drop tag=999")
        assert res.backend == "lockstep"
        assert res.results == [4.0] * 4

    def test_zero_fault_plan_stays_fused(self):
        def prog(comm):
            return comm.allreduce(1.0)

        res = run_spmd(4, MEIKO_CS2, prog, backend="fused",
                       fault_plan="timeout=100")
        assert res.backend == "fused"

    def test_fused_chaos_diagnostic_matches_lockstep(self):
        plan = "seed=6; corrupt rank=0"
        direct = _diagnostic(plan, one_message, backend="lockstep")
        with pytest.raises(MpiError) as info:
            run_spmd(2, MEIKO_CS2, one_message, backend="fused",
                     fault_plan=plan)
        assert type(info.value) is type(direct)
        assert str(info.value) == str(direct)


# ------------------------------------------------------------------------- #
# compiled programs ride the same machinery
# ------------------------------------------------------------------------- #


class TestCompiledChaos:
    SOURCE = "x = ones(6, 6) * 2; s = sum(sum(x)); disp(s);"

    def test_compiled_run_under_crash_plan(self):
        from repro.compiler import compile_source

        program = compile_source(self.SOURCE)
        with pytest.raises(RankCrashedError, match="rank 1 crashed"):
            program.run(nprocs=2, machine=MEIKO_CS2,
                        fault_plan="crash rank=1 step=1")

    def test_compiled_zero_fault_chaos_matches_baseline(self):
        from repro.compiler import compile_source

        program = compile_source(self.SOURCE)
        base = program.run(nprocs=2, machine=MEIKO_CS2)
        chaos = program.run(nprocs=2, machine=MEIKO_CS2,
                            fault_plan="timeout=1000", watchdog=30.0)
        assert chaos.output == base.output
        assert chaos.elapsed == base.elapsed
        assert chaos.spmd.messages_sent == base.spmd.messages_sent

    def test_inline_run_releases_memory_tracker(self):
        from repro.compiler import compile_source
        from repro.runtime.memory import current_tracker

        program = compile_source(self.SOURCE)
        program.run(nprocs=1, machine=MEIKO_CS2)
        # the nprocs==1 fast path runs on this very thread: the tracker
        # must be uninstalled afterwards, not left charging allocations
        assert current_tracker() is None

    def test_cli_fault_plan_flag(self, tmp_path, capsys):
        from repro.cli import main

        script = tmp_path / "prog.m"
        script.write_text("x = ones(4, 4); disp(sum(sum(x)));\n")
        code = main(["run", str(script), "--nprocs", "2",
                     "--fault-plan", "crash rank=0 step=1",
                     "--watchdog-seconds", "30"])
        assert code == 1
        assert "rank 0 crashed" in capsys.readouterr().err

    def test_cli_healthy_run_with_plan(self, tmp_path, capsys):
        from repro.cli import main

        script = tmp_path / "prog.m"
        script.write_text("disp(3);\n")
        code = main(["run", str(script), "--nprocs", "2",
                     "--fault-plan", "timeout=1000"])
        assert code == 0
        assert "3" in capsys.readouterr().out


# ------------------------------------------------------------------------- #
# determinism of the decision core itself
# ------------------------------------------------------------------------- #


class TestDecisionDeterminism:
    def test_probability_decisions_are_per_rank_hashes(self):
        plan = FaultPlan.parse("seed=5; drop p=0.5")
        a = FaultState(plan, 4)
        b = FaultState(plan, 4)
        schedule_a = [a.on_message(r, (r + 1) % 4, 0, 8, 0.0, 1.0).deliver
                      for r in range(4) for _ in range(8)]
        schedule_b = [b.on_message(r, (r + 1) % 4, 0, 8, 0.0, 1.0).deliver
                      for r in range(4) for _ in range(8)]
        assert schedule_a == schedule_b
        assert False in schedule_a and True in schedule_a  # actually mixes

    def test_schedule_independent_of_rank_interleaving(self):
        # rank 2's decisions must not depend on when ranks 0/1 acted
        plan = FaultPlan.parse("seed=8; drop p=0.5")
        solo = FaultState(plan, 4)
        solo_schedule = [solo.on_message(2, 3, 0, 8, 0.0, 1.0).deliver
                         for _ in range(10)]
        mixed = FaultState(plan, 4)
        for _ in range(7):  # other ranks act first this time
            mixed.on_message(0, 1, 0, 8, 0.0, 1.0)
            mixed.on_message(1, 2, 0, 8, 0.0, 1.0)
        mixed_schedule = [mixed.on_message(2, 3, 0, 8, 0.0, 1.0).deliver
                          for _ in range(10)]
        assert solo_schedule == mixed_schedule

    def test_count_caps_fire_per_rank(self):
        plan = FaultPlan.parse("drop count=2")
        state = FaultState(plan, 2)
        fates = [state.on_message(0, 1, 0, 8, 0.0, 1.0).deliver
                 for _ in range(5)]
        assert fates == [False, False, True, True, True]
        # rank 1 gets its own budget
        assert state.on_message(1, 0, 0, 8, 0.0, 1.0).deliver is False


# ------------------------------------------------------------------------- #
# eager plan validation (load-time rejection, never a mid-run surprise)
# ------------------------------------------------------------------------- #


class TestEagerPlanValidation:
    def test_rank_ranges_parse_and_scope(self):
        plan = FaultPlan.parse("drop rank=1-3 dst=0-1 tag=2")
        rule = plan.rules[0]
        assert rule.rank == (1, 3) and rule.dest == (0, 1)
        assert rule.matches_message(2, 0, 2, 0.0)
        assert rule.matches_message(3, 1, 2, 0.0)
        assert not rule.matches_message(0, 0, 2, 0.0)   # sender outside
        assert not rule.matches_message(2, 2, 2, 0.0)   # dest outside
        assert "rank=1-3" in rule.describe()

    def test_crash_rank_range_matches_ops(self):
        plan = FaultPlan.parse("crash rank=1-2 op=allreduce")
        assert plan.rules[0].matches_op(1, "allreduce", 0.0)
        assert plan.rules[0].matches_op(2, "allreduce", 0.0)
        assert not plan.rules[0].matches_op(3, "allreduce", 0.0)

    @pytest.mark.parametrize("bad,match", [
        ("drop rank=3-1", "inverted"),
        ("drop rank=-2", "negative"),
        ("drop dst=2--5", "negative rank"),
        ("drop tag=-1", "never match"),
        ("drop count=0", "never fire"),
        ("crash rank=0 op=allreduce step=0", "1-based"),
        ("delay by=0.1 rank=0 after=-1", "negative"),
        ("drop after=2 before=1", "empty time window"),
        ("drop after=1 before=1", "empty time window"),
    ])
    def test_malformed_rules_fail_at_load_time(self, bad, match):
        with pytest.raises(MpiError, match=match):
            FaultPlan.parse(bad)

    def test_negative_delay_is_rejected(self):
        with pytest.raises(MpiError, match="back in time"):
            FaultPlan.parse("delay by=-0.5 rank=0")

    def test_exact_duplicate_rules_are_rejected(self):
        with pytest.raises(MpiError, match="duplicates rule 1.*count="):
            FaultPlan.parse("drop rank=0 tag=1\ndrop rank=0 tag=1")

    def test_distinct_rules_are_not_duplicates(self):
        plan = FaultPlan.parse("drop rank=0 tag=1\ndrop rank=0 tag=2")
        assert len(plan.rules) == 2

    def test_overlapping_crash_rules_are_rejected(self):
        with pytest.raises(MpiError, match="already dead"):
            FaultPlan.parse("crash rank=0-2 op=allreduce\n"
                            "crash rank=1 op=allreduce")

    def test_crash_rules_with_distinct_steps_coexist(self):
        plan = FaultPlan.parse("crash rank=0 op=allreduce step=1\n"
                               "crash rank=0 op=allreduce step=3")
        assert len(plan.rules) == 2

    def test_crash_rules_on_disjoint_ranks_coexist(self):
        plan = FaultPlan.parse("crash rank=0-1 op=send\n"
                               "crash rank=2-3 op=send")
        assert len(plan.rules) == 2
