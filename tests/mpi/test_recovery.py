"""Self-healing suite: retry-with-backoff, checkpoint/restart, degrade.

The anchor properties (mirrors docs/RESILIENCE.md):

1. **Heal to bit-identity** — a seeded chaos run that aborts under the
   default policy completes under ``on_fault=retry/restart`` with
   *bit-identical* data results to the fault-free baseline, on every
   backend (data never depends on the virtual clocks).
2. **Honest clocks** — recovery is never free: every recovered rank
   clock is ``>=`` its fault-free baseline, element-wise.
3. **Zero-fault transparency** — with a non-abort policy armed but no
   fault injected, results *and* clocks are exactly the baseline's and
   the trace records no recovery events.

No test here may rely on host waits longer than 30 s; the watchdog
tests use ~1 s budgets.
"""

import pickle
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    MpiError,
    MpiRetryExhaustedError,
    RankCrashedError,
    SpmdWatchdogError,
)
from repro.mpi import MEIKO_CS2, run_spmd
from repro.mpi.recovery import (
    CHECKPOINT_EVERY_ENV_VAR,
    MAX_RESTARTS_ENV_VAR,
    ON_FAULT_ENV_VAR,
    CheckpointStore,
    RecoveryPolicy,
    resolve_recovery,
    retry_backoff,
)

BACKENDS = ["lockstep", "threads", "fused"]


# ------------------------------------------------------------------------- #
# reference rank programs
# ------------------------------------------------------------------------- #


def ring(comm):
    """Each rank passes a token one hop right, then allreduces twice
    (two collective boundaries give checkpoints somewhere to land)."""
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    comm.send(comm.rank * 10.0, dest=right, tag=1)
    got = comm.recv(source=left, tag=1)
    total = comm.allreduce(got)
    return comm.allreduce(total + comm.rank)


def collectives_only(comm):
    """Rank-agnostic program (stays fused on the fused backend)."""
    acc = 1.0
    for _ in range(4):
        acc = comm.allreduce(acc) / comm.size + 1.0
    return acc


def _clocks(result):
    return np.asarray(result.times)


# ------------------------------------------------------------------------- #
# policy resolution
# ------------------------------------------------------------------------- #


class TestPolicyResolution:
    def test_default_is_abort_and_inactive(self, monkeypatch):
        monkeypatch.delenv(ON_FAULT_ENV_VAR, raising=False)
        policy = resolve_recovery()
        assert policy.on_fault == "abort"
        assert not policy.active
        assert not policy.restarts_enabled and not policy.degrade

    def test_arguments_beat_environment(self, monkeypatch):
        monkeypatch.setenv(ON_FAULT_ENV_VAR, "degrade")
        monkeypatch.setenv(MAX_RESTARTS_ENV_VAR, "7")
        monkeypatch.setenv(CHECKPOINT_EVERY_ENV_VAR, "9")
        policy = resolve_recovery(on_fault="retry", max_restarts=1,
                                  checkpoint_every=2)
        assert (policy.on_fault, policy.max_restarts,
                policy.checkpoint_every) == ("retry", 1, 2)

    def test_environment_beats_defaults(self, monkeypatch):
        monkeypatch.setenv(ON_FAULT_ENV_VAR, "restart")
        monkeypatch.setenv(MAX_RESTARTS_ENV_VAR, "5")
        monkeypatch.setenv(CHECKPOINT_EVERY_ENV_VAR, "3")
        policy = resolve_recovery()
        assert (policy.on_fault, policy.max_restarts,
                policy.checkpoint_every) == ("restart", 5, 3)
        assert policy.active and policy.restarts_enabled

    def test_unknown_policy_is_actionable(self):
        with pytest.raises(MpiError, match="unknown on_fault.*abort"):
            RecoveryPolicy(on_fault="panic")

    @pytest.mark.parametrize("kwargs,match", [
        (dict(on_fault="retry", max_restarts=-1), "max_restarts"),
        (dict(on_fault="retry", checkpoint_every=0), "checkpoint_every"),
        (dict(on_fault="retry", max_retries=-2), "max_retries"),
        (dict(on_fault="retry", rto_factor=0.0), "rto_factor"),
    ])
    def test_rejects_bad_knobs(self, kwargs, match):
        with pytest.raises(MpiError, match=match):
            RecoveryPolicy(**kwargs)

    def test_non_integer_environment_is_actionable(self, monkeypatch):
        monkeypatch.setenv(MAX_RESTARTS_ENV_VAR, "many")
        with pytest.raises(MpiError, match="must be an integer"):
            resolve_recovery(on_fault="restart")

    def test_run_spmd_rejects_unknown_policy_eagerly(self):
        with pytest.raises(MpiError, match="unknown on_fault"):
            run_spmd(2, MEIKO_CS2, ring, on_fault="explode")


class TestRetryBackoff:
    def test_deterministic_and_exponential(self):
        a = retry_backoff(7, rank=1, seq=0, attempt=0, base=1e-4)
        b = retry_backoff(7, rank=1, seq=0, attempt=0, base=1e-4)
        assert a == b
        # jitter is bounded: base*2^k <= backoff < 2*base*2^k
        for k in range(4):
            d = retry_backoff(7, 1, 0, k, 1e-4)
            assert 1e-4 * 2 ** k <= d < 2e-4 * 2 ** k

    def test_jitter_varies_with_sequence(self):
        ds = {retry_backoff(7, 0, seq, 0, 1e-4) for seq in range(8)}
        assert len(ds) > 1


# ------------------------------------------------------------------------- #
# retry-with-backoff
# ------------------------------------------------------------------------- #


class TestRetryHealing:
    PLANS = ["seed=11; drop tag=1 count=2", "seed=11; bitflip tag=1 count=1"]

    @pytest.mark.parametrize("plan", PLANS)
    def test_plans_are_lethal_without_recovery(self, plan):
        # lockstep only: the threads backend cannot detect starvation
        # without burning a real watchdog budget
        with pytest.raises(MpiError):
            run_spmd(4, MEIKO_CS2, ring, backend="lockstep",
                     fault_plan=plan)

    @pytest.mark.parametrize("backend", ["lockstep", "threads"])
    @pytest.mark.parametrize("plan", PLANS)
    def test_message_faults_heal_bit_identically(self, backend, plan):
        base = run_spmd(4, MEIKO_CS2, ring, backend=backend)
        healed = run_spmd(4, MEIKO_CS2, ring, backend=backend,
                          fault_plan=plan, on_fault="retry", watchdog=20.0)
        assert healed.results == base.results
        assert np.all(_clocks(healed) >= _clocks(base))
        assert healed.recovery is not None and healed.recovery.healed
        assert healed.recovery.retries > 0
        # every re-send is charged: more wire traffic than the baseline
        assert healed.messages_sent > base.messages_sent
        assert healed.bytes_sent > base.bytes_sent

    def test_retry_events_land_in_the_trace(self):
        healed = run_spmd(4, MEIKO_CS2, ring, backend="lockstep",
                          fault_plan="seed=11; drop tag=1 count=2",
                          on_fault="retry", trace=True, watchdog=20.0)
        events = healed.trace.recovery_events()
        assert events and all(e.name == "retry" for e in events)
        assert all(e.args["cause"] in ("drop", "corrupt") for e in events)

    def test_retry_budget_escalates(self):
        # every copy of the tag-1 message is dropped: undeliverable
        plan = "seed=3; drop tag=1"
        with pytest.raises(MpiRetryExhaustedError, match="retry budget"):
            run_spmd(2, MEIKO_CS2, ring, backend="lockstep",
                     fault_plan=plan, on_fault="retry", watchdog=20.0)

    def test_retries_count_per_rank(self):
        healed = run_spmd(4, MEIKO_CS2, ring, backend="lockstep",
                          fault_plan="seed=11; drop tag=1 count=2",
                          on_fault="retry", watchdog=20.0)
        per_rank = healed.rank_retries
        assert int(np.sum(per_rank)) == healed.recovery.retries > 0


# ------------------------------------------------------------------------- #
# checkpoint/restart
# ------------------------------------------------------------------------- #

CRASH_PLAN = "seed=5; crash rank=2 op=allreduce step=2"


class TestRestartHealing:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_crash_heals_bit_identically(self, backend):
        base = run_spmd(4, MEIKO_CS2, ring, backend=backend)
        with pytest.raises(RankCrashedError):
            run_spmd(4, MEIKO_CS2, ring, backend=backend,
                     fault_plan=CRASH_PLAN, watchdog=20.0)
        healed = run_spmd(4, MEIKO_CS2, ring, backend=backend,
                          fault_plan=CRASH_PLAN, on_fault="restart",
                          checkpoint_every=1, watchdog=20.0)
        assert healed.results == base.results
        assert np.all(_clocks(healed) >= _clocks(base))
        report = healed.recovery
        assert report.healed and report.restarts == 1
        assert report.checkpoints > 0
        assert [a.outcome for a in report.attempts] == \
            ["failed", "completed"]

    def test_rollback_and_restart_events_in_trace(self):
        healed = run_spmd(4, MEIKO_CS2, ring, backend="lockstep",
                          fault_plan=CRASH_PLAN, on_fault="restart",
                          checkpoint_every=1, trace=True, watchdog=20.0)
        names = [e.name for e in healed.trace.recovery_events()]
        assert names == ["rollback", "restart"]
        rollback = healed.trace.recovery_events()[0]
        assert rollback.args["error"] == "RankCrashedError"
        assert rollback.args["credit"] > 0.0

    def test_checkpoint_credit_shrinks_the_recovery_bill(self):
        slow = run_spmd(4, MEIKO_CS2, ring, backend="lockstep",
                        fault_plan=CRASH_PLAN, on_fault="restart",
                        watchdog=20.0)           # no checkpoints: no credit
        fast = run_spmd(4, MEIKO_CS2, ring, backend="lockstep",
                        fault_plan=CRASH_PLAN, on_fault="restart",
                        checkpoint_every=1, watchdog=20.0)
        assert fast.results == slow.results
        assert fast.elapsed < slow.elapsed

    def test_restart_budget_exhaustion_raises(self):
        # the crash re-fires on every attempt: the budget must run out
        plan = "seed=5; crash rank=1 op=allreduce count=99"
        with pytest.raises(RankCrashedError):
            run_spmd(4, MEIKO_CS2, ring, backend="lockstep",
                     fault_plan=plan, on_fault="restart", max_restarts=2,
                     watchdog=20.0)

    def test_restart_replays_io_without_duplicates(self):
        written = []

        def prog(comm):
            total = comm.allreduce(float(comm.rank))
            if comm.rank == 0:
                written.append(total)
            return comm.allreduce(total)

        run_spmd(4, MEIKO_CS2, prog, backend="lockstep",
                 fault_plan=CRASH_PLAN, on_fault="restart",
                 on_fused_fallback=written.clear, watchdog=20.0)
        assert written == [6.0]


# ------------------------------------------------------------------------- #
# graceful degradation
# ------------------------------------------------------------------------- #


class TestDegrade:
    def test_unhealable_run_degrades_to_partial_result(self):
        # rank 0's sends always vanish; retries exhaust on every attempt
        plan = "seed=3; drop rank=0"
        res = run_spmd(2, MEIKO_CS2, ring, backend="lockstep",
                       fault_plan=plan, on_fault="degrade", max_restarts=1,
                       watchdog=20.0)
        report = res.recovery
        assert report.degraded and not report.healed
        assert "MpiRetryExhaustedError" in report.error
        assert [a.outcome for a in report.attempts] == \
            ["failed", "degraded"]
        assert res.results == [None, None]

    def test_degrade_event_in_trace(self):
        res = run_spmd(2, MEIKO_CS2, ring, backend="lockstep",
                       fault_plan="seed=3; drop rank=0", on_fault="degrade",
                       max_restarts=0, trace=True, watchdog=20.0)
        names = {e.name for e in res.trace.recovery_events()}
        assert "degrade" in names and "retry" in names

    def test_degrade_never_swallows_user_bugs(self):
        def buggy(comm):
            comm.allreduce(1.0)
            raise ValueError("user bug")

        with pytest.raises(MpiError, match="user bug"):
            run_spmd(2, MEIKO_CS2, buggy, backend="lockstep",
                     fault_plan="seed=1; timeout=5", on_fault="degrade",
                     watchdog=20.0)

    def test_degrade_without_faults_completes_normally(self):
        res = run_spmd(2, MEIKO_CS2, ring, backend="lockstep",
                       on_fault="degrade")
        assert res.recovery is None  # no plan: recovery never engages
        assert res.results == run_spmd(2, MEIKO_CS2, ring).results


# ------------------------------------------------------------------------- #
# checkpoint store
# ------------------------------------------------------------------------- #


class TestCheckpointStore:
    def _world(self):
        from repro.mpi.comm import World

        return World(2, MEIKO_CS2)

    def test_take_snapshots_accounting_and_payloads(self):
        store = CheckpointStore()
        store.register_payload(0, lambda: {"rng": 42})
        world = self._world()
        world.clocks[:] = [1.0, 2.0]
        ck = store.take(world, vtime=2.0, attempt=0)
        assert ck.index == 0 and ck.attempt == 0
        assert ck.vtime_rel == 2.0
        assert ck.clocks.tolist() == [1.0, 2.0]
        assert ck.payloads == {0: {"rng": 42}}
        # snapshots are copies, not views
        world.clocks[:] = 9.0
        assert ck.clocks.tolist() == [1.0, 2.0]

    def test_failing_payload_provider_never_kills_the_run(self):
        store = CheckpointStore()
        store.register_payload(0, lambda: 1 / 0)
        ck = store.take(self._world(), vtime=0.0, attempt=0)
        assert ck.payloads == {0: None}

    def test_last_for_attempt_ignores_stale_attempts(self):
        store = CheckpointStore()
        world = self._world()
        store.take(world, vtime=1.0, attempt=0)
        assert store.last_for_attempt(1) is None
        ck = store.take(world, vtime=2.0, attempt=1)
        assert store.last_for_attempt(1) is ck
        assert store.last is ck

    def test_on_disk_checkpoints_are_inspectable(self, tmp_path):
        store = CheckpointStore(directory=str(tmp_path))
        store.take(self._world(), vtime=1.5, attempt=0)
        path = tmp_path / "ckpt-000.pkl"
        assert path.exists()
        with open(path, "rb") as fh:
            ck = pickle.load(fh)
        assert ck.vtime == 1.5

    def test_runtime_context_contributes_rng_state(self):
        from repro.mpi.comm import Comm, World
        from repro.mpi.recovery import ActiveRecovery
        from repro.runtime.context import RuntimeContext

        rec = ActiveRecovery(
            RecoveryPolicy(on_fault="restart", checkpoint_every=1), 2)
        world = World(2, MEIKO_CS2, recovery=rec)
        rt = RuntimeContext(Comm(world, 0), seed=7)
        try:
            ck = rec.store.take(world, vtime=0.0, attempt=0)
        finally:
            rt.close()
        payload = ck.payloads[0]
        assert payload["seed"] == 7
        assert "bit_generator" in payload["rng"]

    def test_compiled_program_checkpoints_and_reports(self):
        from repro.compiler import compile_source

        prog = compile_source("a = ones(4,4);\nfor i = 1:3\n"
                              " s = sum(sum(a)) + i;\nend\ndisp(s);")
        res = prog.run(nprocs=2, fault_plan="seed=1; timeout=5",
                       on_fault="restart", checkpoint_every=1)
        assert res.recovery is not None
        # zero faults: nothing healed, but checkpoints were taken
        assert not res.recovery.healed
        assert res.recovery.checkpoints > 0


# ------------------------------------------------------------------------- #
# zero-fault transparency
# ------------------------------------------------------------------------- #


class TestZeroFaultTransparency:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_armed_policy_perturbs_nothing(self, backend):
        base = run_spmd(4, MEIKO_CS2, collectives_only, backend=backend)
        armed = run_spmd(4, MEIKO_CS2, collectives_only, backend=backend,
                         fault_plan="seed=9; timeout=10",
                         on_fault="restart", checkpoint_every=2,
                         trace=True)
        assert armed.results == base.results
        assert armed.times == base.times
        assert armed.messages_sent == base.messages_sent
        assert armed.collective_counts == base.collective_counts
        assert armed.trace.recovery_events() == []
        assert armed.recovery is not None and not armed.recovery.healed


# ------------------------------------------------------------------------- #
# watchdog interaction (one budget spans fallback + restarts)
# ------------------------------------------------------------------------- #


class TestWatchdogReArm:
    def test_fused_attempt_is_watchdog_covered(self):
        def spin(comm):
            while True:
                comm.barrier()

        with pytest.raises(SpmdWatchdogError, match="watchdog expired"):
            run_spmd(2, MEIKO_CS2, spin, backend="fused", watchdog=1.0)

    def test_fallback_rerun_shares_the_original_budget(self):
        release = threading.Event()

        def prog(comm):
            # burn most of the budget while still fused, then diverge
            deadline = time.monotonic() + 2.0
            while time.monotonic() < deadline and not release.is_set():
                time.sleep(0.01)
            return comm.rank  # FusionDivergence -> lockstep re-run

        try:
            with pytest.raises(SpmdWatchdogError,
                               match="budget exhausted before the "
                                     "lockstep re-run"):
                run_spmd(2, MEIKO_CS2, prog, backend="fused", watchdog=0.5)
        finally:
            release.set()

    def test_watchdog_error_is_never_recoverable(self):
        def prog(comm):
            got = comm.recv(source=1 - comm.rank, tag=1)
            comm.send(comm.rank, dest=1 - comm.rank, tag=1)
            return got

        t0 = time.monotonic()
        with pytest.raises(SpmdWatchdogError):
            run_spmd(2, MEIKO_CS2, prog, backend="threads", watchdog=1.0,
                     fault_plan="seed=1; timeout=60", on_fault="restart",
                     max_restarts=5)
        # no restart loop: the budget was spent exactly once
        assert time.monotonic() - t0 < 8.0


# ------------------------------------------------------------------------- #
# property: seeded chaos + recovery == fault-free baseline (data), with
# element-wise slower-or-equal clocks, on every backend
# ------------------------------------------------------------------------- #


POLICY_FOR = {"crash rank=1 op=allreduce step=1": "restart",
              "drop tag=1 count=1": "retry",
              "bitflip tag=1 count=1": "retry"}


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2 ** 16),
       rule=st.sampled_from(sorted(POLICY_FOR)),
       backend=st.sampled_from(["lockstep", "threads"]))
def test_property_chaos_heals_to_baseline(seed, rule, backend):
    plan = f"seed={seed}; {rule}"
    base = run_spmd(4, MEIKO_CS2, ring, backend=backend)
    healed = run_spmd(4, MEIKO_CS2, ring, backend=backend, fault_plan=plan,
                      on_fault=POLICY_FOR[rule], checkpoint_every=1,
                      watchdog=25.0)
    assert healed.results == base.results
    assert np.all(_clocks(healed) >= _clocks(base))


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2 ** 16))
def test_property_fused_crash_heals_to_baseline(seed):
    plan = f"seed={seed}; crash rank=1 op=allreduce step=2"
    base = run_spmd(4, MEIKO_CS2, collectives_only, backend="fused")
    healed = run_spmd(4, MEIKO_CS2, collectives_only, backend="fused",
                      fault_plan=plan, on_fault="restart",
                      checkpoint_every=1, watchdog=25.0)
    assert healed.results == base.results
    assert np.all(_clocks(healed) >= _clocks(base))
