"""Machine-model tests."""

import math
from dataclasses import replace

import pytest

from repro.mpi.machine import (
    FATTREE_CLUSTER,
    GPU_CLUSTER,
    MACHINES,
    MEIKO_CS2,
    SPARC20_CLUSTER,
    SUN_ENTERPRISE,
    get_machine,
)


class TestTopology:
    def test_meiko_is_flat(self):
        assert MEIKO_CS2.node_of(0) == MEIKO_CS2.node_of(15) == 0
        assert not MEIKO_CS2.spans_nodes(16)

    def test_cluster_nodes(self):
        assert SPARC20_CLUSTER.node_of(0) == 0
        assert SPARC20_CLUSTER.node_of(3) == 0
        assert SPARC20_CLUSTER.node_of(4) == 1
        assert SPARC20_CLUSTER.node_of(15) == 3

    def test_cluster_spans_beyond_four(self):
        assert not SPARC20_CLUSTER.spans_nodes(4)
        assert SPARC20_CLUSTER.spans_nodes(5)

    def test_link_selection(self):
        intra = SPARC20_CLUSTER.link_between(0, 3)
        inter = SPARC20_CLUSTER.link_between(0, 4)
        assert inter.latency > intra.latency
        assert inter.bandwidth < intra.bandwidth


class TestCosts:
    def test_p2p_inter_node_slower(self):
        fast = SPARC20_CLUSTER.p2p_time(0, 1, 8_000)
        slow = SPARC20_CLUSTER.p2p_time(0, 5, 8_000)
        assert slow > fast * 10

    def test_collective_grows_with_procs(self):
        t4 = MEIKO_CS2.collective_time("allgather", 1024, 4)
        t16 = MEIKO_CS2.collective_time("allgather", 1024, 16)
        assert t16 > t4

    def test_collective_single_proc_free(self):
        assert MEIKO_CS2.collective_time("bcast", 10**6, 1) == 0.0

    def test_hierarchical_collective_cheaper_than_flat_ethernet(self):
        # two-level collective must beat pretending all 16 ranks sit on
        # the ethernet directly
        two_level = SPARC20_CLUSTER.collective_time("bcast", 8192, 16)
        flat = SPARC20_CLUSTER._flat_collective(
            "bcast", 8192, 16, SPARC20_CLUSTER.inter_link, 3.0)
        assert two_level < flat

    def test_unknown_collective_rejected(self):
        with pytest.raises(ValueError):
            MEIKO_CS2.collective_time("gossip", 10, 4)

    def test_bus_contention_slows_memory_work(self):
        t1 = SUN_ENTERPRISE.compute_time(elems=10**6, active_cpus=1)
        t8 = SUN_ENTERPRISE.compute_time(elems=10**6, active_cpus=8)
        assert t8 > t1 * 1.5

    def test_flops_not_contended(self):
        t1 = SUN_ENTERPRISE.compute_time(flops=10**6, active_cpus=1)
        t8 = SUN_ENTERPRISE.compute_time(flops=10**6, active_cpus=8)
        assert t8 == t1

    def test_meiko_no_bus_contention(self):
        t1 = MEIKO_CS2.compute_time(elems=10**6, active_cpus=1)
        t16 = MEIKO_CS2.compute_time(elems=10**6, active_cpus=16)
        assert t16 == t1


class TestInterpreterParams:
    def test_interpreter_slower_than_compiled(self):
        params = MEIKO_CS2.cpu.interpreter_params()
        assert params.flop_time > MEIKO_CS2.cpu.flop_time
        assert params.elem_time > MEIKO_CS2.cpu.elem_time

    def test_registry(self):
        assert set(MACHINES) == {"meiko", "enterprise", "cluster",
                                 "fattree", "gpu"}
        assert get_machine("meiko") is MEIKO_CS2
        with pytest.raises(KeyError):
            get_machine("cray")


def test_machine_cpu_counts_match_paper():
    assert MEIKO_CS2.max_cpus == 16       # 16-CPU Meiko CS-2
    assert SUN_ENTERPRISE.max_cpus == 8   # 8-CPU Sun Enterprise SMP
    assert SPARC20_CLUSTER.max_cpus == 16  # four 4-CPU SPARCserver 20s
    assert SPARC20_CLUSTER.cpus_per_node == 4


# -------------------------------------------------------------------------- #
# modern profiles + hierarchical collectives (the P=1024 scaling work)
# -------------------------------------------------------------------------- #


class TestModernProfiles:
    def test_fattree_registered_and_scales_past_1024(self):
        fattree = get_machine("fattree")
        assert fattree is FATTREE_CLUSTER
        assert fattree.max_cpus >= 1024
        assert fattree.spans_nodes(1024)
        assert fattree.node_of(0) == 0
        assert fattree.node_of(fattree.cpus_per_node) == 1

    def test_gpu_registered(self):
        gpu = get_machine("gpu")
        assert gpu is GPU_CLUSTER
        assert gpu.max_cpus >= 1024
        assert gpu.spans_nodes(1024)
        # GPU-era flop rates dwarf the 1997 machines
        assert gpu.cpu.flop_time < MEIKO_CS2.cpu.flop_time / 1000

    def test_modern_cores_faster_than_1997(self):
        assert FATTREE_CLUSTER.cpu.flop_time < MEIKO_CS2.cpu.flop_time
        assert FATTREE_CLUSTER.intra_link.latency \
            < MEIKO_CS2.intra_link.latency


class TestHierarchicalCollectives:
    def test_auto_decomposes_into_intra_plus_inter(self):
        m = FATTREE_CLUSTER
        nbytes, nprocs = 8192, 1024
        nodes = math.ceil(nprocs / m.cpus_per_node)
        expected = (m._flat_collective("bcast", nbytes, m.cpus_per_node,
                                       m.intra_link, 1.0)
                    + m._flat_collective("bcast", nbytes, nodes,
                                         m.inter_link, 1.0))
        assert m.collective_time("bcast", nbytes, nprocs) == expected

    def test_gather_family_aggregates_node_payload_across_wire(self):
        m = FATTREE_CLUSTER
        nbytes, nprocs = 512, 256
        nodes = math.ceil(nprocs / m.cpus_per_node)
        expected = (m._flat_collective("allgather", nbytes,
                                       m.cpus_per_node, m.intra_link, 1.0)
                    + m._flat_collective("allgather",
                                         nbytes * m.cpus_per_node, nodes,
                                         m.inter_link, 1.0))
        assert m.collective_time("allgather", nbytes, nprocs) == expected

    def test_flat_hierarchy_prices_every_hop_on_the_network(self):
        flat = replace(FATTREE_CLUSTER, collective_hierarchy="flat")
        nbytes, nprocs = 8192, 1024
        expected = flat._flat_collective("bcast", nbytes, nprocs,
                                         flat.inter_link, 1.0)
        assert flat.collective_time("bcast", nbytes, nprocs) == expected
        # the fat tree has no shared medium, so flat loses only latency
        # stages; on the Ethernet cluster it also serializes the wire
        eth = replace(SPARC20_CLUSTER, collective_hierarchy="flat")
        nodes = math.ceil(16 / eth.cpus_per_node)
        expected_eth = eth._flat_collective("bcast", 4096, 16,
                                            eth.inter_link,
                                            float(nodes - 1))
        assert eth.collective_time("bcast", 4096, 16) == expected_eth

    def test_flat_no_worse_is_not_guaranteed_but_differs(self):
        flat = replace(FATTREE_CLUSTER, collective_hierarchy="flat")
        auto = FATTREE_CLUSTER
        assert flat.collective_time("allreduce", 8192, 1024) \
            != auto.collective_time("allreduce", 8192, 1024)

    def test_hierarchy_irrelevant_within_one_node(self):
        flat = replace(FATTREE_CLUSTER, collective_hierarchy="flat")
        for op in ("bcast", "allreduce", "allgather", "barrier"):
            assert flat.collective_time(op, 1024, 8) == \
                FATTREE_CLUSTER.collective_time(op, 1024, 8)

    def test_hierarchy_validation(self):
        with pytest.raises(ValueError):
            replace(FATTREE_CLUSTER, collective_hierarchy="magpie")
