"""Machine-model tests."""

import pytest

from repro.mpi.machine import (
    MACHINES,
    MEIKO_CS2,
    SPARC20_CLUSTER,
    SUN_ENTERPRISE,
    get_machine,
)


class TestTopology:
    def test_meiko_is_flat(self):
        assert MEIKO_CS2.node_of(0) == MEIKO_CS2.node_of(15) == 0
        assert not MEIKO_CS2.spans_nodes(16)

    def test_cluster_nodes(self):
        assert SPARC20_CLUSTER.node_of(0) == 0
        assert SPARC20_CLUSTER.node_of(3) == 0
        assert SPARC20_CLUSTER.node_of(4) == 1
        assert SPARC20_CLUSTER.node_of(15) == 3

    def test_cluster_spans_beyond_four(self):
        assert not SPARC20_CLUSTER.spans_nodes(4)
        assert SPARC20_CLUSTER.spans_nodes(5)

    def test_link_selection(self):
        intra = SPARC20_CLUSTER.link_between(0, 3)
        inter = SPARC20_CLUSTER.link_between(0, 4)
        assert inter.latency > intra.latency
        assert inter.bandwidth < intra.bandwidth


class TestCosts:
    def test_p2p_inter_node_slower(self):
        fast = SPARC20_CLUSTER.p2p_time(0, 1, 8_000)
        slow = SPARC20_CLUSTER.p2p_time(0, 5, 8_000)
        assert slow > fast * 10

    def test_collective_grows_with_procs(self):
        t4 = MEIKO_CS2.collective_time("allgather", 1024, 4)
        t16 = MEIKO_CS2.collective_time("allgather", 1024, 16)
        assert t16 > t4

    def test_collective_single_proc_free(self):
        assert MEIKO_CS2.collective_time("bcast", 10**6, 1) == 0.0

    def test_hierarchical_collective_cheaper_than_flat_ethernet(self):
        # two-level collective must beat pretending all 16 ranks sit on
        # the ethernet directly
        two_level = SPARC20_CLUSTER.collective_time("bcast", 8192, 16)
        flat = SPARC20_CLUSTER._flat_collective(
            "bcast", 8192, 16, SPARC20_CLUSTER.inter_link, 3.0)
        assert two_level < flat

    def test_unknown_collective_rejected(self):
        with pytest.raises(ValueError):
            MEIKO_CS2.collective_time("gossip", 10, 4)

    def test_bus_contention_slows_memory_work(self):
        t1 = SUN_ENTERPRISE.compute_time(elems=10**6, active_cpus=1)
        t8 = SUN_ENTERPRISE.compute_time(elems=10**6, active_cpus=8)
        assert t8 > t1 * 1.5

    def test_flops_not_contended(self):
        t1 = SUN_ENTERPRISE.compute_time(flops=10**6, active_cpus=1)
        t8 = SUN_ENTERPRISE.compute_time(flops=10**6, active_cpus=8)
        assert t8 == t1

    def test_meiko_no_bus_contention(self):
        t1 = MEIKO_CS2.compute_time(elems=10**6, active_cpus=1)
        t16 = MEIKO_CS2.compute_time(elems=10**6, active_cpus=16)
        assert t16 == t1


class TestInterpreterParams:
    def test_interpreter_slower_than_compiled(self):
        params = MEIKO_CS2.cpu.interpreter_params()
        assert params.flop_time > MEIKO_CS2.cpu.flop_time
        assert params.elem_time > MEIKO_CS2.cpu.elem_time

    def test_registry(self):
        assert set(MACHINES) == {"meiko", "enterprise", "cluster"}
        assert get_machine("meiko") is MEIKO_CS2
        with pytest.raises(KeyError):
            get_machine("cray")


def test_machine_cpu_counts_match_paper():
    assert MEIKO_CS2.max_cpus == 16       # 16-CPU Meiko CS-2
    assert SUN_ENTERPRISE.max_cpus == 8   # 8-CPU Sun Enterprise SMP
    assert SPARC20_CLUSTER.max_cpus == 16  # four 4-CPU SPARCserver 20s
    assert SPARC20_CLUSTER.cpus_per_node == 4
